#include <gtest/gtest.h>

#include "analysis/compare.h"
#include "util/units.h"

namespace aalo::analysis {
namespace {

using util::kMB;

sim::CoflowRecord makeRecord(coflow::CoflowId id, double release, double finish,
                             util::Bytes max_flow = 1 * kMB, std::size_t width = 2) {
  sim::CoflowRecord r;
  r.id = id;
  r.release = release;
  r.finish = finish;
  r.finish_own = finish;
  r.max_flow_bytes = max_flow;
  r.width = width;
  r.bytes = max_flow * static_cast<double>(width);
  return r;
}

sim::JobRecord makeJobRecord(coflow::JobId id, double arrival, double comm_finish,
                             double compute) {
  sim::JobRecord r;
  r.id = id;
  r.arrival = arrival;
  r.comm_finish = comm_finish;
  r.compute_time = compute;
  return r;
}

TEST(Compare, CoflowBinClassification) {
  EXPECT_EQ(coflowBin(makeRecord({0, 0}, 0, 1, 1 * kMB, 2)), 1);
  EXPECT_EQ(coflowBin(makeRecord({0, 0}, 0, 1, 50 * kMB, 2)), 2);
  EXPECT_EQ(coflowBin(makeRecord({0, 0}, 0, 1, 1 * kMB, 200)), 3);
  EXPECT_EQ(coflowBin(makeRecord({0, 0}, 0, 1, 50 * kMB, 200)), 4);
}

TEST(Compare, CommBands) {
  EXPECT_EQ(commBand(0.1), 0);
  EXPECT_EQ(commBand(0.3), 1);
  EXPECT_EQ(commBand(0.6), 2);
  EXPECT_EQ(commBand(0.9), 3);
}

TEST(Compare, NormalizedCctRatioOfMeans) {
  sim::SimResult compared;
  compared.coflows = {makeRecord({0, 0}, 0, 4), makeRecord({1, 0}, 0, 8)};
  sim::SimResult baseline;
  baseline.coflows = {makeRecord({0, 0}, 0, 2), makeRecord({1, 0}, 0, 4)};
  const auto n = normalizedCct(compared, baseline);
  EXPECT_DOUBLE_EQ(n.avg, 2.0);  // Mean 6 vs mean 3.
  EXPECT_EQ(n.count, 2u);
}

TEST(Compare, NormalizedCctJoinsById) {
  // Record order must not matter: records are matched by CoflowId.
  sim::SimResult compared;
  compared.coflows = {makeRecord({1, 0}, 0, 8), makeRecord({0, 0}, 0, 4)};
  sim::SimResult baseline;
  baseline.coflows = {makeRecord({0, 0}, 0, 4), makeRecord({1, 0}, 0, 8)};
  const auto n = normalizedCct(compared, baseline);
  EXPECT_DOUBLE_EQ(n.avg, 1.0);
}

TEST(Compare, MismatchedPopulationsThrow) {
  sim::SimResult compared;
  compared.coflows = {makeRecord({9, 0}, 0, 4)};
  sim::SimResult baseline;
  baseline.coflows = {makeRecord({0, 0}, 0, 4)};
  EXPECT_THROW(normalizedCct(compared, baseline), std::invalid_argument);
}

TEST(Compare, BinFilteredRatios) {
  sim::SimResult compared;
  compared.coflows = {makeRecord({0, 0}, 0, 10, 1 * kMB, 2),     // bin 1
                      makeRecord({1, 0}, 0, 100, 50 * kMB, 200)};  // bin 4
  sim::SimResult baseline = compared;
  baseline.coflows[0].finish = 5;
  const auto bin1 = normalizedCctForBin(compared, baseline, 1);
  EXPECT_DOUBLE_EQ(bin1.avg, 2.0);
  EXPECT_EQ(bin1.count, 1u);
  const auto bin4 = normalizedCctForBin(compared, baseline, 4);
  EXPECT_DOUBLE_EQ(bin4.avg, 1.0);
  const auto empty = normalizedCctForBin(compared, baseline, 2);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.avg, 0.0);
}

TEST(Compare, JobComparisonByBand) {
  sim::SimResult compared;
  compared.jobs = {makeJobRecord(0, 0, 4, 1),    // comm 4, jct 5
                   makeJobRecord(1, 0, 1, 9)};   // comm 1, jct 10
  sim::SimResult baseline;
  baseline.jobs = {makeJobRecord(0, 0, 2, 1),    // comm 2, jct 3
                   makeJobRecord(1, 0, 2, 9)};   // comm 2, jct 11
  // Bin by the baseline run: job 0 has comm fraction 2/3 (band 2), job 1
  // has 2/11 (band 0).
  const auto band2 = normalizedJobTimes(compared, baseline, baseline, 2);
  EXPECT_DOUBLE_EQ(band2.comm.avg, 2.0);
  EXPECT_DOUBLE_EQ(band2.jct.avg, 5.0 / 3.0);
  const auto all = normalizedJobTimes(compared, baseline, baseline, 4);
  EXPECT_EQ(all.jct.count, 2u);
}

TEST(Compare, CctSamplesFiltersByBin) {
  sim::SimResult result;
  result.coflows = {makeRecord({0, 0}, 1, 3, 1 * kMB, 2),
                    makeRecord({1, 0}, 0, 7, 50 * kMB, 200)};
  const auto all = cctSamples(result);
  EXPECT_EQ(all.size(), 2u);
  const auto bin4 = cctSamples(result, 4);
  ASSERT_EQ(bin4.size(), 1u);
  EXPECT_DOUBLE_EQ(bin4[0], 7.0);
}

TEST(Compare, ByteShareByBinSumsToOne) {
  sim::SimResult result;
  result.coflows = {makeRecord({0, 0}, 0, 1, 1 * kMB, 2),
                    makeRecord({1, 0}, 0, 1, 50 * kMB, 200)};
  const auto share = byteShareByBin(result);
  double total = 0;
  for (const auto& [bin, s] : share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(share.at(4), share.at(1));
}

}  // namespace
}  // namespace aalo::analysis
