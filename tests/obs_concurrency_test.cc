// Registry concurrency: 8 writer threads hammer a shared counter,
// histogram, and gauge while readers continuously render exposition
// snapshots. Run under the tsan preset (see CMakePresets.json) this
// proves the lock-free increment paths and the render-time snapshots are
// race-free; the post-join assertions prove no increments are torn or
// lost (exact totals, not approximations).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace aalo {
namespace {

constexpr int kThreads = 8;
constexpr std::uint64_t kPerThread = 20'000;

TEST(ObsRegistryConcurrency, ExactTotalsUnderContention) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("aalo_cc_total", "contended counter");
  obs::Gauge& gauge = registry.gauge("aalo_cc_gauge", "contended gauge");
  obs::LatencyHistogram& histogram = registry.histogram(
      "aalo_cc_seconds", "contended histogram",
      obs::HistogramOptions{.first_bound = 1e-6, .growth = 4.0, .num_bounds = 16});

  std::atomic<bool> stop{false};
  // Readers render both formats concurrently with the writers; the
  // snapshots they see are unordered but must never crash or race.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&registry, &stop] {
      std::size_t renders = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string text = registry.renderPrometheus();
        const std::string json = registry.renderJson();
        ASSERT_FALSE(text.empty());
        ASSERT_FALSE(json.empty());
        ++renders;
      }
      EXPECT_GT(renders, 0u);
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &gauge, &histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.fetch_add(1);
        // 0.5 is a power of two: the CAS-summed total is exact, so a torn
        // or lost observe shows up as a wrong sum, not FP noise.
        histogram.observe(0.5);
        gauge.set(static_cast<double>(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();

  const std::uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(counter.load(), expected);
  EXPECT_EQ(histogram.count(), expected);
  EXPECT_EQ(histogram.sum(), 0.5 * static_cast<double>(expected));
  const std::vector<std::uint64_t> counts = histogram.bucketCounts();
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : counts) bucket_total += c;
  EXPECT_EQ(bucket_total, expected);
  // The gauge holds the last write of *some* thread.
  const double g = gauge.value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
}

TEST(ObsRegistryConcurrency, ConcurrentRegistrationIsSerialized) {
  obs::Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        // All threads race to create the same families; dedup must hand
        // every thread the same instrument.
        registry.counter("aalo_reg_total", "shared").fetch_add(1);
        registry
            .counter("aalo_reg_labeled_total", "per-thread",
                     "thread=\"" + std::to_string(t % 4) + "\"")
            .fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("aalo_reg_total").load(),
            static_cast<std::uint64_t>(kThreads) * 200);
  // 1 shared + 4 labeled variants.
  EXPECT_EQ(registry.size(), 5u);
}

}  // namespace
}  // namespace aalo
