// Property suite for the scheduler zoo (ctest label: sched).
//
// Three families of invariants pin the new baselines:
//  1. Sampling: probe-based size estimates converge to the true sizes as
//     the probe fraction approaches 1 (and are *exact* at 1.0 — every
//     flow is a probe, and a finished flow's attained service is its
//     size).
//  2. DCoflow: the admission log never contains an admitted coflow whose
//     sigma-order completion bound exceeded its deadline at decision
//     time, deadline-free coflows are never rejected, and rejection never
//     prevents a run from terminating.
//  3. LP bound: the offline lower bound (sched/lp_bound.h) never exceeds
//     any live scheduler's achieved total CCT, across 200 fuzzed traces
//     with barriers, pipelines, multi-wave offsets, and deadlines.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sched/dclas.h"
#include "sched/dcoflow.h"
#include "sched/fair.h"
#include "sched/las.h"
#include "sched/lp_bound.h"
#include "sched/sampling.h"
#include "sched/varys.h"
#include "sim/simulator.h"
#include "tests/helpers.h"
#include "util/rng.h"
#include "workload/deadlines.h"
#include "workload/facebook.h"

namespace aalo {
namespace {

// ---------------------------------------------------------------------------
// 1. Sampling estimate convergence
// ---------------------------------------------------------------------------

/// Mean relative estimate error over a run's finished coflows; coflows
/// that finished before their estimate matured count as fully wrong
/// (error 1) — probing that never converges must not look good.
double meanEstimateError(const std::vector<sched::SamplingEstimate>& log) {
  if (log.empty()) return 0;
  double total = 0;
  for (const sched::SamplingEstimate& f : log) {
    if (!f.mature || f.actual <= 0) {
      total += 1.0;
    } else {
      total += std::fabs(f.estimated - f.actual) / f.actual;
    }
  }
  return total / static_cast<double>(log.size());
}

TEST(SchedProperty, SamplingEstimatesConvergeWithProbeFraction) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 40;
  cfg.num_ports = 12;
  cfg.seed = 11;
  cfg.mean_interarrival = 0.4;
  const coflow::Workload wl = workload::generateFacebookWorkload(cfg);

  const double fractions[] = {0.1, 0.3, 0.6, 1.0};
  std::vector<double> errors;
  for (const double fraction : fractions) {
    sched::SamplingConfig sc;
    sc.probe_fraction = fraction;
    sc.min_probes = 1;
    sc.quantum = 0.5;
    sched::SamplingScheduler scheduler(sc);
    const sim::SimResult result = sim::runSimulation(
        wl, fabric::FabricConfig{cfg.num_ports, util::kGbps}, scheduler);
    EXPECT_EQ(result.coflows.size(), wl.coflowCount());
    EXPECT_EQ(scheduler.finishLog().size(), wl.coflowCount());
    errors.push_back(meanEstimateError(scheduler.finishLog()));
  }
  // Fully probed => exact: every flow is a probe and completed probes
  // report their true size.
  EXPECT_LE(errors.back(), 1e-12);
  // More probes => better estimates (deterministic workload, so this is
  // a hard ordering, not a statistical one).
  for (std::size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i], errors[i - 1] + 1e-12)
        << "probe fraction " << fractions[i] << " estimated worse than "
        << fractions[i - 1];
  }
  EXPECT_LT(errors.back(), errors.front());
}

// ---------------------------------------------------------------------------
// 2. DCoflow admission-control invariants
// ---------------------------------------------------------------------------

TEST(SchedProperty, DCoflowNeverAdmitsProvablyLateCoflows) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::FacebookConfig cfg;
    cfg.num_jobs = 30;
    cfg.num_ports = 10;
    cfg.seed = seed;
    cfg.mean_interarrival = 0.3;
    cfg.deadline_slack = 0.6;
    const coflow::Workload wl = workload::generateFacebookWorkload(cfg);

    sched::DCoflowScheduler scheduler;
    const sim::SimResult result = sim::runSimulation(
        wl, fabric::FabricConfig{cfg.num_ports, util::kGbps}, scheduler);

    // Every coflow got exactly one decision, and the run terminated with
    // all of them completed (rejection demotes, it does not starve).
    EXPECT_EQ(scheduler.admissionLog().size(), wl.coflowCount()) << seed;
    EXPECT_EQ(result.coflows.size(), wl.coflowCount()) << seed;

    std::size_t rejected = 0;
    for (const sched::AdmissionDecision& d : scheduler.admissionLog()) {
      if (d.admitted) {
        // The admission test itself: an admitted deadlined coflow's
        // sigma-order bound respected its deadline at decision time.
        if (d.deadline_abs < sim::kInfTime) {
          EXPECT_LE(d.bound, d.deadline_abs + 1e-6)
              << "seed " << seed << " coflow " << d.id.toString();
        }
      } else {
        ++rejected;
        // Deadline-free coflows sort last in sigma-order and can push
        // nobody — rejecting one is always a bug.
        EXPECT_LT(d.deadline_abs, sim::kInfTime)
            << "seed " << seed << " rejected deadline-free coflow";
      }
    }
    EXPECT_EQ(result.rejected_coflows, rejected) << seed;
    EXPECT_EQ(scheduler.rejectedCoflows(), rejected) << seed;
  }
}

// Deterministic two-coflow overload: both want the same port and the same
// deadline; sigma-order admits the first and must reject the second.
TEST(SchedProperty, DCoflowRejectsTheCoflowThatCannotFit) {
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  for (int c = 0; c < 2; ++c) {
    coflow::CoflowSpec spec;
    spec.id = {0, c};
    spec.deadline = 10.05;  // Isolated time is 10 s at unit capacity.
    spec.flows.push_back(coflow::FlowSpec{0, 1, 10.0, 0.0});
    job.coflows.push_back(std::move(spec));
  }
  const coflow::Workload wl =
      testing::makeWorkload(3, std::vector<coflow::JobSpec>{job});

  sched::DCoflowScheduler scheduler;
  const sim::SimResult result =
      sim::runSimulation(wl, testing::unitFabric(3), scheduler);

  ASSERT_EQ(scheduler.admissionLog().size(), 2u);
  EXPECT_TRUE(scheduler.admissionLog()[0].admitted);
  EXPECT_FALSE(scheduler.admissionLog()[1].admitted);
  EXPECT_EQ(result.rejected_coflows, 1u);
  EXPECT_EQ(result.deadline_coflows, 2u);
  // The admitted coflow makes its deadline; the rejected one runs in the
  // background afterwards, missing its deadline but still completing.
  EXPECT_EQ(result.deadline_misses, 1u);
  ASSERT_EQ(result.coflows.size(), 2u);
  EXPECT_GT(result.makespan, 19.0);  // Background service actually ran.
}

// ---------------------------------------------------------------------------
// 3. LP bound soundness on fuzzed traces
// ---------------------------------------------------------------------------

/// Small randomized workload exercising everything the bound must stay
/// sound against: barriers (unknown releases), pipelines (finish
/// adjustment), multi-wave start offsets, and deadlines (admission
/// rejection inflates CCTs — the bound must stay below even those runs).
coflow::Workload fuzzWorkload(std::uint64_t seed) {
  util::Rng rng(seed);
  const int ports = static_cast<int>(rng.uniformInt(3, 6));
  const int jobs = static_cast<int>(rng.uniformInt(2, 5));
  std::vector<coflow::JobSpec> out;
  for (int j = 0; j < jobs; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = rng.uniform(0, 4);
    const int coflows = static_cast<int>(rng.uniformInt(1, 3));
    for (int c = 0; c < coflows; ++c) {
      coflow::CoflowSpec spec;
      spec.id = {j, c};
      if (rng.chance(0.3)) spec.arrival_offset = rng.uniform(0, 2);
      const int flows = static_cast<int>(rng.uniformInt(1, 5));
      for (int f = 0; f < flows; ++f) {
        spec.flows.push_back(coflow::FlowSpec{
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            rng.uniform(0.5, 20.0), rng.chance(0.3) ? rng.uniform(0.5, 3.0) : 0.0});
      }
      if (c > 0 && rng.chance(0.4)) {
        spec.starts_after.push_back(coflow::CoflowId{j, c - 1});
      } else if (c > 0 && rng.chance(0.4)) {
        spec.finishes_before.push_back(coflow::CoflowId{j, c - 1});
      }
      job.coflows.push_back(std::move(spec));
    }
    out.push_back(std::move(job));
  }
  coflow::Workload wl = testing::makeWorkload(ports, std::move(out));
  if (rng.chance(0.5)) {
    workload::DeadlineConfig dl;
    dl.slack = rng.uniform(0.2, 1.5);
    dl.seed = seed;
    dl.port_capacity = 1.0;  // Unit fabric below.
    workload::assignDeadlines(wl, dl);
  }
  return wl;
}

std::vector<std::unique_ptr<sim::Scheduler>> boundCheckedSchedulers() {
  std::vector<std::unique_ptr<sim::Scheduler>> out;
  out.push_back(std::make_unique<sched::DClasScheduler>());
  out.push_back(std::make_unique<sched::PerFlowFairScheduler>());
  out.push_back(std::make_unique<sched::VarysScheduler>());
  sched::LasConfig las_cfg;
  las_cfg.quantum = 0.5;
  out.push_back(std::make_unique<sched::DecentralizedLasScheduler>(las_cfg));
  sched::SamplingConfig sampling_cfg;
  sampling_cfg.min_probes = 1;
  sampling_cfg.quantum = 0.5;
  out.push_back(std::make_unique<sched::SamplingScheduler>(sampling_cfg));
  out.push_back(std::make_unique<sched::DCoflowScheduler>());
  return out;
}

TEST(SchedProperty, LpBoundNeverExceedsAchievedTotalCct) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const coflow::Workload wl = fuzzWorkload(9000 + seed);
    const fabric::FabricConfig fc =
        testing::unitFabric(wl.num_ports);
    const sched::LpBoundResult bound = sched::computeCctLowerBound(wl, fc);
    EXPECT_GE(bound.total_cct, 0.0);
    EXPECT_GE(bound.total_cct, bound.isolation_total - 1e-12);

    for (const auto& scheduler : boundCheckedSchedulers()) {
      const sim::SimResult result = sim::runSimulation(wl, fc, *scheduler);
      const double achieved = result.totalCct();
      // The engine's event batching (util::kEps) can shave O(eps) per
      // coflow off a CCT; anything beyond that is a soundness bug in the
      // bound.
      EXPECT_GE(achieved, bound.total_cct * (1.0 - 1e-9) - 1e-6)
          << "seed " << seed << " scheduler " << scheduler->name()
          << " achieved " << achieved << " < bound " << bound.total_cct;
    }
  }
}

}  // namespace
}  // namespace aalo
