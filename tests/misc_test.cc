// Remaining corners: logging levels, socket errors, event-loop interest
// management, engine guard rails (starvation detection, allocation
// verification), LAS/FIFO-LM non-work-conserving modes.
#include <gtest/gtest.h>

#include <sys/epoll.h>

#include "net/event_loop.h"
#include "net/socket.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sim/simulator.h"
#include "tests/helpers.h"
#include "util/log.h"

namespace aalo {
namespace {

using testing::FlowDef;
using testing::makeJob;
using testing::makeWorkload;
using testing::unitFabric;

TEST(Log, LevelFiltering) {
  const auto saved = util::logLevel();
  util::setLogLevel(util::LogLevel::kError);
  EXPECT_EQ(util::logLevel(), util::LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertion
  // possible on stderr here; exercise the path).
  AALO_LOG_DEBUG << "dropped";
  AALO_LOG_ERROR << "emitted";
  util::setLogLevel(saved);
}

TEST(Sockets, ConnectToClosedPortThrows) {
  // Grab an ephemeral port, then close it: connecting must fail.
  std::uint16_t dead_port;
  {
    auto [listener, port] = net::listenTcp(0);
    dead_port = port;
  }
  EXPECT_THROW(net::connectTcp(dead_port), std::system_error);
}

TEST(Sockets, FdMoveSemantics) {
  auto [listener, port] = net::listenTcp(0);
  const int raw = listener.get();
  net::Fd moved = std::move(listener);
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(listener.valid());  // NOLINT(bugprone-use-after-move)
  net::Fd assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.get(), raw);
  EXPECT_EQ(assigned.release(), raw);
  EXPECT_FALSE(assigned.valid());
  ::close(raw);
}

TEST(EventLoop, WatchedAndRemoveAreIdempotent) {
  net::EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  loop.add(fds[0], EPOLLIN, [](std::uint32_t) {});
  EXPECT_TRUE(loop.watched(fds[0]));
  loop.remove(fds[0]);
  EXPECT_FALSE(loop.watched(fds[0]));
  loop.remove(fds[0]);  // Second remove is a no-op.
  ::close(fds[0]);
  ::close(fds[1]);
}

// A scheduler that refuses to allocate anything: the engine must detect
// the starvation deadlock instead of spinning forever.
class StarvingScheduler final : public sim::Scheduler {
 public:
  std::string name() const override { return "starving"; }
  void allocate(const sim::SimView&, std::vector<util::Rate>&) override {}
};

TEST(SimulatorGuards, DetectsStarvationDeadlock) {
  StarvingScheduler starving;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 5}})});
  sim::Simulator sim(unitFabric(2), starving);
  EXPECT_THROW(sim.run(wl), std::runtime_error);
}

// A scheduler that oversubscribes a port: the verifier must reject it.
class CheatingScheduler final : public sim::Scheduler {
 public:
  std::string name() const override { return "cheating"; }
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override {
    for (const std::size_t fi : *view.active_flows) {
      rates[fi] = view.fabric->ingressCapacity(view.flow(fi).src) * 3.0;
    }
  }
};

TEST(SimulatorGuards, VerifierRejectsInfeasibleAllocation) {
  CheatingScheduler cheating;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 5}}),
                                   makeJob(1, 0, {FlowDef{0, 1, 5}})});
  sim::SimOptions opts;
  opts.verify_allocations = true;
  sim::Simulator sim(unitFabric(2), cheating, opts);
  EXPECT_THROW(sim.run(wl), std::logic_error);
}

// A scheduler returning negative rates is caught too.
class NegativeScheduler final : public sim::Scheduler {
 public:
  std::string name() const override { return "negative"; }
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override {
    for (const std::size_t fi : *view.active_flows) rates[fi] = -1.0;
  }
};

TEST(SimulatorGuards, NegativeRatesAreClampedToZeroThenStarve) {
  // The engine clamps negative rates to 0; with nothing flowing, that is
  // a starvation deadlock.
  NegativeScheduler negative;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 5}})});
  sim::Simulator sim(unitFabric(2), negative);
  EXPECT_THROW(sim.run(wl), std::runtime_error);
}

TEST(NonWorkConserving, LasCanIdleWhenDisabled) {
  // Without backfill, a deprioritized coflow's ports sit idle: total time
  // is strictly worse than the work-conserving run.
  sched::LasConfig cfg;
  cfg.quantum = 0.1;
  cfg.tie_window = 0.01;
  cfg.work_conserving = false;
  sched::DecentralizedLasScheduler strict_las(cfg);
  cfg.work_conserving = true;
  sched::DecentralizedLasScheduler wc_las(cfg);

  // C0's flow and C1's flow share egress 1 from different ingress ports;
  // LAS picks per-ingress winners, so both are "winners" and this matches
  // on both. Add a third coflow that loses at ingress 0 and would idle
  // port 0's leftover without backfill.
  const auto wl = makeWorkload(
      3, {makeJob(0, 0, {FlowDef{0, 1, 4}}), makeJob(1, 0.5, {FlowDef{0, 2, 4}})});
  const auto strict = sim::runSimulation(wl, unitFabric(3), strict_las);
  const auto wc = sim::runSimulation(wl, unitFabric(3), wc_las);
  EXPECT_GE(strict.makespan + 1e-9, wc.makespan);
}

TEST(NonWorkConserving, FifoLmRespectsFlag) {
  sched::FifoLmConfig cfg;
  cfg.heavy_threshold = 100;
  cfg.quantum = 0.1;
  cfg.work_conserving = false;
  sched::FifoLmScheduler lm(cfg);
  // Head coflow uses port 0 only; without spillover the port-1 coflow
  // still runs (it is the head at its own port) — FIFO-LM is per-port, so
  // the flag only affects egress leftovers. Feasibility is the point.
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 4}}),
                                   makeJob(1, 0, {FlowDef{1, 3, 4}})});
  sim::SimOptions opts;
  opts.verify_allocations = true;
  sim::Simulator sim(unitFabric(4), lm, opts);
  const auto result = sim.run(wl);
  EXPECT_EQ(result.coflows.size(), 2u);
}

TEST(SimulatorGuards, MaxRoundsBackstop) {
  sched::LasConfig cfg;
  cfg.quantum = 1e-7;  // Pathological quantum: floods the engine.
  sched::DecentralizedLasScheduler las(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 5}})});
  sim::SimOptions opts;
  opts.max_rounds = 1000;
  sim::Simulator sim(unitFabric(2), las, opts);
  EXPECT_THROW(sim.run(wl), std::runtime_error);
}

}  // namespace
}  // namespace aalo
