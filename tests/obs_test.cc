// Observability layer: counter/gauge/histogram semantics, bucket
// quantiles, registry ownership rules, and — most importantly — the
// exposition formats. The Prometheus text and JSON renders are pinned
// verbatim (golden strings) so any formatting drift that would break
// downstream scrapers or the BENCH_*.json tooling fails loudly here.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "net/metrics.h"
#include "obs/metrics.h"
#include "runtime/metrics.h"
#include "runtime/robustness.h"
#include "sched/dclas.h"
#include "sim/metrics.h"
#include "tests/helpers.h"
#include "util/stats.h"

namespace aalo {
namespace {

TEST(ObsCounter, StartsAtInitialAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.load(), 0u);
  c.fetch_add(3);
  c.fetch_add(4);
  EXPECT_EQ(c.load(), 7u);
  obs::Counter seeded{41};
  seeded.add(1);
  EXPECT_EQ(seeded.load(), 42u);
}

TEST(ObsGauge, SetAddValue) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.25);
  EXPECT_EQ(g.value(), 1.25);
}

TEST(ObsHistogram, BucketsCountAndSum) {
  obs::LatencyHistogram h(
      obs::HistogramOptions{.first_bound = 1.0, .growth = 2.0, .num_bounds = 3});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], 1.0);
  EXPECT_EQ(h.bounds()[1], 2.0);
  EXPECT_EQ(h.bounds()[2], 4.0);
  h.observe(0.5);   // le 1
  h.observe(1.0);   // le 1 (upper bound is inclusive)
  h.observe(3.0);   // le 4
  h.observe(100.0); // +Inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 104.5);
  const std::vector<std::uint64_t> counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(ObsHistogram, RejectsBadOptions) {
  EXPECT_THROW(obs::LatencyHistogram(obs::HistogramOptions{.num_bounds = 0}),
               std::invalid_argument);
  EXPECT_THROW(obs::LatencyHistogram(obs::HistogramOptions{.first_bound = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(obs::LatencyHistogram(obs::HistogramOptions{.growth = 1.0}),
               std::invalid_argument);
}

TEST(ObsBucketQuantile, InterpolatesWithinBucket) {
  // Buckets: (0,1], (1,2], (2,4], overflow. 10 observations in (0,1].
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts = {10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, counts, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, counts, 1.0), 1.0);
  const std::vector<std::uint64_t> split = {5, 5, 0, 0};
  // Rank 5 lands exactly at the end of the first bucket.
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, split, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, split, 0.75), 1.5);
}

TEST(ObsBucketQuantile, OverflowClampsToLastBound) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> counts = {0, 0, 7};
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, counts, 0.99), 2.0);
  const std::vector<std::uint64_t> empty = {0, 0, 0};
  EXPECT_DOUBLE_EQ(util::bucketQuantile(bounds, empty, 0.5), 0.0);
}

TEST(ObsHistogram, QuantileMatchesBucketQuantile) {
  obs::LatencyHistogram h(
      obs::HistogramOptions{.first_bound = 1e-3, .growth = 10.0, .num_bounds = 4});
  for (int i = 0; i < 100; ++i) h.observe(0.05);
  const double p50 = h.quantile(0.5);
  // All mass in the (0.01, 0.1] bucket: interpolation stays inside it.
  EXPECT_GT(p50, 0.01);
  EXPECT_LE(p50, 0.1);
}

TEST(ObsRegistry, DeduplicatesAndRejectsKindClashes) {
  obs::Registry r;
  obs::Counter& a = r.counter("aalo_x_total", "x");
  obs::Counter& b = r.counter("aalo_x_total", "x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_THROW(r.gauge("aalo_x_total"), std::logic_error);
  // Same family, different labels: distinct instruments.
  obs::Counter& c = r.counter("aalo_x_total", "x", "k=\"v\"");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(r.size(), 2u);
}

TEST(ObsRegistry, AttachedCounterIsReadOnlyBridge) {
  obs::Registry r;
  obs::Counter external;
  r.attachCounter("aalo_ext_total", "bridged", external);
  external.fetch_add(9);
  EXPECT_NE(r.renderPrometheus().find("aalo_ext_total 9"), std::string::npos);
  // Requesting it as an owned counter is a misuse, not a silent alias.
  EXPECT_THROW(r.counter("aalo_ext_total"), std::logic_error);
}

// The golden exposition: any change to this string is a format break for
// scrapers, so an intentional renderer change must update it consciously.
TEST(ObsRegistry, GoldenPrometheusExposition) {
  obs::Registry r;
  r.counter("aalo_test_frames_total", "Frames seen", "dir=\"in\"").fetch_add(3);
  r.counter("aalo_test_frames_total", "Frames seen", "dir=\"out\"").fetch_add(5);
  r.gauge("aalo_test_daemons", "Connected daemons").set(2);
  obs::LatencyHistogram& h = r.histogram(
      "aalo_test_latency_seconds", "Report latency",
      obs::HistogramOptions{.first_bound = 0.001, .growth = 2.0, .num_bounds = 3});
  h.observe(0.0005);
  h.observe(0.003);
  h.observe(2.0);
  const std::string expected =
      "# HELP aalo_test_daemons Connected daemons\n"
      "# TYPE aalo_test_daemons gauge\n"
      "aalo_test_daemons 2\n"
      "# HELP aalo_test_frames_total Frames seen\n"
      "# TYPE aalo_test_frames_total counter\n"
      "aalo_test_frames_total{dir=\"in\"} 3\n"
      "aalo_test_frames_total{dir=\"out\"} 5\n"
      "# HELP aalo_test_latency_seconds Report latency\n"
      "# TYPE aalo_test_latency_seconds histogram\n"
      "aalo_test_latency_seconds_bucket{le=\"0.001\"} 1\n"
      "aalo_test_latency_seconds_bucket{le=\"0.002\"} 1\n"
      "aalo_test_latency_seconds_bucket{le=\"0.004\"} 2\n"
      "aalo_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "aalo_test_latency_seconds_sum 2.0035\n"
      "aalo_test_latency_seconds_count 3\n";
  EXPECT_EQ(r.renderPrometheus(), expected);
}

TEST(ObsRegistry, GoldenJsonDump) {
  obs::Registry r;
  r.counter("aalo_test_frames_total", "Frames seen", "dir=\"in\"").fetch_add(3);
  r.gauge("aalo_test_daemons", "Connected daemons").set(2);
  const std::string json = r.renderJson();
  EXPECT_NE(json.find("\"format\": \"aalo-metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"aalo_test_daemons\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"aalo_test_frames_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\": \"dir=\\\"in\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
}

TEST(ObsRegistry, JsonHistogramCarriesQuantiles) {
  obs::Registry r;
  obs::LatencyHistogram& h =
      r.histogram("aalo_test_seconds", "t", obs::HistogramOptions{});
  for (int i = 0; i < 50; ++i) h.observe(1e-4);
  const std::string json = r.renderJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 50"), std::string::npos);
}

TEST(ObsFormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(obs::formatDouble(2.0), "2");
  EXPECT_EQ(obs::formatDouble(0.001), "0.001");
  EXPECT_EQ(obs::formatDouble(-1.5), "-1.5");
}

// Every metric family the PR promises: the control-plane robustness
// counters (coordinator + daemon prefixes), the per-connection net
// counters, and the simulator family — all coexisting in one registry.
TEST(ObsRegistry, CoversAllComponentFamilies) {
  obs::Registry r;
  runtime::RobustnessStats stats;
  runtime::registerRobustnessStats(r, stats, "aalo_coordinator");
  runtime::registerRobustnessStats(r, stats, "aalo_daemon");
  net::ConnMetrics conn;
  net::registerConnMetrics(r, conn, "aalo_coordinator");

  // A tiny real simulation feeds the sim family.
  auto wl = testing::makeWorkload(
      2, {testing::makeJob(1, 0.0, {{0, 1, 4.0}}),
          testing::makeJob(2, 0.0, {{1, 0, 2.0}})});
  sched::DClasScheduler dclas;
  sim::SimOptions opts;
  opts.metrics = &r;
  const auto result = sim::runSimulation(wl, testing::unitFabric(2), dclas, opts);
  ASSERT_EQ(result.coflows.size(), 2u);

  const std::string text = r.renderPrometheus();
  for (const char* family :
       {"aalo_coordinator_daemons_evicted_total", "aalo_coordinator_delta_broadcasts_total",
        "aalo_daemon_delta_reports_total", "aalo_daemon_reports_suppressed_total",
        "aalo_daemon_resync_reports_total", "aalo_daemon_schedule_gaps_total",
        "aalo_coordinator_net_frames_in_total", "aalo_coordinator_net_bytes_out_total",
        "aalo_sim_rounds_total", "aalo_sim_reused_allocations_total",
        "aalo_sim_heap_rebuilds_total", "aalo_sim_cct_seconds_bucket"}) {
    EXPECT_NE(text.find(family), std::string::npos) << "missing family " << family;
  }
  // The sim rows carry the scheduler label.
  EXPECT_NE(text.find("aalo_sim_coflows_total{scheduler=\"aalo-dclas\"} 2"),
            std::string::npos);
}

TEST(ObsRegistry, DumpFilesWritesBothFormats) {
  obs::Registry r;
  r.counter("aalo_dump_total", "d").fetch_add(1);
  const std::string base = ::testing::TempDir() + "obs_dump_test.prom";
  ASSERT_TRUE(r.dumpFiles(base));
  std::ifstream prom(base);
  std::ifstream json(base + ".json");
  ASSERT_TRUE(prom.good());
  ASSERT_TRUE(json.good());
  std::string line;
  std::getline(prom, line);
  EXPECT_EQ(line, "# HELP aalo_dump_total d");
}

}  // namespace
}  // namespace aalo
