// Shard-barrier race suite for the multi-threaded coordinator.
//
// These tests exist to run under ThreadSanitizer (preset `tsan`, name
// filter ShardBarrier): they drive the sharded coordinator's genuinely
// concurrent surfaces — barrier rounds vs. report routing vs. cross-shard
// drops vs. external accessors vs. lifecycle — with enough churn that any
// missing synchronization shows up as a data-race report. Functional
// assertions are deliberately loose (counts converge, nothing deadlocks);
// bit-exact schedule correctness is pinned by the equivalence fuzz and
// the chaos drills, not here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

CoordinatorConfig shardedConfig() {
  CoordinatorConfig cfg;
  cfg.shards = 4;
  cfg.sync_interval = 0.002;  // Fast rounds: many barrier crossings.
  cfg.snapshot_every = 3;     // Frequent snapshot encodes at the barrier.
  return cfg;
}

DaemonConfig fastDaemon(std::uint16_t port, std::uint64_t id) {
  DaemonConfig cfg;
  cfg.coordinator_port = port;
  cfg.daemon_id = id;
  cfg.sync_interval = 0.002;
  cfg.reconnect_interval = 0.01;
  return cfg;
}

// Barrier rounds vs. report routing vs. register/unregister churn from
// concurrent clients, with every external accessor hammered throughout.
TEST(ShardBarrier, RoundsRaceFreeUnderConcurrentChurn) {
  Coordinator coordinator(shardedConfig());
  coordinator.start();
  const std::uint16_t port = coordinator.port();

  constexpr int kDaemons = 6;
  // The mutex protects the *vector slots* (the churn thread swaps daemons
  // out) — the interesting concurrency is all on the coordinator side.
  std::mutex daemons_mutex;
  std::vector<std::unique_ptr<Daemon>> daemons;
  for (int d = 0; d < kDaemons; ++d) {
    daemons.push_back(std::make_unique<Daemon>(
        fastDaemon(port, static_cast<std::uint64_t>(d + 1))));
    daemons.back()->start();
  }
  waitFor([&] { return coordinator.daemonCount() == kDaemons; });

  std::atomic<bool> stop{false};

  // Two client threads register/unregister coflows and feed them through
  // rotating daemons: registers, routed reports, cross-shard unregisters
  // and tombstones all race with the barrier rounds.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      AaloClient client(port);
      std::vector<coflow::CoflowId> mine;
      std::uint64_t step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto id = client.registerCoflow();
        mine.push_back(id);
        {
          std::lock_guard lock(daemons_mutex);
          for (int d = 0; d < kDaemons; ++d) {
            daemons[static_cast<std::size_t>(d)]->reportBytes(
                id, static_cast<double>((step + 1) * (d + 1)) * util::kMB);
          }
        }
        if (mine.size() > 8) {
          client.unregisterCoflow(mine.front());
          mine.erase(mine.begin());
        }
        ++step;
        std::this_thread::sleep_for(1ms * (c + 1));
      }
      for (const auto& id : mine) client.unregisterCoflow(id);
    });
  }

  // An observer thread reads every cross-thread accessor while rounds run.
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)coordinator.epoch();
      (void)coordinator.daemonCount();
      (void)coordinator.registeredCoflows();
      (void)coordinator.tombstoneCount();
      (void)coordinator.globalSizes();
      (void)coordinator.scheduleSnapshot();
      (void)coordinator.metrics().renderPrometheus();
      std::this_thread::sleep_for(3ms);
    }
  });

  // A churn thread kills and revives daemons: EOF-triggered cross-shard
  // drops and rejoin snapshots race with everything above.
  std::thread churn([&] {
    std::uint64_t victim = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto idx = static_cast<std::size_t>(victim++ % kDaemons);
      {
        std::lock_guard lock(daemons_mutex);
        daemons[idx]->stop();
      }
      std::this_thread::sleep_for(10ms);
      {
        std::lock_guard lock(daemons_mutex);
        daemons[idx] = std::make_unique<Daemon>(
            fastDaemon(port, static_cast<std::uint64_t>(idx + 1)));
        daemons[idx]->start();
      }
      std::this_thread::sleep_for(20ms);
    }
  });

  // Let it all collide across plenty of barrier rounds.
  const std::uint64_t epoch_start = coordinator.epoch();
  std::this_thread::sleep_for(700ms);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  observer.join();
  churn.join();

  EXPECT_GT(coordinator.epoch(), epoch_start + 20);
  for (auto& d : daemons) d->stop();
  waitFor([&] { return coordinator.daemonCount() == 0; });
  coordinator.stop();
}

// Lifecycle races: stop() must fence out in-flight barrier rounds, posted
// cross-shard work, and deferred connection teardown — repeatedly, with
// live daemons attached each cycle.
TEST(ShardBarrier, StopStartCyclesWithLiveDaemons) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    Coordinator coordinator(shardedConfig());
    coordinator.start();

    std::vector<std::unique_ptr<Daemon>> daemons;
    for (int d = 0; d < 4; ++d) {
      daemons.push_back(std::make_unique<Daemon>(
          fastDaemon(coordinator.port(), static_cast<std::uint64_t>(d + 1))));
      daemons.back()->start();
    }
    AaloClient client(coordinator.port());
    const auto id = client.registerCoflow();
    for (auto& d : daemons) d->reportBytes(id, 32.0 * util::kMB);
    waitFor([&] { return coordinator.daemonCount() == 4; });
    waitFor([&] { return coordinator.epoch() >= 3; });

    // Stop with daemons still connected and reporting: their EOFs, the
    // tick in flight, and queued routed batches must all drain cleanly.
    coordinator.stop();
    for (auto& d : daemons) d->stop();
  }
}

// Concurrent stop() callers (plus the destructor behind them) must
// serialize; every caller returns only after shutdown completed.
TEST(ShardBarrier, ConcurrentStopCallersSerialize) {
  auto coordinator = std::make_unique<Coordinator>(shardedConfig());
  coordinator->start();
  Daemon daemon(fastDaemon(coordinator->port(), 1));
  daemon.start();
  waitFor([&] { return coordinator->daemonCount() == 1; });
  waitFor([&] { return coordinator->epoch() >= 2; });

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 3; ++i) {
    stoppers.emplace_back([&] { coordinator->stop(); });
  }
  for (auto& t : stoppers) t.join();
  coordinator.reset();  // Destructor stop() on an already-stopped object.
  daemon.stop();
}

}  // namespace
}  // namespace aalo::runtime
