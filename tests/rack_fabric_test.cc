// Tests for the §8 "In-Network Bottlenecks" extension: rack-grouped ports
// with oversubscribed rack-to-core links.
#include <gtest/gtest.h>

#include "fabric/fabric.h"
#include "fabric/maxmin.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/varys.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace aalo::fabric {
namespace {

using aalo::testing::FlowDef;
using aalo::testing::cctOf;
using aalo::testing::makeJob;
using aalo::testing::makeWorkload;
using aalo::testing::runVerified;

FabricConfig rackFabric(int ports, int per_rack, double oversub,
                        util::Rate cap = 1.0) {
  FabricConfig cfg;
  cfg.num_ports = ports;
  cfg.port_capacity = cap;
  cfg.rack.ports_per_rack = per_rack;
  cfg.rack.oversubscription = oversub;
  return cfg;
}

TEST(RackFabric, TopologyAccessors) {
  Fabric f(rackFabric(8, 4, 2.0, 10.0));
  EXPECT_TRUE(f.hasRacks());
  EXPECT_EQ(f.numRacks(), 2);
  EXPECT_EQ(f.rackOf(0), 0);
  EXPECT_EQ(f.rackOf(3), 0);
  EXPECT_EQ(f.rackOf(4), 1);
  EXPECT_TRUE(f.crossRack(0, 4));
  EXPECT_FALSE(f.crossRack(0, 3));
  // Rack link = 4 ports * 10 / oversub 2 = 20.
  EXPECT_DOUBLE_EQ(f.rackUplinkCapacity(0), 20.0);
  EXPECT_DOUBLE_EQ(f.rackDownlinkCapacity(1), 20.0);
}

TEST(RackFabric, ValidatesConfig) {
  EXPECT_THROW(Fabric(rackFabric(8, 3, 2.0)), std::invalid_argument);  // 8 % 3.
  EXPECT_THROW(Fabric(rackFabric(8, 4, 0.0)), std::invalid_argument);
  Fabric f(rackFabric(8, 4, 2.0));
  EXPECT_THROW(f.rackUplinkCapacity(2), std::out_of_range);
}

TEST(RackFabric, NoRacksByDefault) {
  Fabric f(FabricConfig{4, 1.0});
  EXPECT_FALSE(f.hasRacks());
  EXPECT_EQ(f.numRacks(), 0);
  EXPECT_FALSE(f.crossRack(0, 3));
}

TEST(RackFabric, ResidualTracksRackLinks) {
  Fabric f(rackFabric(8, 4, 4.0, 10.0));  // Rack link = 10.
  ResidualCapacity r(f);
  EXPECT_DOUBLE_EQ(r.available(0, 4), 10.0);  // Cross-rack: rack-limited.
  EXPECT_DOUBLE_EQ(r.available(0, 3), 10.0);  // In-rack: port-limited.
  r.consume(0, 4, 6.0);
  EXPECT_DOUBLE_EQ(r.rackUplink(0), 4.0);
  EXPECT_DOUBLE_EQ(r.rackDownlink(1), 4.0);
  EXPECT_DOUBLE_EQ(r.available(1, 5), 4.0);  // Same rack pair: shared link.
  r.release(0, 4, 6.0);
  EXPECT_DOUBLE_EQ(r.rackUplink(0), 10.0);
}

TEST(RackFabric, InRackTrafficDoesNotConsumeRackLinks) {
  Fabric f(rackFabric(8, 4, 4.0, 10.0));
  ResidualCapacity r(f);
  r.consume(0, 3, 10.0);
  EXPECT_DOUBLE_EQ(r.rackUplink(0), 10.0);
  EXPECT_DOUBLE_EQ(r.ingress(0), 0.0);
}

TEST(RackMaxMin, CrossRackFlowsShareTheUplink) {
  // 2 racks of 4 ports at 10 each; rack links 10 (4:1 oversubscribed).
  Fabric f(rackFabric(8, 4, 4.0, 10.0));
  // Four cross-rack flows from distinct ports of rack 0 to distinct ports
  // of rack 1: each port could carry 10, but the rack uplink (10) caps
  // the total — max-min gives 2.5 each.
  std::vector<Demand> demands;
  for (int i = 0; i < 4; ++i) {
    demands.push_back(Demand{i, 4 + i, 1.0, kUncapped});
  }
  const auto rates = maxMinAllocate(demands, f);
  for (const auto rate : rates) EXPECT_NEAR(rate, 2.5, 1e-9);
}

TEST(RackMaxMin, InRackFlowsUnaffectedByUplinkPressure) {
  Fabric f(rackFabric(8, 4, 4.0, 10.0));
  std::vector<Demand> demands = {
      Demand{0, 4, 1.0, kUncapped},  // Cross-rack.
      Demand{1, 2, 1.0, kUncapped},  // In-rack: full port rate.
  };
  const auto rates = maxMinAllocate(demands, f);
  EXPECT_NEAR(rates[0], 10.0, 1e-9);
  EXPECT_NEAR(rates[1], 10.0, 1e-9);
}

TEST(RackMaxMin, MixedContention) {
  Fabric f(rackFabric(8, 4, 4.0, 10.0));
  // Two cross-rack flows share the uplink (10): 5 each; a third flow from
  // the same ingress as the first also contends on port 0 (10): flow 0
  // gets min(port share, uplink share).
  std::vector<Demand> demands = {
      Demand{0, 4, 1.0, kUncapped},  // Cross-rack via port 0.
      Demand{1, 5, 1.0, kUncapped},  // Cross-rack via port 1.
      Demand{0, 2, 1.0, kUncapped},  // In-rack via port 0.
  };
  const auto rates = maxMinAllocate(demands, f);
  // Port 0 fair share = 5 each; uplink share = 5 each: all consistent.
  EXPECT_NEAR(rates[0], 5.0, 1e-9);
  EXPECT_NEAR(rates[1], 5.0, 1e-9);
  EXPECT_NEAR(rates[2], 5.0, 1e-9);
}

TEST(RackSimulation, OversubscriptionStretchesCrossRackCcts) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(8, {makeJob(0, 0, {FlowDef{0, 4, 40}}),
                                   makeJob(1, 0, {FlowDef{1, 2, 40}})});
  // Non-blocking: both finish at 40/1.0 = 40.
  const auto flat = runVerified(wl, aalo::testing::unitFabric(8), fair);
  EXPECT_NEAR(cctOf(flat, {0, 0}), 40.0, 1e-6);
  // 4:1 oversubscribed: the cross-rack coflow is capped at rack rate 1*4/4
  // = 1.0... use 8:1 to see the stretch: rack link = 0.5.
  const auto over = runVerified(wl, rackFabric(8, 4, 8.0), fair);
  EXPECT_NEAR(cctOf(over, {0, 0}), 80.0, 1e-6);   // Cross-rack: halved rate.
  EXPECT_NEAR(cctOf(over, {1, 0}), 40.0, 1e-6);   // In-rack: unchanged.
}

TEST(RackSimulation, SchedulersStayFeasibleOnOversubscribedFabric) {
  // The simulator's verifier checks rack caps; run a contended workload
  // under several schedulers.
  std::vector<coflow::JobSpec> jobs;
  util::Rng rng(3);
  for (int j = 0; j < 12; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = rng.uniform(0, 3);
    coflow::CoflowSpec spec;
    spec.id = {j, 0};
    const int flows = static_cast<int>(rng.uniformInt(1, 5));
    for (int k = 0; k < flows; ++k) {
      spec.flows.push_back(coflow::FlowSpec{
          static_cast<coflow::PortId>(rng.uniformInt(0, 7)),
          static_cast<coflow::PortId>(rng.uniformInt(0, 7)), rng.uniform(1, 30), 0});
    }
    job.coflows.push_back(std::move(spec));
    jobs.push_back(std::move(job));
  }
  const auto wl = makeWorkload(8, std::move(jobs));
  const auto fc = rackFabric(8, 4, 4.0);

  sched::PerFlowFairScheduler fair;
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 20;
  dcfg.num_queues = 3;
  dcfg.exp_factor = 4;
  sched::DClasScheduler dclas(dcfg);
  sched::VarysScheduler varys;
  for (sim::Scheduler* s : {static_cast<sim::Scheduler*>(&fair),
                            static_cast<sim::Scheduler*>(&dclas),
                            static_cast<sim::Scheduler*>(&varys)}) {
    const auto result = runVerified(wl, fc, *s);
    EXPECT_EQ(result.coflows.size(), wl.coflowCount()) << s->name();
  }
}

TEST(RackSimulation, VarysBottleneckSeesRackLinks) {
  // A coflow whose port-level bottleneck is small but whose rack uplink is
  // saturated: effective bottleneck must reflect the rack link.
  Fabric f(rackFabric(8, 4, 8.0, 1.0));  // Rack link = 0.5.
  std::vector<sim::CoflowState> coflows(1);
  coflows[0].id = {0, 0};
  sim::FlowArena flows;
  std::vector<std::size_t> active = {0, 1};
  for (int i = 0; i < 2; ++i) {
    sim::FlowState fs;
    fs.coflow_index = 0;
    fs.src = static_cast<coflow::PortId>(i);
    fs.dst = static_cast<coflow::PortId>(4 + i);
    fs.size = 10;
    fs.started = true;
    coflows[0].flow_indices.push_back(flows.push(fs));
  }
  sim::SimView view;
  view.fabric = &f;
  view.coflows = &coflows;
  view.flows = &flows;
  view.active_flows = &active;
  sched::ActiveCoflow group{0, {0, 1}};
  // Port bottleneck: 10/1 = 10s; rack uplink: 20/0.5 = 40s.
  EXPECT_NEAR(sched::VarysScheduler::effectiveBottleneck(view, group), 40.0, 1e-9);
}


TEST(RackSimulation, WeightedDClasExcessPassCoversRackLinks) {
  // A lone demoted cross-rack coflow must still get the full rack-link
  // rate: the excess pass has to pool unused *rack* capacity, not just
  // unused port capacity.
  sched::DClasConfig cfg;
  cfg.first_threshold = 5;  // Demoted almost immediately.
  cfg.num_queues = 4;
  cfg.exp_factor = 100;
  sched::DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(8, {makeJob(0, 0, {FlowDef{0, 4, 40}})});
  // 8 ports of 1.0, racks of 4, 2:1 oversubscribed: rack link = 2.0; the
  // port (1.0) is the bottleneck, so CCT must be 40 even after demotion.
  const auto result = runVerified(wl, rackFabric(8, 4, 2.0), dclas);
  EXPECT_NEAR(result.coflows[0].cct(), 40.0, 1e-6);

  // And with an 8:1 oversubscription (rack link 0.5), CCT = 80 exactly —
  // not 80 divided further by a queue-weight fraction.
  const auto tight = runVerified(wl, rackFabric(8, 4, 8.0), dclas);
  EXPECT_NEAR(tight.coflows[0].cct(), 80.0, 1e-6);
}

}  // namespace
}  // namespace aalo::fabric
