#include <gtest/gtest.h>

#include "fabric/fabric.h"
#include "fabric/maxmin.h"
#include "util/rng.h"
#include "util/units.h"

namespace aalo::fabric {
namespace {

using aalo::util::kEps;

FabricConfig smallFabric(int ports, util::Rate cap = 100.0) {
  return FabricConfig{ports, cap};
}

TEST(Fabric, RejectsBadConfig) {
  EXPECT_THROW(Fabric(FabricConfig{0, 100}), std::invalid_argument);
  EXPECT_THROW(Fabric(FabricConfig{4, 0}), std::invalid_argument);
  Fabric f(smallFabric(2));
  EXPECT_THROW(f.ingressCapacity(2), std::out_of_range);
  EXPECT_THROW(f.egressCapacity(-1), std::out_of_range);
}

TEST(Fabric, HeterogeneousCapacities) {
  Fabric f(smallFabric(2, 100));
  f.setIngressCapacity(1, 40);
  EXPECT_DOUBLE_EQ(f.ingressCapacity(1), 40);
  EXPECT_DOUBLE_EQ(f.ingressCapacity(0), 100);
}

TEST(ResidualCapacity, ConsumeClampsAtZero) {
  Fabric f(smallFabric(2, 100));
  ResidualCapacity r(f);
  r.consume(0, 1, 150);
  EXPECT_DOUBLE_EQ(r.ingress(0), 0);
  EXPECT_DOUBLE_EQ(r.egress(1), 0);
  EXPECT_DOUBLE_EQ(r.ingress(1), 100);
  EXPECT_FALSE(r.exhausted());
}

TEST(ResidualCapacity, ScaledShare) {
  Fabric f(smallFabric(2, 100));
  ResidualCapacity r(f, 0.25);
  EXPECT_DOUBLE_EQ(r.ingress(0), 25);
  EXPECT_DOUBLE_EQ(r.egress(1), 25);
}

TEST(MaxMin, SingleFlowGetsBottleneck) {
  Fabric f(smallFabric(2, 100));
  f.setEgressCapacity(1, 30);
  const auto rates = maxMinAllocate({Demand{0, 1, 1.0, kUncapped}}, f);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_NEAR(rates[0], 30, 1e-9);
}

TEST(MaxMin, EqualSharesOnSharedPort) {
  Fabric f(smallFabric(3, 90));
  // Three flows from port 0 to distinct destinations.
  const auto rates = maxMinAllocate(
      {Demand{0, 0}, Demand{0, 1}, Demand{0, 2}}, f);
  for (const auto r : rates) EXPECT_NEAR(r, 30, 1e-9);
}

TEST(MaxMin, WeightedShares) {
  Fabric f(smallFabric(2, 90));
  const auto rates = maxMinAllocate(
      {Demand{0, 0, 1.0, kUncapped}, Demand{0, 1, 2.0, kUncapped}}, f);
  EXPECT_NEAR(rates[0], 30, 1e-9);
  EXPECT_NEAR(rates[1], 60, 1e-9);
}

TEST(MaxMin, RateCapRedistributes) {
  Fabric f(smallFabric(3, 90));
  const auto rates = maxMinAllocate(
      {Demand{0, 0, 1.0, 10.0}, Demand{0, 1, 1.0, kUncapped},
       Demand{0, 2, 1.0, kUncapped}},
      f);
  EXPECT_NEAR(rates[0], 10, 1e-9);
  EXPECT_NEAR(rates[1], 40, 1e-9);
  EXPECT_NEAR(rates[2], 40, 1e-9);
}

TEST(MaxMin, ZeroWeightGetsNothing) {
  Fabric f(smallFabric(2, 100));
  const auto rates = maxMinAllocate(
      {Demand{0, 0, 0.0, kUncapped}, Demand{0, 1, 1.0, kUncapped}}, f);
  EXPECT_DOUBLE_EQ(rates[0], 0);
  EXPECT_NEAR(rates[1], 100, 1e-9);
}

TEST(MaxMin, ClassicWaterFilling) {
  // Textbook example: flows A:0->0, B:0->1, C:1->1. Egress 1 is shared by
  // B and C; ingress 0 by A and B. All caps 1.0. Max-min: B gets 0.5,
  // A gets 0.5, C gets 0.5.
  Fabric f(smallFabric(2, 1.0));
  const auto rates = maxMinAllocate({Demand{0, 0}, Demand{0, 1}, Demand{1, 1}}, f);
  EXPECT_NEAR(rates[0], 0.5, 1e-9);
  EXPECT_NEAR(rates[1], 0.5, 1e-9);
  EXPECT_NEAR(rates[2], 0.5, 1e-9);
}

TEST(MaxMin, AsymmetricWaterFilling) {
  // Ingress 0 carries 3 flows, one of which shares egress 0 with a flow
  // from ingress 1. Water-filling: the three flows at ingress 0 get 1/3;
  // the lone flow at ingress 1 tops up egress 0 to its full capacity.
  Fabric f(smallFabric(2, 1.0));
  const auto rates = maxMinAllocate(
      {Demand{0, 0}, Demand{0, 1}, Demand{0, 1}, Demand{1, 0}}, f);
  EXPECT_NEAR(rates[0], 1.0 / 3, 1e-9);
  EXPECT_NEAR(rates[1], 1.0 / 3, 1e-9);
  EXPECT_NEAR(rates[2], 1.0 / 3, 1e-9);
  EXPECT_NEAR(rates[3], 2.0 / 3, 1e-9);
}

TEST(MaxMin, EmptyDemands) {
  Fabric f(smallFabric(1, 10));
  EXPECT_TRUE(maxMinAllocate({}, f).empty());
}

TEST(MaxMin, OutOfRangePortThrows) {
  Fabric f(smallFabric(2, 10));
  ResidualCapacity r(f);
  std::vector<Demand> demands = {Demand{0, 5}};
  EXPECT_THROW(maxMinAllocate(demands, r), std::out_of_range);
}

TEST(MaxMin, ConsumesResidual) {
  Fabric f(smallFabric(2, 100));
  ResidualCapacity r(f);
  (void)maxMinAllocate({Demand{0, 1}}, r);
  EXPECT_NEAR(r.ingress(0), 0, 1e-9);
  EXPECT_NEAR(r.egress(1), 0, 1e-9);
  EXPECT_NEAR(r.ingress(1), 100, 1e-9);
}

// Property sweep: random demand sets must respect capacities, be
// non-negative, and leave no port both unsaturated and wanted-by an
// unbounded flow (work conservation / Pareto efficiency of max-min).
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, FeasibleAndParetoEfficient) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int ports = static_cast<int>(rng.uniformInt(2, 12));
  const int flows = static_cast<int>(rng.uniformInt(1, 60));
  Fabric f(smallFabric(ports, 100.0));
  std::vector<Demand> demands;
  for (int i = 0; i < flows; ++i) {
    Demand d;
    d.src = static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1));
    d.dst = static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1));
    d.weight = rng.uniform(0.1, 4.0);
    d.rate_cap = rng.chance(0.3) ? rng.uniform(1.0, 50.0) : kUncapped;
    demands.push_back(d);
  }
  ResidualCapacity r(f);
  const auto rates = maxMinAllocate(demands, r);

  std::vector<double> in(static_cast<std::size_t>(ports), 0.0);
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_GE(rates[i], 0.0);
    EXPECT_LE(rates[i], demands[i].rate_cap * (1 + 1e-9));
    in[static_cast<std::size_t>(demands[i].src)] += rates[i];
    out[static_cast<std::size_t>(demands[i].dst)] += rates[i];
  }
  for (int p = 0; p < ports; ++p) {
    EXPECT_LE(in[static_cast<std::size_t>(p)], 100.0 * (1 + 1e-6));
    EXPECT_LE(out[static_cast<std::size_t>(p)], 100.0 * (1 + 1e-6));
  }
  // Pareto efficiency: every uncapped flow must be blocked at one of its
  // ports (no free capacity left on both sides).
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].rate_cap != kUncapped || demands[i].weight <= 0) continue;
    const double slack_src = r.ingress(demands[i].src);
    const double slack_dst = r.egress(demands[i].dst);
    EXPECT_LT(std::min(slack_src, slack_dst), 1e-5)
        << "flow " << i << " could still grow";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace aalo::fabric
