#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace aalo::util {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(formatBytes(10 * kMB), "10 MB");
  EXPECT_EQ(formatBytes(1.5 * kGB), "1.5 GB");
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(-2 * kKB), "-2 KB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(formatSeconds(2.5), "2.5 s");
  EXPECT_EQ(formatSeconds(0.010), "10 ms");
  EXPECT_EQ(formatSeconds(42e-6), "42 us");
}

TEST(Units, NearlyEqual) {
  EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(nearlyEqual(1.0, 1.01));
  EXPECT_TRUE(nearlyEqual(1e12, 1e12 * (1 + 1e-8)));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ParetoIsAboveScale) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.2), 5.0);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(3);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weightedIndex(weights), 1u);
  }
}

TEST(Rng, WeightedIndexEmptyThrows) {
  Rng rng(4);
  EXPECT_THROW(rng.weightedIndex(std::span<const double>{}), std::invalid_argument);
}

TEST(Rng, WeightedIndexRoughProportions) {
  Rng rng(5);
  const double weights[] = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weightedIndex(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  const auto sample = rng.sampleWithoutReplacement(10, 10);
  std::vector<bool> seen(10, false);
  for (const auto v : sample) {
    EXPECT_LT(v, 10u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_THROW(rng.sampleWithoutReplacement(3, 4), std::invalid_argument);
}

TEST(Summary, MeanPercentile) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Summary, PercentileRangeChecked) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Cdf, FractionAndQuantile) {
  Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Cdf, LogSpacedStepsMonotone) {
  Cdf cdf({0.01, 0.1, 1, 10, 100});
  const auto steps = cdf.logSpacedSteps(20);
  ASSERT_EQ(steps.size(), 20u);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GE(steps[i].first, steps[i - 1].first);
    EXPECT_GE(steps[i].second, steps[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(steps.back().second, 1.0);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.addRow({"x", "1.0"});
  t.addRow({"longer-name", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_THROW(t.addRow({"only-one-cell"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace aalo::util
