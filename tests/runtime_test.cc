#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

CoordinatorConfig fastCoordinator() {
  CoordinatorConfig cfg;
  cfg.sync_interval = 0.005;
  return cfg;
}

TEST(Runtime, CoordinatorStartsAndTicksWithoutDaemons) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();
  EXPECT_GT(coordinator.port(), 0);
  waitFor([&] { return coordinator.epoch() >= 3; });
  coordinator.stop();
}

TEST(Runtime, DaemonConnectsAndReceivesSchedules) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();

  waitFor([&] { return coordinator.daemonCount() == 1; });
  waitFor([&] { return daemon.lastEpoch() >= 3; });
  EXPECT_TRUE(daemon.connected());

  daemon.stop();
  waitFor([&] { return coordinator.daemonCount() == 0; });
  coordinator.stop();
}

TEST(Runtime, RegisterAssignsSequentialAndDagIds) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();

  AaloClient client(coordinator.port());
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  EXPECT_EQ(a.internal, 0);
  EXPECT_EQ(b.internal, 0);
  EXPECT_EQ(b.external, a.external + 1);

  // register({bId}): dependent coflow in the same DAG (§6.1).
  const coflow::CoflowId parents[] = {b};
  const auto child = client.registerCoflow(parents);
  EXPECT_EQ(child.external, b.external);
  EXPECT_EQ(child.internal, 1);

  waitFor([&] { return coordinator.registeredCoflows() == 3; });
  client.unregisterCoflow(a);
  waitFor([&] { return coordinator.registeredCoflows() == 2; });
  coordinator.stop();
}

TEST(Runtime, SizeReportsDriveQueueAssignment) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.dclas.num_queues = 3;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  ccfg.dclas.exp_factor = 10;
  Coordinator coordinator(ccfg);
  coordinator.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 7;
  dcfg.sync_interval = 0.005;
  dcfg.num_queues = 3;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto small = client.registerCoflow();
  const auto big = client.registerCoflow();

  daemon.reportBytes(small, 100.0 * util::kKB);  // Below Q1^hi.
  daemon.reportBytes(big, 5.0 * util::kMB);      // Crosses into Q2.
  waitFor([&] {
    return daemon.queueOf(big) == 1 && daemon.queueOf(small) == 0;
  });

  // More traffic pushes the big coflow into the lowest queue.
  daemon.reportBytes(big, 20.0 * util::kMB);
  waitFor([&] { return daemon.queueOf(big) == 2; });

  daemon.stop();
  coordinator.stop();
}

TEST(Runtime, AggregatesSizesAcrossDaemons) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.dclas.num_queues = 2;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  Coordinator coordinator(ccfg);
  coordinator.start();

  DaemonConfig base;
  base.coordinator_port = coordinator.port();
  base.sync_interval = 0.005;
  base.num_queues = 2;
  DaemonConfig d1 = base;
  d1.daemon_id = 1;
  DaemonConfig d2 = base;
  d2.daemon_id = 2;
  Daemon daemon1(d1);
  Daemon daemon2(d2);
  daemon1.start();
  daemon2.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  // Each daemon sees only 0.6 MB — locally below the 1 MB threshold, but
  // the coordinator's aggregate (1.2 MB) demotes the coflow everywhere.
  daemon1.reportBytes(id, 0.6 * util::kMB);
  daemon2.reportBytes(id, 0.6 * util::kMB);
  waitFor([&] { return daemon1.queueOf(id) == 1 && daemon2.queueOf(id) == 1; });

  daemon1.stop();
  daemon2.stop();
  coordinator.stop();
}

TEST(Runtime, RateForFollowsQueuePolicy) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.dclas.num_queues = 2;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  Coordinator coordinator(ccfg);
  coordinator.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  dcfg.num_queues = 2;
  dcfg.uplink_capacity = 300.0;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto hot = client.registerCoflow();
  const auto cold = client.registerCoflow();

  daemon.writerActive(hot, true);
  EXPECT_DOUBLE_EQ(daemon.rateFor(hot), 300.0);  // Alone: full uplink.
  EXPECT_DOUBLE_EQ(daemon.rateFor(cold), 0.0);   // No active writer.

  daemon.writerActive(cold, true);
  daemon.reportBytes(cold, 5.0 * util::kMB);  // Demote cold to Q2.
  waitFor([&] { return daemon.queueOf(cold) == 1; });
  // Queues 0 and 1 with weights 2 and 1: hot gets 200, cold gets 100.
  EXPECT_DOUBLE_EQ(daemon.rateFor(hot), 200.0);
  EXPECT_DOUBLE_EQ(daemon.rateFor(cold), 100.0);

  daemon.writerActive(hot, false);
  daemon.writerActive(cold, false);
  daemon.stop();
  coordinator.stop();
}

TEST(Runtime, DaemonFallsBackWhenCoordinatorDies) {
  auto coordinator = std::make_unique<Coordinator>(fastCoordinator());
  coordinator->start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator->port();
  dcfg.daemon_id = 9;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();
  waitFor([&] { return daemon.connected() && daemon.lastEpoch() >= 1; });

  coordinator->stop();
  coordinator.reset();
  waitFor([&] { return !daemon.connected(); });
  // Fault tolerance: the data path degrades to unthrottled TCP.
  const coflow::CoflowId id{0, 0};
  daemon.writerActive(id, true);
  EXPECT_TRUE(std::isinf(daemon.rateFor(id)));
  daemon.writerActive(id, false);
  daemon.stop();
}

TEST(Runtime, ThrottledWriterPacesToDaemonRate) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  dcfg.uplink_capacity = 2e6;  // 2 MB/s.
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread drain([&] {
    char sink[65536];
    while (::read(fds[1], sink, sizeof(sink)) > 0) {
    }
  });

  std::vector<std::uint8_t> payload(512 * 1024, 0x7F);  // 0.5 MB.
  const auto start = std::chrono::steady_clock::now();
  {
    ThrottledWriter writer(fds[0], id, daemon);
    writer.writeAll(payload.data(), payload.size());
    EXPECT_DOUBLE_EQ(writer.bytesWritten(), double(payload.size()));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // 0.5 MB at 2 MB/s should take ~0.25 s; allow generous slack but fail
  // if the writer clearly did not throttle (e.g. < 0.15 s).
  EXPECT_GT(elapsed, 0.15);
  EXPECT_LT(elapsed, 2.0);

  ::shutdown(fds[0], SHUT_RDWR);
  ::close(fds[0]);
  drain.join();
  ::close(fds[1]);
  daemon.stop();
  coordinator.stop();
}

}  // namespace
}  // namespace aalo::runtime
