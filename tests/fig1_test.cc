// Reproduction of the paper's Figure 1 worked example.
//
// The instance (recovered by tools/fig1_search.cc from the caption's
// average CCTs): unit-capacity ports, egress uncontended,
//   C1 (arrives t=0): 3 units on ingress P0 and 3 units on ingress P1,
//   C2 (arrives t=1): 2 units on ingress P1,
//   C3 (arrives t=0): 3 units on ingress P0.
// Caption values: per-flow fairness 5.33, decentralized LAS 5, CLAS with
// instant coordination 4, optimal 3.67 time units of average CCT.
#include <gtest/gtest.h>

#include <unordered_map>

#include "sched/clas.h"
#include "sched/fair.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sim/simulator.h"
#include "tests/helpers.h"

namespace aalo {
namespace {

coflow::Workload figure1Workload() {
  coflow::Workload wl;
  wl.num_ports = 8;  // Ingress 0-1 contended; egress 2+ all distinct.
  auto add = [&](coflow::JobId id, double arrival,
                 std::vector<coflow::FlowSpec> flows) {
    coflow::JobSpec job;
    job.id = id;
    job.arrival = arrival;
    coflow::CoflowSpec spec;
    spec.id = {id, 0};
    spec.flows = std::move(flows);
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  };
  add(0, 0.0, {{0, 2, 3.0, 0}, {1, 3, 3.0, 0}});  // C1
  add(1, 1.0, {{1, 4, 2.0, 0}});                  // C2
  add(2, 0.0, {{0, 5, 3.0, 0}});                  // C3
  return wl;
}

constexpr fabric::FabricConfig kFig1Fabric{8, 1.0};

TEST(Figure1, PerFlowFairnessAverages5_33) {
  sched::PerFlowFairScheduler fair;
  const auto r = testing::runVerified(figure1Workload(), kFig1Fabric, fair);
  EXPECT_NEAR(testing::cctOf(r, {0, 0}), 6.0, 1e-6);  // C1
  EXPECT_NEAR(testing::cctOf(r, {1, 0}), 4.0, 1e-6);  // C2
  EXPECT_NEAR(testing::cctOf(r, {2, 0}), 6.0, 1e-6);  // C3
  EXPECT_NEAR(testing::avgCct(r), 16.0 / 3, 1e-6);
}

TEST(Figure1, DecentralizedLasAverages5) {
  sched::LasConfig cfg;
  cfg.tie_window = 1e-4;
  cfg.quantum = 0.05;
  sched::DecentralizedLasScheduler las(cfg);
  const auto r = testing::runVerified(figure1Workload(), kFig1Fabric, las);
  // P0 is split equally between C1 and C3 the whole way (local attained
  // stays tied): both finish at 6. On P1, C2 catches up with C1's local
  // service, then they share.
  EXPECT_NEAR(testing::cctOf(r, {0, 0}), 6.0, 0.1);
  EXPECT_NEAR(testing::cctOf(r, {1, 0}), 3.0, 0.1);
  EXPECT_NEAR(testing::cctOf(r, {2, 0}), 6.0, 0.1);
  EXPECT_NEAR(testing::avgCct(r), 5.0, 0.1);
}

TEST(Figure1, CoordinatedClasAverages4) {
  sched::ClasConfig cfg;
  cfg.tie_window = 1e-4;
  cfg.quantum = 0.05;
  sched::ContinuousClasScheduler clas(cfg);
  const auto r = testing::runVerified(figure1Workload(), kFig1Fabric, clas);
  EXPECT_NEAR(testing::cctOf(r, {0, 0}), 6.0, 0.1);
  EXPECT_NEAR(testing::cctOf(r, {1, 0}), 2.0, 0.1);
  EXPECT_NEAR(testing::cctOf(r, {2, 0}), 4.0, 0.1);
  EXPECT_NEAR(testing::avgCct(r), 4.0, 0.1);
}

TEST(Figure1, OptimalPermutationAverages3_67) {
  // Optimal order: C3 first, then C2, then C1 (work-conserving strict
  // priority): CCTs 6 (C1), 2 (C2), 3 (C3).
  std::unordered_map<coflow::CoflowId, int> order = {
      {{2, 0}, 0}, {{1, 0}, 1}, {{0, 0}, 2}};
  sched::OfflineOrderScheduler opt(order);
  const auto r = testing::runVerified(figure1Workload(), kFig1Fabric, opt);
  EXPECT_NEAR(testing::cctOf(r, {0, 0}), 6.0, 1e-6);
  EXPECT_NEAR(testing::cctOf(r, {1, 0}), 2.0, 1e-6);
  EXPECT_NEAR(testing::cctOf(r, {2, 0}), 3.0, 1e-6);
  EXPECT_NEAR(testing::avgCct(r), 11.0 / 3, 1e-6);
}

TEST(Figure1, MechanismOrderingMatchesPaper) {
  sched::PerFlowFairScheduler fair;
  sched::LasConfig las_cfg;
  las_cfg.tie_window = 1e-4;
  las_cfg.quantum = 0.05;
  sched::DecentralizedLasScheduler las(las_cfg);
  sched::ClasConfig clas_cfg;
  clas_cfg.tie_window = 1e-4;
  clas_cfg.quantum = 0.05;
  sched::ContinuousClasScheduler clas(clas_cfg);
  const auto wl = figure1Workload();
  const double v_fair = testing::avgCct(testing::runVerified(wl, kFig1Fabric, fair));
  const double v_las = testing::avgCct(testing::runVerified(wl, kFig1Fabric, las));
  const double v_clas = testing::avgCct(testing::runVerified(wl, kFig1Fabric, clas));
  EXPECT_GT(v_fair, v_las);
  EXPECT_GT(v_las, v_clas);
}

}  // namespace
}  // namespace aalo
