// Checkpoint/restore: snapshot + journal round-trips of ScheduleState.
//
// The tentpole claim is bit-identity: a coordinator restored from
// (snapshot, journal prefix) re-derives exactly the schedule the
// pre-crash coordinator would have broadcast. The fuzz below drives a
// live ScheduleState and a Checkpoint through hundreds of random rounds
// (register / unregister / absolute size reports / daemon drops) and
// periodically restores into a fresh state, comparing snapshotEntries()
// and the legacySchedule() oracle entry-for-entry. Sizes are whole-kB
// integers so double accumulation is exact regardless of replay order.
//
// The remaining tests pin the crash-safety edges: corrupt or truncated
// snapshots are rejected wholly (classic re-teach fallback), a torn
// journal tail replays to its clean prefix, and a journal left stale by
// a crash between snapshot rename and journal truncate is discarded.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/protocol.h"
#include "runtime/checkpoint.h"
#include "runtime/schedule_state.h"
#include "util/rng.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

const std::vector<util::Bytes> kThresholds{1.0 * util::kMB, 10.0 * util::kMB,
                                           100.0 * util::kMB};

std::string freshDir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("aalo_ckpt_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string journalPath(const std::string& dir) {
  return dir + "/schedule.journal";
}

std::string snapshotPath(const std::string& dir) {
  return dir + "/schedule.ckpt";
}

std::vector<std::uint8_t> readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void writeAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expectSameEntries(const std::vector<net::ScheduleEntry>& live,
                       const std::vector<net::ScheduleEntry>& restored,
                       const char* what) {
  ASSERT_EQ(live.size(), restored.size()) << what;
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].id, restored[i].id) << what << " entry " << i;
    EXPECT_EQ(live[i].global_bytes, restored[i].global_bytes)
        << what << " entry " << i;
    EXPECT_EQ(live[i].queue, restored[i].queue) << what << " entry " << i;
    EXPECT_EQ(live[i].on, restored[i].on) << what << " entry " << i;
  }
}

// 300 rounds of random coordinator inputs, applied identically to a live
// ScheduleState and to a Checkpoint journal, with periodic restores that
// must reproduce the live schedule bit-for-bit — including across
// mid-trajectory snapshot rebases (which truncate the journal).
void runFuzzTrajectory(std::size_t max_on, std::uint64_t seed) {
  const std::string dir =
      freshDir("fuzz_" + std::to_string(max_on) + "_" + std::to_string(seed));
  ScheduleState live(kThresholds, max_on);
  Checkpoint ckpt(dir);

  std::vector<coflow::CoflowId> tombstones;
  std::unordered_set<coflow::CoflowId> tombstone_set;
  std::vector<coflow::CoflowId> live_ids;
  // daemon -> coflow -> absolute bytes reported so far (monotone).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<coflow::CoflowId, double>>
      sent;
  std::int64_t next_external = 0;
  std::uint64_t epoch = 0;
  const std::uint64_t fence = 1;

  ASSERT_TRUE(ckpt.writeSnapshot(live, tombstones, fence, epoch, next_external,
                                 kThresholds, max_on));

  util::Rng rng(seed);
  for (int round = 0; round < 300; ++round) {
    ++epoch;
    const auto roll = rng.uniformInt(0, 99);
    if (roll < 20 || live_ids.empty()) {
      const coflow::CoflowId id{next_external, 0};
      ++next_external;
      live.registerCoflow(id);
      ckpt.journalRegister(id, next_external);
      live_ids.push_back(id);
    } else if (roll < 30) {
      const auto idx = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const coflow::CoflowId id = live_ids[idx];
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(idx));
      live.unregisterCoflow(id);
      ckpt.journalUnregister(id);
      tombstones.push_back(id);
      tombstone_set.insert(id);
    } else if (roll < 92) {
      const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(1, 4));
      net::Message report;
      report.type = net::MessageType::kSizeReport;
      report.daemon_id = daemon;
      report.epoch = epoch;
      const auto n = rng.uniformInt(1, 3);
      for (std::int64_t k = 0; k < n; ++k) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live_ids.size()) - 1));
        const coflow::CoflowId id = live_ids[idx];
        // Whole-kB increments: the accumulated doubles are integers well
        // below 2^53, so global sums are exact in any replay order.
        sent[daemon][id] += 1024.0 * static_cast<double>(
                                         rng.uniformInt(1, 1 << 16));
        const double bytes = sent[daemon][id];
        report.sizes.push_back({id, bytes});
        live.applySize(daemon, id, bytes);
      }
      ckpt.journalReport(report);
    } else {
      const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(1, 4));
      live.dropDaemon(daemon);
      sent.erase(daemon);
      ckpt.journalDropDaemon(daemon);
    }
    ckpt.journalEpoch(epoch, fence);
    ASSERT_TRUE(ckpt.flushJournal());

    if (round % 37 == 36) {
      Checkpoint reader(dir);
      ScheduleState restored_state(kThresholds, max_on);
      const auto restored =
          reader.restore(restored_state, kThresholds, max_on);
      ASSERT_TRUE(restored.has_value()) << "round " << round;
      EXPECT_EQ(restored->fence, fence);
      EXPECT_EQ(restored->epoch, epoch);
      EXPECT_EQ(restored->next_external, next_external);
      EXPECT_EQ(
          std::unordered_set<coflow::CoflowId>(restored->tombstones.begin(),
                                               restored->tombstones.end()),
          tombstone_set);

      std::vector<net::ScheduleEntry> live_entries;
      std::vector<net::ScheduleEntry> restored_entries;
      live.snapshotEntries(live_entries);
      restored_state.snapshotEntries(restored_entries);
      expectSameEntries(live_entries, restored_entries, "snapshotEntries");

      const auto filter = [&](const coflow::CoflowId& id) {
        return tombstone_set.contains(id);
      };
      std::vector<net::ScheduleEntry> live_legacy;
      std::vector<net::ScheduleEntry> restored_legacy;
      live.legacySchedule(filter, live_legacy);
      restored_state.legacySchedule(filter, restored_legacy);
      expectSameEntries(live_legacy, restored_legacy, "legacySchedule");
      if (::testing::Test::HasFailure()) return;
    }
    if (round % 97 == 96) {
      ASSERT_TRUE(ckpt.writeSnapshot(live, tombstones, fence, epoch,
                                     next_external, kThresholds, max_on));
    }
  }
}

TEST(CheckpointFuzz, TrajectoryRoundTripsAllOn) { runFuzzTrajectory(0, 11); }

TEST(CheckpointFuzz, TrajectoryRoundTripsWithOnBudget) {
  runFuzzTrajectory(3, 12);
}

TEST(CheckpointFuzz, TrajectoryRoundTripsTightOnBudget) {
  runFuzzTrajectory(1, 13);
}

TEST(Checkpoint, EmptyDirHasNoData) {
  const std::string dir = freshDir("empty");
  Checkpoint ckpt(dir);
  EXPECT_FALSE(ckpt.hasData());
  ScheduleState state(kThresholds, 0);
  EXPECT_FALSE(ckpt.restore(state, kThresholds, 0).has_value());
}

TEST(Checkpoint, CorruptSnapshotRejected) {
  const std::string dir = freshDir("corrupt");
  ScheduleState state(kThresholds, 0);
  state.registerCoflow({0, 0});
  state.applySize(1, {0, 0}, 4096.0);
  {
    Checkpoint ckpt(dir);
    ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 5, 1, kThresholds, 0));
  }
  auto bytes = readAll(snapshotPath(dir));
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0xff;  // Any content flip breaks the checksum.
  writeAll(snapshotPath(dir), bytes);

  Checkpoint reader(dir);
  EXPECT_TRUE(reader.hasData());
  ScheduleState restored(kThresholds, 0);
  EXPECT_FALSE(reader.restore(restored, kThresholds, 0).has_value());
  // Rejection happens before any mutation: re-teach starts from scratch.
  EXPECT_EQ(restored.registeredCount(), 0u);
  EXPECT_EQ(restored.scheduledCount(), 0u);
}

TEST(Checkpoint, TruncatedSnapshotRejected) {
  const std::string dir = freshDir("truncated_snapshot");
  ScheduleState state(kThresholds, 0);
  state.registerCoflow({0, 0});
  {
    Checkpoint ckpt(dir);
    ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 1, kThresholds, 0));
  }
  const auto size = std::filesystem::file_size(snapshotPath(dir));
  std::filesystem::resize_file(snapshotPath(dir), size / 2);

  Checkpoint reader(dir);
  ScheduleState restored(kThresholds, 0);
  EXPECT_FALSE(reader.restore(restored, kThresholds, 0).has_value());
}

TEST(Checkpoint, ConfigMismatchRejected) {
  const std::string dir = freshDir("config_mismatch");
  ScheduleState state(kThresholds, 2);
  {
    Checkpoint ckpt(dir);
    ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 0, kThresholds, 2));
  }
  Checkpoint reader(dir);
  ScheduleState restored(kThresholds, 0);
  // Different ON budget.
  EXPECT_FALSE(reader.restore(restored, kThresholds, 0).has_value());
  // Different thresholds.
  const std::vector<util::Bytes> other{2.0 * util::kMB, 20.0 * util::kMB,
                                       200.0 * util::kMB};
  EXPECT_FALSE(reader.restore(restored, other, 2).has_value());
  // The matching config still restores.
  EXPECT_TRUE(reader.restore(restored, kThresholds, 2).has_value());
}

TEST(Checkpoint, TornJournalTailReplaysCleanPrefix) {
  const std::string dir = freshDir("torn_tail");
  ScheduleState state(kThresholds, 0);
  state.registerCoflow({0, 0});
  Checkpoint ckpt(dir);
  ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 1, kThresholds, 0));
  ckpt.journalRegister({1, 0}, 2);
  ckpt.journalRegister({2, 0}, 3);
  ASSERT_TRUE(ckpt.flushJournal());
  const auto clean_size = std::filesystem::file_size(journalPath(dir));
  ckpt.journalRegister({3, 0}, 4);
  ASSERT_TRUE(ckpt.flushJournal());
  // Cut into the middle of the final record, as a crash mid-append would.
  std::filesystem::resize_file(journalPath(dir), clean_size + 5);

  Checkpoint reader(dir);
  ScheduleState restored(kThresholds, 0);
  const auto r = reader.restore(restored, kThresholds, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(restored.registeredCount(), 3u);  // {0,0}, {1,0}, {2,0}.
  EXPECT_EQ(r->journal_records, 2u);
  EXPECT_EQ(r->next_external, 3);
}

TEST(Checkpoint, StaleJournalDiscardedAfterSnapshotReplace) {
  const std::string dir = freshDir("stale_journal");
  const coflow::CoflowId id{0, 0};
  ScheduleState state(kThresholds, 0);
  state.registerCoflow(id);
  state.applySize(1, id, 1024.0);
  Checkpoint ckpt(dir);
  ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 1, kThresholds, 0));

  // Journal a report against that base, then advance and re-snapshot.
  net::Message report;
  report.type = net::MessageType::kSizeReport;
  report.daemon_id = 1;
  report.sizes.push_back({id, 2048.0});
  ckpt.journalReport(report);
  ASSERT_TRUE(ckpt.flushJournal());
  const auto stale_journal = readAll(journalPath(dir));
  state.applySize(1, id, 2048.0);
  state.applySize(1, id, 4096.0);
  ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 1, kThresholds, 0));
  // Simulate a crash between the snapshot rename and the journal
  // truncate: the old journal (bound to the previous snapshot) survives.
  writeAll(journalPath(dir), stale_journal);

  Checkpoint reader(dir);
  ScheduleState restored(kThresholds, 0);
  const auto r = reader.restore(restored, kThresholds, 0);
  ASSERT_TRUE(r.has_value());
  // The stale journal must be ignored wholly: replaying its 2048-byte
  // absolute report on top of the newer snapshot would *decrease* the
  // stored size.
  EXPECT_EQ(restored.globalBytes(id), 4096.0);
  EXPECT_EQ(r->journal_records, 0u);
}

TEST(Checkpoint, OrphanedJournalRejected) {
  const std::string dir = freshDir("orphaned");
  ScheduleState state(kThresholds, 0);
  state.registerCoflow({0, 0});
  Checkpoint ckpt(dir);
  ASSERT_TRUE(ckpt.writeSnapshot(state, {}, 1, 0, 1, kThresholds, 0));
  ckpt.journalRegister({1, 0}, 2);
  ASSERT_TRUE(ckpt.flushJournal());
  std::filesystem::remove(snapshotPath(dir));

  Checkpoint reader(dir);
  EXPECT_TRUE(reader.hasData());
  ScheduleState restored(kThresholds, 0);
  EXPECT_FALSE(reader.restore(restored, kThresholds, 0).has_value());
}

TEST(Checkpoint, JournalOnlyFromFreshStartRestores) {
  // A coordinator that crashed before its first snapshot still leaves a
  // journal bound to base checksum 0; that prefix is a valid state.
  const std::string dir = freshDir("journal_only");
  {
    Checkpoint ckpt(dir);
    ckpt.journalRegister({0, 0}, 1);
    ckpt.journalEpoch(3, 1);
    ASSERT_TRUE(ckpt.flushJournal());
  }
  ASSERT_FALSE(std::filesystem::exists(snapshotPath(dir)));
  Checkpoint reader(dir);
  ScheduleState restored(kThresholds, 0);
  const auto r = reader.restore(restored, kThresholds, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(restored.registeredCount(), 1u);
  EXPECT_EQ(r->epoch, 3u);
  EXPECT_EQ(r->next_external, 1);
}

}  // namespace
}  // namespace aalo::runtime
