#include <gtest/gtest.h>

#include "sched/dclas.h"
#include "sched/uncoordinated.h"
#include "sched/varys.h"
#include "tests/helpers.h"

namespace aalo::sched {
namespace {

using aalo::testing::FlowDef;
using aalo::testing::cctOf;
using aalo::testing::makeJob;
using aalo::testing::makeWorkload;
using aalo::testing::runVerified;
using aalo::testing::unitFabric;

DClasConfig smallConfig() {
  DClasConfig cfg;
  cfg.first_threshold = 10.0;
  cfg.exp_factor = 10.0;
  cfg.num_queues = 4;
  return cfg;
}

// Wide coflows whose per-port pieces stay below the local threshold are
// never demoted locally, so they convoy ahead of a genuinely small coflow
// — while the coordinated scheduler demotes each after one crossing
// (the Theorem A.1 pathology).
TEST(UncoordinatedDClas, LocalKnowledgeConvoysWideCoflows) {
  // Four wide coflows (ids 0-3): 9 units on each of 4 port pairs (total
  // 36 each, but only 9 visible per port). One thin coflow (id 9): 9.5
  // units on port pair (0, 3).
  std::vector<coflow::JobSpec> jobs;
  for (int w = 0; w < 4; ++w) {
    coflow::JobSpec wide;
    wide.id = w;
    wide.arrival = 0;
    coflow::CoflowSpec wspec;
    wspec.id = {w, 0};
    for (int i = 0; i < 4; ++i) {
      wspec.flows.push_back(
          coflow::FlowSpec{static_cast<coflow::PortId>(i),
                           static_cast<coflow::PortId>(3 - i), 9.0, 0});
    }
    wide.coflows.push_back(wspec);
    jobs.push_back(wide);
  }
  jobs.push_back(makeJob(9, 0, {FlowDef{0, 3, 9.5}}));
  const auto wl = makeWorkload(4, std::move(jobs));

  UncoordinatedDClasScheduler local(smallConfig(), 0.1);
  const auto local_result = runVerified(wl, unitFabric(4), local);
  DClasScheduler coordinated(smallConfig());
  const auto coord_result = runVerified(wl, unitFabric(4), coordinated);

  // Uncoordinated: every wide coflow's local attained caps at 9 < 10, so
  // all four stay in the top local queue and the thin coflow waits for
  // the whole 36-unit convoy. Coordinated: each wide coflow's global size
  // crosses the threshold after 10 units and is demoted.
  EXPECT_LT(cctOf(coord_result, {9, 0}), cctOf(local_result, {9, 0}) - 5.0);
}

TEST(UncoordinatedDClas, MatchesCoordinatedOnSinglePortWorkloads) {
  // With one contended port, local == global knowledge; both schedulers
  // demote at the same thresholds (up to the decision quantum).
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 30}}),
                                   makeJob(1, 2.0, {FlowDef{0, 1, 4}})});
  UncoordinatedDClasScheduler local(smallConfig(), 0.05);
  DClasScheduler coordinated(smallConfig());
  const auto local_result = runVerified(wl, unitFabric(2), local);
  const auto coord_result = runVerified(wl, unitFabric(2), coordinated);
  for (const auto id : {coflow::CoflowId{0, 0}, coflow::CoflowId{1, 0}}) {
    EXPECT_NEAR(cctOf(local_result, id), cctOf(coord_result, id), 0.4);
  }
}

TEST(UncoordinatedDClas, IsWorkConserving) {
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 6}}),
                                   makeJob(1, 0, {FlowDef{1, 3, 6}})});
  UncoordinatedDClasScheduler local(smallConfig(), 0.1);
  const auto result = runVerified(wl, unitFabric(4), local);
  // Disjoint port pairs: both must run at full rate.
  EXPECT_NEAR(result.makespan, 6.0, 1e-6);
}

TEST(VarysAdmission, DelayGatesNewCoflows) {
  VarysConfig cfg;
  cfg.admission_delay = 2.0;
  VarysScheduler varys(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(2), varys);
  // 2s admission + 4s transfer.
  EXPECT_NEAR(result.coflows[0].cct(), 6.0, 1e-6);
}

TEST(VarysAdmission, ZeroDelayUnchanged) {
  VarysScheduler varys{VarysConfig{}};
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(2), varys);
  EXPECT_NEAR(result.coflows[0].cct(), 4.0, 1e-6);
}

TEST(VarysAdmission, GatedCoflowDoesNotBlockAdmittedOnes) {
  VarysConfig cfg;
  cfg.admission_delay = 3.0;
  VarysScheduler varys(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 4}}),
                                   makeJob(1, 3.5, {FlowDef{0, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(2), varys);
  // C0 admitted at t=3, finishes at 7. C1 admitted at 6.5, runs after C0.
  EXPECT_NEAR(cctOf(result, {0, 0}), 7.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 7.5, 1e-6);
}

}  // namespace
}  // namespace aalo::sched
