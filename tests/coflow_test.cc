#include <gtest/gtest.h>

#include <array>

#include "coflow/id_generator.h"
#include "coflow/ids.h"
#include "coflow/spec.h"
#include "util/units.h"

namespace aalo::coflow {
namespace {

using util::kMB;

TEST(CoflowId, OrderingAndFormat) {
  const CoflowId a{42, 0};
  const CoflowId b{42, 1};
  const CoflowId c{43, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.toString(), "42.0");
  CoflowIdFifoLess fifo;
  EXPECT_TRUE(fifo(a, b));   // Same DAG: parent before dependent.
  EXPECT_TRUE(fifo(b, c));   // Earlier DAG first.
  EXPECT_FALSE(fifo(c, a));
}

TEST(CoflowId, HashDistinguishes) {
  std::hash<CoflowId> h;
  EXPECT_NE(h(CoflowId{1, 0}), h(CoflowId{0, 1}));
  EXPECT_EQ(h(CoflowId{7, 3}), h(CoflowId{7, 3}));
}

TEST(IdGenerator, RootIdsAreSequential) {
  CoflowIdGenerator gen;
  EXPECT_EQ(gen.newRootId(), (CoflowId{0, 0}));
  EXPECT_EQ(gen.newRootId(), (CoflowId{1, 0}));
  EXPECT_EQ(gen.nextExternal(), 2);
}

TEST(IdGenerator, ChildTakesMaxParentPlusOne) {
  // Pseudocode 2 on Figure 4: the shuffle depending on coflows 42.1 and
  // 42.2 becomes 42.3.
  CoflowIdGenerator gen;
  const std::array<CoflowId, 2> parents = {CoflowId{42, 1}, CoflowId{42, 2}};
  EXPECT_EQ(gen.newChildId(parents), (CoflowId{42, 3}));
}

TEST(IdGenerator, ChildValidation) {
  CoflowIdGenerator gen;
  EXPECT_THROW(gen.newChildId({}), std::invalid_argument);
  const std::array<CoflowId, 2> cross_dag = {CoflowId{1, 0}, CoflowId{2, 0}};
  EXPECT_THROW(gen.newChildId(cross_dag), std::invalid_argument);
}

TEST(IdGenerator, Figure4Reproduction) {
  // Figure 4c: six coflows of TPC-DS q42 with dependencies
  // CA,CB,CC -> CD; CC -> CE; CD,CE -> CF (pipelined chain).
  CoflowIdGenerator gen;
  const CoflowId ca = gen.newRootId();
  EXPECT_EQ(ca.internal, 0);
  const CoflowId cd = gen.newChildId(std::array{ca});
  EXPECT_EQ(cd, (CoflowId{ca.external, 1}));
  const CoflowId ce = gen.newChildId(std::array{ca});
  EXPECT_EQ(ce, (CoflowId{ca.external, 1}));  // Independent siblings tie.
  const CoflowId cf = gen.newChildId(std::array{cd, ce});
  EXPECT_EQ(cf, (CoflowId{ca.external, 2}));
}

CoflowSpec makeCoflow(CoflowId id, std::initializer_list<FlowSpec> flows) {
  CoflowSpec c;
  c.id = id;
  c.flows = flows;
  return c;
}

TEST(CoflowSpec, Aggregates) {
  const CoflowSpec c = makeCoflow(
      {1, 0}, {FlowSpec{0, 1, 4 * kMB, 0}, FlowSpec{1, 0, 6 * kMB, 2.0}});
  EXPECT_DOUBLE_EQ(c.totalBytes(), 10 * kMB);
  EXPECT_DOUBLE_EQ(c.maxFlowBytes(), 6 * kMB);
  EXPECT_EQ(c.width(), 2u);
  EXPECT_EQ(c.waveCount(), 2);
}

Workload tinyWorkload() {
  Workload wl;
  wl.num_ports = 2;
  JobSpec job;
  job.id = 0;
  job.arrival = 0;
  job.coflows.push_back(makeCoflow({0, 0}, {FlowSpec{0, 1, kMB, 0}}));
  wl.jobs.push_back(job);
  return wl;
}

TEST(Workload, ValidAcceptsTiny) {
  EXPECT_NO_THROW(tinyWorkload().validate());
  EXPECT_EQ(tinyWorkload().coflowCount(), 1u);
  EXPECT_DOUBLE_EQ(tinyWorkload().totalBytes(), kMB);
}

TEST(Workload, RejectsBadPorts) {
  Workload wl = tinyWorkload();
  wl.jobs[0].coflows[0].flows[0].dst = 2;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
  wl.num_ports = 0;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsNonPositiveFlow) {
  Workload wl = tinyWorkload();
  wl.jobs[0].coflows[0].flows[0].bytes = 0;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsDuplicateCoflowIds) {
  Workload wl = tinyWorkload();
  JobSpec job2 = wl.jobs[0];
  job2.id = 1;
  wl.jobs.push_back(job2);  // Same coflow id 0.0 again.
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsDuplicateJobIds) {
  Workload wl = tinyWorkload();
  JobSpec job2 = wl.jobs[0];
  job2.coflows[0].id = CoflowId{9, 0};
  wl.jobs.push_back(job2);
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsEmptyCoflow) {
  Workload wl = tinyWorkload();
  wl.jobs[0].coflows[0].flows.clear();
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsDanglingDependency) {
  Workload wl = tinyWorkload();
  wl.jobs[0].coflows[0].starts_after.push_back(CoflowId{99, 0});
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

TEST(Workload, RejectsNegativeOffsets) {
  Workload wl = tinyWorkload();
  wl.jobs[0].coflows[0].flows[0].start_offset = -1;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace aalo::coflow
