#include <gtest/gtest.h>

#include "sched/dclas.h"
#include "sched/fair.h"
#include "tests/helpers.h"
#include "util/units.h"

namespace aalo::sched {
namespace {

using aalo::testing::FlowDef;
using aalo::testing::avgCct;
using aalo::testing::cctOf;
using aalo::testing::makeJob;
using aalo::testing::makeWorkload;
using aalo::testing::runVerified;
using aalo::testing::unitFabric;
using util::kMB;

TEST(DClasConfig, ExponentialThresholds) {
  DClasConfig cfg;
  cfg.num_queues = 4;
  cfg.exp_factor = 10;
  cfg.first_threshold = 10 * kMB;
  const auto t = cfg.thresholds();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 10 * kMB);
  EXPECT_DOUBLE_EQ(t[1], 100 * kMB);
  EXPECT_DOUBLE_EQ(t[2], 1000 * kMB);
}

TEST(DClasConfig, SingleQueueHasNoThresholds) {
  DClasConfig cfg;
  cfg.num_queues = 1;
  EXPECT_TRUE(cfg.thresholds().empty());
}

TEST(DClasConfig, Validation) {
  DClasConfig cfg;
  cfg.num_queues = 0;
  EXPECT_THROW(cfg.thresholds(), std::invalid_argument);
  cfg.num_queues = 3;
  cfg.exp_factor = 1.0;
  EXPECT_THROW(cfg.thresholds(), std::invalid_argument);
  cfg.exp_factor = 10;
  cfg.first_threshold = 0;
  EXPECT_THROW(cfg.thresholds(), std::invalid_argument);
  cfg.explicit_thresholds = {5.0, 3.0};
  EXPECT_THROW(cfg.thresholds(), std::invalid_argument);
}

TEST(DClasConfig, ExplicitThresholdsOverride) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.explicit_thresholds = {1 * kMB, 2 * kMB, 3 * kMB};
  const auto t = cfg.thresholds();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[1], 2 * kMB);
  EXPECT_DOUBLE_EQ(cfg.queueWeight(0), 4);  // K = 4 queues.
}

TEST(DClasConfig, QueueWeightsDecrease) {
  DClasConfig cfg;
  cfg.num_queues = 10;
  EXPECT_DOUBLE_EQ(cfg.queueWeight(0), 10);
  EXPECT_DOUBLE_EQ(cfg.queueWeight(9), 1);
}

TEST(DClasScheduler, QueueOfFollowsThresholds) {
  DClasConfig cfg;
  cfg.num_queues = 10;
  DClasScheduler sched(cfg);
  EXPECT_EQ(sched.queueOf(0), 0);
  EXPECT_EQ(sched.queueOf(9.99 * kMB), 0);
  EXPECT_EQ(sched.queueOf(10 * kMB), 1);
  EXPECT_EQ(sched.queueOf(99 * kMB), 1);
  EXPECT_EQ(sched.queueOf(100 * kMB), 2);
  EXPECT_EQ(sched.queueOf(1e18), 9);
}

TEST(DClasScheduler, RejectsNegativeSyncInterval) {
  DClasConfig cfg;
  cfg.sync_interval = -1;
  EXPECT_THROW(DClasScheduler{cfg}, std::invalid_argument);
}

// Two identical small coflows on one port: D-CLAS serves them FIFO (no
// interleaving), halving the first coflow's CCT vs fair sharing.
TEST(DClasScheduler, FifoWithinQueueAvoidsInterleaving) {
  DClasConfig cfg;
  cfg.first_threshold = 1000;  // Both coflows stay in Q1.
  DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 4}}),
                                   makeJob(1, 0, {FlowDef{0, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(result, {0, 0}), 4.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 8.0, 1e-6);

  PerFlowFairScheduler fair;
  const auto fair_result = runVerified(wl, unitFabric(2), fair);
  EXPECT_GT(avgCct(fair_result), avgCct(result) + 1.0);  // 8 vs 6.
}

// Threshold crossing demotes a large coflow; a newly arrived small coflow
// then dominates via the queue weights. Unit-capacity fabric, K=2,
// Q1^hi=5B, weights {2,1}.
TEST(DClasScheduler, DemotionAndWeightedSharing) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.exp_factor = 10;
  cfg.first_threshold = 5;
  DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 6.0, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  // C0 runs alone until t=6 (sent 6 >= 5, so already demoted to Q2 at
  // t=5). C1 arrives at 6 into Q1: weighted shares 2/3 vs 1/3.
  // C1 finishes at 6 + 3/(2/3) = 10.5 (CCT 4.5).
  // C0 has 20-6-4.5/3 = 12.5 left at t=10.5, full rate: done at 23.
  EXPECT_NEAR(cctOf(result, {1, 0}), 4.5, 1e-6);
  EXPECT_NEAR(cctOf(result, {0, 0}), 23.0, 1e-6);
}

// Same scenario under strict priority: the small coflow preempts fully.
TEST(DClasScheduler, StrictPriorityPreemptsFully) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.first_threshold = 5;
  cfg.policy = DClasConfig::QueuePolicy::kStrictPriority;
  DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 6.0, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(result, {1, 0}), 3.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {0, 0}), 23.0, 1e-6);
}

// Weighted sharing guarantees starvation freedom: the demoted coflow keeps
// a positive rate while the high-priority queue is busy.
TEST(DClasScheduler, WeightedSharingAvoidsStarvation) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.first_threshold = 5;
  DClasScheduler dclas(cfg);
  // A stream of small coflows that would starve the big one under strict
  // priority keeps arriving back-to-back.
  std::vector<coflow::JobSpec> jobs = {makeJob(0, 0, {FlowDef{0, 1, 30}})};
  for (int j = 1; j <= 8; ++j) {
    jobs.push_back(makeJob(j, 6.0 + 3.0 * (j - 1), {FlowDef{0, 1, 2}}));
  }
  const auto result = runVerified(makeWorkload(2, std::move(jobs)),
                                  unitFabric(2), dclas);
  // With weights {2,1}, the big coflow still gets 1/3 of the port during
  // contention: 6 + (30-6)/(1/3) = 78 is the worst case; it must beat the
  // strict-priority bound where it waits for all small coflows.
  EXPECT_LT(cctOf(result, {0, 0}), 79.0);
  // And every small coflow completes promptly (2B at >= 2/3 rate).
  for (int j = 1; j <= 8; ++j) {
    EXPECT_LT(cctOf(result, {j, 0}), 3.5);
  }
}

// With a huge sync interval the coordinator never learns sizes: every
// coflow stays in Q1 and the schedule degenerates to coordinated FIFO.
TEST(DClasScheduler, HugeSyncIntervalMeansFifo) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.first_threshold = 5;
  cfg.sync_interval = 1e6;
  DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 1.0, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(result, {0, 0}), 20.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 22.0, 1e-6);
}

// Delayed coordination: with Δ=3 a threshold crossed at t=5 only takes
// effect at the t=6 boundary.
TEST(DClasScheduler, DemotionWaitsForSyncBoundary) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.first_threshold = 5;
  cfg.sync_interval = 3.0;
  DClasScheduler dclas(cfg);
  // C1 arrives at t=5.5: true sizes say C0 (sent 5.5) is already over the
  // threshold, but the last sync was at t=3 (known 3), so C0 is still in
  // Q1 ahead of C1 until the t=6 sync.
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 5.5, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  // t in [5.5, 6): C0 (Q1, FIFO head) keeps the full port; C1 waits.
  // t >= 6: C0 demoted; C1 gets 2/3. C1 finishes at 6 + 4.5 = 10.5.
  EXPECT_NEAR(cctOf(result, {1, 0}), 10.5 - 5.5, 1e-6);
}

// Instant coordination (Δ=0) by contrast lets C1 cut in right away.
TEST(DClasScheduler, InstantCoordinationPreemptsImmediately) {
  DClasConfig cfg;
  cfg.num_queues = 2;
  cfg.first_threshold = 5;
  cfg.sync_interval = 0;
  DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 5.5, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(result, {1, 0}), 4.5, 1e-6);
}

// FIFO within a queue breaks ties between DAG-internal ids: the dependent
// coflow (higher internal id) is deprioritized (§5.1).
TEST(DClasScheduler, InternalIdBreaksFifoTies) {
  DClasConfig cfg;
  cfg.first_threshold = 1000;
  DClasScheduler dclas(cfg);
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  coflow::CoflowSpec parent;
  parent.id = {0, 0};
  parent.flows.push_back(coflow::FlowSpec{0, 1, 4, 0});
  coflow::CoflowSpec child;
  child.id = {0, 1};
  child.flows.push_back(coflow::FlowSpec{0, 2, 4, 0});  // Shares ingress 0.
  child.finishes_before.push_back(parent.id);
  job.coflows = {parent, child};
  const auto result = runVerified(makeWorkload(3, {job}), unitFabric(3), dclas);
  EXPECT_NEAR(cctOf(result, {0, 0}), 4.0, 1e-6);  // Parent first.
  const auto& child_rec = result.coflows[1];
  EXPECT_NEAR(child_rec.finish_own, 8.0, 1e-6);
}

// Behavioural non-clairvoyance: D-CLAS's allocation may not depend on
// remaining flow sizes, only on attained service. We run two workloads
// that differ solely in a pending coflow's total size and check that the
// *first* coflow's completion is identical.
TEST(DClasScheduler, AllocationIgnoresFutureSizes) {
  DClasConfig cfg;
  cfg.num_queues = 4;
  cfg.first_threshold = 6;
  cfg.exp_factor = 4;
  for (const double other_size : {8.0, 800.0}) {
    DClasScheduler dclas(cfg);
    const auto wl =
        makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 5}}),
                         makeJob(1, 0, {FlowDef{0, 2, other_size}})});
    const auto result = runVerified(wl, unitFabric(3), dclas);
    EXPECT_NEAR(cctOf(result, {0, 0}), 5.0, 1e-6)
        << "first coflow's fate depended on the other coflow's total size";
  }
}

}  // namespace
}  // namespace aalo::sched
