// Trace I/O round-trip fuzz: 500 seeded random workloads — multi-wave
// flows, DAG dependencies, extreme sizes, fractional times — serialized,
// parsed back, and serialized again. The two texts must be byte-identical
// (writeTrace emits full round-trip precision, so parse ∘ format is the
// identity on the second pass), and the parsed workload must survive
// validation. Zero/negative-byte flows stay rejected: serializing one and
// reading it back throws, consistent with Workload::validate().
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "coflow/spec.h"
#include "sched/dclas.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/trace_io.h"

namespace aalo {
namespace {

coflow::Workload randomWorkload(std::uint64_t seed) {
  util::Rng rng(seed);
  coflow::Workload wl;
  wl.num_ports = static_cast<int>(rng.uniformInt(2, 64));
  const int num_jobs = static_cast<int>(rng.uniformInt(1, 6));
  for (int j = 0; j < num_jobs; ++j) {
    coflow::JobSpec job;
    job.id = j + 1;
    job.arrival = rng.uniform(0.0, 1000.0);
    if (rng.uniformInt(0, 1) == 1) job.compute_time = rng.uniform(0.0, 30.0);
    const int num_coflows = static_cast<int>(rng.uniformInt(1, 4));
    for (int c = 0; c < num_coflows; ++c) {
      coflow::CoflowSpec spec;
      spec.id = coflow::CoflowId{job.id, c};
      spec.arrival_offset = rng.uniform(0.0, 5.0);
      // Deadlines on a third of coflows: fractional seconds that only
      // survive the round trip at full precision.
      if (rng.uniformInt(0, 2) == 0) spec.deadline = rng.uniform(0.01, 500.0);
      // DAG edges point at earlier coflows of the same job only, so the
      // workload always validates.
      for (int p = 0; p < c; ++p) {
        if (rng.uniformInt(0, 3) == 0) {
          spec.starts_after.push_back(coflow::CoflowId{job.id, p});
        } else if (rng.uniformInt(0, 3) == 0) {
          spec.finishes_before.push_back(coflow::CoflowId{job.id, p});
        }
      }
      const int waves = static_cast<int>(rng.uniformInt(1, 3));
      const int num_flows = static_cast<int>(rng.uniformInt(1, 8));
      for (int f = 0; f < num_flows; ++f) {
        coflow::FlowSpec flow;
        flow.src = static_cast<coflow::PortId>(
            rng.uniformInt(0, wl.num_ports - 1));
        flow.dst = static_cast<coflow::PortId>(
            rng.uniformInt(0, wl.num_ports - 1));
        // Log-uniform over 12 decades: single bytes up to terabytes.
        flow.bytes = std::pow(10.0, rng.uniform(0.0, 12.0));
        flow.start_offset =
            static_cast<double>(rng.uniformInt(0, waves - 1)) * 7.5;
        spec.flows.push_back(flow);
      }
      job.coflows.push_back(std::move(spec));
    }
    wl.jobs.push_back(std::move(job));
  }
  return wl;
}

TEST(TraceFuzz, WriteReadWriteIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const coflow::Workload wl = randomWorkload(seed);
    ASSERT_NO_THROW(wl.validate()) << "seed " << seed;

    std::ostringstream first;
    workload::writeTrace(first, wl);
    std::istringstream parse_in(first.str());
    coflow::Workload parsed;
    ASSERT_NO_THROW(parsed = workload::readTrace(parse_in)) << "seed " << seed;

    ASSERT_EQ(parsed.num_ports, wl.num_ports) << "seed " << seed;
    ASSERT_EQ(parsed.jobs.size(), wl.jobs.size()) << "seed " << seed;
    ASSERT_EQ(parsed.coflowCount(), wl.coflowCount()) << "seed " << seed;

    std::ostringstream second;
    workload::writeTrace(second, parsed);
    ASSERT_EQ(first.str(), second.str()) << "round-trip drift at seed " << seed;
  }
}

TEST(TraceFuzz, ExactValuesSurviveRoundTrip) {
  // Spot-check exact doubles (not just text): totals and DAG shape.
  const coflow::Workload wl = randomWorkload(42);
  std::ostringstream os;
  workload::writeTrace(os, wl);
  std::istringstream is(os.str());
  const coflow::Workload parsed = workload::readTrace(is);
  ASSERT_EQ(parsed.jobs.size(), wl.jobs.size());
  EXPECT_EQ(parsed.totalBytes(), wl.totalBytes());
  for (std::size_t j = 0; j < wl.jobs.size(); ++j) {
    EXPECT_EQ(parsed.jobs[j].arrival, wl.jobs[j].arrival);
    EXPECT_EQ(parsed.jobs[j].compute_time, wl.jobs[j].compute_time);
    ASSERT_EQ(parsed.jobs[j].coflows.size(), wl.jobs[j].coflows.size());
    for (std::size_t c = 0; c < wl.jobs[j].coflows.size(); ++c) {
      const auto& a = wl.jobs[j].coflows[c];
      const auto& b = parsed.jobs[j].coflows[c];
      EXPECT_EQ(a.starts_after, b.starts_after);
      EXPECT_EQ(a.finishes_before, b.finishes_before);
      EXPECT_EQ(a.deadline, b.deadline);
      ASSERT_EQ(a.flows.size(), b.flows.size());
      for (std::size_t f = 0; f < a.flows.size(); ++f) {
        EXPECT_EQ(a.flows[f].bytes, b.flows[f].bytes);
        EXPECT_EQ(a.flows[f].start_offset, b.flows[f].start_offset);
      }
    }
  }
}

TEST(TraceFuzz, DeadlineFreeTracesCarryNoDlAttribute) {
  // Backward compatibility in the other direction: a workload without
  // deadlines must serialize byte-identically to the pre-deadline format
  // (dl= is only emitted when set), so old traces and old readers agree.
  coflow::Workload wl = randomWorkload(5);
  for (auto& job : wl.jobs) {
    for (auto& c : job.coflows) c.deadline = 0;
  }
  std::ostringstream os;
  workload::writeTrace(os, wl);
  EXPECT_EQ(os.str().find("dl="), std::string::npos);
}

TEST(TraceFuzz, NegativeDeadlinesStayRejected) {
  coflow::Workload wl = randomWorkload(9);
  wl.jobs.front().coflows.front().deadline = -1.0;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
  // The writer never emits a non-positive deadline, so craft the text by
  // hand: the reader must reject it rather than resurrect it silently.
  coflow::Workload clean = randomWorkload(9);
  std::ostringstream os;
  workload::writeTrace(os, clean);
  std::string text = os.str();
  const auto pos = text.find("coflow ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.insert(eol, " dl=-1");
  std::istringstream is(text);
  EXPECT_ANY_THROW(workload::readTrace(is));
}

TEST(TraceFuzz, DeadlinesAreInertForDeadlineBlindSchedulers) {
  // A deadlined trace replayed under a pre-deadline scheduler must behave
  // exactly as if the dl= attributes were absent — the field only feeds
  // deadline-aware disciplines and the result counters.
  const coflow::Workload deadlined = randomWorkload(3);
  coflow::Workload stripped = deadlined;
  std::size_t with_deadline = 0;
  for (auto& job : stripped.jobs) {
    for (auto& c : job.coflows) {
      with_deadline += c.deadline > 0 ? 1 : 0;
      c.deadline = 0;
    }
  }
  ASSERT_GT(with_deadline, 0u) << "seed lost its deadlines";

  const fabric::FabricConfig fc{deadlined.num_ports, 1.0};
  sched::DClasScheduler a;
  sched::DClasScheduler b;
  const sim::SimResult with = sim::runSimulation(deadlined, fc, a);
  const sim::SimResult without = sim::runSimulation(stripped, fc, b);
  EXPECT_EQ(with.makespan, without.makespan);
  ASSERT_EQ(with.coflows.size(), without.coflows.size());
  for (std::size_t i = 0; i < with.coflows.size(); ++i) {
    EXPECT_EQ(with.coflows[i].finish, without.coflows[i].finish) << i;
    EXPECT_EQ(with.coflows[i].release, without.coflows[i].release) << i;
  }
  // Only the counters differ: the deadlined run reports misses.
  EXPECT_EQ(with.deadline_coflows, with_deadline);
  EXPECT_EQ(without.deadline_coflows, 0u);
  EXPECT_EQ(without.deadline_misses, 0u);
}

TEST(TraceFuzz, ZeroByteFlowsStayRejected) {
  // validate() rejects non-positive flows; the reader must agree rather
  // than resurrect them silently.
  coflow::Workload wl = randomWorkload(7);
  wl.jobs.front().coflows.front().flows.front().bytes = 0.0;
  EXPECT_THROW(wl.validate(), std::invalid_argument);
  std::ostringstream os;
  workload::writeTrace(os, wl);
  std::istringstream is(os.str());
  EXPECT_ANY_THROW(workload::readTrace(is));
}

}  // namespace
}  // namespace aalo
