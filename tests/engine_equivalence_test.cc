// Golden tests for the incremental simulator engine:
//  - legacy (re-allocate every round) vs incremental (allocation reuse,
//    next-completion heap, fused integration) engines must produce the
//    same SimResult for every scheduler, on randomized workloads with
//    racks, multi-wave flows, and Starts-After/Finishes-Before DAGs;
//  - D-CLAS's incrementally maintained queue state must match the
//    retained full-rebuild oracle after arbitrary arrival / demotion /
//    completion sequences;
//  - reuse must actually happen (and be accounted) where the design says
//    it can: Δ > 0 sync boundaries with no demotion.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sched/adaptive.h"
#include "sched/clas.h"
#include "sched/dclas.h"
#include "sched/dcoflow.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/gossip.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sched/sampling.h"
#include "sched/uncoordinated.h"
#include "sched/varys.h"
#include "sim/calendar.h"
#include "sim/simulator.h"
#include "tests/helpers.h"
#include "util/rng.h"
#include "workload/deadlines.h"
#include "workload/facebook.h"

namespace aalo {
namespace {

// ---------------------------------------------------------------------------
// Legacy engine vs incremental engine
// ---------------------------------------------------------------------------

/// Randomized workload exercising everything the engine integrates:
/// multi-coflow jobs, multi-wave start offsets, Starts-After barriers and
/// Finishes-Before pipelines.
coflow::Workload dagWorkload(std::uint64_t seed, int ports, int jobs) {
  util::Rng rng(seed);
  std::vector<coflow::JobSpec> out;
  for (int j = 0; j < jobs; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = rng.uniform(0, 6);
    const int coflows = static_cast<int>(rng.uniformInt(1, 3));
    for (int c = 0; c < coflows; ++c) {
      coflow::CoflowSpec spec;
      spec.id = {j, c};
      if (rng.chance(0.3)) spec.arrival_offset = rng.uniform(0, 2);
      const int flows = static_cast<int>(rng.uniformInt(1, 6));
      for (int f = 0; f < flows; ++f) {
        spec.flows.push_back(coflow::FlowSpec{
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            rng.uniform(0.5, 30.0),
            // Multi-wave: a third of flows appear mid-coflow.
            rng.chance(0.35) ? rng.uniform(0.5, 5.0) : 0.0});
      }
      if (c > 0 && rng.chance(0.5)) {
        spec.starts_after.push_back(coflow::CoflowId{j, c - 1});
      } else if (c > 0 && rng.chance(0.4)) {
        spec.finishes_before.push_back(coflow::CoflowId{j, c - 1});
      }
      job.coflows.push_back(std::move(spec));
    }
    out.push_back(std::move(job));
  }
  return testing::makeWorkload(ports, std::move(out));
}

/// Every scheduler in src/sched/, configured so queue transitions, sync
/// boundaries, refits, and quanta all fire within the short runs.
std::vector<std::unique_ptr<sim::Scheduler>> allSchedulers(
    const coflow::Workload& wl) {
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 8;
  dcfg.exp_factor = 4;
  dcfg.num_queues = 4;
  sched::DClasConfig strict = dcfg;
  strict.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
  sched::DClasConfig delayed = dcfg;
  delayed.sync_interval = 0.7;
  sched::DClasConfig delayed_strict = strict;
  delayed_strict.sync_interval = 0.4;
  sched::LasConfig las_cfg;
  las_cfg.quantum = 0.5;
  las_cfg.tie_window = 0.05;
  sched::FifoLmConfig lm_cfg;
  lm_cfg.heavy_threshold = 20;
  lm_cfg.quantum = 0.5;
  sched::ClasConfig clas_cfg;
  clas_cfg.quantum = 0.5;
  clas_cfg.tie_window = 0.05;
  sched::AdaptiveConfig acfg;
  acfg.dclas = dcfg;
  acfg.min_samples = 5;
  acfg.refit_interval = 5;
  sched::GossipConfig gcfg;
  gcfg.dclas = dcfg;
  gcfg.round_interval = 0.5;

  std::vector<std::unique_ptr<sim::Scheduler>> out;
  out.push_back(std::make_unique<sched::PerFlowFairScheduler>());
  out.push_back(std::make_unique<sched::DClasScheduler>(dcfg));
  out.push_back(std::make_unique<sched::DClasScheduler>(strict));
  out.push_back(std::make_unique<sched::DClasScheduler>(delayed));
  out.push_back(std::make_unique<sched::DClasScheduler>(delayed_strict));
  out.push_back(std::make_unique<sched::VarysScheduler>());
  out.push_back(std::make_unique<sched::VarysScheduler>(sched::VarysConfig{0.2}));
  out.push_back(std::make_unique<sched::DecentralizedLasScheduler>(las_cfg));
  out.push_back(std::make_unique<sched::FifoLmScheduler>(lm_cfg));
  out.push_back(std::make_unique<sched::FifoScheduler>());
  out.push_back(std::make_unique<sched::FifoScheduler>(sched::FifoConfig{true}));
  out.push_back(std::make_unique<sched::ContinuousClasScheduler>(clas_cfg));
  out.push_back(std::make_unique<sched::UncoordinatedDClasScheduler>(dcfg, 0.5));
  out.push_back(std::make_unique<sched::AdaptiveDClasScheduler>(acfg));
  out.push_back(std::make_unique<sched::GossipDClasScheduler>(gcfg));
  out.push_back(std::make_unique<sched::OfflineOrderScheduler>(
      sched::computeConcurrentOpenShopOrder(wl)));
  sched::SamplingConfig sampling_cfg;
  sampling_cfg.probe_fraction = 0.34;
  sampling_cfg.min_probes = 1;
  sampling_cfg.quantum = 0.5;
  out.push_back(std::make_unique<sched::SamplingScheduler>(sampling_cfg));
  sched::SamplingConfig full_probe = sampling_cfg;
  full_probe.probe_fraction = 1.0;  // Estimates become exact -> pure SEBF.
  full_probe.quantum = 0.25;
  out.push_back(std::make_unique<sched::SamplingScheduler>(full_probe));
  out.push_back(std::make_unique<sched::DCoflowScheduler>());
  sched::DCoflowConfig strict_admission;
  strict_admission.admission_margin = 1.5;
  out.push_back(std::make_unique<sched::DCoflowScheduler>(strict_admission));
  return out;
}

/// dagWorkload plus per-coflow deadlines (tight enough that dcoflow's
/// admission control actually rejects under contention).
coflow::Workload deadlineWorkload(std::uint64_t seed, int ports, int jobs) {
  coflow::Workload wl = dagWorkload(seed, ports, jobs);
  workload::DeadlineConfig dl;
  dl.slack = 0.8;
  dl.seed = seed;
  dl.port_capacity = 1.0;  // Matches testing::unitFabric.
  workload::assignDeadlines(wl, dl);
  return wl;
}

sim::SimResult runEngine(const coflow::Workload& wl, fabric::FabricConfig fc,
                         sim::Scheduler& sched, bool incremental) {
  sim::SimOptions opts;
  opts.verify_allocations = true;
  opts.incremental_engine = incremental;
  return sim::runSimulation(wl, fc, sched, opts);
}

void expectSameResult(const sim::SimResult& legacy, const sim::SimResult& incr,
                      const std::string& label) {
  constexpr double kTol = 1e-9;
  EXPECT_EQ(legacy.scheduler, incr.scheduler) << label;
  EXPECT_NEAR(legacy.makespan, incr.makespan, kTol) << label;
  ASSERT_EQ(legacy.coflows.size(), incr.coflows.size()) << label;
  for (std::size_t i = 0; i < legacy.coflows.size(); ++i) {
    EXPECT_EQ(legacy.coflows[i].id, incr.coflows[i].id) << label;
    EXPECT_NEAR(legacy.coflows[i].release, incr.coflows[i].release, kTol)
        << label << " coflow " << i;
    EXPECT_NEAR(legacy.coflows[i].finish_own, incr.coflows[i].finish_own, kTol)
        << label << " coflow " << i;
    EXPECT_NEAR(legacy.coflows[i].finish, incr.coflows[i].finish, kTol)
        << label << " coflow " << i;
    EXPECT_EQ(legacy.coflows[i].bytes, incr.coflows[i].bytes) << label;
    EXPECT_EQ(legacy.coflows[i].width, incr.coflows[i].width) << label;
  }
  ASSERT_EQ(legacy.jobs.size(), incr.jobs.size()) << label;
  for (std::size_t i = 0; i < legacy.jobs.size(); ++i) {
    EXPECT_NEAR(legacy.jobs[i].comm_finish, incr.jobs[i].comm_finish, kTol)
        << label << " job " << i;
  }
  // Both engines walk the same event sequence; only the bookkeeping
  // differs.
  EXPECT_EQ(legacy.allocation_rounds, incr.allocation_rounds) << label;
  EXPECT_EQ(legacy.reused_allocations, 0u) << label;
  EXPECT_EQ(incr.allocation_rounds, incr.allocate_calls + incr.reused_allocations)
      << label;
}

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, AllSchedulersFlatFabric) {
  const auto wl =
      dagWorkload(1000 + static_cast<std::uint64_t>(GetParam()), 6, 10);
  const auto fc = testing::unitFabric(6);
  const auto legacy_scheds = allSchedulers(wl);
  const auto incr_scheds = allSchedulers(wl);
  for (std::size_t s = 0; s < legacy_scheds.size(); ++s) {
    const auto legacy = runEngine(wl, fc, *legacy_scheds[s], false);
    const auto incr = runEngine(wl, fc, *incr_scheds[s], true);
    expectSameResult(legacy, incr, legacy_scheds[s]->name());
  }
}

TEST_P(EngineEquivalence, AllSchedulersRackFabric) {
  const auto wl =
      dagWorkload(2000 + static_cast<std::uint64_t>(GetParam()), 8, 10);
  fabric::FabricConfig fc = testing::unitFabric(8);
  fc.rack.ports_per_rack = 4;
  fc.rack.oversubscription = 2.0;
  const auto legacy_scheds = allSchedulers(wl);
  const auto incr_scheds = allSchedulers(wl);
  for (std::size_t s = 0; s < legacy_scheds.size(); ++s) {
    const auto legacy = runEngine(wl, fc, *legacy_scheds[s], false);
    const auto incr = runEngine(wl, fc, *incr_scheds[s], true);
    expectSameResult(legacy, incr, legacy_scheds[s]->name());
  }
}

// Deadlined workloads: dcoflow's admission decisions and sampling's
// estimate transitions must land on identical rounds in both engines, and
// deadline-blind schedulers must be bit-identical to the deadline-free
// case (the field is inert for them — covered by the golden pins).
TEST_P(EngineEquivalence, DeadlinedWorkloadAllSchedulers) {
  const auto wl =
      deadlineWorkload(6000 + static_cast<std::uint64_t>(GetParam()), 6, 10);
  const auto fc = testing::unitFabric(6);
  const auto legacy_scheds = allSchedulers(wl);
  const auto incr_scheds = allSchedulers(wl);
  for (std::size_t s = 0; s < legacy_scheds.size(); ++s) {
    const auto legacy = runEngine(wl, fc, *legacy_scheds[s], false);
    const auto incr = runEngine(wl, fc, *incr_scheds[s], true);
    expectSameResult(legacy, incr, legacy_scheds[s]->name());
    EXPECT_EQ(legacy.rejected_coflows, incr.rejected_coflows)
        << legacy_scheds[s]->name();
    EXPECT_EQ(legacy.deadline_misses, incr.deadline_misses)
        << legacy_scheds[s]->name();
  }
}

// The new schedulers across decision quanta Delta in {10ms, 100ms, 1s}:
// shorter quanta mean more wakeup rounds whose reuse handshake must stay
// exact (sampling orderings drift with attained service between rounds).
TEST_P(EngineEquivalence, NewSchedulerQuantumSweep) {
  const auto wl =
      deadlineWorkload(7000 + static_cast<std::uint64_t>(GetParam()), 6, 8);
  const auto fc = testing::unitFabric(6);
  for (const double quantum : {0.01, 0.1, 1.0}) {
    sched::SamplingConfig cfg;
    cfg.probe_fraction = 0.5;
    cfg.min_probes = 1;
    cfg.quantum = quantum;
    sched::SamplingScheduler legacy_sched(cfg);
    sched::SamplingScheduler incr_sched(cfg);
    const auto legacy = runEngine(wl, fc, legacy_sched, false);
    const auto incr = runEngine(wl, fc, incr_sched, true);
    expectSameResult(legacy, incr,
                     "sampling quantum=" + std::to_string(quantum));
  }
  for (const double margin : {1.0, 2.0}) {
    sched::DCoflowConfig cfg;
    cfg.admission_margin = margin;
    sched::DCoflowScheduler legacy_sched(cfg);
    sched::DCoflowScheduler incr_sched(cfg);
    const auto legacy = runEngine(wl, fc, legacy_sched, false);
    const auto incr = runEngine(wl, fc, incr_sched, true);
    expectSameResult(legacy, incr, "dcoflow margin=" + std::to_string(margin));
    // The admission log is part of the schedule: both engines must have
    // decided the same coflows the same way.
    ASSERT_EQ(legacy_sched.admissionLog().size(), incr_sched.admissionLog().size());
    for (std::size_t i = 0; i < legacy_sched.admissionLog().size(); ++i) {
      EXPECT_EQ(legacy_sched.admissionLog()[i].id, incr_sched.admissionLog()[i].id);
      EXPECT_EQ(legacy_sched.admissionLog()[i].admitted,
                incr_sched.admissionLog()[i].admitted);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineEquivalence, ::testing::Range(0, 4));

// Same scheduler object used for a legacy run then an incremental run:
// reset() must clear all persistent/tracking state between engines.
TEST(EngineEquivalence, ResetClearsPersistentStateAcrossEngines) {
  const auto wl = dagWorkload(42, 5, 8);
  const auto fc = testing::unitFabric(5);
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 8;
  dcfg.exp_factor = 4;
  dcfg.num_queues = 4;
  dcfg.sync_interval = 0.5;
  sched::DClasScheduler sched(dcfg);
  const auto legacy = runEngine(wl, fc, sched, false);
  const auto incr = runEngine(wl, fc, sched, true);
  const auto legacy2 = runEngine(wl, fc, sched, false);
  expectSameResult(legacy, incr, "shared-instance");
  expectSameResult(legacy, legacy2, "legacy-rerun");
}

// On a Facebook-mix workload with Δ > 0, sync-boundary wake-ups with no
// demotion must be classified as reuse rounds — the core perf claim.
TEST(EngineEquivalence, DelayedDClasActuallyReusesAllocations) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 60;
  cfg.num_ports = 20;
  cfg.seed = 5;
  cfg.mean_interarrival = 0.3;
  const auto wl = workload::generateFacebookWorkload(cfg);
  const fabric::FabricConfig fc{20, util::kGbps};
  sched::DClasConfig dcfg;
  dcfg.sync_interval = 0.05;
  sched::DClasScheduler sched(dcfg);
  sim::SimOptions opts;
  opts.incremental_engine = true;
  const auto result = sim::runSimulation(wl, fc, sched, opts);
  EXPECT_GT(result.reused_allocations, 0u);
  EXPECT_EQ(result.allocation_rounds,
            result.allocate_calls + result.reused_allocations);
  EXPECT_GT(result.heap_rebuilds, 0u);
}

// ---------------------------------------------------------------------------
// Event-vs-legacy fuzz: arrival bursts, simultaneous completions, ties
// ---------------------------------------------------------------------------

/// Adversarial workload for the event calendar: arrivals quantized to a
/// coarse grid (simultaneous release bursts), exact-duplicate flows on
/// the same port pair (identical rates, so completions tie to the bit),
/// and sub-slack flows that complete the instant they are released
/// (zero-duration events). Integer byte sizes keep equal-rate completion
/// times exactly representable, so ties are real, not epsilon-close.
coflow::Workload burstWorkload(std::uint64_t seed, int ports, int jobs) {
  util::Rng rng(seed);
  std::vector<coflow::JobSpec> out;
  for (int j = 0; j < jobs; ++j) {
    coflow::JobSpec job;
    job.id = j;
    // Four distinct instants: every job lands on top of others.
    job.arrival = static_cast<double>(rng.uniformInt(0, 3));
    const int coflows = static_cast<int>(rng.uniformInt(1, 2));
    for (int c = 0; c < coflows; ++c) {
      coflow::CoflowSpec spec;
      spec.id = {j, c};
      const int flows = static_cast<int>(rng.uniformInt(1, 5));
      coflow::FlowSpec prev{};
      for (int f = 0; f < flows; ++f) {
        if (f > 0 && rng.chance(0.4)) {
          // Exact duplicate: same ports, same bytes, same wave offset —
          // the flows stay rate-identical for their whole lifetime and
          // complete in the same round.
          spec.flows.push_back(prev);
          continue;
        }
        coflow::FlowSpec fs{
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
            rng.chance(0.2) ? 1e-4  // Below completion slack: zero-duration.
                            : static_cast<double>(rng.uniformInt(1, 12)),
            rng.chance(0.3) ? static_cast<double>(rng.uniformInt(1, 3)) : 0.0};
        spec.flows.push_back(fs);
        prev = fs;
      }
      if (c > 0 && rng.chance(0.4)) {
        spec.starts_after.push_back(coflow::CoflowId{j, c - 1});
      }
      job.coflows.push_back(std::move(spec));
    }
    out.push_back(std::move(job));
  }
  return testing::makeWorkload(ports, std::move(out));
}

class EngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzz, BurstsAndTiesMatchLegacy) {
  const auto wl =
      burstWorkload(5000 + static_cast<std::uint64_t>(GetParam()), 6, 12);
  const auto fc = testing::unitFabric(6);
  const auto legacy_scheds = allSchedulers(wl);
  const auto incr_scheds = allSchedulers(wl);
  for (std::size_t s = 0; s < legacy_scheds.size(); ++s) {
    const auto legacy = runEngine(wl, fc, *legacy_scheds[s], false);
    const auto incr = runEngine(wl, fc, *incr_scheds[s], true);
    expectSameResult(legacy, incr, legacy_scheds[s]->name());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineFuzz, ::testing::Range(0, 4));

// Same-time completions are processed in the legacy scan's slot order
// (DESIGN.md section 7), which makes tied outcomes deterministic: two
// incremental runs of a tie-heavy workload must agree bitwise, not just
// to tolerance.
TEST(EngineFuzz, TieBreakOrderIsDeterministic) {
  const auto wl = burstWorkload(77, 6, 12);
  const auto fc = testing::unitFabric(6);
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 4;
  dcfg.exp_factor = 3;
  dcfg.num_queues = 4;
  sched::DClasScheduler first(dcfg);
  sched::DClasScheduler second(dcfg);
  const auto a = runEngine(wl, fc, first, true);
  const auto b = runEngine(wl, fc, second, true);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].id, b.coflows[i].id);
    EXPECT_EQ(a.coflows[i].finish, b.coflows[i].finish) << "coflow " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.allocation_rounds, b.allocation_rounds);
}

// Regression: the clock-resolution completion rule. A flow whose
// remaining transfer time is below one ulp of a large now_ predicts a
// completion at exactly now_; without the sweep's second clause both
// engines pick dt = 0 forever (observed as a live-lock on 100k-coflow
// traces around t = 1.3e5 s). The tiny flow here (1.5e-3 bytes — above
// the 1e-3-byte slack) released at t = 2e5 against a 1 GbE port has
// remaining/rate ~ 1.2e-11 s < ulp(2e5) ~ 2.9e-11 s, the exact
// live-lock shape.
TEST(EngineFuzz, SubUlpRemainingCompletesInsteadOfSpinning) {
  const fabric::FabricConfig fc{4, util::kGbps};
  std::vector<coflow::JobSpec> jobs;
  // 2.5e13 bytes at 1.25e8 B/s: finishes at exactly t = 200000 s.
  jobs.push_back(testing::makeJob(0, 0.0, {{0, 1, 2.5e13}}));
  jobs.push_back(testing::makeJob(1, 199999.5, {{2, 3, 1.5e-3}}));
  const auto wl = testing::makeWorkload(4, std::move(jobs));
  sim::SimOptions opts;
  opts.max_rounds = 100'000;  // Fails fast if the live-lock regresses.
  for (const bool incremental : {false, true}) {
    opts.incremental_engine = incremental;
    sched::PerFlowFairScheduler fair;
    const auto result = sim::runSimulation(wl, fc, fair, opts);
    ASSERT_EQ(result.coflows.size(), 2u) << "incremental=" << incremental;
    // The tiny flow's CCT collapses to (release of its last byte): its
    // finish is its release instant at clock resolution.
    EXPECT_NEAR(testing::cctOf(result, {1, 0}), 0.0, 1e-6)
        << "incremental=" << incremental;
    EXPECT_NEAR(result.makespan, 200000.0, 1e-6)
        << "incremental=" << incremental;
  }
}

// ---------------------------------------------------------------------------
// EventCalendar heap-invariant property test
// ---------------------------------------------------------------------------

// Random churn against a naive shadow model: after every operation both
// binary heaps must satisfy the ordering invariant, and every query
// (nextCompletion, drainSnapDue, collectCompletionsNear) must agree with
// the model's notion of the valid entry set.
TEST(EventCalendarProperty, HeapInvariantUnderRandomChurn) {
  util::Rng rng(901);
  sim::EventCalendar cal;
  constexpr std::size_t kFlows = 160;
  cal.reset(kFlows);
  std::vector<char> has_c(kFlows, 0), has_s(kFlows, 0);
  std::vector<double> key_c(kFlows, 0.0), key_s(kFlows, 0.0);
  std::vector<std::uint32_t> due;
  double now = 0.0;

  const auto model_min_completion = [&]() {
    double best = sim::kInfTime;
    for (std::size_t i = 0; i < kFlows; ++i) {
      if (has_c[i]) best = std::min(best, key_c[i]);
    }
    return best;
  };

  for (int step = 0; step < 6000; ++step) {
    const auto fi = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(kFlows) - 1));
    switch (rng.uniformInt(0, 5)) {
      case 0:  // Re-key one flow (rate change at install).
        cal.invalidate(fi);
        key_c[fi] = now + rng.uniform(0.0, 10.0);
        key_s[fi] = now + rng.uniform(0.0, 10.0);
        cal.pushCompletion(fi, key_c[fi]);
        cal.pushSnap(fi, key_s[fi]);
        has_c[fi] = 1;
        has_s[fi] = 1;
        break;
      case 1:  // Completion: drop both entries.
        cal.invalidate(fi);
        has_c[fi] = 0;
        has_s[fi] = 0;
        break;
      case 2:  // Peek must match the model's minimum exactly.
        EXPECT_EQ(cal.nextCompletion(), model_min_completion()) << "step " << step;
        break;
      case 3: {  // Drain snaps due by an advancing clock.
        now += rng.uniform(0.0, 1.5);
        cal.drainSnapDue(now, due);
        std::vector<std::uint32_t> expected;
        for (std::size_t i = 0; i < kFlows; ++i) {
          if (has_s[i] && key_s[i] <= now) {
            expected.push_back(static_cast<std::uint32_t>(i));
            has_s[i] = 0;
          }
        }
        std::sort(due.begin(), due.end());
        EXPECT_EQ(due, expected) << "step " << step;
        break;
      }
      case 4:  // Round-boundary compaction.
        cal.compactIfBloated();
        break;
      default: {  // Wholesale rebuild from the model's valid set.
        cal.beginRebuild();
        for (std::size_t i = 0; i < kFlows; ++i) {
          if (has_c[i]) cal.stageCompletion(i, key_c[i]);
          if (has_s[i]) cal.stageSnap(i, key_s[i]);
        }
        cal.finishRebuild();
        break;
      }
    }
    ASSERT_TRUE(cal.checkHeapInvariant()) << "step " << step;
  }

  // Final cross-check: nomination window collection vs the model.
  const double bound = now + 5.0;
  std::vector<std::uint32_t> out;
  cal.collectCompletionsNear(bound, out);
  std::vector<std::uint32_t> expected;
  for (std::size_t i = 0; i < kFlows; ++i) {
    if (has_c[i] && key_c[i] <= bound) {
      expected.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, expected);
}

// ---------------------------------------------------------------------------
// D-CLAS incremental queue state vs full-rebuild oracle
// ---------------------------------------------------------------------------

/// Forwards everything to an inner DClasScheduler and, after every
/// allocation round, checks the incrementally maintained queues against
/// the from-scratch partition+sort oracle.
class QueueOracleScheduler final : public sim::Scheduler {
 public:
  explicit QueueOracleScheduler(sched::DClasConfig config) : inner_(config) {}

  std::string name() const override { return "queue-oracle"; }
  void reset(const fabric::Fabric& fabric) override { inner_.reset(fabric); }
  void onCoflowFinished(const sim::SimView& view, std::size_t ci) override {
    inner_.onCoflowFinished(view, ci);
  }
  void onFlowStarted(const sim::SimView& view, std::size_t fi) override {
    inner_.onFlowStarted(view, fi);
  }
  void onFlowCompleted(const sim::SimView& view, std::size_t fi) override {
    inner_.onFlowCompleted(view, fi);
  }
  std::uint64_t scheduleEpoch(const sim::SimView& view) override {
    return inner_.scheduleEpoch(view);
  }
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override {
    inner_.allocate(view, rates);
    ++rounds_checked_;
    ASSERT_TRUE(inner_.tracking(view)) << "round " << rounds_checked_;
    EXPECT_EQ(inner_.queueSnapshot(), inner_.referenceQueueSnapshot(view))
        << "round " << rounds_checked_;
  }
  util::Seconds nextWakeup(const sim::SimView& view) override {
    return inner_.nextWakeup(view);
  }
  std::size_t roundsChecked() const { return rounds_checked_; }

 private:
  sched::DClasScheduler inner_;
  std::size_t rounds_checked_ = 0;
};

class DClasQueueOracle : public ::testing::TestWithParam<int> {};

TEST_P(DClasQueueOracle, IncrementalQueuesMatchRebuild) {
  // Small thresholds + waves + Δ variants drive plenty of arrivals,
  // demotions (instant and boundary-delayed), and completions.
  const auto wl =
      dagWorkload(3000 + static_cast<std::uint64_t>(GetParam()), 6, 12);
  const auto fc = testing::unitFabric(6);
  for (const util::Seconds delta : {0.0, 0.3}) {
    sched::DClasConfig dcfg;
    dcfg.first_threshold = 4;
    dcfg.exp_factor = 3;
    dcfg.num_queues = 5;
    dcfg.sync_interval = delta;
    QueueOracleScheduler oracle(dcfg);
    sim::SimOptions opts;
    opts.incremental_engine = true;
    const auto result = sim::runSimulation(wl, fc, oracle, opts);
    EXPECT_EQ(result.coflows.size(), wl.coflowCount());
    EXPECT_GT(oracle.roundsChecked(), 0u);
  }
}

TEST_P(DClasQueueOracle, StrictPolicyQueuesMatchRebuild) {
  const auto wl =
      dagWorkload(4000 + static_cast<std::uint64_t>(GetParam()), 6, 10);
  const auto fc = testing::unitFabric(6);
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 4;
  dcfg.exp_factor = 3;
  dcfg.num_queues = 5;
  dcfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
  QueueOracleScheduler oracle(dcfg);
  sim::SimOptions opts;
  opts.incremental_engine = true;
  const auto result = sim::runSimulation(wl, fc, oracle, opts);
  EXPECT_EQ(result.coflows.size(), wl.coflowCount());
  EXPECT_GT(oracle.roundsChecked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DClasQueueOracle, ::testing::Range(0, 4));

}  // namespace
}  // namespace aalo
