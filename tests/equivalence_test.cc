// Randomized equivalence tests for the hot-path rework:
//  - the arena-based maxMinAllocate against the retained reference
//    implementation on fuzzed demand sets (with and without racks);
//  - sim::runBatch against a serial loop (results must match exactly,
//    independent of thread count).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fabric/maxmin.h"
#include "sim/batch.h"
#include "sched/common.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/varys.h"
#include "workload/facebook.h"

namespace aalo {
namespace {

// ---------------------------------------------------------------------------
// maxMinAllocate vs maxMinAllocateReference
// ---------------------------------------------------------------------------

struct FuzzCase {
  fabric::FabricConfig config;
  std::vector<fabric::Demand> demands;
};

FuzzCase makeCase(std::mt19937_64& rng, bool with_racks) {
  FuzzCase c;
  std::uniform_int_distribution<int> ports_dist(2, 48);
  int ports = ports_dist(rng);
  if (with_racks) {
    std::uniform_int_distribution<int> per_rack(2, 8);
    const int ppr = per_rack(rng);
    ports = std::max(ppr, (ports / ppr) * ppr);  // Multiple of ppr.
    c.config.rack.ports_per_rack = ppr;
    c.config.rack.oversubscription = std::uniform_real_distribution<>(1.0, 8.0)(rng);
  }
  c.config.num_ports = ports;
  c.config.port_capacity = util::kGbps;

  std::uniform_int_distribution<int> n_dist(1, 64);
  std::uniform_int_distribution<int> port_dist(0, ports - 1);
  std::uniform_real_distribution<double> weight_dist(0.25, 4.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const int n = n_dist(rng);
  for (int i = 0; i < n; ++i) {
    fabric::Demand d;
    d.src = port_dist(rng);
    d.dst = port_dist(rng);
    const double w = unit(rng);
    if (w < 0.1) {
      d.weight = 0.0;  // Must yield exactly zero rate.
    } else if (w < 0.8) {
      d.weight = weight_dist(rng);
    }  // else weight stays 1.0 — the common case.
    const double cap = unit(rng);
    if (cap < 0.3) {
      // Caps spanning "binds immediately" to "never binds".
      d.rate_cap = c.config.port_capacity * std::pow(10.0, 2.0 * unit(rng) - 1.5);
    }
    c.demands.push_back(d);
  }
  return c;
}

void expectEquivalent(const FuzzCase& c, fabric::MaxMinScratch& scratch,
                      std::uint64_t seed) {
  const fabric::Fabric fab(c.config);
  fabric::ResidualCapacity res_opt(fab);
  fabric::ResidualCapacity res_ref(fab);

  const std::vector<util::Rate>& opt =
      fabric::maxMinAllocate(c.demands, res_opt, scratch);
  const std::vector<util::Rate> ref = fabric::maxMinAllocateReference(c.demands, res_ref);

  ASSERT_EQ(opt.size(), ref.size()) << "seed " << seed;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(opt[i], ref[i], 1e-9) << "seed " << seed << " demand " << i;
  }
  // Both must have consumed the residual identically.
  for (int p = 0; p < fab.numPorts(); ++p) {
    EXPECT_NEAR(res_opt.ingress(p), res_ref.ingress(p), 1e-9)
        << "seed " << seed << " ingress " << p;
    EXPECT_NEAR(res_opt.egress(p), res_ref.egress(p), 1e-9)
        << "seed " << seed << " egress " << p;
  }
  if (fab.hasRacks()) {
    for (int r = 0; r < fab.numRacks(); ++r) {
      EXPECT_NEAR(res_opt.rackUplink(r), res_ref.rackUplink(r), 1e-9)
          << "seed " << seed << " uplink " << r;
      EXPECT_NEAR(res_opt.rackDownlink(r), res_ref.rackDownlink(r), 1e-9)
          << "seed " << seed << " downlink " << r;
    }
  }
}

TEST(MaxMinEquivalence, FuzzedDemandSetsNoRacks) {
  std::mt19937_64 rng(0xaa10);
  fabric::MaxMinScratch scratch;  // Shared across all cases: tests arena reuse.
  for (int iter = 0; iter < 1000; ++iter) {
    expectEquivalent(makeCase(rng, /*with_racks=*/false), scratch, 0xaa10 + iter);
  }
}

TEST(MaxMinEquivalence, FuzzedDemandSetsWithRacks) {
  std::mt19937_64 rng(0xbb20);
  fabric::MaxMinScratch scratch;
  for (int iter = 0; iter < 1000; ++iter) {
    expectEquivalent(makeCase(rng, /*with_racks=*/true), scratch, 0xbb20 + iter);
  }
}

TEST(MaxMinEquivalence, ScratchAliasedAsInput) {
  // The documented contract: scratch.demands may be the input span.
  std::mt19937_64 rng(0xcc30);
  fabric::MaxMinScratch scratch;
  for (int iter = 0; iter < 50; ++iter) {
    const FuzzCase c = makeCase(rng, iter % 2 == 1);
    const fabric::Fabric fab(c.config);
    fabric::ResidualCapacity res_opt(fab);
    fabric::ResidualCapacity res_ref(fab);
    scratch.demands = c.demands;
    const std::vector<util::Rate>& opt =
        fabric::maxMinAllocate(scratch.demands, res_opt, scratch);
    const std::vector<util::Rate> ref =
        fabric::maxMinAllocateReference(c.demands, res_ref);
    ASSERT_EQ(opt.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(opt[i], ref[i], 1e-9) << "iter " << iter << " demand " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// sim::runBatch vs serial execution
// ---------------------------------------------------------------------------

coflow::Workload batchWorkload(std::uint64_t seed) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 40;
  cfg.num_ports = 20;
  cfg.seed = seed;
  cfg.mean_interarrival = 0.3;
  return workload::generateFacebookWorkload(cfg);
}

std::vector<sim::BatchJob> batchJobs(const coflow::Workload& wl) {
  const fabric::FabricConfig fc{20, util::kGbps};
  std::vector<sim::BatchJob> jobs;
  auto add = [&](std::function<std::unique_ptr<sim::Scheduler>()> make) {
    sim::BatchJob j;
    j.workload = &wl;
    j.fabric = fc;
    j.make_scheduler = std::move(make);
    jobs.push_back(std::move(j));
  };
  add([] { return std::make_unique<sched::DClasScheduler>(); });
  add([] {
    sched::DClasConfig cfg;
    cfg.sync_interval = 0.1;
    return std::make_unique<sched::DClasScheduler>(cfg);
  });
  add([] { return std::make_unique<sched::PerFlowFairScheduler>(); });
  add([] { return std::make_unique<sched::VarysScheduler>(); });
  add([] {
    sched::DClasConfig cfg;
    cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    return std::make_unique<sched::DClasScheduler>(cfg);
  });
  return jobs;
}

/// Exact comparison — every double bitwise equal, so thread count and
/// completion order provably cannot leak into results.
void expectIdentical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.allocation_rounds, b.allocation_rounds);
  ASSERT_EQ(a.coflows.size(), b.coflows.size());
  for (std::size_t i = 0; i < a.coflows.size(); ++i) {
    EXPECT_EQ(a.coflows[i].id, b.coflows[i].id);
    EXPECT_EQ(a.coflows[i].job, b.coflows[i].job);
    EXPECT_EQ(a.coflows[i].release, b.coflows[i].release);
    EXPECT_EQ(a.coflows[i].finish, b.coflows[i].finish);
    EXPECT_EQ(a.coflows[i].bytes, b.coflows[i].bytes);
    EXPECT_EQ(a.coflows[i].width, b.coflows[i].width);
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].comm_finish, b.jobs[i].comm_finish);
    EXPECT_EQ(a.jobs[i].compute_time, b.jobs[i].compute_time);
  }
}

TEST(BatchRunner, MatchesSerialExecutionExactly) {
  const coflow::Workload wl = batchWorkload(7);
  const std::vector<sim::BatchJob> jobs = batchJobs(wl);

  sim::BatchOptions serial;
  serial.num_threads = 1;
  const std::vector<sim::SimResult> base = sim::runBatch(jobs, serial);
  ASSERT_EQ(base.size(), jobs.size());

  for (const int threads : {2, 4, 8}) {
    sim::BatchOptions opts;
    opts.num_threads = threads;
    const std::vector<sim::SimResult> got = sim::runBatch(jobs, opts);
    ASSERT_EQ(got.size(), base.size()) << threads << " threads";
    for (std::size_t i = 0; i < base.size(); ++i) {
      SCOPED_TRACE(testing::Message() << threads << " threads, job " << i);
      expectIdentical(base[i], got[i]);
    }
  }
}

TEST(BatchRunner, OnDoneFiresOncePerJobAndIsSerialized) {
  const coflow::Workload wl = batchWorkload(9);
  const std::vector<sim::BatchJob> jobs = batchJobs(wl);
  std::vector<int> calls(jobs.size(), 0);
  int in_flight = 0;  // Mutated without atomics: the lock must protect it.
  sim::BatchOptions opts;
  opts.num_threads = 4;
  opts.on_done = [&](std::size_t index, const sim::BatchJob&,
                     const sim::SimResult& result, double wall) {
    ++in_flight;
    EXPECT_EQ(in_flight, 1);
    ASSERT_LT(index, calls.size());
    ++calls[index];
    EXPECT_FALSE(result.scheduler.empty());
    EXPECT_GE(wall, 0.0);
    --in_flight;
  };
  (void)sim::runBatch(jobs, opts);
  for (std::size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i], 1) << "job " << i;
  }
}

TEST(BatchRunner, FirstExceptionInSubmissionOrderWins) {
  const coflow::Workload wl = batchWorkload(11);
  std::vector<sim::BatchJob> jobs = batchJobs(wl);
  // Jobs 1 and 3 fail; the rethrown error must be job 1's regardless of
  // which worker hits it first.
  jobs[1].make_scheduler = []() -> std::unique_ptr<sim::Scheduler> {
    throw std::runtime_error("boom-1");
  };
  jobs[3].make_scheduler = []() -> std::unique_ptr<sim::Scheduler> {
    throw std::runtime_error("boom-3");
  };
  sim::BatchOptions opts;
  opts.num_threads = 4;
  try {
    (void)sim::runBatch(jobs, opts);
    FAIL() << "expected runBatch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-1");
  }
}

TEST(BatchRunner, RejectsNullWorkload) {
  std::vector<sim::BatchJob> jobs(1);
  jobs[0].make_scheduler = [] { return std::make_unique<sched::PerFlowFairScheduler>(); };
  EXPECT_THROW((void)sim::runBatch(jobs), std::invalid_argument);
}

TEST(BatchRunner, EmptyBatchReturnsEmpty) {
  EXPECT_TRUE(sim::runBatch({}).empty());
}

}  // namespace
}  // namespace aalo
