#include <gtest/gtest.h>

#include <sys/epoll.h>

#include <chrono>
#include <thread>

#include "net/buffer.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace aalo::net {
namespace {

TEST(Buffer, PrimitiveRoundTrip) {
  Buffer b;
  b.putU8(0xAB);
  b.putU32(0xDEADBEEF);
  b.putU64(0x0123456789ABCDEFull);
  b.putI64(-42);
  b.putDouble(3.14159);
  b.putString("hello");
  EXPECT_EQ(b.getU8(), 0xAB);
  EXPECT_EQ(b.getU32(), 0xDEADBEEFu);
  EXPECT_EQ(b.getU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(b.getI64(), -42);
  EXPECT_DOUBLE_EQ(b.getDouble(), 3.14159);
  EXPECT_EQ(b.getString(), "hello");
  EXPECT_TRUE(b.empty());
}

TEST(Buffer, UnderrunThrows) {
  Buffer b;
  b.putU8(1);
  EXPECT_THROW(b.getU32(), std::out_of_range);
  Buffer c;
  c.putU32(100);  // String length 100 with no payload.
  EXPECT_THROW(c.getString(), std::out_of_range);
}

TEST(Buffer, ConsumeOverrunThrows) {
  Buffer b;
  b.putU32(7);
  EXPECT_THROW(b.consume(5), std::out_of_range);
}

TEST(Buffer, GrowsAndCompacts) {
  Buffer b;
  std::vector<std::uint8_t> blob(100000, 0x5A);
  for (int i = 0; i < 5; ++i) {
    b.append(blob.data(), blob.size());
    b.consume(blob.size() / 2);
  }
  // Still coherent after interleaved appends/consumes.
  const auto view = b.readable();
  for (const auto byte : view) EXPECT_EQ(byte, 0x5A);
}

TEST(Protocol, AllMessageTypesRoundTrip) {
  std::vector<Message> messages;
  {
    Message m;
    m.type = MessageType::kHello;
    m.daemon_id = 77;
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kRegisterCoflow;
    m.request_id = 5;
    m.parents = {{42, 1}, {42, 2}};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kRegisterReply;
    m.request_id = 5;
    m.coflow = {42, 3};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kUnregisterCoflow;
    m.coflow = {7, 0};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kSizeReport;
    m.daemon_id = 3;
    m.sizes = {{{1, 0}, 1e6}, {{2, 0}, 2.5e9}};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kScheduleUpdate;
    m.epoch = 99;
    m.fence = 2;
    m.schedule = {{{1, 0}, 1e6, 0}, {{2, 0}, 2.5e9, 3}};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kScheduleDelta;
    m.epoch = 100;
    m.base_epoch = 99;
    m.fence = 3;
    m.schedule = {{{3, 1}, 5e7, 2, false}};
    m.removals = {{1, 0}, {2, 0}};
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kFollowerSubscribe;
    m.daemon_id = 9001;
    m.epoch = 17;
    m.fence = 1;
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kScheduleDelta;  // Heartbeat: empty delta.
    m.epoch = 101;
    m.base_epoch = 100;
    messages.push_back(m);
  }
  {
    Message m;
    m.type = MessageType::kSnapshotRequest;
    m.daemon_id = 4;
    m.epoch = 83;
    messages.push_back(m);
  }

  for (const Message& m : messages) {
    Buffer buffer;
    encodeMessage(m, buffer);
    const Message decoded = decodeMessage(buffer);
    EXPECT_EQ(decoded.type, m.type);
    EXPECT_EQ(decoded.daemon_id, m.daemon_id);
    EXPECT_EQ(decoded.request_id, m.request_id);
    EXPECT_EQ(decoded.epoch, m.epoch);
    EXPECT_EQ(decoded.base_epoch, m.base_epoch);
    EXPECT_EQ(decoded.fence, m.fence);
    EXPECT_EQ(decoded.coflow, m.coflow);
    EXPECT_EQ(decoded.parents, m.parents);
    EXPECT_EQ(decoded.sizes, m.sizes);
    EXPECT_EQ(decoded.schedule, m.schedule);
    EXPECT_EQ(decoded.removals, m.removals);
  }
}

// Golden bytes: the kScheduleDelta layout is a cross-version compatibility
// contract (mixed coordinator/daemon versions during a rolling restart),
// so an accidental field reorder must fail loudly, not just round-trip.
TEST(Protocol, ScheduleDeltaGoldenWireFormat) {
  Message m;
  m.type = MessageType::kScheduleDelta;
  m.epoch = 3;
  m.base_epoch = 2;
  m.fence = 5;
  m.schedule = {{{1, 2}, 1.5, 4, true}};
  m.removals = {{7, 0}};
  Buffer buffer;
  encodeMessage(m, buffer);

  const std::uint8_t expected[] = {
      0x07,                                            // type
      0x03, 0, 0, 0, 0, 0, 0, 0,                       // epoch = 3
      0x02, 0, 0, 0, 0, 0, 0, 0,                       // base_epoch = 2
      0x05, 0, 0, 0, 0, 0, 0, 0,                       // fence = 5
      0x01, 0, 0, 0,                                   // 1 entry
      0x01, 0, 0, 0, 0, 0, 0, 0,                       // id.external = 1
      0x02, 0, 0, 0,                                   // id.internal = 2
      0, 0, 0, 0, 0, 0, 0xF8, 0x3F,                    // bytes = 1.5
      0x04, 0, 0, 0,                                   // queue = 4
      0x01,                                            // on
      0x01, 0, 0, 0,                                   // 1 removal
      0x07, 0, 0, 0, 0, 0, 0, 0,                       // removal.external = 7
      0x00, 0, 0, 0,                                   // removal.internal = 0
  };
  const auto view = buffer.readable();
  ASSERT_EQ(view.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(view[i], expected[i]) << "byte " << i;
  }

  const Message decoded = decodeMessage(buffer);
  EXPECT_EQ(decoded.epoch, 3u);
  EXPECT_EQ(decoded.base_epoch, 2u);
  EXPECT_EQ(decoded.fence, 5u);
  EXPECT_EQ(decoded.schedule, m.schedule);
  EXPECT_EQ(decoded.removals, m.removals);
}

TEST(Protocol, RejectsTruncatedScheduleDelta) {
  Message m;
  m.type = MessageType::kScheduleDelta;
  m.epoch = 10;
  m.base_epoch = 9;
  m.schedule = {{{1, 0}, 2e6, 1, true}, {{2, 0}, 3e9, 5, false}};
  m.removals = {{3, 0}};
  Buffer full;
  encodeMessage(m, full);
  const auto bytes = full.readable();
  // Every proper prefix must be rejected (truncation => underrun), never
  // silently decoded as a shorter delta.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Buffer truncated;
    truncated.append(bytes.data(), len);
    EXPECT_THROW(decodeMessage(truncated), std::exception) << "length " << len;
  }
  // And one extra byte is trailing garbage.
  Buffer extended;
  extended.append(bytes.data(), bytes.size());
  extended.putU8(0);
  EXPECT_THROW(decodeMessage(extended), std::runtime_error);
}

TEST(Protocol, RejectsUnknownTypeAndTrailingBytes) {
  Buffer bad;
  bad.putU8(99);
  EXPECT_THROW(decodeMessage(bad), std::runtime_error);

  Message m;
  m.type = MessageType::kHello;
  m.daemon_id = 1;
  Buffer with_trailing;
  encodeMessage(m, with_trailing);
  with_trailing.putU8(0);
  EXPECT_THROW(decodeMessage(with_trailing), std::runtime_error);
}

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> fired;
  const auto now = EventLoop::Clock::now();
  loop.callAt(now + std::chrono::milliseconds(20), [&] { fired.push_back(2); });
  loop.callAt(now + std::chrono::milliseconds(5), [&] { fired.push_back(1); });
  const auto deadline = now + std::chrono::milliseconds(200);
  while (fired.size() < 2 && EventLoop::Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  const auto token = loop.callAfter(std::chrono::milliseconds(5),
                                    [&] { fired = true; });
  loop.cancelTimer(token);
  const auto deadline =
      EventLoop::Clock::now() + std::chrono::milliseconds(50);
  while (EventLoop::Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(fired);
}

TEST(EventLoop, PostRunsOnLoopAndWakes) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.post([&] { ran = true; });
  });
  const auto deadline = EventLoop::Clock::now() + std::chrono::seconds(2);
  while (!ran && EventLoop::Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(100));
  }
  poster.join();
  EXPECT_TRUE(ran);
}

TEST(Sockets, ListenConnectAccept) {
  auto [listener, port] = listenTcp(0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(port, 0);
  Fd client = connectTcp(port);
  ASSERT_TRUE(client.valid());
  Fd server;
  for (int i = 0; i < 100 && !server.valid(); ++i) {
    server = acceptTcp(listener.get());
    if (!server.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.valid());
}

class ConnectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto [listener, port] = listenTcp(0);
    listener_ = std::move(listener);
    client_fd_ = connectTcp(port);
    for (int i = 0; i < 100 && !server_fd_.valid(); ++i) {
      server_fd_ = acceptTcp(listener_.get());
      if (!server_fd_.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(server_fd_.valid());
  }

  void pump(EventLoop& loop, auto done, int max_ms = 2000) {
    const auto deadline =
        EventLoop::Clock::now() + std::chrono::milliseconds(max_ms);
    while (!done() && EventLoop::Clock::now() < deadline) {
      loop.runOnce(std::chrono::milliseconds(10));
    }
  }

  Fd listener_;
  Fd client_fd_;
  Fd server_fd_;
};

TEST_F(ConnectionFixture, FramesRoundTripBothWays) {
  EventLoop loop;
  std::vector<std::string> server_got;
  std::vector<std::string> client_got;
  Connection server(loop, std::move(server_fd_),
                    [&](Buffer& p) { server_got.push_back(p.getString()); }, {});
  Connection client(loop, std::move(client_fd_),
                    [&](Buffer& p) { client_got.push_back(p.getString()); }, {});

  Buffer hello;
  hello.putString("from-client");
  client.sendFrame(hello);
  Buffer reply;
  reply.putString("from-server");
  server.sendFrame(reply);

  pump(loop, [&] { return !server_got.empty() && !client_got.empty(); });
  ASSERT_EQ(server_got.size(), 1u);
  EXPECT_EQ(server_got[0], "from-client");
  ASSERT_EQ(client_got.size(), 1u);
  EXPECT_EQ(client_got[0], "from-server");
}

TEST_F(ConnectionFixture, ManySmallFramesCoalesce) {
  EventLoop loop;
  int received = 0;
  Connection server(loop, std::move(server_fd_),
                    [&](Buffer& p) {
                      EXPECT_EQ(p.getU32(), static_cast<std::uint32_t>(received));
                      ++received;
                    },
                    {});
  Connection client(loop, std::move(client_fd_), {}, {});
  for (std::uint32_t i = 0; i < 500; ++i) {
    Buffer payload;
    payload.putU32(i);
    client.sendFrame(payload);
  }
  pump(loop, [&] { return received == 500; });
  EXPECT_EQ(received, 500);
}

TEST_F(ConnectionFixture, LargeFrameSurvivesPartialWrites) {
  EventLoop loop;
  std::size_t got = 0;
  Connection server(loop, std::move(server_fd_),
                    [&](Buffer& p) { got = p.readableBytes(); }, {});
  Connection client(loop, std::move(client_fd_), {}, {});
  std::vector<std::uint8_t> blob(8 * 1024 * 1024, 0x42);
  client.sendFrame(std::span<const std::uint8_t>(blob));
  pump(loop, [&] { return got == blob.size(); }, 5000);
  EXPECT_EQ(got, blob.size());
}

TEST_F(ConnectionFixture, SharedFrameDeliversAndReleasesBuffer) {
  EventLoop loop;
  std::vector<std::string> got;
  Connection server(loop, std::move(server_fd_),
                    [&](Buffer& p) { got.push_back(p.getString()); }, {});
  Connection client(loop, std::move(client_fd_), {}, {});

  auto shared = std::make_shared<Buffer>();
  shared->putString("broadcast-payload");
  client.sendFrame(std::shared_ptr<const Buffer>(shared));
  pump(loop, [&] { return !got.empty(); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "broadcast-payload");
  // Fully flushed: the connection must have dropped its reference so the
  // sender can reuse the buffer as scratch (use_count()==1 check).
  pump(loop, [&] { return shared.use_count() == 1; });
  EXPECT_EQ(shared.use_count(), 1);
  EXPECT_EQ(client.pendingBytes(), 0u);
}

TEST_F(ConnectionFixture, SharedAndCopiedFramesInterleaveInOrder) {
  EventLoop loop;
  std::vector<std::string> got;
  Connection server(loop, std::move(server_fd_),
                    [&](Buffer& p) { got.push_back(p.getString()); }, {});
  Connection client(loop, std::move(client_fd_), {}, {});

  auto shared = std::make_shared<Buffer>();
  shared->putString("two");
  Buffer first, third;
  first.putString("one");
  third.putString("three");
  client.sendFrame(first);
  client.sendFrame(std::shared_ptr<const Buffer>(shared));
  client.sendFrame(third);
  pump(loop, [&] { return got.size() == 3; });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(got[2], "three");
}

TEST_F(ConnectionFixture, SharedFrameFanoutToManyPeers) {
  EventLoop loop;
  constexpr int kPeers = 8;
  // One listener, kPeers client connections: every peer must receive the
  // same bytes from a single shared encode.
  auto [listener, port] = listenTcp(0);
  std::vector<std::unique_ptr<Connection>> senders;
  std::vector<std::unique_ptr<Connection>> receivers;
  int received = 0;
  for (int i = 0; i < kPeers; ++i) {
    Fd client = connectTcp(port);
    Fd server;
    for (int t = 0; t < 100 && !server.valid(); ++t) {
      server = acceptTcp(listener.get());
      if (!server.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(server.valid());
    receivers.push_back(std::make_unique<Connection>(
        loop, std::move(client),
        [&](Buffer& p) {
          EXPECT_EQ(p.getString(), "fanout");
          ++received;
        },
        nullptr));
    senders.push_back(
        std::make_unique<Connection>(loop, std::move(server), nullptr, nullptr));
  }
  auto shared = std::make_shared<Buffer>();
  shared->putString("fanout");
  for (auto& sender : senders) {
    sender->sendFrame(std::shared_ptr<const Buffer>(shared));
  }
  pump(loop, [&] { return received == kPeers; });
  EXPECT_EQ(received, kPeers);
  pump(loop, [&] { return shared.use_count() == 1; });
  EXPECT_EQ(shared.use_count(), 1);
}

TEST_F(ConnectionFixture, PeerCloseTriggersHandler) {
  EventLoop loop;
  bool closed = false;
  Connection server(loop, std::move(server_fd_), [](Buffer&) {},
                    [&] { closed = true; });
  client_fd_.reset();  // Close the client side.
  pump(loop, [&] { return closed; });
  EXPECT_TRUE(closed);
  EXPECT_TRUE(server.closed());
}

}  // namespace
}  // namespace aalo::net
