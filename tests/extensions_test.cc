// Tests for the §8 extensions: adaptive queue thresholds and gossip-based
// decentralized size aggregation.
#include <gtest/gtest.h>

#include "sched/adaptive.h"
#include "sched/dclas.h"
#include "sched/gossip.h"
#include "sched/uncoordinated.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace aalo::sched {
namespace {

using aalo::testing::FlowDef;
using aalo::testing::avgCct;
using aalo::testing::cctOf;
using aalo::testing::makeJob;
using aalo::testing::makeWorkload;
using aalo::testing::runVerified;
using aalo::testing::unitFabric;

// ------------------------------------------------------------- adaptive --

TEST(AdaptiveDClas, ConfigValidation) {
  AdaptiveConfig cfg;
  cfg.keep_fraction = 1.0;
  EXPECT_THROW(AdaptiveDClasScheduler{cfg}, std::invalid_argument);
  cfg.keep_fraction = 0.4;
  cfg.window = 0;
  EXPECT_THROW(AdaptiveDClasScheduler{cfg}, std::invalid_argument);
}

TEST(DClas, SetThresholdsValidation) {
  DClasScheduler sched{DClasConfig{}};
  EXPECT_THROW(sched.setThresholds({5.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(sched.setThresholds({0.0, 3.0}), std::invalid_argument);
  sched.setThresholds({3.0, 5.0});
  EXPECT_EQ(sched.queueOf(4.0), 1);
}

coflow::Workload scaledWorkload(double scale, std::size_t n, util::Rng& rng) {
  std::vector<coflow::JobSpec> jobs;
  double arrival = 0;
  for (std::size_t j = 0; j < n; ++j) {
    arrival += rng.exponential(2.0);
    coflow::JobSpec job;
    job.id = static_cast<coflow::JobId>(j);
    job.arrival = arrival;
    coflow::CoflowSpec spec;
    spec.id = {static_cast<coflow::JobId>(j), 0};
    // Heavy-tailed sizes at the given scale.
    const double size = rng.pareto(scale, 1.3);
    spec.flows.push_back(coflow::FlowSpec{
        static_cast<coflow::PortId>(rng.uniformInt(0, 3)),
        static_cast<coflow::PortId>(rng.uniformInt(0, 3)), std::min(size, scale * 100),
        0});
    job.coflows.push_back(std::move(spec));
    jobs.push_back(std::move(job));
  }
  return makeWorkload(4, std::move(jobs));
}

TEST(AdaptiveDClas, RefitsThresholdsToObservedScale) {
  util::Rng rng(5);
  const auto wl = scaledWorkload(/*scale=*/1000.0, 120, rng);
  AdaptiveConfig cfg;
  cfg.dclas.num_queues = 4;
  cfg.dclas.first_threshold = 10 * util::kMB;  // Absurd for this workload.
  cfg.min_samples = 20;
  cfg.refit_interval = 10;
  AdaptiveDClasScheduler adaptive(cfg);
  const auto result = runVerified(wl, fabric::FabricConfig{4, 100.0}, adaptive);
  EXPECT_EQ(result.coflows.size(), 120u);
  EXPECT_GT(adaptive.refits(), 0u);
  // After refits, thresholds live at the workload's scale (~1e3), not 1e7.
  ASSERT_EQ(adaptive.thresholds().size(), 3u);
  EXPECT_LT(adaptive.thresholds().front(), 1e5);
  EXPECT_GT(adaptive.thresholds().front(), 100.0);
}

TEST(AdaptiveDClas, ThresholdsStayAscending) {
  // Point-mass sizes (all identical) stress the ascending-threshold guard.
  std::vector<coflow::JobSpec> jobs;
  for (int j = 0; j < 80; ++j) {
    jobs.push_back(makeJob(j, j * 0.1, {FlowDef{0, 1, 50.0}}));
  }
  AdaptiveConfig cfg;
  cfg.dclas.num_queues = 5;
  cfg.min_samples = 10;
  cfg.refit_interval = 5;
  AdaptiveDClasScheduler adaptive(cfg);
  const auto result =
      runVerified(makeWorkload(2, std::move(jobs)), unitFabric(2), adaptive);
  EXPECT_EQ(result.coflows.size(), 80u);
  const auto& t = adaptive.thresholds();
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
}

TEST(AdaptiveDClas, BeatsMisconfiguredFixedThresholdsOnShiftedWorkload) {
  // Workload 1000x larger than the D-CLAS defaults expect: a fixed
  // Q1 = 10 B (mis-set for this test's byte scale) FIFO-degenerates,
  // while the adaptive variant recovers sensible spacing.
  util::Rng rng(7);
  const auto wl = scaledWorkload(/*scale=*/10000.0, 150, rng);

  DClasConfig bad;
  bad.num_queues = 4;
  bad.first_threshold = 10.0;  // Everything leaves Q1 almost instantly.
  bad.exp_factor = 2.0;        // ...and bottoms out by 80 bytes.
  DClasScheduler fixed(bad);
  AdaptiveConfig acfg;
  acfg.dclas = bad;
  acfg.min_samples = 20;
  acfg.refit_interval = 10;
  AdaptiveDClasScheduler adaptive(acfg);

  const fabric::FabricConfig fc{4, 2000.0};
  const auto fixed_result = runVerified(wl, fc, fixed);
  const auto adaptive_result = runVerified(wl, fc, adaptive);
  EXPECT_LT(avgCct(adaptive_result), avgCct(fixed_result) * 1.02);
}

// --------------------------------------------------------------- gossip --

TEST(GossipDClas, ConfigValidation) {
  GossipConfig cfg;
  cfg.round_interval = 0;
  EXPECT_THROW(GossipDClasScheduler{cfg}, std::invalid_argument);
  cfg.round_interval = 0.5;
  cfg.exchanges_per_round = 0;
  EXPECT_THROW(GossipDClasScheduler{cfg}, std::invalid_argument);
}

TEST(GossipDClas, CompletesWorkloadsFeasibly) {
  util::Rng rng(11);
  const auto wl = scaledWorkload(/*scale=*/20.0, 40, rng);
  GossipConfig cfg;
  cfg.dclas.first_threshold = 30;
  cfg.dclas.num_queues = 3;
  cfg.dclas.exp_factor = 4;
  cfg.round_interval = 0.2;
  GossipDClasScheduler gossip(cfg);
  const auto result = runVerified(wl, fabric::FabricConfig{4, 10.0}, gossip);
  EXPECT_EQ(result.coflows.size(), 40u);
  for (const auto& rec : result.coflows) EXPECT_GT(rec.cct(), 0);
}

TEST(GossipDClas, EstimatesConvergeTowardGlobalSize) {
  // One coflow sends from port 0 only; after several gossip rounds every
  // port's estimate should approach the true attained service.
  GossipConfig cfg;
  cfg.dclas.first_threshold = 1000.0;
  cfg.round_interval = 0.5;
  cfg.seed = 3;
  GossipDClasScheduler gossip(cfg);
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 1, 100.0}})});
  // Pump the simulation: the coflow takes 100s at rate 1, giving ~200
  // gossip rounds; on completion estimates are erased, so probe mid-run
  // via a second, long-lived coflow... simplest: run to completion and
  // check feasibility + that gossip ran (estimate of an unknown is 0).
  const auto result = runVerified(wl, unitFabric(4), gossip);
  EXPECT_NEAR(result.coflows[0].cct(), 100.0, 1.0);
  EXPECT_DOUBLE_EQ(gossip.estimate(2, 0), 0.0);  // Erased on completion.
}

TEST(GossipDClas, BeatsNoCoordinationOnConvoyInstance) {
  // The Theorem A.1 convoy: wides look small locally. Gossip spreads the
  // mass so every port sees the wides' true (large) sizes within a few
  // rounds; the thin coflow escapes the convoy far sooner than under the
  // fully uncoordinated scheduler... (compared against coordinated Aalo
  // it should land in between).
  std::vector<coflow::JobSpec> jobs;
  for (int w = 0; w < 4; ++w) {
    coflow::JobSpec wide;
    wide.id = w;
    wide.arrival = 0;
    coflow::CoflowSpec spec;
    spec.id = {w, 0};
    for (int i = 0; i < 4; ++i) {
      spec.flows.push_back(coflow::FlowSpec{
          static_cast<coflow::PortId>(i), static_cast<coflow::PortId>(3 - i), 9.0, 0});
    }
    wide.coflows.push_back(std::move(spec));
    jobs.push_back(std::move(wide));
  }
  jobs.push_back(makeJob(9, 0, {FlowDef{0, 3, 9.5}}));
  const auto wl = makeWorkload(4, std::move(jobs));

  DClasConfig base;
  base.first_threshold = 10.0;
  base.exp_factor = 10.0;
  base.num_queues = 4;

  GossipConfig gcfg;
  gcfg.dclas = base;
  gcfg.round_interval = 0.25;
  GossipDClasScheduler gossip(gcfg);
  UncoordinatedDClasScheduler local(base, 0.25);
  DClasScheduler coordinated(base);

  const auto g = runVerified(wl, unitFabric(4), gossip);
  const auto u = runVerified(wl, unitFabric(4), local);
  const auto c = runVerified(wl, unitFabric(4), coordinated);
  EXPECT_LT(cctOf(g, {9, 0}), cctOf(u, {9, 0}) - 2.0);
  EXPECT_LE(cctOf(c, {9, 0}), cctOf(g, {9, 0}) + 1.0);
}

}  // namespace
}  // namespace aalo::sched
