// Delta/full equivalence for the coordination plane.
//
// The delta-coded data path (incremental ScheduleState, kScheduleDelta
// broadcasts, delta size reports) must be *observably identical* to the
// rebuild-the-world oracle it replaced: same global sizes, same queue
// assignments, same ON/OFF gating, same fault-tolerance behavior — under
// clean links and under seeded chaos (drops, reordering, duplication,
// eviction and rejoin). These tests pin that equivalence from two sides:
// a seeded fuzz of ScheduleState against its legacy rebuild oracle, and a
// full multi-daemon scenario executed once per mode with every observable
// compared at the end.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/chaos.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "runtime/schedule_state.h"
#include "runtime/shard.h"
#include "util/rng.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

// ---------------------------------------------------------------------------
// ScheduleState vs the legacy rebuild oracle, and the delta chain vs the
// snapshot: a seeded op soup (register / unregister / size reports from 4
// daemons / daemon drops) where after every round
//  * snapshotEntries() must equal legacySchedule() entry for entry, and
//  * a mirror fed only by buildDelta() outputs must equal the snapshot.
// All byte values are integer multiples of 1 KB so floating-point sums are
// exact regardless of summation order.

void fuzzScheduleState(std::uint64_t seed, std::size_t max_on) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " max_on=" + std::to_string(max_on));
  const std::vector<util::Bytes> thresholds = {
      1 * util::kMB, 10 * util::kMB, 100 * util::kMB, 1 * util::kGB};
  ScheduleState state(thresholds, max_on);
  util::Rng rng(seed);

  std::vector<coflow::CoflowId> live;
  std::int64_t next_external = 1;
  // Absolute per-(daemon, coflow) sizes the fuzz has "reported" so far.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<coflow::CoflowId, double>>
      reported;

  struct MirrorEntry {
    int queue = 0;
    bool on = true;
  };
  // What a daemon that only ever received the delta chain believes.
  std::unordered_map<coflow::CoflowId, MirrorEntry> mirror;

  std::vector<net::ScheduleEntry> delta, snapshot, legacy;
  std::vector<coflow::CoflowId> removals;

  for (int round = 0; round < 300; ++round) {
    const int ops = static_cast<int>(rng.uniformInt(1, 5));
    for (int op = 0; op < ops; ++op) {
      const double pick = rng.uniform(0, 1);
      if (pick < 0.20 || live.empty()) {
        const coflow::CoflowId id{next_external++, 0};
        state.registerCoflow(id);
        live.push_back(id);
      } else if (pick < 0.30) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const coflow::CoflowId id = live[idx];
        state.unregisterCoflow(id);
        for (auto& [daemon, sizes] : reported) sizes.erase(id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else if (pick < 0.92) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(0, 3));
        double& bytes = reported[daemon][live[idx]];
        bytes += static_cast<double>(rng.uniformInt(1, 20000)) * util::kKB;
        state.applySize(daemon, live[idx], bytes);
      } else {
        const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(0, 3));
        state.dropDaemon(daemon);
        reported.erase(daemon);
      }
    }

    // One coordination round: drain the delta into the mirror daemon.
    state.buildDelta(delta, removals);
    for (const auto& e : delta) mirror[e.id] = {e.queue, e.on};
    for (const auto& id : removals) mirror.erase(id);

    state.snapshotEntries(snapshot);
    state.legacySchedule({}, legacy);

    ASSERT_EQ(snapshot.size(), legacy.size()) << "round " << round;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      EXPECT_EQ(snapshot[i].id, legacy[i].id) << "round " << round;
      EXPECT_EQ(snapshot[i].queue, legacy[i].queue) << "round " << round;
      EXPECT_EQ(snapshot[i].on, legacy[i].on) << "round " << round;
      EXPECT_EQ(snapshot[i].global_bytes, legacy[i].global_bytes)
          << "round " << round;
    }

    ASSERT_EQ(mirror.size(), snapshot.size()) << "round " << round;
    for (const auto& e : snapshot) {
      const auto it = mirror.find(e.id);
      ASSERT_NE(it, mirror.end()) << "round " << round;
      EXPECT_EQ(it->second.queue, e.queue) << "round " << round;
      EXPECT_EQ(it->second.on, e.on) << "round " << round;
    }
    if (::testing::Test::HasFailure()) return;  // One bad round is enough.
  }
}

TEST(CoordinationEquivalence, ScheduleStateMatchesLegacyOracle) {
  fuzzScheduleState(1, 0);
  fuzzScheduleState(2, 0);
}

TEST(CoordinationEquivalence, ScheduleStateMatchesLegacyOracleWithOnBudget) {
  fuzzScheduleState(3, 5);
  fuzzScheduleState(4, 2);
}

// ---------------------------------------------------------------------------
// ShardSet vs the single ScheduleState oracle: the same seeded op soup is
// driven into both, and after every round the merged sharded snapshot and
// the merged delta chain must be bit-identical to the oracle's. This is
// the schedule-correctness core of the sharded coordinator, exercised
// deterministically (no threads, no sockets): hash partitioning, the
// k-way (queue, FIFO-id) merge, and the global ON/OFF gate at merge time.

void fuzzShardSet(std::uint64_t seed, std::size_t max_on, std::size_t shards) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " max_on=" +
               std::to_string(max_on) + " shards=" + std::to_string(shards));
  const std::vector<util::Bytes> thresholds = {
      1 * util::kMB, 10 * util::kMB, 100 * util::kMB, 1 * util::kGB};
  ScheduleState oracle(thresholds, max_on);
  ShardSet sharded(shards, thresholds, max_on);
  util::Rng rng(seed);

  std::vector<coflow::CoflowId> live;
  std::int64_t next_external = 1;
  std::unordered_map<std::uint64_t,
                     std::unordered_map<coflow::CoflowId, double>>
      reported;

  struct MirrorEntry {
    int queue = 0;
    bool on = true;
  };
  // A daemon fed only by the *merged sharded* delta chain.
  std::unordered_map<coflow::CoflowId, MirrorEntry> mirror;

  std::vector<net::ScheduleEntry> oracle_delta, sharded_delta;
  std::vector<coflow::CoflowId> oracle_removals, sharded_removals;
  std::vector<net::ScheduleEntry> oracle_snapshot, sharded_snapshot;

  for (int round = 0; round < 300; ++round) {
    const int ops = static_cast<int>(rng.uniformInt(1, 5));
    for (int op = 0; op < ops; ++op) {
      const double pick = rng.uniform(0, 1);
      if (pick < 0.20 || live.empty()) {
        const coflow::CoflowId id{next_external++, 0};
        oracle.registerCoflow(id);
        sharded.registerCoflow(id);
        live.push_back(id);
      } else if (pick < 0.30) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const coflow::CoflowId id = live[idx];
        oracle.unregisterCoflow(id);
        sharded.unregisterCoflow(id);
        for (auto& [daemon, sizes] : reported) sizes.erase(id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else if (pick < 0.92) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
        const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(0, 3));
        double& bytes = reported[daemon][live[idx]];
        bytes += static_cast<double>(rng.uniformInt(1, 20000)) * util::kKB;
        oracle.applySize(daemon, live[idx], bytes);
        sharded.applySize(daemon, live[idx], bytes);
      } else {
        const auto daemon = static_cast<std::uint64_t>(rng.uniformInt(0, 3));
        oracle.dropDaemon(daemon);
        sharded.dropDaemon(daemon);
        reported.erase(daemon);
      }
    }

    // One coordination round on both planes.
    oracle.buildDelta(oracle_delta, oracle_removals);
    sharded.buildDelta(sharded_delta, sharded_removals);

    // The merged sharded delta must be *wire-identical* to the oracle's —
    // same entries, same order, same removals — not merely equivalent.
    ASSERT_EQ(sharded_delta.size(), oracle_delta.size()) << "round " << round;
    for (std::size_t i = 0; i < oracle_delta.size(); ++i) {
      EXPECT_EQ(sharded_delta[i], oracle_delta[i]) << "round " << round;
    }
    ASSERT_EQ(sharded_removals, oracle_removals) << "round " << round;

    for (const auto& e : sharded_delta) mirror[e.id] = {e.queue, e.on};
    for (const auto& id : sharded_removals) mirror.erase(id);

    oracle.snapshotEntries(oracle_snapshot);
    sharded.snapshotEntries(sharded_snapshot);
    ASSERT_EQ(sharded_snapshot.size(), oracle_snapshot.size())
        << "round " << round;
    for (std::size_t i = 0; i < oracle_snapshot.size(); ++i) {
      EXPECT_EQ(sharded_snapshot[i], oracle_snapshot[i]) << "round " << round;
    }

    // And the delta-chain mirror must agree with the snapshot.
    ASSERT_EQ(mirror.size(), sharded_snapshot.size()) << "round " << round;
    for (const auto& e : sharded_snapshot) {
      const auto it = mirror.find(e.id);
      ASSERT_NE(it, mirror.end()) << "round " << round;
      EXPECT_EQ(it->second.queue, e.queue) << "round " << round;
      EXPECT_EQ(it->second.on, e.on) << "round " << round;
    }
    if (::testing::Test::HasFailure()) return;  // One bad round is enough.
  }
}

TEST(CoordinationEquivalence, ShardSetMatchesSingleStateOracle) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    fuzzShardSet(11, 0, shards);
  }
}

TEST(CoordinationEquivalence, ShardSetMatchesSingleStateOracleWithOnBudget) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    fuzzShardSet(12, 5, shards);
    fuzzShardSet(13, 2, shards);
  }
}

// ---------------------------------------------------------------------------
// Full scenario, once per mode: coordinator + a clean daemon + a daemon
// behind a seeded lossy ChaosProxy; size ramp, a lossy window, a liveness
// eviction and rejoin, and an unregister. Every observable the data path
// exposes must come out identical in delta and full mode. All sizes are
// integer bytes, so cross-mode double comparisons are exact.

struct ScenarioResult {
  std::unordered_map<coflow::CoflowId, double> global;
  int d1_queue_a = -1, d2_queue_a = -1;
  bool d1_on_a = false, d2_on_a = false;
  std::uint64_t evicted = 0;
};

ScenarioResult runScenario(bool full_mode, std::size_t shards = 1) {
  ScenarioResult result;

  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.dclas.num_queues = 4;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  ccfg.dclas.exp_factor = 10;
  ccfg.liveness_timeout_intervals = 50;  // Lossy reports must never evict.
  ccfg.one_way_timeout_intervals = 200;
  ccfg.full_broadcasts = full_mode;
  ccfg.snapshot_every = 8;
  ccfg.shards = shards;
  Coordinator coordinator(ccfg);
  coordinator.start();

  DaemonConfig base;
  base.coordinator_port = coordinator.port();
  base.sync_interval = 0.005;
  base.num_queues = 4;
  base.dclas = ccfg.dclas;
  base.full_reports = full_mode;
  base.resync_intervals = 7;
  base.reconnect_interval = 0.02;

  DaemonConfig d1cfg = base;
  d1cfg.daemon_id = 1;
  Daemon d1(d1cfg);
  d1.start();

  // d2 talks through the chaos proxy; the link starts clean so the
  // handshake is deterministic, mangling begins later.
  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 1234;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig d2cfg = base;
  d2cfg.daemon_id = 2;
  d2cfg.coordinator_port = proxy.port();
  Daemon d2(d2cfg);
  d2.start();

  waitFor([&] { return coordinator.daemonCount() == 2; });

  AaloClient client(coordinator.port());
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();

  // Ramp: a reaches 8 MB split across both daemons (queue 1), b reaches
  // 16 MB on d2 alone (queue 2).
  for (int step = 0; step < 8; ++step) {
    d1.reportBytes(a, 500 * util::kKB);
    d2.reportBytes(a, 500 * util::kKB);
    d2.reportBytes(b, 2 * util::kMB);
    std::this_thread::sleep_for(10ms);
  }
  waitFor([&] {
    const auto global = coordinator.globalSizes();
    const auto a_it = global.find(a);
    const auto b_it = global.find(b);
    return a_it != global.end() && a_it->second == 8 * util::kMB &&
           b_it != global.end() && b_it->second == 16 * util::kMB;
  });
  waitFor([&] {
    return d1.queueOf(a) == 1 && d2.queueOf(a) == 1 && d1.queueOf(b) == 2 &&
           d2.queueOf(b) == 2;
  });

  // Lossy window: broadcasts to d2 are dropped / reordered / duplicated.
  // Delta mode must detect the gaps and repair itself with snapshots;
  // full mode just re-applies newer epochs.
  net::ChaosPolicy lossy_down;
  lossy_down.drop = 0.25;
  lossy_down.reorder = 0.2;
  lossy_down.duplicate = 0.2;
  net::ChaosPolicy lossy_up;
  lossy_up.duplicate = 0.1;
  proxy.setPolicies(lossy_up, lossy_down);
  if (full_mode) {
    std::this_thread::sleep_for(200ms);
  } else {
    waitFor([&] { return d2.stats().schedule_gaps.load() >= 1; });
    waitFor([&] { return coordinator.stats().snapshot_requests.load() >= 1; });
  }
  proxy.setPolicies({}, {});
  // Re-applied schedules must not have moved anything.
  waitFor([&] { return d2.queueOf(a) == 1 && d2.queueOf(b) == 2; });

  // Liveness eviction: d2's reports stop (uplink blackholed) until the
  // coordinator drops it and subtracts its contributions...
  net::ChaosPolicy blackhole_up;
  blackhole_up.blackhole = true;
  proxy.setPolicies(blackhole_up, {});
  waitFor([&] { return coordinator.stats().daemons_evicted.load() == 1; });
  waitFor([&] {
    const auto global = coordinator.globalSizes();
    const auto a_it = global.find(a);
    return a_it != global.end() && a_it->second == 4 * util::kMB;
  });
  // ...then the link heals, any half-dead reconnect is severed, and the
  // rejoining daemon's forced full report re-teaches the absolute sizes.
  proxy.setPolicies({}, {});
  proxy.killLink();
  waitFor([&] { return coordinator.daemonCount() == 2; });
  waitFor([&] {
    const auto global = coordinator.globalSizes();
    const auto a_it = global.find(a);
    const auto b_it = global.find(b);
    return a_it != global.end() && a_it->second == 8 * util::kMB &&
           b_it != global.end() && b_it->second == 16 * util::kMB;
  });
  waitFor([&] { return d2.queueOf(a) == 1 && d2.queueOf(b) == 2; });

  // Unregister b: it must vanish from the coordinator (tombstoned) and
  // both daemons must prune its local accounting (queue falls back to 0).
  client.unregisterCoflow(b);
  waitFor([&] { return !coordinator.globalSizes().contains(b); });
  waitFor([&] { return d1.queueOf(b) == 0 && d2.queueOf(b) == 0; });

  if (!full_mode) {
    // The delta machinery must actually have carried the scenario.
    EXPECT_GT(coordinator.stats().delta_broadcasts.load(), 0u);
    EXPECT_GT(coordinator.stats().broadcasts_suppressed.load(), 0u);
    EXPECT_GT(coordinator.stats().snapshot_broadcasts.load(), 0u);
    EXPECT_GT(d2.stats().schedule_deltas_applied.load(), 0u);
    EXPECT_GT(d1.stats().delta_reports.load(), 0u);
    EXPECT_GE(d1.stats().resync_reports.load(), 1u);
  } else {
    // Oracle mode must not have used the delta path at all.
    EXPECT_EQ(coordinator.stats().delta_broadcasts.load(), 0u);
    EXPECT_EQ(coordinator.stats().broadcasts_suppressed.load(), 0u);
    EXPECT_EQ(d2.stats().schedule_gaps.load(), 0u);
    EXPECT_EQ(d1.stats().delta_reports.load(), 0u);
  }

  result.global = coordinator.globalSizes();
  result.d1_queue_a = d1.queueOf(a);
  result.d2_queue_a = d2.queueOf(a);
  result.d1_on_a = d1.isOn(a);
  result.d2_on_a = d2.isOn(a);
  result.evicted = coordinator.stats().daemons_evicted.load();

  d2.stop();
  d1.stop();
  proxy.stop();
  coordinator.stop();
  return result;
}

TEST(CoordinationEquivalence, DeltaModeMatchesFullModeUnderChaos) {
  const ScenarioResult full = runScenario(true);
  ASSERT_FALSE(::testing::Test::HasFailure());
  const ScenarioResult delta = runScenario(false);
  ASSERT_FALSE(::testing::Test::HasFailure());

  EXPECT_EQ(full.global.size(), delta.global.size());
  for (const auto& [id, bytes] : full.global) {
    const auto it = delta.global.find(id);
    ASSERT_NE(it, delta.global.end());
    EXPECT_EQ(it->second, bytes);  // Integer bytes: exact across modes.
  }
  EXPECT_EQ(full.d1_queue_a, delta.d1_queue_a);
  EXPECT_EQ(full.d2_queue_a, delta.d2_queue_a);
  EXPECT_EQ(full.d1_on_a, delta.d1_on_a);
  EXPECT_EQ(full.d2_on_a, delta.d2_on_a);
  EXPECT_EQ(full.evicted, delta.evicted);
}

// The same chaos drill (drops, reordering, duplication, blackhole
// eviction, link kill and rejoin, unregister) executed against the
// 4-shard multi-threaded coordinator must land in exactly the state the
// single-threaded oracle reaches.
TEST(CoordinationEquivalence, ShardedCoordinatorMatchesOracleUnderChaos) {
  const ScenarioResult oracle = runScenario(false, 1);
  ASSERT_FALSE(::testing::Test::HasFailure());
  const ScenarioResult sharded = runScenario(false, 4);
  ASSERT_FALSE(::testing::Test::HasFailure());

  EXPECT_EQ(oracle.global.size(), sharded.global.size());
  for (const auto& [id, bytes] : oracle.global) {
    const auto it = sharded.global.find(id);
    ASSERT_NE(it, sharded.global.end());
    EXPECT_EQ(it->second, bytes);  // Integer bytes: exact across modes.
  }
  EXPECT_EQ(oracle.d1_queue_a, sharded.d1_queue_a);
  EXPECT_EQ(oracle.d2_queue_a, sharded.d2_queue_a);
  EXPECT_EQ(oracle.d1_on_a, sharded.d1_on_a);
  EXPECT_EQ(oracle.d2_on_a, sharded.d2_on_a);
  EXPECT_EQ(oracle.evicted, sharded.evicted);
}

// ---------------------------------------------------------------------------
// §3.2 restart guarantee under delta reports: with the periodic resync
// effectively disabled, reconnecting to a restarted (amnesiac)
// coordinator must force exactly one full report that re-teaches every
// absolute size — the queue jumps straight to its true value, not through
// the intermediate queues.

TEST(CoordinationEquivalence, RestartedCoordinatorIsRetaughtByOneForcedResync) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.dclas.num_queues = 4;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  ccfg.dclas.exp_factor = 10;
  auto coordinator = std::make_unique<Coordinator>(ccfg);
  coordinator->start();
  const std::uint16_t port = coordinator->port();

  DaemonConfig dcfg;
  dcfg.coordinator_port = port;
  dcfg.daemon_id = 9;
  dcfg.sync_interval = 0.005;
  dcfg.num_queues = 4;
  dcfg.dclas = ccfg.dclas;
  dcfg.resync_intervals = 100000;  // Periodic resync out of the picture.
  dcfg.reconnect_interval = 0.02;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(port);
  const auto big = client.registerCoflow();
  daemon.reportBytes(big, 50 * util::kMB);  // Queue 2 (1 MB / 10 MB / 100 MB).
  waitFor([&] {
    const auto global = coordinator->globalSizes();
    const auto it = global.find(big);
    return it != global.end() && it->second == 50 * util::kMB;
  });
  waitFor([&] { return daemon.queueOf(big) == 2; });
  const std::uint64_t resyncs_before = daemon.stats().resync_reports.load();

  // Coordinator dies and a blank replacement comes up on the same port:
  // no registrations, no sizes, no tombstones.
  coordinator.reset();
  ccfg.port = port;
  Coordinator reborn(ccfg);
  reborn.start();

  // The reconnect-forced resync re-teaches the exact absolute size; the
  // coflow goes straight back to queue 2 (no climb through queue 0/1 —
  // queueOf is the max of local and global knowledge throughout).
  waitFor([&] {
    const auto global = reborn.globalSizes();
    const auto it = global.find(big);
    return it != global.end() && it->second == 50 * util::kMB;
  });
  EXPECT_EQ(daemon.queueOf(big), 2);
  // Exactly one forced full report did the re-teaching.
  EXPECT_EQ(daemon.stats().resync_reports.load(), resyncs_before + 1);
  EXPECT_GE(daemon.stats().reconnects.load(), 2u);

  daemon.stop();
  reborn.stop();
}

}  // namespace
}  // namespace aalo::runtime
