#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "sched/clas.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sched/varys.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace aalo::sched {
namespace {

using aalo::testing::FlowDef;
using aalo::testing::avgCct;
using aalo::testing::cctOf;
using aalo::testing::makeJob;
using aalo::testing::makeWorkload;
using aalo::testing::runVerified;
using aalo::testing::unitFabric;

// ---------------------------------------------------------------- Varys --

TEST(Varys, SmallBottleneckPreempts) {
  VarysScheduler varys;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 24}}),
                                   makeJob(1, 2.0, {FlowDef{0, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(2), varys);
  // At t=2 the small coflow's bottleneck (4s) beats the big one's (22s):
  // SEBF serves it first.
  EXPECT_NEAR(cctOf(result, {1, 0}), 4.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {0, 0}), 28.0, 1e-6);
}

TEST(Varys, MaddFinishesFlowsTogether) {
  VarysScheduler varys;
  // Two flows into egress 1; bottleneck is 15s. MADD paces the 10B flow at
  // 2/3 and the 5B flow at 1/3 so both finish exactly at 15.
  const auto wl =
      makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 10}, FlowDef{2, 1, 5}})});
  const auto result = runVerified(wl, unitFabric(3), varys);
  EXPECT_NEAR(result.coflows[0].cct(), 15.0, 1e-6);
  EXPECT_NEAR(result.makespan, 15.0, 1e-6);
}

TEST(Varys, EffectiveBottleneckIsClairvoyant) {
  // Unlike D-CLAS, Varys *should* react to total sizes: growing the other
  // coflow flips the SEBF order.
  const auto wl_small = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                                         makeJob(1, 0, {FlowDef{0, 2, 2}})});
  const auto wl_big = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                                       makeJob(1, 0, {FlowDef{0, 2, 50}})});
  VarysScheduler varys;
  const auto small = runVerified(wl_small, unitFabric(3), varys);
  const auto big = runVerified(wl_big, unitFabric(3), varys);
  EXPECT_NEAR(cctOf(small, {0, 0}), 12.0, 1e-6);  // Waits for the 2B coflow.
  EXPECT_NEAR(cctOf(big, {0, 0}), 10.0, 1e-6);    // Goes first.
}

TEST(Varys, BackfillUsesLeftoverCapacity) {
  VarysScheduler varys;
  // Head coflow only uses port 0; the second coflow's flow on port 1 must
  // run concurrently at full rate (work conservation).
  const auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 2, 10}}),
                                   makeJob(1, 0, {FlowDef{1, 2, 10}})});
  const auto result = runVerified(wl, unitFabric(3), varys);
  // Both share egress 2: SEBF picks one (tie -> id order), MADD gives it
  // rate 1... egress 2 is then full, so the other waits: 10 and 20.
  EXPECT_NEAR(cctOf(result, {0, 0}), 10.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 20.0, 1e-6);

  // Now with distinct egresses there is no contention at all.
  const auto wl2 = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 10}}),
                                    makeJob(1, 0, {FlowDef{1, 3, 10}})});
  const auto r2 = runVerified(wl2, unitFabric(4), varys);
  EXPECT_NEAR(cctOf(r2, {0, 0}), 10.0, 1e-6);
  EXPECT_NEAR(cctOf(r2, {1, 0}), 10.0, 1e-6);
}

// ------------------------------------------------------------------ LAS --

TEST(DecentralizedLas, LocalTiesShareThePort) {
  // Figure 1d's pathology: P0 is shared equally between C0 and C1 because
  // locally both have equal attained service — LAS cannot see that C0 is
  // also sending on P1.
  LasConfig cfg;
  cfg.quantum = 0.25;
  DecentralizedLasScheduler las(cfg);
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 2}, FlowDef{1, 3, 2}}),
                                   makeJob(1, 0, {FlowDef{0, 3, 2}})});
  // Port 0 carries C0's 2B flow and C1's 2B flow... but they also contend
  // on egress 3 with C0's second flow. Check the port-0 pair finishes
  // nearly together (shared), unlike a coordinated scheduler.
  const auto result = runVerified(wl, unitFabric(4), las);
  // C0's global attained grows twice as fast, yet port 0 still splits
  // fairly because local attained stays tied.
  EXPECT_GT(cctOf(result, {1, 0}), 2.9);  // Not served exclusively.
}

TEST(DecentralizedLas, ServesLeastAttainedFirst) {
  LasConfig cfg;
  cfg.quantum = 0.25;
  cfg.tie_window = 0.01;  // Unit-byte test sizes.
  DecentralizedLasScheduler las(cfg);
  // C0 arrives first and accumulates service; C1 arrives later with zero
  // attained service and takes over the port until it catches up.
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                                   makeJob(1, 4.0, {FlowDef{0, 1, 2}})});
  const auto result = runVerified(wl, unitFabric(2), las);
  // C1 (2B) finishes within ~2s+quantum of its arrival.
  EXPECT_LT(cctOf(result, {1, 0}), 2.6);
}

TEST(DecentralizedLas, WorkConservingBackfill) {
  DecentralizedLasScheduler las;
  const auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 4}}),
                                   makeJob(1, 0, {FlowDef{2, 1, 4}})});
  const auto result = runVerified(wl, unitFabric(3), las);
  // Both flows tie at their (distinct) ingress ports but share egress 1:
  // total work 8 on egress 1; makespan 8 means no capacity was wasted.
  EXPECT_NEAR(result.makespan, 8.0, 0.01);
}

// -------------------------------------------------------------- FIFO-LM --

TEST(FifoLm, LightHeadRunsExclusively) {
  FifoLmConfig cfg;
  cfg.heavy_threshold = 100;
  cfg.quantum = 0.25;
  FifoLmScheduler baraat(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 6}}),
                                   makeJob(1, 1.0, {FlowDef{0, 1, 6}})});
  const auto result = runVerified(wl, unitFabric(2), baraat);
  EXPECT_NEAR(cctOf(result, {0, 0}), 6.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 11.0, 1e-6);
}

TEST(FifoLm, HeavyHeadMultiplexes) {
  FifoLmConfig cfg;
  cfg.heavy_threshold = 5;
  cfg.quantum = 0.25;
  FifoLmScheduler baraat(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                                   makeJob(1, 6.0, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), baraat);
  // At t=6 the head has sent 6 > 5: heavy, so the newcomer shares 1/2.
  EXPECT_NEAR(cctOf(result, {1, 0}), 6.0, 0.3);
}

// ----------------------------------------------------------------- FIFO --

TEST(Fifo, StrictArrivalOrder) {
  FifoScheduler fifo;  // Default: Orchestra-style, no multiplexing.
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                                   makeJob(1, 1.0, {FlowDef{0, 1, 2}})});
  const auto result = runVerified(wl, unitFabric(2), fifo);
  EXPECT_NEAR(cctOf(result, {0, 0}), 10.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 11.0, 1e-6);  // Head-of-line blocking.
}

TEST(Fifo, SpilloverIsWorkConserving) {
  FifoScheduler fifo{FifoConfig{/*work_conserving_spillover=*/true}};
  // Head coflow saturates port 0 only; the later coflow on port 1 runs
  // immediately with the leftover capacity.
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 10}}),
                                   makeJob(1, 0.5, {FlowDef{1, 3, 4}})});
  const auto result = runVerified(wl, unitFabric(4), fifo);
  EXPECT_NEAR(cctOf(result, {1, 0}), 4.0, 1e-6);
}

// ------------------------------------------------------ Continuous CLAS --

TEST(ContinuousClas, IdenticalCoflowsDegenerateToFairSharing) {
  // Appendix B: continuous priorities interleave identical coflows; both
  // take ~2x the isolated time.
  ClasConfig cfg;
  cfg.quantum = 0.25;
  ContinuousClasScheduler clas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 6}}),
                                   makeJob(1, 0, {FlowDef{0, 1, 6}})});
  const auto result = runVerified(wl, unitFabric(2), clas);
  EXPECT_NEAR(cctOf(result, {0, 0}), 12.0, 0.5);
  EXPECT_NEAR(cctOf(result, {1, 0}), 12.0, 0.5);

  // D-CLAS with both coflows in one queue serves them FIFO instead: the
  // discretization's whole point (T_cont/T_disc -> 2 for the first).
  DClasConfig dcfg;
  dcfg.first_threshold = 1000;
  DClasScheduler dclas(dcfg);
  const auto dresult = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(dresult, {0, 0}), 6.0, 1e-6);
  EXPECT_NEAR(cctOf(dresult, {1, 0}), 12.0, 1e-6);
}

TEST(ContinuousClas, PrioritizesLeastAttainedGlobally) {
  ClasConfig cfg;
  cfg.quantum = 0.25;
  cfg.tie_window = 0.01;  // Unit-byte test sizes.
  ContinuousClasScheduler clas(cfg);
  // C0 sends on two ports (attained grows at 2/s); C1 on one. CLAS soon
  // prioritizes C1 on the shared port 0.
  const auto wl =
      makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 4}, FlowDef{1, 3, 4}}),
                       makeJob(1, 0, {FlowDef{0, 3, 4}})});
  const auto result = runVerified(wl, unitFabric(4), clas);
  // Coordinated: C1 should finish well before the uncoordinated 2x mark.
  EXPECT_LT(cctOf(result, {1, 0}), cctOf(result, {0, 0}) + 0.5);
}

// ------------------------------------------------------ Offline 2-approx --

TEST(OfflineOrder, SmallestCoflowFirstOnSingleMachine) {
  // On one shared port, the 2-approx must order by size (SPT).
  auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                             makeJob(1, 0, {FlowDef{0, 1, 2}}),
                             makeJob(2, 0, {FlowDef{0, 1, 5}})});
  const auto order = computeConcurrentOpenShopOrder(wl);
  EXPECT_LT(order.at({1, 0}), order.at({2, 0}));
  EXPECT_LT(order.at({2, 0}), order.at({0, 0}));
}

TEST(OfflineOrder, EndToEndBeatsFifoOnAverage) {
  auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 20}}),
                             makeJob(1, 0, {FlowDef{0, 2, 3}}),
                             makeJob(2, 0, {FlowDef{0, 1, 6}})});
  OfflineOrderScheduler offline(computeConcurrentOpenShopOrder(wl));
  FifoScheduler fifo;
  const auto off = runVerified(wl, unitFabric(3), offline);
  const auto ff = runVerified(wl, unitFabric(3), fifo);
  EXPECT_LE(avgCct(off), avgCct(ff) + 1e-9);
}

TEST(OfflineOrder, AllCoflowsRanked) {
  auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 1}}),
                             makeJob(1, 0, {FlowDef{1, 2, 1}})});
  const auto order = computeConcurrentOpenShopOrder(wl);
  EXPECT_EQ(order.size(), 2u);
  EXPECT_TRUE(order.contains({0, 0}));
  EXPECT_TRUE(order.contains({1, 0}));
}

// -------------------------------------------------- Cross-scheduler sweep --

struct SchedulerFactory {
  std::string label;
  std::function<std::unique_ptr<sim::Scheduler>()> make;
};

class AllSchedulers : public ::testing::TestWithParam<int> {};

// Every scheduler must complete a randomized workload with feasible
// allocations and finite CCTs (starvation freedom / work conservation).
TEST_P(AllSchedulers, CompletesRandomWorkloads) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int ports = static_cast<int>(rng.uniformInt(2, 6));
  std::vector<coflow::JobSpec> jobs;
  const int num_jobs = static_cast<int>(rng.uniformInt(2, 10));
  for (int j = 0; j < num_jobs; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = rng.uniform(0, 5);
    coflow::CoflowSpec spec;
    spec.id = {j, 0};
    const int flows = static_cast<int>(rng.uniformInt(1, 6));
    for (int f = 0; f < flows; ++f) {
      spec.flows.push_back(coflow::FlowSpec{
          static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
          static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
          rng.uniform(0.5, 20.0), rng.chance(0.2) ? rng.uniform(0, 3) : 0.0});
    }
    job.coflows.push_back(std::move(spec));
    jobs.push_back(std::move(job));
  }
  const auto wl = makeWorkload(ports, std::move(jobs));

  DClasConfig dcfg;
  dcfg.first_threshold = 10.0;
  dcfg.exp_factor = 4.0;
  dcfg.num_queues = 4;
  DClasConfig dcfg_sync = dcfg;
  dcfg_sync.sync_interval = 1.0;
  LasConfig las_cfg;
  las_cfg.quantum = 0.5;
  FifoLmConfig lm_cfg;
  lm_cfg.heavy_threshold = 15.0;
  lm_cfg.quantum = 0.5;
  ClasConfig clas_cfg;
  clas_cfg.quantum = 0.5;

  std::vector<std::unique_ptr<sim::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<PerFlowFairScheduler>());
  schedulers.push_back(std::make_unique<DClasScheduler>(dcfg));
  schedulers.push_back(std::make_unique<DClasScheduler>(dcfg_sync));
  schedulers.push_back(std::make_unique<VarysScheduler>());
  schedulers.push_back(std::make_unique<DecentralizedLasScheduler>(las_cfg));
  schedulers.push_back(std::make_unique<FifoLmScheduler>(lm_cfg));
  schedulers.push_back(std::make_unique<FifoScheduler>());
  schedulers.push_back(std::make_unique<ContinuousClasScheduler>(clas_cfg));
  schedulers.push_back(std::make_unique<OfflineOrderScheduler>(
      computeConcurrentOpenShopOrder(wl)));

  for (const auto& sched : schedulers) {
    const auto result = runVerified(wl, unitFabric(ports), *sched);
    EXPECT_EQ(result.coflows.size(), wl.coflowCount()) << sched->name();
    for (const auto& rec : result.coflows) {
      EXPECT_GT(rec.cct(), 0) << sched->name();
      EXPECT_TRUE(std::isfinite(rec.cct())) << sched->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, AllSchedulers, ::testing::Range(0, 15));

}  // namespace
}  // namespace aalo::sched
