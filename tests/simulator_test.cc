#include <gtest/gtest.h>

#include "sched/fair.h"
#include "sched/fifo.h"
#include "tests/helpers.h"

namespace aalo {
namespace {

using testing::FlowDef;
using testing::makeJob;
using testing::makeWorkload;
using testing::runVerified;
using testing::unitFabric;

TEST(Simulator, SingleFlowTakesSizeOverCapacity) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 10}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  ASSERT_EQ(result.coflows.size(), 1u);
  EXPECT_NEAR(result.coflows[0].cct(), 10.0, 1e-6);
  EXPECT_NEAR(result.makespan, 10.0, 1e-6);
}

TEST(Simulator, TwoFlowsShareIngressFairly) {
  // Both flows leave port 0: fair sharing doubles both completion times,
  // and the one that finishes first frees capacity for the other.
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 1, 4}}),
                                   makeJob(1, 0, {FlowDef{0, 2, 8}})});
  const auto result = runVerified(wl, unitFabric(3), fair);
  // Flow A (4B): rate 1/2 until t=8 done. Flow B: 4 sent by 8, then full
  // rate: 8-4=4 more seconds -> t=12? No: A done at 8 means A sent 4 at
  // rate 0.5. B sent 4 too; remaining 4 at rate 1 -> done t=12.
  EXPECT_NEAR(testing::cctOf(result, {0, 0}), 8.0, 1e-6);
  EXPECT_NEAR(testing::cctOf(result, {1, 0}), 12.0, 1e-6);
}

TEST(Simulator, EgressContentionAlsoCounts) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(3, {makeJob(0, 0, {FlowDef{0, 2, 6}}),
                                   makeJob(1, 0, {FlowDef{1, 2, 6}})});
  const auto result = runVerified(wl, unitFabric(3), fair);
  EXPECT_NEAR(testing::cctOf(result, {0, 0}), 12.0, 1e-6);
  EXPECT_NEAR(testing::cctOf(result, {1, 0}), 12.0, 1e-6);
}

TEST(Simulator, LateArrivalStartsLate) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 5.0, {FlowDef{0, 1, 3}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  EXPECT_NEAR(result.coflows[0].release, 5.0, 1e-9);
  EXPECT_NEAR(result.coflows[0].finish, 8.0, 1e-6);
  EXPECT_NEAR(result.coflows[0].cct(), 3.0, 1e-6);
}

TEST(Simulator, CoflowFinishesWhenLastFlowDoes) {
  sched::PerFlowFairScheduler fair;
  const auto wl =
      makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 2, 2}, FlowDef{1, 3, 9}})});
  const auto result = runVerified(wl, unitFabric(4), fair);
  EXPECT_NEAR(result.coflows[0].cct(), 9.0, 1e-6);
}

TEST(Simulator, WaveOffsetDelaysFlow) {
  sched::PerFlowFairScheduler fair;
  // Second wave starts at t=4 on a different port; finishes at 4+3.
  const auto wl = makeWorkload(
      4, {makeJob(0, 0, {FlowDef{0, 2, 2, 0}, FlowDef{1, 3, 3, 4.0}})});
  const auto result = runVerified(wl, unitFabric(4), fair);
  EXPECT_NEAR(result.coflows[0].cct(), 7.0, 1e-6);
}

TEST(Simulator, StartsAfterBarrier) {
  auto parent = makeJob(0, 0, {FlowDef{0, 1, 5}});
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  job.coflows = parent.coflows;
  coflow::CoflowSpec child;
  child.id = coflow::CoflowId{0, 1};
  child.flows.push_back(coflow::FlowSpec{0, 1, 3, 0});
  child.starts_after.push_back(job.coflows[0].id);
  job.coflows.push_back(child);

  sched::PerFlowFairScheduler fair;
  const auto result =
      runVerified(makeWorkload(2, {job}), unitFabric(2), fair);
  // Child cannot start before t=5 even though ports are free.
  EXPECT_NEAR(testing::cctOf(result, {0, 0}), 5.0, 1e-6);
  const auto& child_rec = result.coflows[1];
  EXPECT_NEAR(child_rec.release, 5.0, 1e-6);
  EXPECT_NEAR(child_rec.finish, 8.0, 1e-6);
}

TEST(Simulator, FinishesBeforeExtendsChildFinish) {
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  coflow::CoflowSpec parent;
  parent.id = {0, 0};
  parent.flows.push_back(coflow::FlowSpec{0, 1, 10, 0});
  coflow::CoflowSpec child;
  child.id = {0, 1};
  child.flows.push_back(coflow::FlowSpec{2, 3, 1, 0});  // Uncontended, fast.
  child.finishes_before.push_back(parent.id);
  job.coflows.push_back(parent);
  job.coflows.push_back(child);

  sched::PerFlowFairScheduler fair;
  const auto result = runVerified(makeWorkload(4, {job}), unitFabric(4), fair);
  const auto& child_rec = result.coflows[1];
  EXPECT_NEAR(child_rec.finish_own, 1.0, 1e-6);
  // Pipelined child cannot *finish* before its parent.
  EXPECT_NEAR(child_rec.finish, 10.0, 1e-6);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_NEAR(result.jobs[0].commTime(), 10.0, 1e-6);
}

TEST(Simulator, JobRecordsAccountComputeTime) {
  auto job = makeJob(3, 1.0, {FlowDef{0, 1, 4}});
  job.compute_time = 6.0;
  sched::PerFlowFairScheduler fair;
  const auto result = runVerified(makeWorkload(2, {job}), unitFabric(2), fair);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_NEAR(result.jobs[0].commTime(), 4.0, 1e-6);
  EXPECT_NEAR(result.jobs[0].jct(), 10.0, 1e-6);
  EXPECT_NEAR(result.jobs[0].commFraction(), 0.4, 1e-6);
}

TEST(Simulator, MismatchedPortCountThrows) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(4, {makeJob(0, 0, {FlowDef{0, 1, 1}})});
  sim::Simulator sim(unitFabric(2), fair);
  EXPECT_THROW(sim.run(wl), std::invalid_argument);
}

TEST(Simulator, DetectsFinishesBeforeCycle) {
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  coflow::CoflowSpec a;
  a.id = {0, 0};
  a.flows.push_back(coflow::FlowSpec{0, 1, 1, 0});
  coflow::CoflowSpec b = a;
  b.id = {0, 1};
  a.finishes_before.push_back(b.id);
  b.finishes_before.push_back(a.id);
  job.coflows = {a, b};
  sched::PerFlowFairScheduler fair;
  sim::Simulator sim(unitFabric(2), fair);
  EXPECT_THROW(sim.run(makeWorkload(2, {job})), std::runtime_error);
}

TEST(Simulator, RepeatedRunsAreIndependent) {
  sched::FifoScheduler fifo;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 5}}),
                                   makeJob(1, 0.5, {FlowDef{0, 1, 5}})});
  sim::Simulator sim(unitFabric(2), fifo);
  const auto first = sim.run(wl);
  const auto second = sim.run(wl);
  ASSERT_EQ(first.coflows.size(), second.coflows.size());
  for (std::size_t i = 0; i < first.coflows.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.coflows[i].finish, second.coflows[i].finish);
  }
}

}  // namespace
}  // namespace aalo
