// Cross-scheduler property sweeps on randomized workloads: lower bounds,
// work conservation, determinism, byte conservation.
#include <gtest/gtest.h>

#include <memory>

#include "sched/adaptive.h"
#include "sched/clas.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/gossip.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sched/uncoordinated.h"
#include "sched/varys.h"
#include "tests/helpers.h"
#include "util/rng.h"
#include "workload/facebook.h"

namespace aalo {
namespace {

using testing::makeWorkload;
using testing::runVerified;
using testing::unitFabric;

coflow::Workload randomWorkload(std::uint64_t seed, int ports, int jobs) {
  util::Rng rng(seed);
  std::vector<coflow::JobSpec> out;
  for (int j = 0; j < jobs; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = rng.uniform(0, 8);
    coflow::CoflowSpec spec;
    spec.id = {j, 0};
    const int flows = static_cast<int>(rng.uniformInt(1, 8));
    for (int f = 0; f < flows; ++f) {
      spec.flows.push_back(coflow::FlowSpec{
          static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
          static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
          rng.uniform(0.5, 25.0), rng.chance(0.25) ? rng.uniform(0, 4) : 0.0});
    }
    job.coflows.push_back(std::move(spec));
    out.push_back(std::move(job));
  }
  return makeWorkload(ports, std::move(out));
}

std::vector<std::unique_ptr<sim::Scheduler>> allSchedulers(
    const coflow::Workload& wl, bool work_conserving_only = false) {
  sched::DClasConfig dcfg;
  dcfg.first_threshold = 8;
  dcfg.exp_factor = 4;
  dcfg.num_queues = 4;
  sched::DClasConfig strict = dcfg;
  strict.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
  sched::DClasConfig delayed = dcfg;
  delayed.sync_interval = 0.7;
  sched::LasConfig las_cfg;
  las_cfg.quantum = 0.5;
  las_cfg.tie_window = 0.05;
  sched::FifoLmConfig lm_cfg;
  lm_cfg.heavy_threshold = 20;
  lm_cfg.quantum = 0.5;
  sched::ClasConfig clas_cfg;
  clas_cfg.quantum = 0.5;
  clas_cfg.tie_window = 0.05;
  sched::AdaptiveConfig acfg;
  acfg.dclas = dcfg;
  acfg.min_samples = 5;
  acfg.refit_interval = 5;
  sched::GossipConfig gcfg;
  gcfg.dclas = dcfg;
  gcfg.round_interval = 0.5;

  std::vector<std::unique_ptr<sim::Scheduler>> out;
  out.push_back(std::make_unique<sched::PerFlowFairScheduler>());
  out.push_back(std::make_unique<sched::DClasScheduler>(dcfg));
  out.push_back(std::make_unique<sched::DClasScheduler>(strict));
  out.push_back(std::make_unique<sched::DClasScheduler>(delayed));
  out.push_back(std::make_unique<sched::VarysScheduler>());
  if (!work_conserving_only) {
    // Admission-delayed Varys deliberately idles the fabric while a new
    // coflow waits for its rates — excluded from strict work-conservation
    // properties.
    out.push_back(std::make_unique<sched::VarysScheduler>(sched::VarysConfig{0.2}));
  }
  out.push_back(std::make_unique<sched::DecentralizedLasScheduler>(las_cfg));
  out.push_back(std::make_unique<sched::FifoLmScheduler>(lm_cfg));
  out.push_back(std::make_unique<sched::FifoScheduler>());
  out.push_back(
      std::make_unique<sched::FifoScheduler>(sched::FifoConfig{true}));
  out.push_back(std::make_unique<sched::ContinuousClasScheduler>(clas_cfg));
  out.push_back(std::make_unique<sched::UncoordinatedDClasScheduler>(dcfg, 0.5));
  out.push_back(std::make_unique<sched::AdaptiveDClasScheduler>(acfg));
  out.push_back(std::make_unique<sched::GossipDClasScheduler>(gcfg));
  out.push_back(std::make_unique<sched::OfflineOrderScheduler>(
      sched::computeConcurrentOpenShopOrder(wl)));
  return out;
}

class SchedulerProperties : public ::testing::TestWithParam<int> {};

// Every coflow's CCT is bounded below by its isolated bottleneck time
// (no scheduler can beat physics), and every coflow completes.
TEST_P(SchedulerProperties, CctLowerBoundHolds) {
  const auto wl = randomWorkload(100 + static_cast<std::uint64_t>(GetParam()), 5, 12);
  // Isolated lower bound per coflow id (offsets make it a conservative
  // under-estimate, which is fine for a lower bound).
  std::unordered_map<coflow::CoflowId, double> bound;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      bound[c.id] = workload::isolatedBottleneckSeconds(c, 1.0);
    }
  }
  for (const auto& sched : allSchedulers(wl)) {
    const auto result = runVerified(wl, unitFabric(5), *sched);
    ASSERT_EQ(result.coflows.size(), wl.coflowCount()) << sched->name();
    for (const auto& rec : result.coflows) {
      EXPECT_GE(rec.cct() + 1e-6, bound.at(rec.id)) << sched->name();
    }
  }
}

// With a single contended port and a standing backlog, every
// work-conserving scheduler drains the same bytes in the same time.
TEST_P(SchedulerProperties, WorkConservingMakespanOnSingleBottleneck) {
  util::Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  std::vector<coflow::JobSpec> jobs;
  double total = 0;
  for (int j = 0; j < 10; ++j) {
    coflow::JobSpec job;
    job.id = j;
    job.arrival = 0;  // Everything at t=0: no idle gaps possible.
    coflow::CoflowSpec spec;
    spec.id = {j, 0};
    const double bytes = rng.uniform(1, 20);
    total += bytes;
    spec.flows.push_back(coflow::FlowSpec{0, 1, bytes, 0});
    job.coflows.push_back(std::move(spec));
    jobs.push_back(std::move(job));
  }
  const auto wl = makeWorkload(2, std::move(jobs));
  for (const auto& sched : allSchedulers(wl, /*work_conserving_only=*/true)) {
    const auto result = runVerified(wl, unitFabric(2), *sched);
    EXPECT_NEAR(result.makespan, total, total * 1e-6 + 1e-3) << sched->name();
  }
}

// Determinism: identical runs give identical records.
TEST_P(SchedulerProperties, RunsAreDeterministic) {
  const auto wl = randomWorkload(300 + static_cast<std::uint64_t>(GetParam()), 4, 8);
  for (const auto& sched : allSchedulers(wl)) {
    const auto a = runVerified(wl, unitFabric(4), *sched);
    const auto b = runVerified(wl, unitFabric(4), *sched);
    ASSERT_EQ(a.coflows.size(), b.coflows.size()) << sched->name();
    for (std::size_t i = 0; i < a.coflows.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.coflows[i].finish, b.coflows[i].finish) << sched->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerProperties, ::testing::Range(0, 6));

// On the heavy-tailed Facebook mix, Aalo must beat per-flow fairness on
// average CCT — the paper's core claim, held as a regression invariant.
TEST(SchedulerRegression, AaloBeatsFairOnHeavyTails) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 120;
  cfg.num_ports = 20;
  cfg.seed = 77;
  cfg.mean_interarrival = 0.3;
  const auto wl = generateFacebookWorkload(cfg);
  const fabric::FabricConfig fc{20, util::kGbps};
  sched::DClasScheduler aalo{sched::DClasConfig{}};
  sched::PerFlowFairScheduler fair;
  const auto aalo_result = sim::runSimulation(wl, fc, aalo);
  const auto fair_result = sim::runSimulation(wl, fc, fair);
  EXPECT_LT(testing::avgCct(aalo_result), testing::avgCct(fair_result));
}

// And the clairvoyant Varys must beat Aalo (it knows strictly more).
TEST(SchedulerRegression, VarysBeatsAaloWithFullKnowledge) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = 120;
  cfg.num_ports = 20;
  cfg.seed = 78;
  cfg.mean_interarrival = 0.3;
  const auto wl = generateFacebookWorkload(cfg);
  const fabric::FabricConfig fc{20, util::kGbps};
  sched::DClasScheduler aalo{sched::DClasConfig{}};
  sched::VarysScheduler varys;
  const auto aalo_result = sim::runSimulation(wl, fc, aalo);
  const auto varys_result = sim::runSimulation(wl, fc, varys);
  EXPECT_LT(testing::avgCct(varys_result), testing::avgCct(aalo_result) * 1.05);
}

}  // namespace
}  // namespace aalo
