// D-CLAS scheduling invariants, checked through the telemetry sink on
// seeded heavy-tailed workloads:
//
//  1. Starvation freedom (the reason the paper uses weighted — not
//     strict — inter-queue sharing, §4.3): on a single-bottleneck
//     fabric, every non-empty queue q receives at least its weighted
//     share w_q / Σ_{non-empty} w of the bottleneck capacity in every
//     allocation round. Strict priority would drive low-priority queues
//     to zero whenever higher queues have demand.
//
//  2. Queue monotonicity: a coflow's attained service only grows, so its
//     0-based queue index never decreases across samples (§4.2 —
//     demotions only, promotions are impossible without size resets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sched/dclas.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace aalo {
namespace {

/// Heavy-tailed single-bottleneck workload: `n` single-flow coflows, each
/// from its own ingress port to egress port 0, sizes log-uniform over
/// three decades so the population spreads across the queue ladder.
coflow::Workload heavyTailWorkload(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<coflow::JobSpec> jobs;
  for (int c = 0; c < n; ++c) {
    // Sizes 2 .. 2000 bytes on a 1 B/s fabric; thresholds below are
    // 10/100/1000, so all queue bins are populated.
    const util::Bytes bytes = 2.0 * std::pow(10.0, rng.uniform(0.0, 3.0));
    const auto arrival = rng.uniform(0.0, 50.0);
    jobs.push_back(testing::makeJob(
        c + 1, arrival,
        {{static_cast<coflow::PortId>(c + 1), 0, bytes}}));
  }
  return testing::makeWorkload(n + 1, std::move(jobs));
}

sched::DClasConfig ladderConfig() {
  sched::DClasConfig cfg;
  cfg.num_queues = 4;
  cfg.first_threshold = 10.0;
  cfg.exp_factor = 10.0;  // Thresholds 10, 100, 1000.
  cfg.sync_interval = 1.0;
  return cfg;
}

void checkInvariants(const sched::DClasConfig& cfg,
                     const sched::DClasTelemetry& telemetry) {
  ASSERT_FALSE(telemetry.samples().empty());
  const int k = cfg.num_queues;
  constexpr double kCapacity = 1.0;  // Unit fabric, egress port 0.
  // Water-filling stops at drainedThreshold (util::kEps * capacity) and
  // leaves FP dust per pass; 1e-7 is comfortably above that and five
  // orders below the smallest possible share (1/10 at K=4).
  constexpr double kEps = 1e-7;
  std::map<std::size_t, int> last_queue;
  for (const sched::DClasQueueSample& sample : telemetry.samples()) {
    ASSERT_EQ(sample.occupancy.size(), static_cast<std::size_t>(k));
    double total_weight = 0;
    for (int q = 0; q < k; ++q) {
      if (sample.occupancy[static_cast<std::size_t>(q)] > 0) {
        total_weight += cfg.queueWeight(q);
      }
    }
    for (int q = 0; q < k; ++q) {
      if (sample.occupancy[static_cast<std::size_t>(q)] == 0) continue;
      const double share = cfg.queueWeight(q) / total_weight;
      EXPECT_GE(sample.queue_rates[static_cast<std::size_t>(q)],
                share * kCapacity - kEps)
          << "queue " << q << " starved at t=" << sample.now << " (got "
          << sample.queue_rates[static_cast<std::size_t>(q)] << ", share "
          << share << ")";
    }
    for (const auto& [coflow_index, queue] : sample.coflow_queues) {
      const auto it = last_queue.find(coflow_index);
      if (it != last_queue.end()) {
        EXPECT_GE(queue, it->second)
            << "coflow " << coflow_index << " promoted at t=" << sample.now;
        it->second = queue;
      } else {
        last_queue.emplace(coflow_index, queue);
      }
    }
  }
}

TEST(DClasInvariant, WeightedShareStarvationFreedom) {
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const auto wl = heavyTailWorkload(24, seed);
    const auto cfg = ladderConfig();
    sched::DClasScheduler dclas(cfg);
    sched::DClasTelemetry telemetry;
    dclas.setTelemetry(&telemetry);
    const auto result = testing::runVerified(wl, testing::unitFabric(25), dclas);
    ASSERT_EQ(result.coflows.size(), 24u);
    SCOPED_TRACE("seed " + std::to_string(seed));
    checkInvariants(cfg, telemetry);
  }
}

// Strict priority is the ablation that *does* starve: with a standing
// high-priority queue, lower queues can see rounds at zero rate. This
// guards the invariant test itself — if the weighted assertion would also
// pass under strict priority, it wouldn't be testing the fair-share path.
TEST(DClasInvariant, StrictPriorityViolatesWeightedShare) {
  const auto wl = heavyTailWorkload(24, 7);
  auto cfg = ladderConfig();
  cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
  sched::DClasScheduler dclas(cfg);
  sched::DClasTelemetry telemetry;
  dclas.setTelemetry(&telemetry);
  testing::runVerified(wl, testing::unitFabric(25), dclas);
  const int k = cfg.num_queues;
  bool violated = false;
  for (const sched::DClasQueueSample& sample : telemetry.samples()) {
    double total_weight = 0;
    for (int q = 0; q < k; ++q) {
      if (sample.occupancy[static_cast<std::size_t>(q)] > 0) {
        total_weight += cfg.queueWeight(q);
      }
    }
    for (int q = 0; q < k; ++q) {
      if (sample.occupancy[static_cast<std::size_t>(q)] == 0) continue;
      const double share = cfg.queueWeight(q) / total_weight;
      if (sample.queue_rates[static_cast<std::size_t>(q)] < share - 1e-9) {
        violated = true;
      }
    }
  }
  EXPECT_TRUE(violated);
}

// Monotonicity also holds under instant coordination (Δ = 0), where
// demotions are immediate rather than boundary-aligned.
TEST(DClasInvariant, QueueIndexMonotoneWithInstantSync) {
  const auto wl = heavyTailWorkload(16, 3);
  auto cfg = ladderConfig();
  cfg.sync_interval = 0.0;
  sched::DClasScheduler dclas(cfg);
  sched::DClasTelemetry telemetry;
  dclas.setTelemetry(&telemetry);
  testing::runVerified(wl, testing::unitFabric(17), dclas);
  ASSERT_FALSE(telemetry.samples().empty());
  std::map<std::size_t, int> last_queue;
  for (const sched::DClasQueueSample& sample : telemetry.samples()) {
    for (const auto& [coflow_index, queue] : sample.coflow_queues) {
      auto [it, fresh] = last_queue.emplace(coflow_index, queue);
      if (!fresh) {
        EXPECT_GE(queue, it->second);
        it->second = queue;
      }
    }
  }
}

}  // namespace
}  // namespace aalo
