// Golden-trace regression suite: a canned 200-coflow Facebook-style trace
// (tests/data/golden_200.trace, generated once with
// `aalo_tracegen --kind fb --jobs 200 --ports 40 --seed 4242`) replayed
// under five schedulers, with average and p95 CCT pinned to 17
// significant digits. Any change to scheduler arithmetic, the event
// engine, or trace parsing that shifts a completion time by more than
// 1e-9 (relative) fails here — the whole build uses -ffp-contract=off so
// the pins hold across build types and sanitizer presets.
//
// To regenerate after an *intentional* behavior change, run the suite
// with AALO_PRINT_GOLDEN=1 and paste the printed table.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "sched/dclas.h"
#include "sched/dcoflow.h"
#include "sched/fair.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sched/sampling.h"
#include "sched/varys.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/trace_io.h"

#ifndef AALO_TEST_DATA_DIR
#error "AALO_TEST_DATA_DIR must point at tests/data"
#endif

namespace aalo {
namespace {

struct GoldenRow {
  const char* scheduler;
  double avg_cct;
  double p95_cct;
};

// Pinned on the seed build (see header comment for regeneration).
constexpr GoldenRow kGolden[] = {
    {"dclas", 4.4955040551873768, 22.881402995937474},
    {"fair", 6.0374573147352715, 32.933152432343739},
    {"varys", 3.6908135518936405, 20.119416646283426},
    {"fifo_lm", 10.915010822223874, 30.528219939735365},
    {"las", 6.4864594029344014, 38.462545230646569},
    // Deadline-free trace: dcoflow admits everything and degenerates to
    // its deterministic (release, id) sigma-order — these pins guard that
    // degenerate ordering as much as the arithmetic.
    {"sampling", 6.8978754383480716, 27.91557088935755},
    {"dcoflow", 10.788313616979684, 23.424693419741548},
};

std::unique_ptr<sim::Scheduler> makeScheduler(const std::string& name,
                                              const coflow::Workload& wl) {
  if (name == "dclas") return std::make_unique<sched::DClasScheduler>();
  if (name == "fair") return std::make_unique<sched::PerFlowFairScheduler>();
  if (name == "varys") return std::make_unique<sched::VarysScheduler>();
  if (name == "fifo_lm") {
    // Same derivation as tools/aalo_sim.cc: heavy threshold at the 80th
    // size percentile, 2 s quantum.
    util::Summary sizes;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) sizes.add(c.totalBytes());
    }
    sched::FifoLmConfig cfg;
    cfg.heavy_threshold = sizes.percentile(80);
    cfg.quantum = 2.0;
    return std::make_unique<sched::FifoLmScheduler>(cfg);
  }
  if (name == "las") {
    sched::LasConfig cfg;
    cfg.quantum = 2.0;
    return std::make_unique<sched::DecentralizedLasScheduler>(cfg);
  }
  // Defaults, matching tools/aalo_sim.cc.
  if (name == "sampling") return std::make_unique<sched::SamplingScheduler>();
  if (name == "dcoflow") return std::make_unique<sched::DCoflowScheduler>();
  throw std::invalid_argument("unknown golden scheduler " + name);
}

TEST(GoldenTrace, PinnedCctPerScheduler) {
  const std::string path = std::string(AALO_TEST_DATA_DIR) + "/golden_200.trace";
  const coflow::Workload wl = workload::readTraceFile(path);
  ASSERT_EQ(wl.coflowCount(), 200u);
  ASSERT_EQ(wl.num_ports, 40);

  const bool print = std::getenv("AALO_PRINT_GOLDEN") != nullptr;
  for (const GoldenRow& row : kGolden) {
    auto scheduler = makeScheduler(row.scheduler, wl);
    const sim::SimResult result = sim::runSimulation(
        wl, fabric::FabricConfig{wl.num_ports, util::kGbps}, *scheduler);
    ASSERT_EQ(result.coflows.size(), 200u) << row.scheduler;
    util::Summary cct;
    for (const auto& rec : result.coflows) cct.add(rec.cct());
    if (print) {
      std::printf("    {\"%s\", %.17g, %.17g},\n", row.scheduler, cct.mean(),
                  cct.percentile(95));
      continue;
    }
    const double tol_avg = 1e-9 * row.avg_cct;
    const double tol_p95 = 1e-9 * row.p95_cct;
    EXPECT_NEAR(cct.mean(), row.avg_cct, tol_avg) << row.scheduler;
    EXPECT_NEAR(cct.percentile(95), row.p95_cct, tol_p95) << row.scheduler;
    if (std::string(row.scheduler) == "dcoflow") {
      // Deadline-free input: admission control must be inert.
      EXPECT_EQ(result.rejected_coflows, 0u);
      EXPECT_EQ(result.deadline_coflows, 0u);
    }
  }
}

struct DeadlineGoldenRow {
  const char* scheduler;
  double avg_cct;
  double p95_cct;
  std::size_t deadline_misses;
  std::size_t rejected;
};

// Deadlined companion trace (tests/data/golden_deadline_50.trace,
// generated once with `aalo_tracegen --kind fb --jobs 50 --ports 40
// --seed 4242 --deadline-slack 0.5`). Pins the miss and rejection
// *counts* exactly — admission decisions are discrete, so any drift in
// the sigma-order bound shows up here before it moves a CCT pin.
constexpr DeadlineGoldenRow kDeadlineGolden[] = {
    {"dclas", 2.6138658650072886, 17.326170575280887, 27, 0},
    {"sampling", 4.1396524021556989, 19.315922712439644, 26, 0},
    {"dcoflow", 2.261546477190846, 12.095779790810038, 4, 1},
};

TEST(GoldenTrace, PinnedDeadlineTrace) {
  const std::string path =
      std::string(AALO_TEST_DATA_DIR) + "/golden_deadline_50.trace";
  const coflow::Workload wl = workload::readTraceFile(path);
  ASSERT_EQ(wl.coflowCount(), 50u);
  std::size_t deadlined = 0;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) deadlined += c.deadline > 0 ? 1 : 0;
  }
  ASSERT_EQ(deadlined, 50u) << "trace lost its dl= attributes";

  const bool print = std::getenv("AALO_PRINT_GOLDEN") != nullptr;
  for (const DeadlineGoldenRow& row : kDeadlineGolden) {
    auto scheduler = makeScheduler(row.scheduler, wl);
    const sim::SimResult result = sim::runSimulation(
        wl, fabric::FabricConfig{wl.num_ports, util::kGbps}, *scheduler);
    ASSERT_EQ(result.coflows.size(), 50u) << row.scheduler;
    ASSERT_EQ(result.deadline_coflows, 50u) << row.scheduler;
    util::Summary cct;
    for (const auto& rec : result.coflows) cct.add(rec.cct());
    if (print) {
      std::printf("    {\"%s\", %.17g, %.17g, %zu, %zu},\n", row.scheduler,
                  cct.mean(), cct.percentile(95), result.deadline_misses,
                  result.rejected_coflows);
      continue;
    }
    EXPECT_NEAR(cct.mean(), row.avg_cct, 1e-9 * row.avg_cct) << row.scheduler;
    EXPECT_NEAR(cct.percentile(95), row.p95_cct, 1e-9 * row.p95_cct)
        << row.scheduler;
    EXPECT_EQ(result.deadline_misses, row.deadline_misses) << row.scheduler;
    EXPECT_EQ(result.rejected_coflows, row.rejected) << row.scheduler;
  }
}

}  // namespace
}  // namespace aalo
