// Golden-trace regression suite: a canned 200-coflow Facebook-style trace
// (tests/data/golden_200.trace, generated once with
// `aalo_tracegen --kind fb --jobs 200 --ports 40 --seed 4242`) replayed
// under five schedulers, with average and p95 CCT pinned to 17
// significant digits. Any change to scheduler arithmetic, the event
// engine, or trace parsing that shifts a completion time by more than
// 1e-9 (relative) fails here — the whole build uses -ffp-contract=off so
// the pins hold across build types and sanitizer presets.
//
// To regenerate after an *intentional* behavior change, run the suite
// with AALO_PRINT_GOLDEN=1 and paste the printed table.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sched/varys.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/trace_io.h"

#ifndef AALO_TEST_DATA_DIR
#error "AALO_TEST_DATA_DIR must point at tests/data"
#endif

namespace aalo {
namespace {

struct GoldenRow {
  const char* scheduler;
  double avg_cct;
  double p95_cct;
};

// Pinned on the seed build (see header comment for regeneration).
constexpr GoldenRow kGolden[] = {
    {"dclas", 4.4955040551873768, 22.881402995937474},
    {"fair", 6.0374573147352715, 32.933152432343739},
    {"varys", 3.6908135518936405, 20.119416646283426},
    {"fifo_lm", 10.915010822223874, 30.528219939735365},
    {"las", 6.4864594029344014, 38.462545230646569},
};

std::unique_ptr<sim::Scheduler> makeScheduler(const std::string& name,
                                              const coflow::Workload& wl) {
  if (name == "dclas") return std::make_unique<sched::DClasScheduler>();
  if (name == "fair") return std::make_unique<sched::PerFlowFairScheduler>();
  if (name == "varys") return std::make_unique<sched::VarysScheduler>();
  if (name == "fifo_lm") {
    // Same derivation as tools/aalo_sim.cc: heavy threshold at the 80th
    // size percentile, 2 s quantum.
    util::Summary sizes;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) sizes.add(c.totalBytes());
    }
    sched::FifoLmConfig cfg;
    cfg.heavy_threshold = sizes.percentile(80);
    cfg.quantum = 2.0;
    return std::make_unique<sched::FifoLmScheduler>(cfg);
  }
  if (name == "las") {
    sched::LasConfig cfg;
    cfg.quantum = 2.0;
    return std::make_unique<sched::DecentralizedLasScheduler>(cfg);
  }
  throw std::invalid_argument("unknown golden scheduler " + name);
}

TEST(GoldenTrace, PinnedCctPerScheduler) {
  const std::string path = std::string(AALO_TEST_DATA_DIR) + "/golden_200.trace";
  const coflow::Workload wl = workload::readTraceFile(path);
  ASSERT_EQ(wl.coflowCount(), 200u);
  ASSERT_EQ(wl.num_ports, 40);

  const bool print = std::getenv("AALO_PRINT_GOLDEN") != nullptr;
  for (const GoldenRow& row : kGolden) {
    auto scheduler = makeScheduler(row.scheduler, wl);
    const sim::SimResult result = sim::runSimulation(
        wl, fabric::FabricConfig{wl.num_ports, util::kGbps}, *scheduler);
    ASSERT_EQ(result.coflows.size(), 200u) << row.scheduler;
    util::Summary cct;
    for (const auto& rec : result.coflows) cct.add(rec.cct());
    if (print) {
      std::printf("    {\"%s\", %.17g, %.17g},\n", row.scheduler, cct.mean(),
                  cct.percentile(95));
      continue;
    }
    const double tol_avg = 1e-9 * row.avg_cct;
    const double tol_p95 = 1e-9 * row.p95_cct;
    EXPECT_NEAR(cct.mean(), row.avg_cct, tol_avg) << row.scheduler;
    EXPECT_NEAR(cct.percentile(95), row.p95_cct, tol_p95) << row.scheduler;
  }
}

}  // namespace
}  // namespace aalo
