#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "workload/distributions.h"
#include "workload/facebook.h"
#include "workload/tpcds.h"
#include "workload/trace_io.h"
#include "workload/transforms.h"
#include "sched/fair.h"
#include "sim/simulator.h"

namespace aalo::workload {
namespace {

using util::kMB;

TEST(Classify, Table3Bins) {
  EXPECT_EQ(classifyCoflow(1 * kMB, 10), CoflowBin::kShortNarrow);
  EXPECT_EQ(classifyCoflow(50 * kMB, 10), CoflowBin::kLongNarrow);
  EXPECT_EQ(classifyCoflow(1 * kMB, 200), CoflowBin::kShortWide);
  EXPECT_EQ(classifyCoflow(50 * kMB, 200), CoflowBin::kLongWide);
  // Boundary cases: exactly 5 MB is long; exactly 50 flows is narrow.
  EXPECT_EQ(classifyCoflow(kShortLengthLimit, 50), CoflowBin::kLongNarrow);
  EXPECT_EQ(classifyCoflow(1 * kMB, 51), CoflowBin::kShortWide);
}

TEST(IsolatedBottleneck, MaxOverPorts) {
  coflow::CoflowSpec spec;
  spec.flows = {{0, 1, 100.0, 0}, {0, 2, 50.0, 0}, {3, 1, 30.0, 0}};
  // Ingress 0 carries 150; egress 1 carries 130. Bottleneck 150 at rate 10.
  EXPECT_DOUBLE_EQ(isolatedBottleneckSeconds(spec, 10.0), 15.0);
}

class FacebookWorkload : public ::testing::Test {
 protected:
  static coflow::Workload make(std::uint64_t seed, std::size_t jobs = 400) {
    FacebookConfig cfg;
    cfg.seed = seed;
    cfg.num_jobs = jobs;
    return generateFacebookWorkload(cfg);
  }
};

TEST_F(FacebookWorkload, ValidatesAndIsDeterministic) {
  const auto a = make(5);
  EXPECT_NO_THROW(a.validate());
  const auto b = make(5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_DOUBLE_EQ(a.totalBytes(), b.totalBytes());
  const auto c = make(6);
  EXPECT_NE(a.totalBytes(), c.totalBytes());
}

TEST_F(FacebookWorkload, MatchesTable3CoflowMix) {
  const auto wl = make(1, 2000);
  std::map<CoflowBin, int> counts;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      counts[classifyCoflow(c.maxFlowBytes(), c.width())]++;
    }
  }
  const double n = static_cast<double>(wl.coflowCount());
  EXPECT_NEAR(counts[CoflowBin::kShortNarrow] / n, 0.52, 0.05);
  EXPECT_NEAR(counts[CoflowBin::kLongNarrow] / n, 0.16, 0.04);
  EXPECT_NEAR(counts[CoflowBin::kShortWide] / n, 0.15, 0.04);
  EXPECT_NEAR(counts[CoflowBin::kLongWide] / n, 0.17, 0.04);
}

TEST_F(FacebookWorkload, Bin4CarriesAlmostAllBytes) {
  const auto wl = make(2, 2000);
  std::map<CoflowBin, double> bytes;
  double total = 0;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      bytes[classifyCoflow(c.maxFlowBytes(), c.width())] += c.totalBytes();
      total += c.totalBytes();
    }
  }
  // Paper: 99.1% of bytes in bin 4; bins 1-3 carry ~1%.
  EXPECT_GT(bytes[CoflowBin::kLongWide] / total, 0.90);
  EXPECT_LT(bytes[CoflowBin::kShortNarrow] / total, 0.01);
}

TEST_F(FacebookWorkload, ArrivalsAreIncreasing) {
  const auto wl = make(3);
  for (std::size_t j = 1; j < wl.jobs.size(); ++j) {
    EXPECT_GE(wl.jobs[j].arrival, wl.jobs[j - 1].arrival);
  }
}

TEST_F(FacebookWorkload, CommunicationFractionsSpreadAcrossTable2Bands) {
  const auto wl = make(4, 2000);
  // compute_time back-solved from a drawn fraction: all four bands occur.
  int bands[4] = {0, 0, 0, 0};
  for (const auto& job : wl.jobs) {
    const auto comm = isolatedBottleneckSeconds(job.coflows[0], util::kGbps);
    const double frac = comm / (comm + job.compute_time);
    bands[frac < 0.25 ? 0 : frac < 0.5 ? 1 : frac < 0.75 ? 2 : 3]++;
  }
  const double n = static_cast<double>(wl.jobs.size());
  EXPECT_NEAR(bands[0] / n, 0.61, 0.05);
  EXPECT_NEAR(bands[1] / n, 0.13, 0.04);
  EXPECT_NEAR(bands[2] / n, 0.14, 0.04);
  EXPECT_NEAR(bands[3] / n, 0.12, 0.04);
}

TEST(Tpcds, TwentyQueriesWithPaperNames) {
  const auto& queries = clouderaBenchmarkQueries();
  EXPECT_EQ(queries.size(), 20u);
  bool has_ss_max = false;
  for (const auto& q : queries) {
    EXPECT_GE(criticalPathLength(q), 1);
    EXPECT_LE(criticalPathLength(q), 5);
    if (q.name == "ss_max") has_ss_max = true;
  }
  EXPECT_TRUE(has_ss_max);
}

TEST(Tpcds, GeneratesValidDagWorkload) {
  TpcdsConfig cfg;
  const auto wl = generateTpcdsWorkload(cfg);
  EXPECT_NO_THROW(wl.validate());
  EXPECT_EQ(wl.jobs.size(), 20u);
  // Multi-level queries must carry pipelined dependencies.
  std::size_t with_deps = 0;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      if (!c.finishes_before.empty()) ++with_deps;
      EXPECT_TRUE(c.starts_after.empty());  // Pipelined mode by default.
    }
  }
  EXPECT_GT(with_deps, 10u);
}

TEST(Tpcds, BarrierModeConvertsDependencies) {
  TpcdsConfig cfg;
  cfg.barriers_instead_of_pipelining = true;
  const auto wl = generateTpcdsWorkload(cfg);
  EXPECT_NO_THROW(wl.validate());
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      EXPECT_TRUE(c.finishes_before.empty());
    }
  }
}

TEST(Tpcds, ParentsHaveSmallerInternalIds) {
  const auto wl = generateTpcdsWorkload(TpcdsConfig{});
  for (const auto& job : wl.jobs) {
    std::map<coflow::CoflowId, const coflow::CoflowSpec*> by_id;
    for (const auto& c : job.coflows) by_id[c.id] = &c;
    for (const auto& c : job.coflows) {
      for (const auto& p : c.finishes_before) {
        EXPECT_EQ(p.external, c.id.external);
        EXPECT_LT(p.internal, c.id.internal);
      }
    }
  }
}

TEST(Distributions, UniformSizesStayInRange) {
  SizeDistributionConfig cfg;
  cfg.num_coflows = 200;
  const auto wl = generateUniformSizeWorkload(cfg, 100 * kMB);
  EXPECT_NO_THROW(wl.validate());
  for (const auto& job : wl.jobs) {
    EXPECT_LE(job.coflows[0].totalBytes(), 100 * kMB * 1.001);
  }
}

TEST(Distributions, FixedSizesAreExact) {
  SizeDistributionConfig cfg;
  cfg.num_coflows = 50;
  const auto wl = generateFixedSizeWorkload(cfg, 42 * kMB);
  for (const auto& job : wl.jobs) {
    EXPECT_NEAR(job.coflows[0].totalBytes(), 42 * kMB, 1.0);
  }
}

TEST(MultiWave, Table4Histogram) {
  FacebookConfig fb_cfg;
  fb_cfg.num_jobs = 2000;
  fb_cfg.seed = 9;
  auto wl = generateFacebookWorkload(fb_cfg);
  MultiWaveConfig mw;
  mw.max_waves = 4;
  const std::size_t changed = applyMultiWave(wl, mw);
  EXPECT_GT(changed, 0u);
  EXPECT_NO_THROW(wl.validate());
  const auto hist = waveHistogram(wl, 4);
  ASSERT_EQ(hist.size(), 4u);
  // Single-sender coflows can't be staggered, so 1-wave mass can exceed
  // the drawn 81% slightly.
  EXPECT_NEAR(hist[0], 0.81, 0.08);
  EXPECT_NEAR(hist[3], 0.06, 0.04);
}

TEST(MultiWave, MaxOneWaveIsIdentity) {
  FacebookConfig fb_cfg;
  fb_cfg.num_jobs = 50;
  auto wl = generateFacebookWorkload(fb_cfg);
  const auto before = wl.totalBytes();
  MultiWaveConfig mw;
  mw.max_waves = 1;
  EXPECT_EQ(applyMultiWave(wl, mw), 0u);
  EXPECT_DOUBLE_EQ(wl.totalBytes(), before);
  EXPECT_EQ(waveHistogram(wl, 1)[0], 1.0);
}

TEST(MultiWave, SplitPreservesBytesAndValidates) {
  FacebookConfig fb_cfg;
  fb_cfg.num_jobs = 300;
  fb_cfg.seed = 10;
  auto wl = generateFacebookWorkload(fb_cfg);
  MultiWaveConfig mw;
  mw.max_waves = 4;
  applyMultiWave(wl, mw);
  const auto split = splitWavesIntoCoflows(wl);
  EXPECT_NO_THROW(split.validate());
  EXPECT_NEAR(split.totalBytes(), wl.totalBytes(), 1.0);
  EXPECT_GE(split.coflowCount(), wl.coflowCount());
  // Every flow in the split workload starts with its coflow.
  for (const auto& job : split.jobs) {
    for (const auto& c : job.coflows) {
      for (const auto& f : c.flows) EXPECT_DOUBLE_EQ(f.start_offset, 0.0);
    }
  }
}

TEST(MultiWave, BarrierDelaysWholeCoflow) {
  coflow::Workload wl;
  wl.num_ports = 4;
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 1.0;
  coflow::CoflowSpec spec;
  spec.id = {0, 0};
  spec.flows = {{0, 1, 10.0, 0.0}, {2, 3, 10.0, 5.0}};
  job.coflows.push_back(spec);
  wl.jobs.push_back(job);

  const auto barriered = barrierWaves(wl);
  const auto& c = barriered.jobs[0].coflows[0];
  EXPECT_DOUBLE_EQ(c.arrival_offset, 5.0);
  for (const auto& f : c.flows) EXPECT_DOUBLE_EQ(f.start_offset, 0.0);
}

TEST(Transforms, AddBarriersToDags) {
  TpcdsConfig cfg;
  const auto pipelined = generateTpcdsWorkload(cfg);
  const auto barriered = addBarriersToDags(pipelined);
  EXPECT_NO_THROW(barriered.validate());
  std::size_t barriers = 0;
  for (const auto& job : barriered.jobs) {
    for (const auto& c : job.coflows) {
      EXPECT_TRUE(c.finishes_before.empty());
      barriers += c.starts_after.size();
    }
  }
  EXPECT_GT(barriers, 10u);
}

TEST(TraceIo, RoundTripsFacebookWorkload) {
  FacebookConfig cfg;
  cfg.num_jobs = 40;
  cfg.seed = 12;
  const auto wl = generateFacebookWorkload(cfg);
  std::stringstream ss;
  writeTrace(ss, wl);
  const auto parsed = readTrace(ss);
  ASSERT_EQ(parsed.jobs.size(), wl.jobs.size());
  EXPECT_EQ(parsed.num_ports, wl.num_ports);
  EXPECT_NEAR(parsed.totalBytes(), wl.totalBytes(), wl.totalBytes() * 1e-9);
  for (std::size_t j = 0; j < wl.jobs.size(); ++j) {
    EXPECT_EQ(parsed.jobs[j].id, wl.jobs[j].id);
    EXPECT_NEAR(parsed.jobs[j].arrival, wl.jobs[j].arrival, 1e-9);
    ASSERT_EQ(parsed.jobs[j].coflows.size(), wl.jobs[j].coflows.size());
  }
}

TEST(TraceIo, RoundTripsDependencies) {
  const auto wl = generateTpcdsWorkload(TpcdsConfig{});
  std::stringstream ss;
  writeTrace(ss, wl);
  const auto parsed = readTrace(ss);
  for (std::size_t j = 0; j < wl.jobs.size(); ++j) {
    for (std::size_t c = 0; c < wl.jobs[j].coflows.size(); ++c) {
      EXPECT_EQ(parsed.jobs[j].coflows[c].finishes_before,
                wl.jobs[j].coflows[c].finishes_before);
      EXPECT_EQ(parsed.jobs[j].coflows[c].id, wl.jobs[j].coflows[c].id);
    }
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return readTrace(ss);
  };
  EXPECT_THROW(parse("ports 2\n"), std::runtime_error);  // Missing header.
  EXPECT_THROW(parse("aalo-trace 2\n"), std::runtime_error);  // Bad version.
  EXPECT_THROW(parse("aalo-trace 1\nports 2\nflow 0 1 5 0\n"),
               std::runtime_error);  // Flow without coflow.
  EXPECT_THROW(parse("aalo-trace 1\nports 2\njob 0 0 0 1\ncoflow 0.0 0 2\n"
                     "flow 0 1 5 0\n"),
               std::runtime_error);  // Missing second flow.
  EXPECT_THROW(parse("aalo-trace 1\nports 2\njob 0 0 0 1\ncoflow zzz 0 1\n"
                     "flow 0 1 5 0\n"),
               std::runtime_error);  // Bad coflow id.
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "aalo-trace 1\n# a comment\n\nports 2\n"
      "job 0 0.5 1.5 1\ncoflow 0.0 0 1\nflow 0 1 5 0  # trailing comment\n";
  std::stringstream ss(text);
  const auto wl = readTrace(ss);
  EXPECT_EQ(wl.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(wl.jobs[0].arrival, 0.5);
}


TEST(Failures, InjectsRestartsAndGrowsTraffic) {
  FacebookConfig cfg;
  cfg.num_jobs = 300;
  cfg.seed = 31;
  auto wl = generateFacebookWorkload(cfg);
  const double before = wl.totalBytes();
  const std::size_t flows_before = [&] {
    std::size_t n = 0;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) n += c.flows.size();
    }
    return n;
  }();

  FailureConfig fcfg;
  fcfg.failure_probability = 0.2;
  const std::size_t failures = injectTaskFailures(wl, fcfg);
  EXPECT_NO_THROW(wl.validate());
  EXPECT_GT(failures, flows_before / 10);  // ~20% expected.
  EXPECT_LT(failures, flows_before / 3);
  // Restarts resend everything: total traffic strictly grows.
  EXPECT_GT(wl.totalBytes(), before);
  std::size_t flows_after = 0;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) flows_after += c.flows.size();
  }
  EXPECT_EQ(flows_after, flows_before + failures);
}

TEST(Failures, ZeroProbabilityIsIdentity) {
  FacebookConfig cfg;
  cfg.num_jobs = 30;
  auto wl = generateFacebookWorkload(cfg);
  const double before = wl.totalBytes();
  FailureConfig fcfg;
  fcfg.failure_probability = 0.0;
  EXPECT_EQ(injectTaskFailures(wl, fcfg), 0u);
  EXPECT_DOUBLE_EQ(wl.totalBytes(), before);
}

TEST(Failures, RejectsBadProbability) {
  coflow::Workload wl;
  FailureConfig fcfg;
  fcfg.failure_probability = 1.5;
  EXPECT_THROW(injectTaskFailures(wl, fcfg), std::invalid_argument);
}

TEST(Failures, RestartStartsAfterOriginalFailurePoint) {
  coflow::Workload wl;
  wl.num_ports = 2;
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  coflow::CoflowSpec spec;
  spec.id = {0, 0};
  spec.flows.push_back({0, 1, 100 * util::kMB, 0.0});
  job.coflows.push_back(spec);
  wl.jobs.push_back(job);

  FailureConfig fcfg;
  fcfg.failure_probability = 1.0;  // Deterministic failure.
  ASSERT_EQ(injectTaskFailures(wl, fcfg), 1u);
  const auto& flows = wl.jobs[0].coflows[0].flows;
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LT(flows[0].bytes, 100 * util::kMB);        // Truncated original.
  EXPECT_DOUBLE_EQ(flows[1].bytes, 100 * util::kMB);  // Full restart.
  EXPECT_GT(flows[1].start_offset, 0.0);
}


TEST(CoflowBenchmarkTrace, ParsesPublishedFormat) {
  // Two jobs in the exact format of FB2010-1Hr-150-0.txt (1-based racks).
  const std::string text =
      "4 2\n"
      "1 0 2 1 2 2 3:100 4:50\n"
      "2 500 1 4 1 1:10\n";
  std::stringstream ss(text);
  const auto wl = readCoflowBenchmarkTrace(ss);
  EXPECT_EQ(wl.num_ports, 4);
  ASSERT_EQ(wl.jobs.size(), 2u);

  const auto& j1 = wl.jobs[0];
  EXPECT_EQ(j1.id, 1);
  EXPECT_DOUBLE_EQ(j1.arrival, 0.0);
  ASSERT_EQ(j1.coflows.size(), 1u);
  // 2 mappers x 2 reducers = 4 flows; 150 MB total.
  EXPECT_EQ(j1.coflows[0].width(), 4u);
  EXPECT_NEAR(j1.coflows[0].totalBytes(), 150 * util::kMB, 1.0);
  // Reducer 3 (port 2) receives 100 MB split across both mappers.
  double to_port2 = 0;
  for (const auto& f : j1.coflows[0].flows) {
    if (f.dst == 2) to_port2 += f.bytes;
  }
  EXPECT_NEAR(to_port2, 100 * util::kMB, 1.0);

  const auto& j2 = wl.jobs[1];
  EXPECT_DOUBLE_EQ(j2.arrival, 0.5);  // 500 ms.
  EXPECT_EQ(j2.coflows[0].width(), 1u);
  EXPECT_EQ(j2.coflows[0].flows[0].src, 3);  // Rack 4, 0-based port 3.
  EXPECT_EQ(j2.coflows[0].flows[0].dst, 0);
}

TEST(CoflowBenchmarkTrace, RejectsMalformedInput) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return readCoflowBenchmarkTrace(ss);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("4 1\n1 0 0 1 1:10\n"), std::runtime_error);  // 0 mappers.
  EXPECT_THROW(parse("4 1\n1 0 1 9 1 1:10\n"), std::runtime_error);  // Rack 9.
  EXPECT_THROW(parse("4 1\n1 0 1 1 1 110\n"), std::runtime_error);  // No colon.
  EXPECT_THROW(parse("4 1\n1 0 1 1 1 1:0\n"), std::runtime_error);  // Zero MB.
}

TEST(CoflowBenchmarkTrace, ReplaysThroughSimulator) {
  const std::string text =
      "3 2\n"
      "1 0 1 1 1 2:50\n"
      "2 100 1 2 1 3:20\n";
  std::stringstream ss(text);
  const auto wl = readCoflowBenchmarkTrace(ss);
  // 50 MB at 1 Gbps = 0.4 s for job 1.
  sched::PerFlowFairScheduler fair;
  const auto result =
      sim::runSimulation(wl, fabric::FabricConfig{3, util::kGbps}, fair);
  EXPECT_EQ(result.coflows.size(), 2u);
  EXPECT_NEAR(result.coflows[0].cct(), 0.4, 1e-6);
}

}  // namespace
}  // namespace aalo::workload
