// Runtime robustness: malformed frames, multiple clients, unregister
// cleanup, and the §6.2 ON/OFF flow-gating signals.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/connection.h"
#include "net/protocol.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

CoordinatorConfig fastCoordinator() {
  CoordinatorConfig cfg;
  cfg.sync_interval = 0.005;
  return cfg;
}

TEST(RuntimeRobustness, CoordinatorSurvivesMalformedFrames) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();

  // Hand-roll a client that sends garbage frames.
  net::EventLoop loop;
  net::Fd fd = net::connectTcp(coordinator.port());
  net::Connection conn(loop, std::move(fd), {}, {});
  net::Buffer garbage;
  garbage.putU8(99);  // Unknown type.
  garbage.putU64(123456);
  conn.sendFrame(garbage);
  net::Buffer truncated;
  truncated.putU8(2);  // RegisterCoflow missing its fields.
  conn.sendFrame(truncated);
  for (int i = 0; i < 20; ++i) loop.runOnce(std::chrono::milliseconds(5));

  // Coordinator still alive and serving real clients.
  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  EXPECT_EQ(id.internal, 0);
  coordinator.stop();
}

TEST(RuntimeRobustness, MultipleClientsGetDistinctIds) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();
  AaloClient a(coordinator.port());
  AaloClient b(coordinator.port());
  const auto ia = a.registerCoflow();
  const auto ib = b.registerCoflow();
  const auto ia2 = a.registerCoflow();
  EXPECT_NE(ia, ib);
  EXPECT_NE(ib, ia2);
  EXPECT_NE(ia, ia2);
  coordinator.stop();
}

TEST(RuntimeRobustness, UnregisterRemovesFromSchedules) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();
  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 50 * util::kMB);
  waitFor([&] { return daemon.queueOf(id) > 0; });

  client.unregisterCoflow(id);
  waitFor([&] { return coordinator.registeredCoflows() == 0; });
  // After the next schedule the daemon no longer knows the coflow: it
  // falls back to the highest-priority default.
  waitFor([&] { return daemon.queueOf(id) == 0; });
  daemon.stop();
  coordinator.stop();
}

TEST(RuntimeRobustness, OnOffSignalsGateLowPriorityCoflows) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.max_on_coflows = 1;  // Only the top coflow may send (§6.2).
  ccfg.dclas.first_threshold = 1 * util::kMB;
  ccfg.dclas.num_queues = 3;
  Coordinator coordinator(ccfg);
  coordinator.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  dcfg.num_queues = 3;
  dcfg.uplink_capacity = 100.0;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto hot = client.registerCoflow();
  const auto cold = client.registerCoflow();
  daemon.writerActive(hot, true);
  daemon.writerActive(cold, true);
  // Demote 'cold' so 'hot' sorts first; with max_on=1, cold goes OFF.
  daemon.reportBytes(cold, 5 * util::kMB);
  waitFor([&] { return !daemon.isOn(cold); });
  EXPECT_TRUE(daemon.isOn(hot));
  EXPECT_DOUBLE_EQ(daemon.rateFor(cold), 0.0);
  // The OFF coflow's share flows to the ON one: full uplink.
  EXPECT_DOUBLE_EQ(daemon.rateFor(hot), 100.0);

  daemon.writerActive(hot, false);
  daemon.writerActive(cold, false);
  daemon.stop();
  coordinator.stop();
}

TEST(RuntimeRobustness, OnByDefaultWithoutBudget) {
  Coordinator coordinator(fastCoordinator());  // max_on_coflows = 0.
  coordinator.start();
  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  daemon.reportBytes(a, 1.0);
  daemon.reportBytes(b, 1.0);
  waitFor([&] { return daemon.lastEpoch() >= 3; });
  EXPECT_TRUE(daemon.isOn(a));
  EXPECT_TRUE(daemon.isOn(b));
  daemon.stop();
  coordinator.stop();
}

TEST(RuntimeRobustness, ScheduleEntryOnFlagRoundTrips) {
  net::Message m;
  m.type = net::MessageType::kScheduleUpdate;
  m.epoch = 1;
  m.schedule = {{{1, 0}, 100.0, 0, true}, {{2, 0}, 200.0, 1, false}};
  net::Buffer buffer;
  net::encodeMessage(m, buffer);
  const auto decoded = net::decodeMessage(buffer);
  ASSERT_EQ(decoded.schedule.size(), 2u);
  EXPECT_TRUE(decoded.schedule[0].on);
  EXPECT_FALSE(decoded.schedule[1].on);
}


TEST(RuntimeRobustness, StopIsIdempotentUnderConcurrentCallers) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();
  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();
  waitFor([&] { return daemon.connected(); });

  // Many threads race stop() on both components; every caller must return
  // only once shutdown has fully completed, and none may crash or hang.
  std::vector<std::thread> stoppers;
  stoppers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    stoppers.emplace_back([&] {
      daemon.stop();
      coordinator.stop();
    });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(daemon.connected());
  EXPECT_EQ(coordinator.daemonCount(), 0u);
  // Stopping again after the fact is still a no-op (destructors re-stop).
  daemon.stop();
  coordinator.stop();
}

TEST(RuntimeRobustness, TombstonesAreCollectedOnceReportsPrune) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.tombstone_gc_intervals = 10;
  Coordinator coordinator(ccfg);
  coordinator.start();
  DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.005;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 50 * util::kMB);
  waitFor([&] { return daemon.queueOf(id) > 0; });

  client.unregisterCoflow(id);
  waitFor([&] { return coordinator.tombstoneCount() >= 1; });
  // The daemon notices the coflow left the schedule, prunes its local
  // accounting, stops mentioning it — and the tombstone is then GC'd.
  waitFor([&] {
    return daemon.stats().completed_coflows_pruned.load(
               std::memory_order_relaxed) >= 1;
  });
  waitFor([&] { return coordinator.tombstoneCount() == 0; });
  EXPECT_GE(coordinator.stats().tombstones_collected.load(
                std::memory_order_relaxed),
            1u);
  daemon.stop();
  coordinator.stop();
}

TEST(RuntimeRobustness, DaemonReconnectsAfterCoordinatorRestart) {
  auto coordinator = std::make_unique<Coordinator>(fastCoordinator());
  coordinator->start();
  const std::uint16_t port = coordinator->port();

  DaemonConfig dcfg;
  dcfg.coordinator_port = port;
  dcfg.daemon_id = 5;
  dcfg.sync_interval = 0.005;
  dcfg.reconnect_interval = 0.02;
  Daemon daemon(dcfg);
  daemon.start();
  waitFor([&] { return daemon.connected() && daemon.lastEpoch() >= 1; });

  // Local observations made before the outage survive it (§3.2).
  const coflow::CoflowId id{0, 0};
  daemon.reportBytes(id, 7 * util::kMB);

  coordinator->stop();
  coordinator.reset();
  waitFor([&] { return !daemon.connected(); });

  // Restart on the same port; the daemon must find it again.
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.port = port;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  coordinator = std::make_unique<Coordinator>(ccfg);
  coordinator->start();
  waitFor([&] { return daemon.connected(); });
  waitFor([&] { return coordinator->daemonCount() == 1; });
  // The retained local sizes reach the new coordinator and demote the
  // coflow past the 1 MB threshold.
  waitFor([&] { return daemon.queueOf(id) > 0; });
  daemon.stop();
  coordinator->stop();
}

}  // namespace
}  // namespace aalo::runtime
