// Shared builders for scheduler/simulator tests: tiny workloads with
// hand-computable completion times on unit-capacity fabrics.
#pragma once

#include <initializer_list>
#include <vector>

#include "coflow/spec.h"
#include "fabric/fabric.h"
#include "sim/simulator.h"

namespace aalo::testing {

/// Fabric with `ports` ports of 1 byte/s each: sizes == seconds.
inline fabric::FabricConfig unitFabric(int ports) {
  return fabric::FabricConfig{ports, 1.0};
}

struct FlowDef {
  coflow::PortId src;
  coflow::PortId dst;
  util::Bytes bytes;
  util::Seconds offset = 0;
};

/// One job holding one coflow with the given flows.
inline coflow::JobSpec makeJob(coflow::JobId job_id, util::Seconds arrival,
                               std::initializer_list<FlowDef> flows,
                               std::int32_t internal = 0) {
  coflow::JobSpec job;
  job.id = job_id;
  job.arrival = arrival;
  coflow::CoflowSpec spec;
  spec.id = coflow::CoflowId{job_id, internal};
  for (const FlowDef& f : flows) {
    spec.flows.push_back(coflow::FlowSpec{f.src, f.dst, f.bytes, f.offset});
  }
  job.coflows.push_back(std::move(spec));
  return job;
}

inline coflow::Workload makeWorkload(int ports,
                                     std::vector<coflow::JobSpec> jobs) {
  coflow::Workload wl;
  wl.num_ports = ports;
  wl.jobs = std::move(jobs);
  return wl;
}

/// Runs with allocation verification on (tests always verify feasibility).
inline sim::SimResult runVerified(const coflow::Workload& wl,
                                  fabric::FabricConfig fc, sim::Scheduler& sched) {
  sim::SimOptions opts;
  opts.verify_allocations = true;
  return sim::runSimulation(wl, fc, sched, opts);
}

/// CCT of the coflow with the given id; throws if absent.
inline util::Seconds cctOf(const sim::SimResult& result, coflow::CoflowId id) {
  for (const auto& rec : result.coflows) {
    if (rec.id == id) return rec.cct();
  }
  throw std::out_of_range("cctOf: coflow not in result");
}

/// Average CCT over all coflows.
inline double avgCct(const sim::SimResult& result) {
  double total = 0;
  for (const auto& rec : result.coflows) total += rec.cct();
  return total / static_cast<double>(result.coflows.size());
}

}  // namespace aalo::testing
