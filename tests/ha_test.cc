// Coordinator high availability: warm-standby failover, checkpoint
// restore, torn broadcasts, reconnect-backoff discipline, and overload
// backpressure. These are end-to-end drills over real sockets; they
// carry the "ha" ctest label and run under the sanitizer presets.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

CoordinatorConfig fastCoordinator() {
  CoordinatorConfig cfg;
  cfg.sync_interval = 0.005;
  return cfg;
}

DaemonConfig fastDaemon(std::uint16_t port, std::uint64_t id) {
  DaemonConfig cfg;
  cfg.coordinator_port = port;
  cfg.daemon_id = id;
  cfg.sync_interval = 0.005;
  cfg.reconnect_interval = 0.01;
  return cfg;
}

std::string freshDir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("aalo_ha_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

testing::AssertionResult sameSchedule(const std::vector<net::ScheduleEntry>& a,
                                      const std::vector<net::ScheduleEntry>& b) {
  if (a == b) return testing::AssertionSuccess();
  auto dump = [](const std::vector<net::ScheduleEntry>& s) {
    std::string out;
    for (const auto& e : s) {
      out += " {" + e.id.toString() + " " +
             std::to_string(e.global_bytes) + "B q" + std::to_string(e.queue) +
             (e.on ? " on" : " off") + "}";
    }
    return out.empty() ? std::string(" <empty>") : out;
  };
  return testing::AssertionFailure()
         << "schedules differ:\n  lhs:" << dump(a) << "\n  rhs:" << dump(b);
}

// Tentpole drill: kill the primary mid-stream; every daemon must converge
// on the promoted standby (higher fence) and the final schedule must be
// bit-identical to a run where no failure ever happened.
TEST(HighAvailability, FailoverConvergesBitIdenticalToNoFailureRun) {
  auto primary = std::make_unique<Coordinator>(fastCoordinator());
  primary->start();

  CoordinatorConfig scfg = fastCoordinator();
  scfg.standby_of = primary->port();
  scfg.takeover_intervals = 5;
  Coordinator standby(scfg);
  standby.start();
  EXPECT_FALSE(standby.isPrimary());

  DaemonConfig d1cfg = fastDaemon(primary->port(), 1);
  d1cfg.coordinator_ports = {primary->port(), standby.port()};
  DaemonConfig d2cfg = d1cfg;
  d2cfg.daemon_id = 2;
  Daemon d1(d1cfg);
  Daemon d2(d2cfg);
  d1.start();
  d2.start();

  AaloClient client(primary->port());
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  const auto c = client.registerCoflow();
  d1.reportBytes(a, 64.0 * util::kMB);
  d2.reportBytes(a, 64.0 * util::kMB);
  d1.reportBytes(b, 2.0 * util::kMB);
  // c never sends: stays a fresh queue-0 coflow.
  waitFor([&] { return d1.queueOf(a) > 0 && d2.queueOf(a) > 0; });
  // The standby is mirroring the stream before the failure.
  waitFor([&] {
    return standby.stats().follower_frames_applied.load(
               std::memory_order_relaxed) >= 5;
  });

  primary->stop();
  primary.reset();

  // The standby notices the silence, promotes, and fences above the
  // deposed primary; daemons rotate endpoints and follow the new fence.
  waitFor([&] { return standby.isPrimary(); }, 10000ms);
  EXPECT_EQ(standby.fence(), 2u);
  EXPECT_EQ(
      standby.stats().failovers.load(std::memory_order_relaxed), 1u);
  waitFor([&] { return standby.daemonCount() == 2; }, 10000ms);
  waitFor([&] { return d1.fenceSeen() == 2 && d2.fenceSeen() == 2; },
          10000ms);
  waitFor([&] { return d1.connected() && d2.connected(); }, 10000ms);
  // Absolute size reports re-teach the promoted standby within a round.
  waitFor([&] { return d1.queueOf(a) > 0 && d2.queueOf(a) > 0; }, 10000ms);

  // Reference universe: same registrations and reports, no failure.
  Coordinator reference(fastCoordinator());
  reference.start();
  Daemon r1(fastDaemon(reference.port(), 1));
  Daemon r2(fastDaemon(reference.port(), 2));
  r1.start();
  r2.start();
  AaloClient ref_client(reference.port());
  const auto ra = ref_client.registerCoflow();
  const auto rb = ref_client.registerCoflow();
  ref_client.registerCoflow();
  ASSERT_EQ(ra, a);  // Same mint order => same CoflowIds.
  ASSERT_EQ(rb, b);
  r1.reportBytes(ra, 64.0 * util::kMB);
  r2.reportBytes(ra, 64.0 * util::kMB);
  r1.reportBytes(rb, 2.0 * util::kMB);
  waitFor([&] { return r1.queueOf(ra) > 0 && r2.queueOf(ra) > 0; });

  waitFor(
      [&] {
        return sameSchedule(standby.scheduleSnapshot(),
                            reference.scheduleSnapshot());
      },
      10000ms);
  const auto failed_over = standby.scheduleSnapshot();
  ASSERT_EQ(failed_over.size(), 3u);
  EXPECT_TRUE(sameSchedule(failed_over, reference.scheduleSnapshot()));
  // The unreported coflow survived the failover as a fresh queue-0 entry.
  EXPECT_TRUE(std::any_of(failed_over.begin(), failed_over.end(),
                          [&](const auto& e) { return e.id == c; }));

  d1.stop();
  d2.stop();
  r1.stop();
  r2.stop();
  standby.stop();
  reference.stop();
}

// The failover drill at --shards 4: a sharded primary dies mid-stream, a
// sharded standby promotes, and the converged schedule must be
// bit-identical to an undisturbed *single-threaded* reference run — one
// drill covering failover, fencing, and cross-implementation equivalence.
TEST(HighAvailability, ShardedFailoverConvergesBitIdenticalToOracleRun) {
  CoordinatorConfig pcfg = fastCoordinator();
  pcfg.shards = 4;
  auto primary = std::make_unique<Coordinator>(pcfg);
  primary->start();

  CoordinatorConfig scfg = fastCoordinator();
  scfg.shards = 4;
  scfg.standby_of = primary->port();
  scfg.takeover_intervals = 5;
  Coordinator standby(scfg);
  standby.start();
  EXPECT_FALSE(standby.isPrimary());

  DaemonConfig d1cfg = fastDaemon(primary->port(), 1);
  d1cfg.coordinator_ports = {primary->port(), standby.port()};
  DaemonConfig d2cfg = d1cfg;
  d2cfg.daemon_id = 2;
  Daemon d1(d1cfg);
  Daemon d2(d2cfg);
  d1.start();
  d2.start();

  AaloClient client(primary->port());
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  const auto c = client.registerCoflow();
  d1.reportBytes(a, 64.0 * util::kMB);
  d2.reportBytes(a, 64.0 * util::kMB);
  d1.reportBytes(b, 2.0 * util::kMB);
  // c never sends: stays a fresh queue-0 coflow.
  waitFor([&] { return d1.queueOf(a) > 0 && d2.queueOf(a) > 0; });
  waitFor([&] {
    return standby.stats().follower_frames_applied.load(
               std::memory_order_relaxed) >= 5;
  });

  primary->stop();
  primary.reset();

  waitFor([&] { return standby.isPrimary(); }, 10000ms);
  EXPECT_EQ(standby.fence(), 2u);
  EXPECT_EQ(standby.stats().failovers.load(std::memory_order_relaxed), 1u);
  waitFor([&] { return standby.daemonCount() == 2; }, 10000ms);
  waitFor([&] { return d1.fenceSeen() == 2 && d2.fenceSeen() == 2; }, 10000ms);
  waitFor([&] { return d1.queueOf(a) > 0 && d2.queueOf(a) > 0; }, 10000ms);

  // Reference universe: single-threaded oracle, no failure.
  Coordinator reference(fastCoordinator());
  reference.start();
  Daemon r1(fastDaemon(reference.port(), 1));
  Daemon r2(fastDaemon(reference.port(), 2));
  r1.start();
  r2.start();
  AaloClient ref_client(reference.port());
  const auto ra = ref_client.registerCoflow();
  const auto rb = ref_client.registerCoflow();
  ref_client.registerCoflow();
  ASSERT_EQ(ra, a);  // Same mint order => same CoflowIds.
  ASSERT_EQ(rb, b);
  r1.reportBytes(ra, 64.0 * util::kMB);
  r2.reportBytes(ra, 64.0 * util::kMB);
  r1.reportBytes(rb, 2.0 * util::kMB);
  waitFor([&] { return r1.queueOf(ra) > 0 && r2.queueOf(ra) > 0; });

  waitFor(
      [&] {
        return sameSchedule(standby.scheduleSnapshot(),
                            reference.scheduleSnapshot());
      },
      10000ms);
  const auto failed_over = standby.scheduleSnapshot();
  ASSERT_EQ(failed_over.size(), 3u);
  EXPECT_TRUE(sameSchedule(failed_over, reference.scheduleSnapshot()));
  EXPECT_TRUE(std::any_of(failed_over.begin(), failed_over.end(),
                          [&](const auto& e) { return e.id == c; }));

  d1.stop();
  d2.stop();
  r1.stop();
  r2.stop();
  standby.stop();
  reference.stop();
}

// Tentpole drill: a gracefully restarted coordinator resumes from
// (snapshot + journal) and re-broadcasts a bit-identical schedule without
// a single snapshot request — no re-teach round.
TEST(HighAvailability, RestoreResumesBitIdenticalSchedule) {
  const std::string dir = freshDir("restore");
  CoordinatorConfig cfg = fastCoordinator();
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_interval = 0.05;
  // A scheduler stall (sanitizer runs) past the liveness window would
  // evict daemon 7 and zero its sizes mid-drill; this test is about
  // checkpoint restore, so keep the watchdogs out of it.
  cfg.liveness_timeout_intervals = 0;
  cfg.one_way_timeout_intervals = 0;
  auto coordinator = std::make_unique<Coordinator>(cfg);
  coordinator->start();
  const std::uint16_t port = coordinator->port();

  DaemonConfig dcfg = fastDaemon(port, 7);
  // Symmetrically, a stall past the daemon's staleness window would force
  // a reconnect, whose dropPeer zeroes the sizes until the re-teach lands
  // — a transient the bit-identity capture below must not race.
  dcfg.stale_after_intervals = 0;
  Daemon daemon(dcfg);
  daemon.start();
  AaloClient client(port);
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  daemon.reportBytes(a, 480.0 * util::kMB);  // Queue 2 at default D-CLAS.
  daemon.reportBytes(b, 13.0 * util::kMB);   // Queue 1 (Q1 = 10 MB).
  waitFor([&] { return daemon.queueOf(a) > 0 && daemon.queueOf(b) > 0; });

  // Capture from the coordinator itself, once both reports are applied.
  std::vector<net::ScheduleEntry> before;
  waitFor([&] {
    before = coordinator->scheduleSnapshot();
    return before.size() == 2 &&
           std::all_of(before.begin(), before.end(),
                       [](const auto& e) { return e.queue > 0; });
  });
  const auto epoch_before = coordinator->epoch();
  coordinator->stop();  // Final flush + snapshot.
  coordinator.reset();
  waitFor([&] { return !daemon.connected(); });

  CoordinatorConfig cfg2 = cfg;
  cfg2.port = port;  // Same endpoint so the daemon finds it again.
  Coordinator restarted(cfg2);
  restarted.start();
  EXPECT_EQ(restarted.stats().checkpoint_restores.load(
                std::memory_order_relaxed),
            1u);
  EXPECT_EQ(restarted.stats().checkpoint_restore_failures.load(
                std::memory_order_relaxed),
            0u);
  // Bit-identical before any daemon reconnects or re-teaches.
  EXPECT_TRUE(sameSchedule(restarted.scheduleSnapshot(), before));
  EXPECT_GE(restarted.epoch(), epoch_before);
  EXPECT_EQ(restarted.registeredCoflows(), 2u);

  // The daemon reconnects, gets a connect-time snapshot, and never needs
  // to ask for one: zero kSnapshotRequests, schedule still identical.
  waitFor([&] { return daemon.connected(); }, 10000ms);
  waitFor([&] { return restarted.daemonCount() == 1; });
  waitFor([&] { return daemon.queueOf(a) > 0 && daemon.queueOf(b) > 0; });
  EXPECT_TRUE(sameSchedule(restarted.scheduleSnapshot(), before));
  EXPECT_EQ(restarted.stats().snapshot_requests.load(
                std::memory_order_relaxed),
            0u);

  daemon.stop();
  restarted.stop();
}

// The restore drill at --shards 4: a checkpoint written by the sharded
// coordinator (merged multi-state snapshot + shard-epoch-marked journal)
// restores bit-identically — both back into 4 shards and into the
// single-threaded oracle, proving the on-disk format is shard-agnostic.
TEST(HighAvailability, ShardedRestoreResumesBitIdenticalSchedule) {
  const std::string dir = freshDir("sharded_restore");
  CoordinatorConfig cfg = fastCoordinator();
  cfg.shards = 4;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_interval = 0.05;
  cfg.liveness_timeout_intervals = 0;  // See RestoreResumesBitIdentical.
  cfg.one_way_timeout_intervals = 0;
  auto coordinator = std::make_unique<Coordinator>(cfg);
  coordinator->start();
  const std::uint16_t port = coordinator->port();

  DaemonConfig dcfg = fastDaemon(port, 7);
  dcfg.stale_after_intervals = 0;
  Daemon daemon(dcfg);
  daemon.start();
  AaloClient client(port);
  const auto a = client.registerCoflow();
  const auto b = client.registerCoflow();
  const auto c = client.registerCoflow();
  daemon.reportBytes(a, 480.0 * util::kMB);  // Queue 2 at default D-CLAS.
  daemon.reportBytes(b, 13.0 * util::kMB);   // Queue 1 (Q1 = 10 MB).
  client.unregisterCoflow(c);                // A live tombstone to carry.
  waitFor([&] { return daemon.queueOf(a) > 0 && daemon.queueOf(b) > 0; });

  std::vector<net::ScheduleEntry> before;
  waitFor([&] {
    before = coordinator->scheduleSnapshot();
    return before.size() == 2 &&
           std::all_of(before.begin(), before.end(),
                       [](const auto& e) { return e.queue > 0; });
  });
  const auto epoch_before = coordinator->epoch();
  coordinator->stop();  // Final flush + merged snapshot.
  coordinator.reset();
  daemon.stop();  // Restores below must come purely from disk.

  // Restart sharded: bit-identical without any daemon re-teach.
  CoordinatorConfig cfg4 = cfg;
  cfg4.port = 0;
  {
    Coordinator restarted(cfg4);
    restarted.start();
    EXPECT_EQ(restarted.stats().checkpoint_restores.load(
                  std::memory_order_relaxed),
              1u);
    EXPECT_TRUE(sameSchedule(restarted.scheduleSnapshot(), before));
    EXPECT_GE(restarted.epoch(), epoch_before);
    EXPECT_EQ(restarted.registeredCoflows(), 2u);
    EXPECT_GE(restarted.tombstoneCount(), 1u);
    restarted.stop();
  }

  // Restart single-threaded from the same files: the merged snapshot is
  // indistinguishable from one the oracle wrote itself.
  CoordinatorConfig cfg1 = cfg;
  cfg1.port = 0;
  cfg1.shards = 1;
  Coordinator oracle(cfg1);
  oracle.start();
  EXPECT_EQ(
      oracle.stats().checkpoint_restores.load(std::memory_order_relaxed), 1u);
  EXPECT_TRUE(sameSchedule(oracle.scheduleSnapshot(), before));
  oracle.stop();
}

// A restart with a corrupt checkpoint falls back to the classic re-teach
// path: daemons' forced absolute reports rebuild the schedule.
TEST(HighAvailability, CorruptCheckpointFallsBackToReteach) {
  const std::string dir = freshDir("corrupt_fallback");
  CoordinatorConfig cfg = fastCoordinator();
  cfg.checkpoint_dir = dir;
  auto coordinator = std::make_unique<Coordinator>(cfg);
  coordinator->start();
  const std::uint16_t port = coordinator->port();
  Daemon daemon(fastDaemon(port, 3));
  daemon.start();
  AaloClient client(port);
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 32.0 * util::kMB);
  waitFor([&] { return daemon.queueOf(id) > 0; });
  coordinator->stop();
  coordinator.reset();

  // Flip a byte in the snapshot: the restore must reject it wholly.
  const std::string snap = dir + "/schedule.ckpt";
  {
    std::ifstream in(snap, std::ios::binary);
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    ASSERT_GT(bytes.size(), 16u);
    bytes[bytes.size() / 2] ^= 0x7f;
    std::ofstream out(snap, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  CoordinatorConfig cfg2 = cfg;
  cfg2.port = port;
  Coordinator restarted(cfg2);
  restarted.start();
  EXPECT_EQ(restarted.stats().checkpoint_restores.load(
                std::memory_order_relaxed),
            0u);
  EXPECT_EQ(restarted.stats().checkpoint_restore_failures.load(
                std::memory_order_relaxed),
            1u);
  EXPECT_EQ(restarted.registeredCoflows(), 0u);
  // Re-teach: the daemon's forced full report restores the demotion.
  waitFor([&] { return daemon.connected() && daemon.queueOf(id) > 0; },
          10000ms);
  daemon.stop();
  restarted.stop();
}

// Satellite regression: a broadcast torn mid-frame (sender killed inside
// a write) must be discarded by framing — never half-applied, never
// counted as a malformed frame — and the daemon reconverges cleanly.
TEST(HighAvailability, TornBroadcastDiscardedCleanly) {
  Coordinator coordinator(fastCoordinator());
  coordinator.start();

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 42;
  pcfg.upstream_to_client.kill_mid_frame = 0.05;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  Daemon daemon(fastDaemon(proxy.port(), 4));
  daemon.start();
  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 32.0 * util::kMB);

  waitFor(
      [&] {
        return proxy.stats().frames_torn.load(std::memory_order_relaxed) >= 3;
      },
      20000ms);
  // Heal the link: the daemon must reconnect and fully reconverge.
  proxy.setPolicies({}, {});
  waitFor([&] { return daemon.connected() && daemon.queueOf(id) > 0; },
          10000ms);
  // Every tear severed the session before a complete frame could form, so
  // nothing ever reached the decoder half-built.
  EXPECT_EQ(daemon.stats().malformed_frames.load(std::memory_order_relaxed),
            0u);
  EXPECT_GE(daemon.stats().reconnects.load(std::memory_order_relaxed), 2u);

  daemon.stop();
  proxy.stop();
  coordinator.stop();
}

// Satellite regression: the reconnect backoff must reset only after a
// connection actually syncs a schedule. A crash-looping coordinator whose
// accepts immediately die used to reset the backoff on every successful
// dial, turning the daemon into a tight-loop redialer.
TEST(HighAvailability, BackoffResetsOnlyAfterSyncedSchedule) {
  auto [listener, port] = net::listenTcp(0);
  std::atomic<bool> trap_running{true};
  // Accept-then-close trap: every dial succeeds, every connection dies
  // before a single schedule broadcast.
  std::thread trap([&, listener_fd = listener.get()] {
    while (trap_running.load(std::memory_order_relaxed)) {
      [[maybe_unused]] net::Fd conn = net::acceptTcp(listener_fd);
      std::this_thread::sleep_for(1ms);
    }
  });

  DaemonConfig dcfg = fastDaemon(port, 9);
  dcfg.reconnect_interval = 0.01;
  dcfg.reconnect_max_backoff = 0.5;
  dcfg.reconnect_seed = 7;
  Daemon daemon(dcfg);
  daemon.start();

  waitFor(
      [&] {
        return daemon.stats().reconnect_attempts.load(
                   std::memory_order_relaxed) >= 6;
      },
      15000ms);
  // Dials keep succeeding but never sync: the backoff must have grown.
  EXPECT_GT(daemon.currentReconnectBackoff(), dcfg.reconnect_interval);

  trap_running.store(false, std::memory_order_relaxed);
  trap.join();
  listener.reset();

  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.port = port;
  Coordinator coordinator(ccfg);
  coordinator.start();
  waitFor([&] { return daemon.connected(); }, 15000ms);
  // Only now — first schedule applied — does the backoff return to base.
  waitFor([&] {
    return util::nearlyEqual(daemon.currentReconnectBackoff(),
                             dcfg.reconnect_interval);
  });

  daemon.stop();
  coordinator.stop();
}

// Satellite drill: one peer that stops draining its socket must not slow
// the round loop — its broadcasts are skipped (coalesced into a later
// snapshot) and the hard queue cap eventually isolates it, while a
// healthy daemon stays synced throughout.
TEST(HighAvailability, OverloadCoalescesAndIsolatesSlowPeer) {
  CoordinatorConfig ccfg = fastCoordinator();
  ccfg.snapshot_every = 1;        // Full snapshot every round: big frames.
  ccfg.send_queue_max = 64 * 1024;
  // Disable the report watchdogs: this drill is about a peer that reads
  // nothing, and it must be the *backpressure* path that isolates it.
  ccfg.liveness_timeout_intervals = 0;
  ccfg.one_way_timeout_intervals = 0;
  Coordinator coordinator(ccfg);
  coordinator.start();

  Daemon healthy(fastDaemon(coordinator.port(), 1));
  healthy.start();

  // Slow peer: says Hello, teaches the coordinator a wide schedule, then
  // never reads another byte.
  net::EventLoop loop;
  net::Fd fd = net::connectTcp(coordinator.port());
  auto slow = std::make_unique<net::Connection>(
      loop, std::move(fd), [](net::Buffer&) {}, [] {});
  net::Message hello;
  hello.type = net::MessageType::kHello;
  hello.daemon_id = 99;
  net::Buffer frame;
  net::encodeMessage(hello, frame);
  slow->sendFrame(frame);
  net::Message report;
  report.type = net::MessageType::kSizeReport;
  report.daemon_id = 99;
  for (std::int64_t i = 0; i < 3000; ++i) {
    report.sizes.push_back(
        {{i + 1000, 0}, 1024.0 * static_cast<double>(i + 1)});
  }
  frame.clear();
  net::encodeMessage(report, frame);
  slow->sendFrame(frame);
  // Drain our own writes, then go silent (stop reading broadcasts).
  waitFor([&] {
    loop.runOnce(std::chrono::milliseconds(1));
    return slow->pendingBytes() == 0;
  });
  waitFor([&] { return coordinator.daemonCount() == 2; });

  // Snapshots pile up in the slow peer's queue until it crosses
  // send_queue_max; from then on the coordinator skips it every round
  // (one coalesce per skipped broadcast) instead of queueing unboundedly
  // — the soft skip parks the queue *below* the 4x hard cap, so the peer
  // stays connected but frozen.
  waitFor(
      [&] {
        return coordinator.stats().broadcasts_coalesced.load(
                   std::memory_order_relaxed) >= 3;
      },
      20000ms);
  // The round loop never stalls: epochs keep advancing at full rate and
  // the healthy daemon keeps applying them.
  const auto epoch_at = coordinator.epoch();
  waitFor([&] { return coordinator.epoch() >= epoch_at + 10; }, 10000ms);
  EXPECT_TRUE(healthy.connected());
  const auto healthy_epoch = healthy.lastEpoch();
  waitFor([&] { return healthy.lastEpoch() > healthy_epoch; });
  // The skip is persistent, not a one-off: coalesces keep accumulating
  // while the peer stays parked (in production the liveness watchdog,
  // disabled here, would evict it).
  const auto coalesced_at = coordinator.stats().broadcasts_coalesced.load(
      std::memory_order_relaxed);
  waitFor([&] {
    return coordinator.stats().broadcasts_coalesced.load(
               std::memory_order_relaxed) >= coalesced_at + 10;
  });
  EXPECT_EQ(coordinator.daemonCount(), 2u);
  EXPECT_TRUE(healthy.connected());

  healthy.stop();
  coordinator.stop();
}

// The hard backstop beneath the coordinator's soft skip: a connection
// whose userspace send queue would exceed its limit is closed outright
// rather than buffering without bound.
TEST(HighAvailability, SendQueueHardCapClosesConnection) {
  auto [listener, port] = net::listenTcp(0);
  net::Fd server_side;  // Accepted but never read: the kernel buffers
                        // fill, then the sender's userspace queue grows.
  net::EventLoop loop;
  net::Fd fd = net::connectTcp(port);
  waitFor([&] {
    if (!server_side.valid()) server_side = net::acceptTcp(listener.get());
    return server_side.valid();
  });

  net::ConnMetrics wire;
  net::Connection conn(loop, std::move(fd), [](net::Buffer&) {}, [] {}, &wire);
  conn.setSendQueueLimit(64 * 1024);
  net::Buffer frame;
  const std::vector<std::uint8_t> payload(32 * 1024, 0xab);
  frame.append(payload.data(), payload.size());

  int sent = 0;
  while (!conn.closed() && sent < 4096) {
    conn.sendFrame(frame);
    ++sent;
  }
  EXPECT_TRUE(conn.closed());
  EXPECT_EQ(wire.overflow_closes.load(std::memory_order_relaxed), 1u);
  EXPECT_LE(conn.pendingBytes(), 64u * 1024u);
}

}  // namespace
}  // namespace aalo::runtime
