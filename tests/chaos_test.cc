// Deterministic fault injection for the coordination plane: every
// scenario drives real TCP traffic through a seeded net::ChaosProxy, so
// coordinator crashes, one-way links, hung daemons, and mangled frames
// become plain unit tests that replay identically from a seed.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/buffer.h"
#include "net/chaos.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

namespace aalo::runtime {
namespace {

using namespace std::chrono_literals;

void waitFor(auto predicate, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(predicate()) << "timed out";
}

// ---------------------------------------------------------------------------
// ChaosProxy determinism: the same seed and frame sequence must produce the
// same mangled stream, byte for byte, and the same decision trace.

/// Accepts connections and records every well-formed frame payload it
/// receives (the length-prefixed framing is reassembled by Connection).
class FrameSink {
 public:
  FrameSink() {
    auto [fd, port] = net::listenTcp(0);
    listener_ = std::move(fd);
    port_ = port;
    loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { accept(); });
    thread_ = std::thread([this] { loop_.run(); });
  }

  ~FrameSink() {
    loop_.stop();
    if (thread_.joinable()) thread_.join();
    connections_.clear();
    if (listener_.valid()) loop_.remove(listener_.get());
  }

  std::uint16_t port() const { return port_; }

  std::vector<std::vector<std::uint8_t>> frames() const {
    std::lock_guard lock(mutex_);
    return frames_;
  }

  std::size_t frameCount() const {
    std::lock_guard lock(mutex_);
    return frames_.size();
  }

 private:
  void accept() {
    for (;;) {
      net::Fd fd = net::acceptTcp(listener_.get());
      if (!fd.valid()) break;
      connections_.push_back(std::make_unique<net::Connection>(
          loop_, std::move(fd),
          [this](net::Buffer& payload) {
            std::lock_guard lock(mutex_);
            frames_.emplace_back(payload.peek(),
                                 payload.peek() + payload.readableBytes());
          },
          [] {}));
    }
  }

  net::EventLoop loop_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::vector<std::unique_ptr<net::Connection>> connections_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> frames_;
};

void writeAllBlocking(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      std::this_thread::sleep_for(1ms);
      continue;
    }
    FAIL() << "write failed: errno=" << errno;
  }
}

struct MangleResult {
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::string> trace;
};

MangleResult runMangledStream(std::uint64_t seed) {
  FrameSink sink;

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = sink.port();
  pcfg.seed = seed;
  pcfg.record_trace = true;
  pcfg.client_to_upstream.drop = 0.2;
  pcfg.client_to_upstream.duplicate = 0.2;
  pcfg.client_to_upstream.reorder = 0.25;
  pcfg.client_to_upstream.truncate = 0.15;
  pcfg.client_to_upstream.corrupt = 0.15;
  pcfg.client_to_upstream.max_write_bytes = 5;  // Shred write boundaries.
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  net::Fd fd = net::connectTcp(proxy.port());
  // 120 frames, each 8 bytes of index plus 24 bytes of pattern — enough
  // payload that truncation and bit flips are visible in the output.
  net::Buffer stream;
  for (std::uint64_t i = 0; i < 120; ++i) {
    net::Buffer payload;
    payload.putU64(i);
    for (int j = 0; j < 24; ++j) {
      payload.putU8(static_cast<std::uint8_t>(i * 7 + static_cast<std::uint64_t>(j)));
    }
    stream.putU32(static_cast<std::uint32_t>(payload.readableBytes()));
    stream.append(payload.readable());
  }
  writeAllBlocking(fd.get(), stream.peek(), stream.readableBytes());

  // Wait until the sink has been quiet for a while (drop/reorder make the
  // exact frame count policy-dependent, but it is seed-deterministic).
  std::size_t last = 0;
  auto last_change = std::chrono::steady_clock::now();
  const auto start = last_change;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const std::size_t n = sink.frameCount();
    if (n != last) {
      last = n;
      last_change = now;
    }
    if (now - last_change > 400ms || now - start > 5s) break;
    std::this_thread::sleep_for(5ms);
  }

  MangleResult result;
  result.frames = sink.frames();
  result.trace = proxy.trace();
  proxy.stop();
  return result;
}

TEST(ChaosProxy, SameSeedProducesIdenticalMangledStream) {
  const MangleResult a = runMangledStream(1234);
  const MangleResult b = runMangledStream(1234);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
  // Something actually happened to the stream.
  EXPECT_LT(a.frames.size(), 120u + 40u);
  EXPECT_FALSE(a.frames.empty());

  const MangleResult c = runMangledStream(9999);
  EXPECT_NE(a.trace, c.trace);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: kill the coordinator mid-transfer, restart it on
// the same port, and require (a) every daemon reconnects with backoff,
// (b) post-restart schedules reflect pre-crash absolute sizes within one
// coordination round, (c) the coflow is never promoted above a queue it
// already left — and the whole event trace replays identically from a seed.

struct RestartTrace {
  /// Every distinct value queueOf() took at the byte-holding daemon, in
  /// order. Must be exactly {0, 1, 2}: register, demote at 3 MB, demote at
  /// 12 MB — and nothing else, ever, crash or no crash.
  std::vector<int> transitions;
  /// True if the far daemon (no local bytes) never saw a post-restart
  /// schedule place the coflow at queue 1: the restarted coordinator
  /// learned the absolute 12 MB from the first report instead of
  /// re-accumulating deltas through the 1-10 MB band.
  bool d2_recovered_absolute = false;
  bool d1_retried_with_backoff = false;
  bool both_daemons_reconnected = false;
};

RestartTrace runRestartScenario(std::uint64_t seed) {
  RestartTrace trace;

  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.dclas.first_threshold = 1 * util::kMB;  // Thresholds 1 MB, 10 MB, ...
  auto coordinator = std::make_unique<Coordinator>(ccfg);
  coordinator->start();
  const std::uint16_t coord_port = coordinator->port();

  // The far daemon's broadcast path runs through seeded chaos: duplicated
  // and reordered schedules must be absorbed by the epoch guard.
  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coord_port;
  pcfg.seed = seed;
  pcfg.upstream_to_client.duplicate = 0.2;
  pcfg.upstream_to_client.reorder = 0.2;
  pcfg.upstream_to_client.max_write_bytes = 16;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig d1cfg;
  d1cfg.coordinator_port = coord_port;
  d1cfg.daemon_id = 1;
  d1cfg.sync_interval = 0.005;
  d1cfg.reconnect_interval = 0.01;
  d1cfg.reconnect_max_backoff = 0.08;
  d1cfg.reconnect_seed = seed * 11 + 1;
  d1cfg.dclas.first_threshold = 1 * util::kMB;
  DaemonConfig d2cfg = d1cfg;
  d2cfg.coordinator_port = proxy.port();
  d2cfg.daemon_id = 2;
  d2cfg.reconnect_seed = seed * 11 + 2;
  Daemon d1(d1cfg);
  Daemon d2(d2cfg);
  d1.start();
  d2.start();

  AaloClient client(coord_port);
  const auto id = client.registerCoflow();

  // Sample d1's queue assignment continuously; record every change.
  std::mutex sample_mutex;
  std::vector<int> transitions;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    int previous = -1;
    while (sampling.load(std::memory_order_relaxed)) {
      const int q = d1.queueOf(id);
      if (q != previous) {
        std::lock_guard lock(sample_mutex);
        transitions.push_back(q);
        previous = q;
      }
      std::this_thread::sleep_for(500us);
    }
  });
  waitFor([&] {
    std::lock_guard lock(sample_mutex);
    return !transitions.empty();
  });

  d1.reportBytes(id, 3 * util::kMB);  // Global 3 MB -> queue 1.
  waitFor([&] { return d1.queueOf(id) == 1 && d2.queueOf(id) == 1; });

  const std::uint64_t pre_attempts =
      d1.stats().reconnect_attempts.load(std::memory_order_relaxed);
  const std::uint64_t d1_pre_reconnects =
      d1.stats().reconnects.load(std::memory_order_relaxed);
  const std::uint64_t d2_pre_reconnects =
      d2.stats().reconnects.load(std::memory_order_relaxed);

  coordinator->stop();
  coordinator.reset();
  waitFor([&] { return !d1.connected() && !d2.connected(); });

  // Mid-outage traffic: local absolute size grows to 12 MB. The local
  // D-CLAS fallback must demote the coflow even without a coordinator.
  d1.reportBytes(id, 9 * util::kMB);
  waitFor([&] { return d1.queueOf(id) == 2; });
  // Let d1 fail several dials so the decorrelated-jitter backoff is
  // actually exercised (each failure schedules the next dial later).
  waitFor([&] {
    return d1.stats().reconnect_attempts.load(std::memory_order_relaxed) >=
           pre_attempts + 3;
  });

  // Restart on the same port: must be invisible to everyone.
  CoordinatorConfig restart_cfg = ccfg;
  restart_cfg.port = coord_port;
  coordinator = std::make_unique<Coordinator>(restart_cfg);
  coordinator->start();

  // d2 holds no local bytes: until a post-restart schedule arrives it
  // keeps returning the stale pre-crash value (1). Once new schedules
  // apply it may briefly see "not scheduled yet" (0), then must jump
  // straight to the absolute-size queue (2) — never 1 again, which would
  // mean the coordinator re-learned sizes gradually from deltas.
  std::vector<int> d2_values;
  waitFor([&] {
    const int q = d2.queueOf(id);
    if (d2_values.empty() || d2_values.back() != q) d2_values.push_back(q);
    return q == 2 && coordinator->daemonCount() == 2 && d1.connected() &&
           d2.connected();
  });
  bool saw_post_restart = false;
  bool relearned_gradually = false;
  for (const int q : d2_values) {
    if (q != 1) saw_post_restart = true;
    if (q == 1 && saw_post_restart) relearned_gradually = true;
  }
  trace.d2_recovered_absolute = !relearned_gradually && d2_values.back() == 2;

  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  trace.transitions = transitions;
  trace.d1_retried_with_backoff =
      d1.stats().reconnect_attempts.load(std::memory_order_relaxed) >=
      pre_attempts + 3;
  trace.both_daemons_reconnected =
      d1.stats().reconnects.load(std::memory_order_relaxed) >
          d1_pre_reconnects &&
      d2.stats().reconnects.load(std::memory_order_relaxed) > d2_pre_reconnects;

  d1.stop();
  d2.stop();
  proxy.stop();
  coordinator->stop();
  return trace;
}

TEST(Chaos, CoordinatorRestartRecoversAbsoluteSizesDeterministically) {
  const RestartTrace a = runRestartScenario(7);

  EXPECT_EQ(a.transitions, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(a.d2_recovered_absolute);
  EXPECT_TRUE(a.d1_retried_with_backoff);
  EXPECT_TRUE(a.both_daemons_reconnected);

  // Same seed, same event trace — the scenario is a replayable artifact.
  const RestartTrace b = runRestartScenario(7);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.d2_recovered_absolute, b.d2_recovered_absolute);
  EXPECT_EQ(a.d1_retried_with_backoff, b.d1_retried_with_backoff);
  EXPECT_EQ(a.both_daemons_reconnected, b.both_daemons_reconnected);
}

// ---------------------------------------------------------------------------
// Liveness eviction: a daemon whose reports stop (hung machine / dead
// send path) is evicted and its sizes dropped; it rejoins cleanly and
// re-teaches the coordinator from absolute local sizes.

TEST(Chaos, HungDaemonIsEvictedAndRejoins) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.liveness_timeout_intervals = 8;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  Coordinator coordinator(ccfg);
  coordinator.start();

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 42;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = proxy.port();
  dcfg.daemon_id = 3;
  dcfg.sync_interval = 0.005;
  dcfg.reconnect_interval = 0.01;
  dcfg.reconnect_max_backoff = 0.05;
  dcfg.stale_after_intervals = 8;
  dcfg.dclas.first_threshold = 1 * util::kMB;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 5 * util::kMB);
  waitFor([&] {
    return coordinator.daemonCount() == 1 && daemon.queueOf(id) == 1;
  });

  // Hang the daemon->coordinator direction only: reports vanish while the
  // TCP connection stays up. The coordinator must evict.
  net::ChaosPolicy hang;
  hang.blackhole = true;
  proxy.setPolicies(hang, {});
  waitFor([&] {
    return coordinator.stats().daemons_evicted.load(std::memory_order_relaxed) >=
               1 &&
           coordinator.daemonCount() == 0;
  });
  EXPECT_GE(proxy.stats().frames_blackholed.load(std::memory_order_relaxed), 1u);
  // The daemon's local demotion outlives the eviction (§3.2): the coflow
  // is never promoted back to queue 0 by the failure.
  EXPECT_GE(daemon.queueOf(id), 1);

  // Heal and force a clean redial (the half-dead session still exists).
  proxy.setPolicies({}, {});
  proxy.killLink();
  waitFor([&] {
    return coordinator.daemonCount() == 1 && daemon.connected();
  });
  // Absolute sizes re-teach the restarted aggregate within a round.
  waitFor([&] { return daemon.queueOf(id) == 1 && daemon.lastEpoch() >= 1; });
  EXPECT_GE(daemon.stats().reconnects.load(std::memory_order_relaxed), 2u);

  daemon.stop();
  proxy.stop();
  coordinator.stop();
}

// ---------------------------------------------------------------------------
// Duplicated/reordered broadcasts: old epochs must never overwrite newer
// state, and a coflow's queue must never move back up.

TEST(Chaos, DuplicatedAndReorderedBroadcastsNeverRegressState) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  Coordinator coordinator(ccfg);
  coordinator.start();

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 5;
  pcfg.upstream_to_client.duplicate = 0.35;
  pcfg.upstream_to_client.reorder = 0.35;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = proxy.port();
  dcfg.daemon_id = 4;
  dcfg.sync_interval = 0.005;
  dcfg.dclas.first_threshold = 1 * util::kMB;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());
  const auto id = client.registerCoflow();
  daemon.reportBytes(id, 3 * util::kMB);
  waitFor([&] { return daemon.queueOf(id) == 1; });

  // The epoch guard must be visibly absorbing duplicates/reordering.
  waitFor([&] {
    return daemon.stats().old_epoch_ignored.load(std::memory_order_relaxed) >= 3;
  });

  daemon.reportBytes(id, 9 * util::kMB);
  // While chaotic broadcasts keep arriving, the queue may only go down
  // (demotion) — never back up — and the applied epoch only forward.
  int max_queue = 1;
  std::uint64_t max_epoch = daemon.lastEpoch();
  for (int i = 0; i < 150; ++i) {
    const int q = daemon.queueOf(id);
    EXPECT_GE(q, max_queue) << "coflow promoted above a queue it left";
    max_queue = std::max(max_queue, q);
    const std::uint64_t e = daemon.lastEpoch();
    EXPECT_GE(e, max_epoch) << "applied epoch moved backwards";
    max_epoch = std::max(max_epoch, e);
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(max_queue, 2);  // 12 MB crossed the 10 MB threshold.
  EXPECT_GE(proxy.stats().frames_duplicated.load(std::memory_order_relaxed), 1u);
  EXPECT_GE(proxy.stats().frames_reordered.load(std::memory_order_relaxed), 1u);

  daemon.stop();
  proxy.stop();
  coordinator.stop();
}

// ---------------------------------------------------------------------------
// One-way link: the daemon's reports arrive but broadcasts never do. The
// daemon must degrade to local-only mode (stale schedule) and the
// coordinator must notice the stuck epoch echo and evict.

TEST(Chaos, OneWayLinkDegradesDaemonAndTripsEcho) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.liveness_timeout_intervals = 200;  // Reports keep flowing: must not trip.
  // Wide enough that the same-socket stale recovery below happens well
  // before an eviction could close the connection.
  ccfg.one_way_timeout_intervals = 60;
  Coordinator coordinator(ccfg);
  coordinator.start();

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 11;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = proxy.port();
  dcfg.daemon_id = 5;
  dcfg.sync_interval = 0.005;
  dcfg.reconnect_interval = 0.01;
  dcfg.stale_after_intervals = 6;
  Daemon daemon(dcfg);
  daemon.start();
  waitFor([&] { return daemon.connected() && daemon.lastEpoch() >= 1; });

  // Broadcasts stop; the socket and the report path stay up.
  net::ChaosPolicy dead_receive;
  dead_receive.blackhole = true;
  proxy.setPolicies({}, dead_receive);

  // Stale-schedule degradation on an *open* socket — exactly the case a
  // plain connection check misses.
  waitFor([&] {
    return daemon.stats().stale_transitions.load(std::memory_order_relaxed) >=
               1 &&
           !daemon.connected();
  });
  // Documented local-mode behavior for unknown coflows.
  const coflow::CoflowId fresh{77, 0};
  EXPECT_EQ(daemon.queueOf(fresh), 0);
  EXPECT_TRUE(daemon.isOn(fresh));
  daemon.writerActive(fresh, true);
  EXPECT_TRUE(std::isinf(daemon.rateFor(fresh)));
  daemon.writerActive(fresh, false);

  // Heal while the connection is still alive: the daemon must recover on
  // the same socket without a reconnect.
  const auto reconnects_before =
      daemon.stats().reconnects.load(std::memory_order_relaxed);
  proxy.setPolicies({}, {});
  waitFor([&] {
    return daemon.connected() &&
           daemon.stats().stale_recoveries.load(std::memory_order_relaxed) >= 1;
  });
  EXPECT_EQ(daemon.stats().reconnects.load(std::memory_order_relaxed),
            reconnects_before);

  // Now leave the receive path dead long enough for the coordinator's
  // epoch-echo watchdog to evict the daemon.
  proxy.setPolicies({}, dead_receive);
  waitFor([&] {
    return coordinator.stats().one_way_evictions.load(
               std::memory_order_relaxed) >= 1;
  });

  // Full heal: clean redial, daemon counted again, schedule fresh.
  proxy.setPolicies({}, {});
  proxy.killLink();
  waitFor([&] {
    return coordinator.daemonCount() == 1 && daemon.connected();
  });

  daemon.stop();
  proxy.stop();
  coordinator.stop();
}

// ---------------------------------------------------------------------------
// Client RPCs survive a killed control connection.

TEST(Chaos, ClientSurvivesKilledRpcConnection) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  Coordinator coordinator(ccfg);
  coordinator.start();

  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 3;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  ClientConfig cfg;
  cfg.coordinator_port = proxy.port();
  cfg.max_rpc_attempts = 20;
  cfg.retry_backoff = 0.01;
  cfg.retry_max_backoff = 0.05;
  AaloClient client(cfg);
  const auto a = client.registerCoflow();

  // Sever the live session AND refuse redials. A probe connection that
  // gets refused proves the link-down takeover (and the sever of the
  // client's session, done in the same step) has been processed before
  // the next RPC starts — so that RPC must observe the failure and retry.
  proxy.setLinkUp(false);
  waitFor([&] {
    net::Fd probe;
    try {
      probe = net::connectTcp(proxy.port());
    } catch (const std::system_error&) {
      return false;
    }
    (void)probe;
    return proxy.stats().sessions_refused.load(std::memory_order_relaxed) >= 1;
  });
  coflow::CoflowId b{};
  std::thread rpc([&] { b = client.registerCoflow(); });
  waitFor([&] {
    return proxy.stats().sessions_refused.load(std::memory_order_relaxed) >= 2;
  });
  proxy.setLinkUp(true);
  rpc.join();

  EXPECT_NE(a, b);
  EXPECT_GE(client.stats().rpc_retries.load(std::memory_order_relaxed), 1u);
  EXPECT_GE(client.stats().rpc_reconnects.load(std::memory_order_relaxed), 1u);

  // The reconnected session carries further RPCs fine.
  client.unregisterCoflow(a);
  client.unregisterCoflow(b);
  waitFor([&] { return coordinator.registeredCoflows() == 0; });

  proxy.stop();
  coordinator.stop();
}

// ---------------------------------------------------------------------------
// Corruption soak: truncated, bit-flipped, dropped, delayed frames and
// shredded write boundaries in both directions must never take the control
// plane down; malformed frames are counted and dropped.

TEST(Chaos, ControlPlaneSurvivesCorruptionSoak) {
  CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.005;
  ccfg.liveness_timeout_intervals = 60;  // Lossy reports must not evict.
  ccfg.one_way_timeout_intervals = 0;    // Lossy echo path: disable.
  Coordinator coordinator(ccfg);
  coordinator.start();

  net::ChaosPolicy nasty;
  nasty.drop = 0.15;
  nasty.truncate = 0.2;
  nasty.corrupt = 0.2;
  nasty.delay = 0.15;
  nasty.delay_min = 0.0005;
  nasty.delay_max = 0.002;
  nasty.max_write_bytes = 9;
  net::ChaosProxyConfig pcfg;
  pcfg.upstream_port = coordinator.port();
  pcfg.seed = 99;
  pcfg.client_to_upstream = nasty;
  pcfg.upstream_to_client = nasty;
  net::ChaosProxy proxy(pcfg);
  proxy.start();

  DaemonConfig dcfg;
  dcfg.coordinator_port = proxy.port();
  dcfg.daemon_id = 6;
  dcfg.sync_interval = 0.005;
  dcfg.reconnect_interval = 0.01;
  dcfg.stale_after_intervals = 60;
  Daemon daemon(dcfg);
  daemon.start();

  AaloClient client(coordinator.port());  // Clean path: must stay served.
  const auto id = client.registerCoflow();
  for (int i = 0; i < 30; ++i) {
    daemon.reportBytes(id, util::kMB / 2);
    std::this_thread::sleep_for(2ms);
  }

  // Truncation guarantees decode failures; both ends must count and drop
  // them without dying.
  waitFor([&] {
    return coordinator.stats().malformed_frames.load(std::memory_order_relaxed) +
               daemon.stats().malformed_frames.load(std::memory_order_relaxed) >=
           3;
  });
  EXPECT_GE(proxy.stats().frames_truncated.load(std::memory_order_relaxed), 1u);
  EXPECT_GE(proxy.stats().frames_corrupted.load(std::memory_order_relaxed), 1u);

  // The coordinator still schedules and still serves clean clients.
  const std::uint64_t epoch_before = coordinator.epoch();
  waitFor([&] { return coordinator.epoch() > epoch_before + 5; });
  AaloClient second(coordinator.port());
  const auto id2 = second.registerCoflow();
  EXPECT_NE(id, id2);
  second.unregisterCoflow(id2);

  daemon.stop();
  proxy.stop();
  coordinator.stop();
}

}  // namespace
}  // namespace aalo::runtime
