// Engine edge cases: degenerate topologies, simultaneous events, deep
// dependency chains, heterogeneous capacities.
#include <gtest/gtest.h>

#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/varys.h"
#include "tests/helpers.h"

namespace aalo {
namespace {

using testing::FlowDef;
using testing::cctOf;
using testing::makeJob;
using testing::makeWorkload;
using testing::runVerified;
using testing::unitFabric;

TEST(SimEdge, FlowToOwnMachine) {
  // src == dst: the flow consumes both the uplink and downlink of port 0.
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 0, 6}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  EXPECT_NEAR(result.coflows[0].cct(), 6.0, 1e-6);
}

TEST(SimEdge, ManySimultaneousArrivals) {
  sched::PerFlowFairScheduler fair;
  std::vector<coflow::JobSpec> jobs;
  for (int j = 0; j < 20; ++j) {
    jobs.push_back(makeJob(j, 1.0, {FlowDef{0, 1, 2}}));  // All at t=1.
  }
  const auto result = runVerified(makeWorkload(2, std::move(jobs)),
                                  unitFabric(2), fair);
  // 40 bytes of work through one port pair from t=1: last finishes at 41;
  // under fair sharing every coflow finishes at exactly t=41.
  for (const auto& rec : result.coflows) {
    EXPECT_NEAR(rec.finish, 41.0, 1e-6);
  }
}

TEST(SimEdge, TinyFlowsComplete) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 1e-4}}),
                                   makeJob(1, 0, {FlowDef{0, 1, 1e6}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  EXPECT_EQ(result.coflows.size(), 2u);
  EXPECT_LE(cctOf(result, {0, 0}), 0.01);
}

TEST(SimEdge, HeterogeneousPortCapacitiesViaFabric) {
  // A straggler machine with half the uplink capacity.
  fabric::FabricConfig fc{2, 2.0};
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 8}})});
  // Note: Simulator builds its own Fabric from the config, so model the
  // straggler by halving the global capacity instead.
  const auto result = runVerified(wl, fc, fair);
  EXPECT_NEAR(result.coflows[0].cct(), 4.0, 1e-6);
}

TEST(SimEdge, DeepStartsAfterChain) {
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  for (int stage = 0; stage < 10; ++stage) {
    coflow::CoflowSpec spec;
    spec.id = {0, stage};
    spec.flows.push_back(coflow::FlowSpec{0, 1, 2, 0});
    if (stage > 0) spec.starts_after.push_back({0, stage - 1});
    job.coflows.push_back(std::move(spec));
  }
  sched::PerFlowFairScheduler fair;
  const auto result = runVerified(makeWorkload(2, {job}), unitFabric(2), fair);
  // Serial chain: stage k finishes at 2(k+1).
  for (int stage = 0; stage < 10; ++stage) {
    EXPECT_NEAR(cctOf(result, {0, stage}), 2.0, 1e-6);
    EXPECT_NEAR(result.coflows[static_cast<std::size_t>(stage)].finish,
                2.0 * (stage + 1), 1e-6);
  }
  EXPECT_NEAR(result.jobs[0].commTime(), 20.0, 1e-6);
}

TEST(SimEdge, DiamondDependency) {
  // A -> {B, C} -> D with barriers; B and C run in parallel.
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  auto add = [&](int internal, std::vector<coflow::FlowSpec> flows,
                 std::vector<coflow::CoflowId> parents) {
    coflow::CoflowSpec spec;
    spec.id = {0, internal};
    spec.flows = std::move(flows);
    spec.starts_after = std::move(parents);
    job.coflows.push_back(std::move(spec));
  };
  add(0, {{0, 1, 4, 0}}, {});
  add(1, {{0, 2, 4, 0}}, {{0, 0}});
  add(2, {{1, 3, 4, 0}}, {{0, 0}});
  add(3, {{2, 3, 4, 0}}, {{0, 1}, {0, 2}});
  sched::PerFlowFairScheduler fair;
  const auto result = runVerified(makeWorkload(4, {job}), unitFabric(4), fair);
  EXPECT_NEAR(result.coflows[1].release, 4.0, 1e-6);
  EXPECT_NEAR(result.coflows[2].release, 4.0, 1e-6);
  EXPECT_NEAR(result.coflows[3].release, 8.0, 1e-6);  // After both branches.
  EXPECT_NEAR(result.jobs[0].commTime(), 12.0, 1e-6);
}

TEST(SimEdge, AllFlowsDelayedByOffsets) {
  // Every flow of the coflow starts late: the coflow is "released" at its
  // arrival but idles until the first wave exists.
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(
      2, {makeJob(0, 1.0, {FlowDef{0, 1, 3, 2.0}, FlowDef{0, 1, 3, 2.0}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  EXPECT_NEAR(result.coflows[0].release, 1.0, 1e-9);
  EXPECT_NEAR(result.coflows[0].finish, 9.0, 1e-6);  // 1 + 2 + 6.
}

TEST(SimEdge, WideCoflowOnFullFabric) {
  // All-to-all coflow using every port pair; MADD and max-min must both
  // drive it at full fabric bandwidth.
  coflow::JobSpec job;
  job.id = 0;
  job.arrival = 0;
  coflow::CoflowSpec spec;
  spec.id = {0, 0};
  const int p = 6;
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      spec.flows.push_back(
          coflow::FlowSpec{s, d, 6.0, 0});  // 36 bytes per ingress port.
    }
  }
  job.coflows.push_back(std::move(spec));
  const auto wl = makeWorkload(p, {job});

  sched::PerFlowFairScheduler fair;
  sched::VarysScheduler varys;
  for (sim::Scheduler* s : {static_cast<sim::Scheduler*>(&fair),
                            static_cast<sim::Scheduler*>(&varys)}) {
    const auto result = runVerified(wl, unitFabric(p), *s);
    EXPECT_NEAR(result.coflows[0].cct(), 36.0, 1e-6) << s->name();
  }
}

TEST(SimEdge, ArrivalDuringDrainRestartsEngine) {
  // The fabric goes fully idle between two jobs; the engine must wake up
  // for the second arrival.
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 2}}),
                                   makeJob(1, 100.0, {FlowDef{0, 1, 2}})});
  const auto result = runVerified(wl, unitFabric(2), fair);
  EXPECT_NEAR(cctOf(result, {1, 0}), 2.0, 1e-6);
  EXPECT_NEAR(result.makespan, 102.0, 1e-6);
}

TEST(SimEdge, DClasHandlesBurstThenSilence) {
  sched::DClasConfig cfg;
  cfg.first_threshold = 3;
  cfg.num_queues = 3;
  cfg.exp_factor = 4;
  cfg.sync_interval = 0.5;
  sched::DClasScheduler dclas(cfg);
  const auto wl = makeWorkload(2, {makeJob(0, 0, {FlowDef{0, 1, 10}}),
                                   makeJob(1, 50.0, {FlowDef{0, 1, 10}})});
  const auto result = runVerified(wl, unitFabric(2), dclas);
  EXPECT_NEAR(cctOf(result, {0, 0}), 10.0, 1e-6);
  EXPECT_NEAR(cctOf(result, {1, 0}), 10.0, 1e-6);
}

TEST(SimEdge, ResultRecordsCarryCoflowShape) {
  sched::PerFlowFairScheduler fair;
  const auto wl = makeWorkload(
      3, {makeJob(0, 0, {FlowDef{0, 1, 5}, FlowDef{0, 2, 9}, FlowDef{1, 2, 3}})});
  const auto result = runVerified(wl, unitFabric(3), fair);
  const auto& rec = result.coflows[0];
  EXPECT_DOUBLE_EQ(rec.bytes, 17.0);
  EXPECT_DOUBLE_EQ(rec.max_flow_bytes, 9.0);
  EXPECT_EQ(rec.width, 3u);
}

}  // namespace
}  // namespace aalo
