#!/usr/bin/env bash
# CI driver: full test suite on the default preset, then the chaos-labelled
# fault-injection suites under AddressSanitizer+UBSan and ThreadSanitizer.
#
#   scripts/ci.sh            # default + asan + tsan
#   scripts/ci.sh default    # just the default preset, full suite
#   scripts/ci.sh asan       # asan build, chaos suites only
#   scripts/ci.sh tsan       # tsan build, BatchRunner gate + chaos suites
#
# The chaos suites (tests/chaos_test.cc, tests/runtime_robustness_test.cc,
# tests/coordination_equivalence_test.cc) carry the "chaos" ctest label;
# they are the ones that exercise the fault-tolerance paths (reconnects,
# eviction, mangled frames, delta/full data-path equivalence) where
# sanitizers earn their keep.
set -euo pipefail
cd "$(dirname "$0")/.."

run_default() {
  echo "=== default: configure + build + full suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"
  echo "=== default: benchmark smoke run ==="
  # One short iteration per benchmark catches bit-rot in the bench
  # harness without recording anything. benchmark 1.7.x takes a plain
  # float of seconds here (no '0.01x' multiplier suffix).
  cmake --build --preset default -j "$(nproc)" --target bench_micro
  ./build/bench/bench_micro --benchmark_min_time=0.01 \
    --benchmark_filter='BM_SimulatorEndToEnd|BM_TraceReplay|BM_DClasReschedule/100|BM_EncodeScheduleDelta|BM_ReportApply/100|BM_BroadcastFanout/10'
}

run_asan() {
  echo "=== asan: engine equivalence + chaos-labelled suites ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" \
    --target chaos_test runtime_robustness_test engine_equivalence_test \
             coordination_equivalence_test
  (cd build-asan && ctest -L chaos --output-on-failure -j "$(nproc)")
  (cd build-asan && ctest -R 'EngineEquivalence|DClasQueueOracle' \
    --output-on-failure -j "$(nproc)")
}

run_tsan() {
  echo "=== tsan: BatchRunner + engine-equivalence gates + chaos suites ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan
  ctest --preset tsan-chaos
}

case "${1:-all}" in
  default) run_default ;;
  asan)    run_asan ;;
  tsan)    run_tsan ;;
  all)     run_default; run_asan; run_tsan ;;
  *) echo "usage: $0 [default|asan|tsan|all]" >&2; exit 2 ;;
esac
echo "ci: OK"
