#!/usr/bin/env bash
# CI driver: full test suite on the default preset, then the chaos- and
# metrics-labelled suites under AddressSanitizer+UBSan and
# ThreadSanitizer, plus an optional line-coverage gate.
#
#   scripts/ci.sh            # default + asan + tsan + perf-smoke
#   scripts/ci.sh default    # just the default preset, full suite
#   scripts/ci.sh asan       # asan build, chaos + metrics + ha + sched suites
#   scripts/ci.sh tsan       # tsan build, BatchRunner/Obs gates + chaos + ha
#   scripts/ci.sh perf       # Release perf-smoke: BENCH_micro.json gate
#                            # + sharded-vs-single fig14 round-time gate
#   scripts/ci.sh coverage   # gcovr line-coverage report (if installed)
#
# The chaos suites (tests/chaos_test.cc, tests/runtime_robustness_test.cc,
# tests/coordination_equivalence_test.cc, tests/shard_barrier_test.cc)
# carry the "chaos" ctest label; they exercise the fault-tolerance paths
# (reconnects, eviction, mangled frames, delta/full data-path and
# sharded-vs-single-thread schedule equivalence) where sanitizers earn
# their keep — the shard-barrier race suite additionally runs under tsan
# by test-name filter. The observability suites (tests/obs_*.cc, trace_fuzz_test.cc,
# golden_trace_test.cc) carry the "metrics" label; the registry
# concurrency gate additionally runs under tsan by test-name filter.
# The high-availability drills (tests/ha_test.cc: failover, checkpoint
# restore, overload backpressure; tests/checkpoint_test.cc: round-trip
# fuzz) carry the "ha" label and run standalone under both sanitizers.
# The scheduler-zoo invariants (tests/sched_property_test.cc: sampling
# estimate convergence, dcoflow admission soundness, LP-bound soundness
# on fuzzed traces) carry the "sched" label and run under both
# sanitizers; run_default additionally replays a tiny deadlined trace
# through aalo_sim --lp-check as an end-to-end LP-bound gate.
set -euo pipefail
cd "$(dirname "$0")/.."

# Minimum acceptable line coverage for the coverage step (percent).
COVERAGE_FAIL_UNDER=70

# Allowed slowdown of BM_SimulatorEndToEnd/50 relative to the recorded
# baseline median in BENCH_micro.json before the perf-smoke step fails.
PERF_SMOKE_TOLERANCE=1.5

run_default() {
  echo "=== default: configure + build + full suite ==="
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"
  echo "=== default: benchmark smoke run ==="
  # One short iteration per benchmark catches bit-rot in the bench
  # harness without recording anything. benchmark 1.7.x takes a plain
  # float of seconds here (no '0.01x' multiplier suffix).
  cmake --build --preset default -j "$(nproc)" --target bench_micro
  ./build/bench/bench_micro --benchmark_min_time=0.01 \
    --benchmark_filter='BM_SimulatorEndToEnd|BM_TraceReplay|BM_DClasReschedule/100|BM_EncodeScheduleDelta|BM_ReportApply/100|BM_BroadcastFanout/10|BM_MetricsOverhead'
  echo "=== default: metrics exposition smoke ==="
  # The CLI surface of the observability layer: a real dump must parse as
  # the pinned JSON shape and carry the four component families.
  ./build/tools/aalo_tracegen --kind fb --jobs 10 --ports 10 --seed 1 \
    --out build/ci_smoke.trace >/dev/null
  ./build/tools/aalo_sim --trace build/ci_smoke.trace --sched aalo \
    --metrics-dump build/ci_smoke.prom >/dev/null 2>&1
  grep -q 'aalo_sim_rounds_total' build/ci_smoke.prom
  grep -q 'aalo_sim_queue_occupancy_bucket' build/ci_smoke.prom
  python3 -c "
import json
d = json.load(open('build/ci_smoke.prom.json'))
assert d['context'] == {'format': 'aalo-metrics', 'version': 1}, d['context']
assert d['metrics'], 'empty metrics dump'
"
  echo "=== default: experiments smoke (LP bound gate) ==="
  # Tiny deadlined trace through the scheduler zoo with --lp-check: the
  # run exits non-zero if any scheduler's total CCT dips below the LP
  # lower bound. CHECK_ONLY keeps EXPERIMENTS.md untouched in CI.
  ./build/tools/aalo_tracegen --kind fb --jobs 20 --ports 10 --seed 7 \
    --deadline-slack 0.5 --out build/ci_smoke_dl.trace >/dev/null
  ./build/tools/aalo_sim --trace build/ci_smoke_dl.trace \
    --sched aalo,las,sampling,dcoflow --lp-check >/dev/null
}

run_asan() {
  echo "=== asan: engine equivalence + chaos + metrics + ha + sched suites ==="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$(nproc)" \
    --target chaos_test runtime_robustness_test engine_equivalence_test \
             coordination_equivalence_test shard_barrier_test \
             obs_test obs_invariant_test \
             obs_concurrency_test trace_fuzz_test golden_trace_test \
             ha_test checkpoint_test sched_property_test
  (cd build-asan && ctest -L chaos --output-on-failure -j "$(nproc)")
  (cd build-asan && ctest \
    -R 'EngineEquivalence|EngineFuzz|EventCalendarProperty|DClasQueueOracle' \
    --output-on-failure -j "$(nproc)")
  (cd build-asan && ctest -L metrics --output-on-failure -j "$(nproc)")
  # '^ha$' because -L is a regex and a bare "ha" also matches "chaos".
  (cd build-asan && ctest -L '^ha$' --output-on-failure -j "$(nproc)")
  # Scheduler-zoo invariants (sampling convergence, dcoflow admission
  # soundness, LP bound <= every scheduler on 200 fuzzed traces).
  (cd build-asan && ctest -L '^sched$' --output-on-failure -j "$(nproc)")
}

run_tsan() {
  echo "=== tsan: BatchRunner + engine-equivalence + obs gates + chaos + ha + sched ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan
  ctest --preset tsan-chaos
  ctest --preset tsan-ha
  ctest --preset tsan-sched
}

run_perf() {
  echo "=== perf-smoke: BM_SimulatorEndToEnd/50 vs recorded baseline ==="
  # Guard against silent end-to-end regressions: run the mid-size
  # simulator benchmark from an optimized build and fail if its median
  # exceeds PERF_SMOKE_TOLERANCE x the committed BENCH_micro.json
  # median. The bench must run in Release — a debug build would always
  # trip the gate.
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$(nproc)" --target bench_micro
  ./build-release/bench/bench_micro \
    --benchmark_filter='^BM_SimulatorEndToEnd/50$' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >build-release/perf_smoke.json
  python3 - "$PERF_SMOKE_TOLERANCE" <<'EOF'
import json, sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def median_ns(path):
    doc = json.load(open(path))
    for b in doc["benchmarks"]:
        if b["name"] == "BM_SimulatorEndToEnd/50_median":
            return b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
    raise SystemExit(f"perf-smoke: no BM_SimulatorEndToEnd/50_median in {path}")

tolerance = float(sys.argv[1])
base = median_ns("BENCH_micro.json")
cur = median_ns("build-release/perf_smoke.json")
ratio = cur / base
print(f"perf-smoke: median {cur / 1e6:.1f} ms vs baseline {base / 1e6:.1f} ms "
      f"(ratio {ratio:.2f}, limit {tolerance:.2f})")
if ratio > tolerance:
    raise SystemExit("perf-smoke: FAIL — end-to-end benchmark regressed")
EOF
  echo "=== perf-smoke: sharded vs single-thread fan-out @1000 daemons ==="
  # The sharded coordinator must not cost round time against the
  # single-threaded oracle at the same Δ. On this one-core host the
  # worker threads time-slice, so parity (ratio ~1) is the expectation
  # and the tolerance absorbs scheduler noise; a structural regression in
  # the barrier/merge path shows up well past it.
  cmake --build --preset release -j "$(nproc)" --target bench_fig14_scalability
  ./build-release/bench/bench_fig14_scalability \
    --json build-release/perf_shard.json \
    --daemons 1000 --shards 1,8 --rounds 10 --sweep-only
  python3 - "$PERF_SMOKE_TOLERANCE" <<'EOF'
import json, sys

doc = json.load(open("build-release/perf_shard.json"))
by = {e["shards"]: e["avg_round_s"]
      for e in doc["shard_sweep"] if e["daemons"] == 1000}
single, sharded = by.get(1, -1), by.get(8, -1)
if single <= 0 or sharded <= 0:
    raise SystemExit("perf-smoke: FAIL — fig14 shard gate produced no timed rounds")
ratio = sharded / single
tolerance = float(sys.argv[1])
print(f"perf-smoke: fig14 @1000 daemons round {sharded * 1e3:.2f} ms sharded "
      f"vs {single * 1e3:.2f} ms single-thread (ratio {ratio:.2f}, "
      f"limit {tolerance:.2f})")
if ratio > tolerance:
    raise SystemExit(
        "perf-smoke: FAIL — sharded coordinator round time regressed "
        "past the single-threaded oracle")
EOF
}

run_coverage() {
  echo "=== coverage: gcov/gcovr line coverage (fail-under ${COVERAGE_FAIL_UNDER}%) ==="
  # gcovr is not part of the baked toolchain image; the step degrades to a
  # skip (with the threshold still recorded above) rather than failing CI
  # on environments without it.
  if ! command -v gcovr >/dev/null 2>&1; then
    echo "coverage: gcovr not installed — skipping (threshold ${COVERAGE_FAIL_UNDER}% recorded)"
    return 0
  fi
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="--coverage" -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
  cmake --build build-cov -j "$(nproc)"
  (cd build-cov && ctest -j "$(nproc)" --output-on-failure)
  gcovr --root . --filter 'src/' \
    --fail-under-line "${COVERAGE_FAIL_UNDER}" \
    --print-summary build-cov
}

case "${1:-all}" in
  default)  run_default ;;
  asan)     run_asan ;;
  tsan)     run_tsan ;;
  perf)     run_perf ;;
  coverage) run_coverage ;;
  all)      run_default; run_asan; run_tsan; run_perf; run_coverage ;;
  *) echo "usage: $0 [default|asan|tsan|perf|coverage|all]" >&2; exit 2 ;;
esac
echo "ci: OK"
