// DAG scheduling demo (§5.1, Figure 4): a TPC-DS-q42-like query plan with
// six coflows — CA, CB, CC feed CD and CE, which feed CF.
//
// Shows (1) CoflowId generation encoding the DAG (42.0, 42.1, ..., per
// Pseudocode 2), and (2) why pipelining matters: Aalo runs the DAG with
// Finishes-Before edges, while a clairvoyant-with-barriers execution
// (Varys-style) must wait for each stage to end.
#include <cstdio>
#include <iostream>

#include "coflow/id_generator.h"
#include "sched/dclas.h"
#include "sched/varys.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/transforms.h"

using namespace aalo;

int main() {
  coflow::CoflowIdGenerator ids;
  // Skip to external id 42 purely for the figure's aesthetics.
  while (ids.nextExternal() < 42) ids.newRootId();

  const auto ca = ids.newRootId();
  const coflow::CoflowId cb{ca.external, 0};  // Independent sibling roots
  const coflow::CoflowId cc{ca.external, 0};  // share priority rank 0.
  const auto cd = ids.newChildId(std::array{ca, cb});
  const auto ce = ids.newChildId(std::array{cc});
  const auto cf = ids.newChildId(std::array{cd, ce});
  std::printf("CoflowIds assigned by Pseudocode 2 (Figure 4c):\n");
  std::printf("  CA=%s CB=%s CC=%s CD=%s CE=%s CF=%s\n\n",
              ca.toString().c_str(), cb.toString().c_str(), cc.toString().c_str(),
              cd.toString().c_str(), ce.toString().c_str(), cf.toString().c_str());

  // Build the job. Pseudocode 2 happily assigns equal ids to independent
  // coflows (CB/CC above, and CD/CE both got 42.1 — exactly as in
  // Figure 4c); the simulator keys state by id, so siblings take the next
  // free internal slot here. Priority order is unchanged: parents still
  // rank before children.
  const coflow::CoflowId sim_ca{42, 0}, sim_cb{42, 1}, sim_cc{42, 2};
  const coflow::CoflowId sim_cd{42, 3}, sim_ce{42, 4}, sim_cf{42, 5};
  coflow::Workload wl;
  wl.num_ports = 6;
  coflow::JobSpec job;
  job.id = 42;
  job.arrival = 0;
  auto addCoflow = [&](coflow::CoflowId id, std::vector<coflow::FlowSpec> flows,
                       std::vector<coflow::CoflowId> parents) {
    coflow::CoflowSpec spec;
    spec.id = id;
    spec.flows = std::move(flows);
    spec.finishes_before = std::move(parents);
    job.coflows.push_back(std::move(spec));
  };
  const double mb = util::kMB;
  addCoflow(sim_ca, {{0, 3, 120 * mb, 0}, {1, 4, 120 * mb, 0}}, {});
  addCoflow(sim_cb, {{1, 3, 100 * mb, 0}, {2, 5, 100 * mb, 0}}, {});
  addCoflow(sim_cc, {{2, 4, 80 * mb, 0}}, {});
  addCoflow(sim_cd, {{3, 0, 60 * mb, 0}, {4, 1, 60 * mb, 0}}, {sim_ca, sim_cb});
  addCoflow(sim_ce, {{4, 2, 40 * mb, 0}}, {sim_cc});
  addCoflow(sim_cf, {{0, 5, 20 * mb, 0}, {1, 5, 20 * mb, 0}}, {sim_cd, sim_ce});
  wl.jobs.push_back(job);

  const fabric::FabricConfig fabric_config{6, util::kGbps};

  // Aalo: pipelined DAG, dependency-aware FIFO ties.
  sched::DClasScheduler aalo{sched::DClasConfig{}};
  const auto aalo_result = sim::runSimulation(wl, fabric_config, aalo);

  // Varys-style execution: barriers between stages.
  const auto barriered = workload::addBarriersToDags(wl);
  sched::VarysScheduler varys;
  const auto varys_result = sim::runSimulation(barriered, fabric_config, varys);

  util::Table table({"coflow", "bytes", "finish (Aalo, pipelined)",
                     "finish (Varys, barriers)"});
  for (std::size_t i = 0; i < aalo_result.coflows.size(); ++i) {
    const auto& a = aalo_result.coflows[i];
    const auto& v = varys_result.coflows[i];
    table.addRow({a.id.toString(), util::formatBytes(a.bytes),
                  util::formatSeconds(a.finish), util::formatSeconds(v.finish)});
  }
  table.print(std::cout);
  std::printf("\njob communication time: Aalo %s vs Varys-with-barriers %s\n",
              util::formatSeconds(aalo_result.jobs[0].commTime()).c_str(),
              util::formatSeconds(varys_result.jobs[0].commTime()).c_str());
  return 0;
}
