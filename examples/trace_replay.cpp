// Trace replay: generate (or load) a Facebook-like coflow trace and replay
// it under every scheduler in the library, printing a comparison table.
//
//   $ ./trace_replay                 # synthesize a trace, replay it
//   $ ./trace_replay my_trace.txt    # replay a saved aalo-trace file
//   $ ./trace_replay --save out.txt  # synthesize and save, then replay
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/compare.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sched/varys.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workload/facebook.h"
#include "workload/trace_io.h"

using namespace aalo;

int main(int argc, char** argv) {
  coflow::Workload workload;
  if (argc >= 2 && std::strcmp(argv[1], "--save") != 0) {
    std::printf("loading trace %s ...\n", argv[1]);
    workload = workload::readTraceFile(argv[1]);
  } else {
    workload::FacebookConfig cfg;
    cfg.num_jobs = 100;
    cfg.num_ports = 30;
    cfg.seed = 2025;
    workload = workload::generateFacebookWorkload(cfg);
    if (argc >= 3 && std::strcmp(argv[1], "--save") == 0) {
      workload::writeTraceFile(argv[2], workload);
      std::printf("saved synthesized trace to %s\n", argv[2]);
    }
  }
  std::printf("trace: %zu jobs, %zu coflows, %s over %d ports\n\n",
              workload.jobs.size(), workload.coflowCount(),
              util::formatBytes(workload.totalBytes()).c_str(),
              workload.num_ports);

  const fabric::FabricConfig fabric_config{workload.num_ports, util::kGbps};

  sched::LasConfig las_cfg;
  las_cfg.quantum = 2.0;
  sched::FifoLmConfig lm_cfg;
  lm_cfg.heavy_threshold = 100 * util::kMB;
  lm_cfg.quantum = 2.0;

  std::vector<std::unique_ptr<sim::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::DClasScheduler>(sched::DClasConfig{}));
  schedulers.push_back(std::make_unique<sched::PerFlowFairScheduler>());
  schedulers.push_back(std::make_unique<sched::VarysScheduler>());
  schedulers.push_back(std::make_unique<sched::FifoScheduler>());
  schedulers.push_back(std::make_unique<sched::DecentralizedLasScheduler>(las_cfg));
  schedulers.push_back(std::make_unique<sched::FifoLmScheduler>(lm_cfg));

  std::vector<sim::SimResult> results;
  for (const auto& sched : schedulers) {
    std::printf("replaying under %-22s ...\n", sched->name().c_str());
    results.push_back(sim::runSimulation(workload, fabric_config, *sched));
  }

  const sim::SimResult& aalo_result = results[0];
  util::Table table({"scheduler", "avg CCT", "p95 CCT", "norm. vs Aalo (avg)",
                     "norm. vs Aalo (p95)"});
  for (const auto& result : results) {
    util::Summary cct;
    for (const auto& rec : result.coflows) cct.add(rec.cct());
    const auto norm = analysis::normalizedCct(result, aalo_result);
    table.addRow({result.scheduler, util::formatSeconds(cct.mean()),
                  util::formatSeconds(cct.percentile(95)),
                  util::Table::num(norm.avg, 2) + "x",
                  util::Table::num(norm.p95, 2) + "x"});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nvalues > 1.0x mean Aalo completes coflows that much faster.\n");
  return 0;
}
