// Real-socket demo of the Aalo runtime (§6): a coordinator, a daemon, and
// two concurrent "shuffles" on one machine uplink.
//
// The big shuffle (8 MB) starts first; a small one (512 KB) joins shortly
// after. Both report sizes through the daemon; within a few coordination
// rounds the big coflow crosses the first queue threshold, is demoted,
// and the small coflow takes most of the uplink — so it finishes far
// sooner than its fair-sharing finish time, exactly the Figure-2
// architecture working end to end over loopback TCP.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/client.h"
#include "runtime/coordinator.h"
#include "runtime/daemon.h"
#include "util/units.h"

using namespace aalo;
using Clock = std::chrono::steady_clock;

namespace {

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  // Control plane: coordinator with a 1 MB first queue threshold and a
  // 10 ms coordination interval.
  runtime::CoordinatorConfig ccfg;
  ccfg.sync_interval = 0.010;
  ccfg.dclas.first_threshold = 1 * util::kMB;
  ccfg.dclas.num_queues = 4;
  runtime::Coordinator coordinator(ccfg);
  coordinator.start();

  runtime::DaemonConfig dcfg;
  dcfg.coordinator_port = coordinator.port();
  dcfg.daemon_id = 1;
  dcfg.sync_interval = 0.010;
  dcfg.num_queues = 4;
  dcfg.uplink_capacity = 8 * util::kMB;  // Modest, so the demo runs ~1-2 s.
  runtime::Daemon daemon(dcfg);
  daemon.start();

  // Data plane: each shuffle writes into a drained socketpair, throttled
  // by the daemon's D-CLAS shares.
  auto makeDrainedPair = [](std::thread& drainer, int out[2]) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, out) != 0) {
      std::perror("socketpair");
      std::exit(1);
    }
    const int rd = out[1];
    drainer = std::thread([rd] {
      char sink[65536];
      while (::read(rd, sink, sizeof(sink)) > 0) {
      }
    });
  };

  int big_pair[2];
  int small_pair[2];
  std::thread big_drain;
  std::thread small_drain;
  makeDrainedPair(big_drain, big_pair);
  makeDrainedPair(small_drain, small_pair);

  runtime::AaloClient client(coordinator.port());
  const auto big_id = client.registerCoflow();    // val bId = register()
  const auto small_id = client.registerCoflow();  // val sId = register()
  std::printf("registered coflows: big=%s small=%s\n",
              big_id.toString().c_str(), small_id.toString().c_str());

  const auto start = Clock::now();
  double big_done = 0;
  double small_done = 0;

  std::thread big_sender([&] {
    std::vector<std::uint8_t> chunk(size_t(8 * util::kMB), 0xB1);
    runtime::ThrottledWriter writer(big_pair[0], big_id, daemon);
    writer.writeAll(chunk.data(), chunk.size());
    big_done = secondsSince(start);
  });
  std::thread small_sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    std::vector<std::uint8_t> chunk(size_t(512 * util::kKB), 0x5E);
    runtime::ThrottledWriter writer(small_pair[0], small_id, daemon);
    writer.writeAll(chunk.data(), chunk.size());
    small_done = secondsSince(start);
  });

  big_sender.join();
  small_sender.join();
  client.unregisterCoflow(big_id);
  client.unregisterCoflow(small_id);

  std::printf("\nbig shuffle   (8 MB, started 0.00s): finished at %.2fs in queue %d\n",
              big_done, daemon.queueOf(big_id));
  std::printf("small shuffle (512 KB, started 0.25s): finished at %.2fs in queue %d\n",
              small_done, daemon.queueOf(small_id));
  std::printf("\ncoordination rounds completed: %llu (every ~10 ms)\n",
              static_cast<unsigned long long>(coordinator.epoch()));
  if (small_done < big_done) {
    std::printf("=> Aalo demoted the big coflow and let the small one through.\n");
  }

  for (int* pair : {big_pair, small_pair}) {
    ::shutdown(pair[0], SHUT_RDWR);
    ::close(pair[0]);
  }
  big_drain.join();
  small_drain.join();
  ::close(big_pair[1]);
  ::close(small_pair[1]);
  daemon.stop();
  coordinator.stop();
  return 0;
}
