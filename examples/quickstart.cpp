// Quickstart: build a tiny workload in code, run it under Aalo (D-CLAS)
// and per-flow fairness, and compare coflow completion times.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library: Workload -> Scheduler ->
// Simulator -> records.
#include <cstdio>
#include <iostream>

#include "coflow/spec.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "util/units.h"

using namespace aalo;

int main() {
  // A 4-port fabric (4 machines), 1 Gbps per port.
  const fabric::FabricConfig fabric_config{4, util::kGbps};

  // Two shuffles racing for the same uplinks: a 4 MB aggregation and a
  // 400 MB join. Aalo needs no sizes up front — it discovers them as the
  // coflows send.
  coflow::Workload workload;
  workload.num_ports = 4;
  {
    coflow::JobSpec job;
    job.id = 0;
    job.arrival = 0.0;
    coflow::CoflowSpec big;
    big.id = {0, 0};
    for (coflow::PortId src = 0; src < 2; ++src) {
      for (coflow::PortId dst = 2; dst < 4; ++dst) {
        big.flows.push_back({src, dst, 100 * util::kMB, 0});
      }
    }
    job.coflows.push_back(big);
    workload.jobs.push_back(job);
  }
  {
    coflow::JobSpec job;
    job.id = 1;
    job.arrival = 0.2;  // Arrives while the big shuffle is in flight.
    coflow::CoflowSpec small;
    small.id = {1, 0};
    small.flows.push_back({0, 2, 2 * util::kMB, 0});
    small.flows.push_back({1, 3, 2 * util::kMB, 0});
    job.coflows.push_back(small);
    workload.jobs.push_back(job);
  }

  // Aalo's D-CLAS with the paper's defaults (K=10, E=10, Q1=10MB).
  sched::DClasScheduler aalo_sched{sched::DClasConfig{}};
  sched::PerFlowFairScheduler fair_sched;

  const auto aalo_result = sim::runSimulation(workload, fabric_config, aalo_sched);
  const auto fair_result = sim::runSimulation(workload, fabric_config, fair_sched);

  util::Table table({"coflow", "bytes", "CCT (Aalo)", "CCT (per-flow fair)"});
  for (std::size_t i = 0; i < aalo_result.coflows.size(); ++i) {
    const auto& a = aalo_result.coflows[i];
    const auto& f = fair_result.coflows[i];
    table.addRow({a.id.toString(), util::formatBytes(a.bytes),
                  util::formatSeconds(a.cct()), util::formatSeconds(f.cct())});
  }
  std::printf("Two coflows, 4x1Gbps fabric. Aalo demotes the 400 MB shuffle\n"
              "once it crosses the 10 MB queue threshold, so the 4 MB coflow\n"
              "sails through; fair sharing makes it wait.\n\n");
  table.print(std::cout);
  return 0;
}
