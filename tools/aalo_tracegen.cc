// aalo_tracegen — synthesize coflow traces in the aalo-trace format.
//
//   aalo_tracegen [--kind fb|tpcds|uniform|fixed] [--jobs N] [--ports P]
//                 [--seed S] [--interarrival SEC] [--size BYTES]
//                 [--waves W] [--coflows N] [--out PATH]
//
// Without --out the trace is written to stdout.
//
// --coflows N is the scale mode: it sizes the workload by total coflow
// count instead of job count (fb/uniform/fixed emit one coflow per job,
// so it is an alias for --jobs that reads as intent at 100k+ scale; tpcds
// job templates have fixed multi-coflow DAGs, so N is divided by the
// per-job coflow count). Used to cut the large replay benchmark traces.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "util/units.h"
#include "workload/deadlines.h"
#include "workload/distributions.h"
#include "workload/facebook.h"
#include "workload/tpcds.h"
#include "workload/trace_io.h"
#include "workload/transforms.h"

using namespace aalo;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: aalo_tracegen [--kind fb|tpcds|uniform|fixed] [--jobs N]\n"
               "                     [--ports P] [--seed S] [--interarrival SEC]\n"
               "                     [--size BYTES] [--waves W] [--coflows N]\n"
               "                     [--deadline-slack X] [--out PATH]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind = "fb";
  std::string out_path;
  std::size_t jobs = 100;
  int ports = 40;
  std::uint64_t seed = 1;
  double interarrival = 0.5;
  double size = 100 * util::kMB;
  int waves = 1;
  std::size_t coflows = 0;      // 0 = use --jobs.
  double deadline_slack = 0.0;  // 0 = deadline-free trace.

  for (int i = 1; i < argc; ++i) {
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--kind")) {
      kind = needValue("--kind");
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = std::strtoull(needValue("--jobs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--ports")) {
      ports = std::atoi(needValue("--ports"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(needValue("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--interarrival")) {
      interarrival = std::atof(needValue("--interarrival"));
    } else if (!std::strcmp(argv[i], "--size")) {
      size = std::atof(needValue("--size"));
    } else if (!std::strcmp(argv[i], "--waves")) {
      waves = std::atoi(needValue("--waves"));
    } else if (!std::strcmp(argv[i], "--coflows")) {
      coflows = std::strtoull(needValue("--coflows"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--deadline-slack")) {
      deadline_slack = std::atof(needValue("--deadline-slack"));
    } else if (!std::strcmp(argv[i], "--out")) {
      out_path = needValue("--out");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }

  if (coflows > 0) jobs = coflows;  // One coflow per job below (fb/uniform/fixed).

  coflow::Workload wl;
  if (kind == "fb") {
    workload::FacebookConfig cfg;
    cfg.num_jobs = jobs;
    cfg.num_ports = ports;
    cfg.seed = seed;
    cfg.mean_interarrival = interarrival;
    wl = workload::generateFacebookWorkload(cfg);
  } else if (kind == "tpcds") {
    workload::TpcdsConfig cfg;
    cfg.num_ports = ports;
    cfg.seed = seed;
    cfg.mean_interarrival = interarrival;
    wl = workload::generateTpcdsWorkload(cfg);
  } else if (kind == "uniform" || kind == "fixed") {
    workload::SizeDistributionConfig cfg;
    cfg.num_coflows = jobs;
    cfg.num_ports = ports;
    cfg.seed = seed;
    cfg.mean_interarrival = interarrival;
    wl = kind == "uniform" ? workload::generateUniformSizeWorkload(cfg, size)
                           : workload::generateFixedSizeWorkload(cfg, size);
  } else {
    usage();
  }

  if (waves > 1) {
    workload::MultiWaveConfig mw;
    mw.max_waves = waves;
    mw.seed = seed + 1;
    workload::applyMultiWave(wl, mw);
  }

  if (deadline_slack > 0) {
    workload::DeadlineConfig dl;
    dl.slack = deadline_slack;
    dl.seed = seed + 2;
    workload::assignDeadlines(wl, dl);
  }

  if (out_path.empty()) {
    workload::writeTrace(std::cout, wl);
  } else {
    workload::writeTraceFile(out_path, wl);
    std::fprintf(stderr, "wrote %zu jobs (%zu coflows, %s) to %s\n", wl.jobs.size(),
                 wl.coflowCount(), util::formatBytes(wl.totalBytes()).c_str(),
                 out_path.c_str());
  }
  return 0;
}
