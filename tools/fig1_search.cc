// One-off search tool: reconstructs the concrete instance behind the
// paper's Figure 1 (3x3 fabric, three coflows, C2 arriving at t=1) from
// the average CCTs its caption reports:
//   per-flow fairness 5.33, decentralized LAS 5, CLAS 4, optimal 3.67.
//
// We enumerate small integer flow sizes for C1/C2/C3 on ingress ports P0
// and P1 (egress uncontended, as the paper notes) and simulate each
// candidate under our per-flow-fair, decentralized-LAS and continuous-CLAS
// schedulers; "optimal" is the best of all six permutation schedules.
// Matching instances are printed; the winner is hard-coded in
// bench/fig01_example.cc and tests/fig1_test.cc.
#include <cmath>
#include <cstdio>
#include <vector>

#include "sched/clas.h"
#include "sched/fair.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sim/simulator.h"

namespace {

using namespace aalo;

struct Candidate {
  // Flow sizes; 0 = flow absent. cX_pY = coflow X's flow on ingress port Y.
  int c1_p0, c1_p1, c2_p0, c2_p1, c3_p0, c3_p1;
};

coflow::Workload makeWorkload(const Candidate& c) {
  coflow::Workload wl;
  wl.num_ports = 8;  // 2 ingress in use; egress 2..7 all distinct.
  int egress = 2;
  auto addJob = [&](coflow::JobId id, double arrival, int p0_size, int p1_size) {
    coflow::JobSpec job;
    job.id = id;
    job.arrival = arrival;
    coflow::CoflowSpec spec;
    spec.id = {id, 0};
    if (p0_size > 0) {
      spec.flows.push_back(coflow::FlowSpec{0, egress++, double(p0_size), 0});
    }
    if (p1_size > 0) {
      spec.flows.push_back(coflow::FlowSpec{1, egress++, double(p1_size), 0});
    }
    if (spec.flows.empty()) return false;
    job.coflows.push_back(spec);
    wl.jobs.push_back(job);
    return true;
  };
  if (!addJob(0, 0.0, c.c1_p0, c.c1_p1)) return {};
  if (!addJob(1, 1.0, c.c2_p0, c.c2_p1)) return {};
  if (!addJob(2, 0.0, c.c3_p0, c.c3_p1)) return {};
  return wl;
}

double avgCct(const sim::SimResult& r) {
  double total = 0;
  for (const auto& rec : r.coflows) total += rec.cct();
  return total / double(r.coflows.size());
}

double runScheduler(const coflow::Workload& wl, sim::Scheduler& s) {
  return avgCct(sim::runSimulation(wl, fabric::FabricConfig{8, 1.0}, s));
}

double bestPermutation(const coflow::Workload& wl) {
  std::vector<std::vector<int>> perms = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                         {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  double best = 1e18;
  for (const auto& p : perms) {
    std::unordered_map<coflow::CoflowId, int> order;
    for (int i = 0; i < 3; ++i) order[{p[size_t(i)], 0}] = i;
    sched::OfflineOrderScheduler s(order);
    best = std::min(best, runScheduler(wl, s));
  }
  return best;
}

bool close(double a, double b) { return std::fabs(a - b) < 0.02; }

}  // namespace

int main() {
  const double target_fair = 16.0 / 3, target_las = 5.0, target_clas = 4.0,
               target_opt = 11.0 / 3;
  int found = 0;
  for (int c1_p0 = 0; c1_p0 <= 4; ++c1_p0)
    for (int c1_p1 = 0; c1_p1 <= 4; ++c1_p1)
      for (int c2_p0 = 0; c2_p0 <= 4; ++c2_p0)
        for (int c2_p1 = 0; c2_p1 <= 4; ++c2_p1)
          for (int c3_p0 = 0; c3_p0 <= 4; ++c3_p0)
            for (int c3_p1 = 0; c3_p1 <= 4; ++c3_p1) {
              const Candidate c{c1_p0, c1_p1, c2_p0, c2_p1, c3_p0, c3_p1};
              if (c1_p0 + c1_p1 == 0 || c2_p0 + c2_p1 == 0 || c3_p0 + c3_p1 == 0)
                continue;
              const auto wl = makeWorkload(c);

              sched::PerFlowFairScheduler fair;
              const double v_fair = runScheduler(wl, fair);
              if (!close(v_fair, target_fair)) continue;

              sched::LasConfig las_cfg;
              las_cfg.tie_window = 1e-4;
              las_cfg.quantum = 0.05;
              sched::DecentralizedLasScheduler las(las_cfg);
              const double v_las = runScheduler(wl, las);
              if (!close(v_las, target_las)) continue;

              sched::ClasConfig clas_cfg;
              clas_cfg.tie_window = 1e-4;
              clas_cfg.quantum = 0.05;
              sched::ContinuousClasScheduler clas(clas_cfg);
              const double v_clas = runScheduler(wl, clas);
              if (!close(v_clas, target_clas)) continue;

              const double v_opt = bestPermutation(wl);
              if (!close(v_opt, target_opt)) continue;

              std::printf(
                  "MATCH C1=(P0:%d,P1:%d) C2=(P0:%d,P1:%d) C3=(P0:%d,P1:%d) "
                  "fair=%.3f las=%.3f clas=%.3f opt=%.3f\n",
                  c.c1_p0, c.c1_p1, c.c2_p0, c.c2_p1, c.c3_p0, c.c3_p1, v_fair,
                  v_las, v_clas, v_opt);
              ++found;
            }
  std::printf("total matches: %d\n", found);
  return 0;
}
