#!/usr/bin/env sh
# Records the coordination data-path A/B (full vs delta mode, real
# loopback sockets, panel (a) of the Figure 14 bench) as JSON so
# successive PRs can diff round times and bytes-on-wire.
#
#   tools/bench_net_record.sh [build-dir] [output-json]
#
# Defaults: build-dir = build-release (the "release" CMake preset),
# output = BENCH_net.json (repo root). Compare against the committed
# BENCH_net.json:
#
#   git diff -- BENCH_net.json
#
# Recording from an unoptimized build would poison the trajectory, so a
# build dir whose CMAKE_BUILD_TYPE is not Release/RelWithDebInfo is
# refused. Set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to record anyway (the
# JSON will still reflect the slow build — don't commit it).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
out=${2:-"$repo_root/BENCH_net.json"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${AALO_BENCH_ALLOW_UNOPTIMIZED:-0}" != "1" ]; then
      echo "bench_net_record: refusing to record from '$build_dir'" >&2
      echo "bench_net_record: CMAKE_BUILD_TYPE is '${build_type:-unset}', need Release or RelWithDebInfo" >&2
      echo "bench_net_record: use 'cmake --preset release && cmake --build --preset release'," >&2
      echo "bench_net_record: or set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to override" >&2
      exit 1
    fi
    echo "bench_net_record: WARNING recording from unoptimized build ($build_type)" >&2
    ;;
esac

cmake --build "$build_dir" -j --target bench_fig14_scalability

"$build_dir/bench/bench_fig14_scalability" --json "$out"

echo "wrote $out" >&2
