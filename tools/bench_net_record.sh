#!/usr/bin/env sh
# Records the coordination benchmarks (panel (a) of the Figure 14 bench:
# full-vs-delta data-path A/B, the daemons x shards sweep over the
# multi-threaded sharded coordinator, HA drills, and the >= 1M
# live-coflow point — all real loopback sockets) as JSON so successive
# PRs can diff round times and bytes-on-wire.
#
#   tools/bench_net_record.sh [options] [build-dir] [output-json]
#
# Options (forwarded to the bench binary):
#   --daemons N,N,...   sweep daemon counts (default grid: 1000 at shards
#                       1/2/4/8 plus the 1-vs-8 A/B at 10k and 100k)
#   --shards K,K,...    sweep shard counts (default 1,8 when --daemons is
#                       given without --shards)
#   --rounds R          timed rounds per sweep point (default scales with N)
#   --sweep-only        record just the shard sweep (the CI perf gate mode)
#   --live-coflows M    population for the high-cardinality point
#
# Defaults: build-dir = build-release (the "release" CMake preset),
# output = BENCH_net.json (repo root). Compare against the committed
# BENCH_net.json:
#
#   git diff -- BENCH_net.json
#
# Recording from an unoptimized build would poison the trajectory, so a
# build dir whose CMAKE_BUILD_TYPE is not Release/RelWithDebInfo is
# refused. Set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to record anyway (the
# JSON will still reflect the slow build — don't commit it).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

bench_args=""
while [ $# -gt 0 ]; do
  case "$1" in
    --daemons|--shards|--rounds|--live-coflows)
      if [ $# -lt 2 ]; then
        echo "bench_net_record: $1 needs a value" >&2
        exit 2
      fi
      bench_args="$bench_args $1 $2"
      shift 2
      ;;
    --sweep-only)
      bench_args="$bench_args $1"
      shift
      ;;
    --*)
      echo "bench_net_record: unknown option $1" >&2
      echo "usage: tools/bench_net_record.sh [--daemons N,N,...] [--shards K,K,...] [--rounds R] [--sweep-only] [--live-coflows M] [build-dir] [output-json]" >&2
      exit 2
      ;;
    *)
      break
      ;;
  esac
done

build_dir=${1:-"$repo_root/build-release"}
out=${2:-"$repo_root/BENCH_net.json"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${AALO_BENCH_ALLOW_UNOPTIMIZED:-0}" != "1" ]; then
      echo "bench_net_record: refusing to record from '$build_dir'" >&2
      echo "bench_net_record: CMAKE_BUILD_TYPE is '${build_type:-unset}', need Release or RelWithDebInfo" >&2
      echo "bench_net_record: use 'cmake --preset release && cmake --build --preset release'," >&2
      echo "bench_net_record: or set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to override" >&2
      exit 1
    fi
    echo "bench_net_record: WARNING recording from unoptimized build ($build_type)" >&2
    ;;
esac

cmake --build "$build_dir" -j --target bench_fig14_scalability

# shellcheck disable=SC2086  # bench_args is a flat word list by construction.
"$build_dir/bench/bench_fig14_scalability" --json "$out" $bench_args

echo "wrote $out" >&2
