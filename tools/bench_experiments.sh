#!/usr/bin/env bash
# Regenerates the "Scheduler zoo" section of EXPERIMENTS.md: CCT,
# deadline-miss rate, and distance-from-LP-bound for the sampling and
# dcoflow baselines vs D-CLAS (and friends) on the Facebook and TPC-DS
# workloads, with and without deadlines.
#
#   tools/bench_experiments.sh              # regenerate EXPERIMENTS.md in place
#   CHECK_ONLY=1 tools/bench_experiments.sh # run the sims + LP gate, leave
#                                           # EXPERIMENTS.md untouched (CI smoke)
#
# Every run passes --lp-check, so the script doubles as a soundness gate:
# it exits non-zero if any scheduler ever finishes below the LP lower
# bound. Knobs (env): BUILD (build dir, default "build"), FB_JOBS,
# PORTS, SEED, SLACK (deadline slack), SCHEDS (comma list).
#
# The tables land verbatim between the AUTOGEN markers in EXPERIMENTS.md;
# everything outside the markers is hand-written and preserved.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
FB_JOBS="${FB_JOBS:-200}"
PORTS="${PORTS:-40}"
SEED="${SEED:-4242}"
SLACK="${SLACK:-0.5}"
SCHEDS="${SCHEDS:-aalo,fair,las,sampling,dcoflow}"

if [[ ! -x "$BUILD/tools/aalo_sim" || ! -x "$BUILD/tools/aalo_tracegen" ]]; then
  echo "bench_experiments: building aalo_sim + aalo_tracegen in $BUILD" >&2
  cmake -B "$BUILD" -S . >/dev/null
  cmake --build "$BUILD" -j "$(nproc)" --target aalo_sim_cli aalo_tracegen
fi

out="$BUILD/experiments"
mkdir -p "$out"

gen() { # gen <name> <tracegen args...>
  local name=$1
  shift
  "$BUILD/tools/aalo_tracegen" "$@" --out "$out/$name.trace" >/dev/null
}

gen fb           --kind fb    --jobs "$FB_JOBS" --ports "$PORTS" --seed "$SEED"
gen fb_deadline  --kind fb    --jobs "$FB_JOBS" --ports "$PORTS" --seed "$SEED" \
                 --deadline-slack "$SLACK"
gen tpcds          --kind tpcds --ports "$PORTS" --seed "$SEED"
gen tpcds_deadline --kind tpcds --ports "$PORTS" --seed "$SEED" \
                   --deadline-slack "$SLACK"

run() { # run <name> -> table on stdout; --lp-check makes LP violations fatal
  local name=$1
  "$BUILD/tools/aalo_sim" --trace "$out/$name.trace" --sched "$SCHEDS" \
    --lp-check 2>"$out/$name.log"
}

section="$out/scheduler_zoo.md"
{
  echo "Workloads: \`fb\` = $FB_JOBS Facebook-style jobs, \`tpcds\` = the"
  echo "TPC-DS DAG mix, both on $PORTS ports at 1 Gbps (seed $SEED);"
  echo "\`*_deadline\` adds per-coflow deadlines at slack $SLACK of the"
  echo "isolated completion time. \"vs LP\" is total CCT divided by the"
  echo "offline LP-style lower bound (sched/lp_bound.h) — 1.000x would be"
  echo "provably optimal, and every run is gated on never dipping below"
  echo "1x (--lp-check). Rejected coflows still run as background traffic,"
  echo "so dcoflow's CCT column includes them."
  for name in fb fb_deadline tpcds tpcds_deadline; do
    echo
    echo "### $name"
    echo
    echo '```'
    run "$name"
    echo '```'
  done
} >"$section"
echo "bench_experiments: tables written to $section" >&2

if [[ "${CHECK_ONLY:-0}" != 0 ]]; then
  echo "bench_experiments: CHECK_ONLY set — EXPERIMENTS.md left untouched" >&2
  exit 0
fi

python3 - "$section" <<'EOF'
import sys

BEGIN = "<!-- BEGIN scheduler-zoo tables (tools/bench_experiments.sh) -->"
END = "<!-- END scheduler-zoo tables -->"

body = open(sys.argv[1]).read().rstrip() + "\n"
doc = open("EXPERIMENTS.md").read()
lo, hi = doc.find(BEGIN), doc.find(END)
if lo < 0 or hi < 0 or hi < lo:
    raise SystemExit("bench_experiments: AUTOGEN markers missing from EXPERIMENTS.md")
open("EXPERIMENTS.md", "w").write(
    doc[: lo + len(BEGIN)] + "\n" + body + doc[hi:])
print("bench_experiments: EXPERIMENTS.md regenerated", file=sys.stderr)
EOF
