// aalo_coordinator — run a standalone Aalo coordinator process.
//
//   aalo_coordinator [--port P] [--delta MS] [--queues K] [--q1 BYTES]
//                    [--factor E] [--max-on N] [--liveness-timeout N]
//                    [--one-way-timeout N] [--tombstone-gc N]
//                    [--snapshot-every N] [--full-broadcasts]
//                    [--standby-of PORT] [--takeover-intervals N]
//                    [--checkpoint-dir DIR] [--checkpoint-interval SECONDS]
//                    [--send-queue-max BYTES] [--shards N]
//                    [--metrics-dump PATH] [--metrics-interval SECONDS]
//                    [--verbose]
//
// The three timeout flags are in units of sync intervals (N * delta); 0
// disables the corresponding watchdog. --snapshot-every bounds how many
// consecutive delta frames a daemon sees before a full schedule refresh;
// --full-broadcasts disables the delta path entirely (oracle mode).
// --standby-of starts this process as a warm standby of the primary at
// the given port: it mirrors the broadcast stream and promotes itself
// (with a higher fencing epoch) after --takeover-intervals * delta of
// primary silence. --checkpoint-dir enables ScheduleState snapshots + a
// delta journal so a restarted primary resumes without re-teaching;
// --send-queue-max bounds per-daemon broadcast backlog (skipped rounds are
// coalesced into one snapshot; 0 = unlimited). --shards N partitions the
// coordination plane across N worker threads (schedules stay bit-identical
// to --shards 1, the single-threaded oracle).
// --metrics-dump writes the observability registry (Prometheus text, plus
// JSON at PATH.json) every --metrics-interval seconds and once at
// shutdown.
//
// Prints one status line per second (daemons, registered coflows, epoch).
// Terminate with SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/coordinator.h"
#include "util/log.h"
#include "util/units.h"

using namespace aalo;

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop = true; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: aalo_coordinator [--port P] [--delta MS] [--queues K]\n"
               "                        [--q1 BYTES] [--factor E] [--max-on N]\n"
               "                        [--liveness-timeout N] [--one-way-timeout N]\n"
               "                        [--tombstone-gc N] [--snapshot-every N]\n"
               "                        [--full-broadcasts] [--standby-of PORT]\n"
               "                        [--takeover-intervals N] [--checkpoint-dir DIR]\n"
               "                        [--checkpoint-interval SECONDS]\n"
               "                        [--send-queue-max BYTES] [--shards N]\n"
               "                        [--metrics-dump PATH]\n"
               "                        [--metrics-interval SECONDS] [--verbose]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  runtime::CoordinatorConfig cfg;
  for (int i = 1; i < argc; ++i) {
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--port")) {
      cfg.port = static_cast<std::uint16_t>(std::atoi(needValue("--port")));
    } else if (!std::strcmp(argv[i], "--delta")) {
      cfg.sync_interval = std::atof(needValue("--delta")) * util::kMillisecond;
    } else if (!std::strcmp(argv[i], "--queues")) {
      cfg.dclas.num_queues = std::atoi(needValue("--queues"));
    } else if (!std::strcmp(argv[i], "--q1")) {
      cfg.dclas.first_threshold = std::atof(needValue("--q1"));
    } else if (!std::strcmp(argv[i], "--factor")) {
      cfg.dclas.exp_factor = std::atof(needValue("--factor"));
    } else if (!std::strcmp(argv[i], "--max-on")) {
      cfg.max_on_coflows =
          static_cast<std::size_t>(std::atoll(needValue("--max-on")));
    } else if (!std::strcmp(argv[i], "--liveness-timeout")) {
      cfg.liveness_timeout_intervals = std::atoi(needValue("--liveness-timeout"));
    } else if (!std::strcmp(argv[i], "--one-way-timeout")) {
      cfg.one_way_timeout_intervals = std::atoi(needValue("--one-way-timeout"));
    } else if (!std::strcmp(argv[i], "--tombstone-gc")) {
      cfg.tombstone_gc_intervals = std::atoi(needValue("--tombstone-gc"));
    } else if (!std::strcmp(argv[i], "--snapshot-every")) {
      cfg.snapshot_every = std::atoi(needValue("--snapshot-every"));
    } else if (!std::strcmp(argv[i], "--full-broadcasts")) {
      cfg.full_broadcasts = true;
    } else if (!std::strcmp(argv[i], "--standby-of")) {
      cfg.standby_of =
          static_cast<std::uint16_t>(std::atoi(needValue("--standby-of")));
    } else if (!std::strcmp(argv[i], "--takeover-intervals")) {
      cfg.takeover_intervals = std::atoi(needValue("--takeover-intervals"));
    } else if (!std::strcmp(argv[i], "--checkpoint-dir")) {
      cfg.checkpoint_dir = needValue("--checkpoint-dir");
    } else if (!std::strcmp(argv[i], "--checkpoint-interval")) {
      cfg.checkpoint_interval = std::atof(needValue("--checkpoint-interval"));
    } else if (!std::strcmp(argv[i], "--send-queue-max")) {
      cfg.send_queue_max =
          static_cast<std::size_t>(std::atoll(needValue("--send-queue-max")));
    } else if (!std::strcmp(argv[i], "--shards")) {
      cfg.shards = static_cast<std::size_t>(std::atoll(needValue("--shards")));
      if (cfg.shards == 0) cfg.shards = 1;
    } else if (!std::strcmp(argv[i], "--metrics-dump")) {
      cfg.metrics_dump_path = needValue("--metrics-dump");
    } else if (!std::strcmp(argv[i], "--metrics-interval")) {
      cfg.metrics_dump_interval = std::atof(needValue("--metrics-interval"));
    } else if (!std::strcmp(argv[i], "--verbose")) {
      util::setLogLevel(util::LogLevel::kInfo);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  runtime::Coordinator coordinator(cfg);
  coordinator.start();
  std::printf("aalo_coordinator listening on 127.0.0.1:%u (delta=%s, K=%d, Q1=%s)\n",
              coordinator.port(), util::formatSeconds(cfg.sync_interval).c_str(),
              cfg.dclas.num_queues,
              util::formatBytes(cfg.dclas.first_threshold).c_str());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const auto& stats = coordinator.stats();
    std::printf(
        "daemons=%zu coflows=%zu epoch=%llu tombstones=%zu evicted=%llu "
        "one_way=%llu malformed=%llu\n",
        coordinator.daemonCount(), coordinator.registeredCoflows(),
        static_cast<unsigned long long>(coordinator.epoch()),
        coordinator.tombstoneCount(),
        static_cast<unsigned long long>(stats.daemons_evicted.load()),
        static_cast<unsigned long long>(stats.one_way_evictions.load()),
        static_cast<unsigned long long>(stats.malformed_frames.load()));
    std::fflush(stdout);
  }
  coordinator.stop();
  std::printf("shut down cleanly\n");
  return 0;
}
