#!/usr/bin/env sh
# Records the microbenchmark suite as JSON so successive PRs have a perf
# trajectory to diff against.
#
#   tools/bench_record.sh [build-dir] [output-json]
#
# Defaults: build-dir = build, output = BENCH_micro.json (repo root).
# Builds bench_micro if needed, then runs it with 3 repetitions and
# aggregate-only reporting (median/mean/stddev per benchmark) to damp
# scheduler noise. Compare against the committed BENCH_micro.json:
#
#   git diff -- BENCH_micro.json
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_micro.json"}

if [ ! -x "$build_dir/bench/bench_micro" ]; then
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j --target bench_micro
fi

"$build_dir/bench/bench_micro" \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$out"

echo "wrote $out" >&2
