#!/usr/bin/env sh
# Records the microbenchmark suite as JSON so successive PRs have a perf
# trajectory to diff against.
#
#   tools/bench_record.sh [build-dir] [output-json]
#
# Defaults: build-dir = build-release (the "release" CMake preset),
# output = BENCH_micro.json (repo root). Configures and builds
# bench_micro if needed, then runs it with 3 repetitions and
# aggregate-only reporting (median/mean/stddev per benchmark) to damp
# scheduler noise. Repetitions are randomly interleaved across
# benchmarks: on a single-core box a monotone slow drift otherwise
# lands entirely on whichever benchmark registers later, which skews
# paired A/B comparisons (e.g. BM_SimulatorEndToEnd vs its Metrics
# twin). Compare against the committed BENCH_micro.json:
#
#   git diff -- BENCH_micro.json
#
# Recording from an unoptimized build would poison the trajectory, so a
# build dir whose CMAKE_BUILD_TYPE is not Release/RelWithDebInfo is
# refused. Set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to record anyway (the
# JSON will still reflect the slow build — don't commit it).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
out=${2:-"$repo_root/BENCH_micro.json"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${AALO_BENCH_ALLOW_UNOPTIMIZED:-0}" != "1" ]; then
      echo "bench_record: refusing to record from '$build_dir'" >&2
      echo "bench_record: CMAKE_BUILD_TYPE is '${build_type:-unset}', need Release or RelWithDebInfo" >&2
      echo "bench_record: use 'cmake --preset release && cmake --build --preset release'," >&2
      echo "bench_record: or set AALO_BENCH_ALLOW_UNOPTIMIZED=1 to override" >&2
      exit 1
    fi
    echo "bench_record: WARNING recording from unoptimized build ($build_type)" >&2
    ;;
esac

cmake --build "$build_dir" -j --target bench_micro

"$build_dir/bench/bench_micro" \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$out"

echo "wrote $out" >&2
