// aalo_daemon — run a standalone Aalo daemon (one per machine) against a
// coordinator, optionally generating synthetic local traffic so the
// control plane can be exercised without a data plane.
//
//   aalo_daemon --coordinator-port P [--coordinator-port P2 ...] [--id N]
//               [--delta MS]
//               [--synthetic-coflows N] [--rate BYTES_PER_SEC]
//               [--duration SEC]
//               [--reconnect MS] [--reconnect-max-backoff MS]
//               [--stale-intervals N]
//               [--resync-intervals N] [--full-reports]
//               [--send-queue-max BYTES]
//               [--metrics-dump PATH] [--metrics-interval SECONDS]
//               [--chaos-seed S] [--chaos-drop P] [--chaos-dup P]
//               [--chaos-reorder P] [--chaos-corrupt P] [--chaos-truncate P]
//               [--chaos-delay P] [--chaos-split BYTES]
//
// --coordinator-port may repeat: the first port is the primary, later ones
// are warm standbys tried in order when the current endpoint fails or goes
// stale. --send-queue-max sheds size reports while more than BYTES of
// unsent data is already queued to the coordinator (0 = never shed).
//
// --metrics-dump writes the daemon's observability registry (Prometheus
// text, plus JSON at PATH.json) every --metrics-interval seconds (default
// 1) and once at shutdown.
//
// Any --chaos-* flag interposes a net::ChaosProxy between this daemon and
// the coordinator: the daemon dials the proxy, the proxy relays (and
// deterministically mangles, per --chaos-seed) frames to the real
// coordinator port. Probabilities are per frame and apply in both
// directions.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "runtime/client.h"
#include "runtime/daemon.h"
#include "util/units.h"

using namespace aalo;

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop = true; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: aalo_daemon --coordinator-port P [--coordinator-port P2]\n"
               "                   [--id N] [--delta MS]\n"
               "                   [--synthetic-coflows N] [--rate B/S]\n"
               "                   [--duration SEC]\n"
               "                   [--reconnect MS] [--reconnect-max-backoff MS]\n"
               "                   [--stale-intervals N]\n"
               "                   [--resync-intervals N] [--full-reports]\n"
               "                   [--send-queue-max BYTES]\n"
               "                   [--metrics-dump PATH] [--metrics-interval SECONDS]\n"
               "                   [--chaos-seed S] [--chaos-drop P] [--chaos-dup P]\n"
               "                   [--chaos-reorder P] [--chaos-corrupt P]\n"
               "                   [--chaos-truncate P] [--chaos-delay P]\n"
               "                   [--chaos-split BYTES]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  runtime::DaemonConfig cfg;
  cfg.daemon_id = 1;
  int synthetic = 0;
  double rate = 10 * util::kMB;
  double duration = 0;  // 0 = run until signalled.
  bool use_chaos = false;
  net::ChaosPolicy chaos;
  std::uint64_t chaos_seed = 1;
  std::string metrics_dump_path;
  double metrics_interval = 1.0;

  for (int i = 1; i < argc; ++i) {
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--coordinator-port")) {
      const auto port =
          static_cast<std::uint16_t>(std::atoi(needValue("--coordinator-port")));
      if (cfg.coordinator_port == 0) cfg.coordinator_port = port;
      cfg.coordinator_ports.push_back(port);
    } else if (!std::strcmp(argv[i], "--id")) {
      cfg.daemon_id = std::strtoull(needValue("--id"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--delta")) {
      cfg.sync_interval = std::atof(needValue("--delta")) * util::kMillisecond;
    } else if (!std::strcmp(argv[i], "--synthetic-coflows")) {
      synthetic = std::atoi(needValue("--synthetic-coflows"));
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::atof(needValue("--rate"));
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration = std::atof(needValue("--duration"));
    } else if (!std::strcmp(argv[i], "--reconnect")) {
      cfg.reconnect_interval =
          std::atof(needValue("--reconnect")) * util::kMillisecond;
    } else if (!std::strcmp(argv[i], "--reconnect-max-backoff")) {
      cfg.reconnect_max_backoff =
          std::atof(needValue("--reconnect-max-backoff")) * util::kMillisecond;
    } else if (!std::strcmp(argv[i], "--stale-intervals")) {
      cfg.stale_after_intervals = std::atoi(needValue("--stale-intervals"));
    } else if (!std::strcmp(argv[i], "--resync-intervals")) {
      cfg.resync_intervals = std::atoi(needValue("--resync-intervals"));
    } else if (!std::strcmp(argv[i], "--full-reports")) {
      cfg.full_reports = true;
    } else if (!std::strcmp(argv[i], "--send-queue-max")) {
      cfg.send_queue_max =
          static_cast<std::size_t>(std::atoll(needValue("--send-queue-max")));
    } else if (!std::strcmp(argv[i], "--metrics-dump")) {
      metrics_dump_path = needValue("--metrics-dump");
    } else if (!std::strcmp(argv[i], "--metrics-interval")) {
      metrics_interval = std::atof(needValue("--metrics-interval"));
    } else if (!std::strcmp(argv[i], "--chaos-seed")) {
      chaos_seed = std::strtoull(needValue("--chaos-seed"), nullptr, 10);
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-drop")) {
      chaos.drop = std::atof(needValue("--chaos-drop"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-dup")) {
      chaos.duplicate = std::atof(needValue("--chaos-dup"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-reorder")) {
      chaos.reorder = std::atof(needValue("--chaos-reorder"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-corrupt")) {
      chaos.corrupt = std::atof(needValue("--chaos-corrupt"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-truncate")) {
      chaos.truncate = std::atof(needValue("--chaos-truncate"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-delay")) {
      chaos.delay = std::atof(needValue("--chaos-delay"));
      use_chaos = true;
    } else if (!std::strcmp(argv[i], "--chaos-split")) {
      chaos.max_write_bytes =
          static_cast<std::size_t>(std::atoll(needValue("--chaos-split")));
      use_chaos = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }
  if (cfg.coordinator_port == 0) usage();

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // With chaos flags the daemon dials the proxy instead of the
  // coordinator; the proxy relays (and mangles) to the real port.
  const std::uint16_t real_coordinator_port = cfg.coordinator_port;
  std::unique_ptr<net::ChaosProxy> proxy;
  if (use_chaos) {
    net::ChaosProxyConfig pcfg;
    pcfg.upstream_port = real_coordinator_port;
    pcfg.seed = chaos_seed;
    pcfg.client_to_upstream = chaos;
    pcfg.upstream_to_client = chaos;
    proxy = std::make_unique<net::ChaosProxy>(pcfg);
    proxy->start();
    cfg.coordinator_port = proxy->port();
    cfg.coordinator_ports = {proxy->port()};  // chaos fronts one endpoint
    std::printf("chaos proxy on 127.0.0.1:%u -> 127.0.0.1:%u (seed=%llu)\n",
                proxy->port(), real_coordinator_port,
                static_cast<unsigned long long>(chaos_seed));
  }

  runtime::Daemon daemon(cfg);
  daemon.start();
  std::printf("aalo_daemon %llu connected to 127.0.0.1:%u\n",
              static_cast<unsigned long long>(cfg.daemon_id), cfg.coordinator_port);

  // Optional synthetic load: register N coflows and report bytes at the
  // given per-coflow rate so queue transitions can be observed live.
  // Client RPCs go straight to the coordinator — chaos targets the
  // daemon's control channel.
  std::vector<coflow::CoflowId> ids;
  if (synthetic > 0) {
    runtime::AaloClient client(real_coordinator_port);
    for (int c = 0; c < synthetic; ++c) ids.push_back(client.registerCoflow());
    std::printf("registered %d synthetic coflows\n", synthetic);
  }

  const auto start = std::chrono::steady_clock::now();
  double next_dump = metrics_interval;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (std::size_t c = 0; c < ids.size(); ++c) {
      // Coflow c sends at rate * (c+1) to spread across queues.
      daemon.reportBytes(ids[c], rate * 0.1 * static_cast<double>(c + 1));
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!metrics_dump_path.empty() && metrics_interval > 0 &&
        elapsed >= next_dump) {
      daemon.metrics().dumpFiles(metrics_dump_path);
      next_dump = elapsed + metrics_interval;
    }
    if (duration > 0 && elapsed >= duration) break;
    if (!ids.empty() && std::fmod(elapsed, 1.0) < 0.1) {
      std::printf("t=%.0fs epoch=%llu queues:", elapsed,
                  static_cast<unsigned long long>(daemon.lastEpoch()));
      for (const auto& id : ids) std::printf(" %d", daemon.queueOf(id));
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  daemon.stop();
  if (!metrics_dump_path.empty()) daemon.metrics().dumpFiles(metrics_dump_path);
  const auto& dstats = daemon.stats();
  std::printf("reconnects=%llu stale_transitions=%llu old_epoch_ignored=%llu\n",
              static_cast<unsigned long long>(dstats.reconnect_attempts.load()),
              static_cast<unsigned long long>(dstats.stale_transitions.load()),
              static_cast<unsigned long long>(dstats.old_epoch_ignored.load()));
  if (proxy) {
    const auto& pstats = proxy->stats();
    std::printf(
        "chaos: relayed=%llu dropped=%llu dup=%llu reordered=%llu "
        "truncated=%llu corrupted=%llu delayed=%llu\n",
        static_cast<unsigned long long>(pstats.frames_relayed.load()),
        static_cast<unsigned long long>(pstats.frames_dropped.load()),
        static_cast<unsigned long long>(pstats.frames_duplicated.load()),
        static_cast<unsigned long long>(pstats.frames_reordered.load()),
        static_cast<unsigned long long>(pstats.frames_truncated.load()),
        static_cast<unsigned long long>(pstats.frames_corrupted.load()),
        static_cast<unsigned long long>(pstats.frames_delayed.load()));
    proxy->stop();
  }
  std::printf("shut down cleanly\n");
  return 0;
}
