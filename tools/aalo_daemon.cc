// aalo_daemon — run a standalone Aalo daemon (one per machine) against a
// coordinator, optionally generating synthetic local traffic so the
// control plane can be exercised without a data plane.
//
//   aalo_daemon --coordinator-port P [--id N] [--delta MS]
//               [--synthetic-coflows N] [--rate BYTES_PER_SEC]
//               [--duration SEC]
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/client.h"
#include "runtime/daemon.h"
#include "util/units.h"

using namespace aalo;

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop = true; }

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: aalo_daemon --coordinator-port P [--id N] [--delta MS]\n"
               "                   [--synthetic-coflows N] [--rate B/S]\n"
               "                   [--duration SEC]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  runtime::DaemonConfig cfg;
  cfg.daemon_id = 1;
  int synthetic = 0;
  double rate = 10 * util::kMB;
  double duration = 0;  // 0 = run until signalled.

  for (int i = 1; i < argc; ++i) {
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--coordinator-port")) {
      cfg.coordinator_port =
          static_cast<std::uint16_t>(std::atoi(needValue("--coordinator-port")));
    } else if (!std::strcmp(argv[i], "--id")) {
      cfg.daemon_id = std::strtoull(needValue("--id"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--delta")) {
      cfg.sync_interval = std::atof(needValue("--delta")) * util::kMillisecond;
    } else if (!std::strcmp(argv[i], "--synthetic-coflows")) {
      synthetic = std::atoi(needValue("--synthetic-coflows"));
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = std::atof(needValue("--rate"));
    } else if (!std::strcmp(argv[i], "--duration")) {
      duration = std::atof(needValue("--duration"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }
  if (cfg.coordinator_port == 0) usage();

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  runtime::Daemon daemon(cfg);
  daemon.start();
  std::printf("aalo_daemon %llu connected to 127.0.0.1:%u\n",
              static_cast<unsigned long long>(cfg.daemon_id), cfg.coordinator_port);

  // Optional synthetic load: register N coflows and report bytes at the
  // given per-coflow rate so queue transitions can be observed live.
  std::vector<coflow::CoflowId> ids;
  if (synthetic > 0) {
    runtime::AaloClient client(cfg.coordinator_port);
    for (int c = 0; c < synthetic; ++c) ids.push_back(client.registerCoflow());
    std::printf("registered %d synthetic coflows\n", synthetic);
  }

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (std::size_t c = 0; c < ids.size(); ++c) {
      // Coflow c sends at rate * (c+1) to spread across queues.
      daemon.reportBytes(ids[c], rate * 0.1 * static_cast<double>(c + 1));
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (duration > 0 && elapsed >= duration) break;
    if (!ids.empty() && std::fmod(elapsed, 1.0) < 0.1) {
      std::printf("t=%.0fs epoch=%llu queues:", elapsed,
                  static_cast<unsigned long long>(daemon.lastEpoch()));
      for (const auto& id : ids) std::printf(" %d", daemon.queueOf(id));
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  daemon.stop();
  std::printf("shut down cleanly\n");
  return 0;
}
