// aalo_sim — replay an aalo-trace file under one or more schedulers.
//
//   aalo_sim --trace PATH [--sched LIST] [--ports-per-rack N]
//            [--oversubscription X] [--delta SEC] [--csv PATH] [--jobs N]
//            [--stats] [--metrics-dump PATH] [--deadline-slack X]
//            [--lp-bound] [--lp-check]
//
// PATH may be an aalo-trace file or a public coflow-benchmark trace
// (e.g. FB2010-1Hr-150-0.txt) — the format is auto-detected.
//
// LIST is comma-separated from: aalo, aalo-strict, aalo-adaptive, fair,
// varys, fifo, fifo-spill, fifo-lm, las, sampling, dcoflow,
// uncoordinated, gossip, clas, offline (default: "aalo,fair,varys").
// --scheduler is an alias for --sched.
//
// --deadline-slack X assigns every coflow a deadline of its isolated
// bottleneck time x (1 + uniform(0, X)) before the runs (for traces cut
// without dl= attributes). When the workload carries deadlines, the
// summary grows deadline-miss and admission-rejection columns.
//
// --lp-bound computes the offline LP-style lower bound on total CCT
// (sched/lp_bound.h) and reports each scheduler's total CCT and its
// distance from the bound (achieved / bound). --lp-check additionally
// exits non-zero if any scheduler lands below the bound — a soundness
// smoke used by scripts/ci.sh.
//
// Prints a per-scheduler summary; with --csv, writes one row per coflow
// per scheduler (scheduler,coflow,job,release,finish,cct,bytes,width).
//
// --jobs N runs the schedulers concurrently on N threads (0 = all
// hardware threads). Each run is independent, and results are reported in
// --sched order, so the output is identical to --jobs 1.
//
// --stats adds the incremental-engine counters to the summary table:
// allocate calls, reused allocations (rounds served from the installed
// rates via the scheduleEpoch handshake), completion-predictor rebuilds,
// calendar events processed (heap-predicted completions and sweep gates
// consumed), and heap re-keys (calendar entries pushed on rate changes).
//
// --metrics-dump writes the per-scheduler observability registry
// (Prometheus text, plus JSON at PATH.json) after the batch completes:
// rounds, allocation reuse, heap rebuilds, CCT histograms, and — for the
// D-CLAS schedulers — per-queue occupancy sampled at every allocation
// round.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/compare.h"
#include "obs/metrics.h"
#include "sched/adaptive.h"
#include "sched/clas.h"
#include "sched/dclas.h"
#include "sched/dcoflow.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/gossip.h"
#include "sched/las.h"
#include "sched/lp_bound.h"
#include "sched/offline_opt.h"
#include "sched/sampling.h"
#include "sched/uncoordinated.h"
#include "sched/varys.h"
#include "sim/batch.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/deadlines.h"
#include "workload/trace_io.h"

using namespace aalo;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: aalo_sim --trace PATH [--sched LIST] [--ports-per-rack N]\n"
               "                [--oversubscription X] [--delta SEC] [--csv PATH]\n"
               "                [--jobs N] [--stats] [--metrics-dump PATH]\n"
               "                [--deadline-slack X] [--lp-bound] [--lp-check]\n");
  std::exit(2);
}

/// Validated before the batch starts so an unknown name fails fast in the
/// main thread instead of exiting from a worker.
bool knownScheduler(const std::string& name) {
  static const char* const kNames[] = {
      "aalo", "aalo-strict", "aalo-adaptive", "fair",   "varys",
      "fifo", "fifo-spill",  "fifo-lm",       "las",    "sampling",
      "dcoflow", "uncoordinated", "gossip",   "clas",   "offline"};
  for (const char* const n : kNames) {
    if (name == n) return true;
  }
  return false;
}

std::unique_ptr<sim::Scheduler> makeScheduler(const std::string& name,
                                              const coflow::Workload& wl,
                                              double delta) {
  if (name == "aalo") {
    sched::DClasConfig cfg;
    cfg.sync_interval = delta;
    return std::make_unique<sched::DClasScheduler>(cfg);
  }
  if (name == "aalo-strict") {
    sched::DClasConfig cfg;
    cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    return std::make_unique<sched::DClasScheduler>(cfg);
  }
  if (name == "aalo-adaptive") {
    return std::make_unique<sched::AdaptiveDClasScheduler>(sched::AdaptiveConfig{});
  }
  if (name == "fair") return std::make_unique<sched::PerFlowFairScheduler>();
  if (name == "varys") return std::make_unique<sched::VarysScheduler>();
  if (name == "fifo") return std::make_unique<sched::FifoScheduler>();
  if (name == "fifo-spill") {
    return std::make_unique<sched::FifoScheduler>(sched::FifoConfig{true});
  }
  if (name == "fifo-lm") {
    util::Summary sizes;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) sizes.add(c.totalBytes());
    }
    sched::FifoLmConfig cfg;
    cfg.heavy_threshold = sizes.percentile(80);
    cfg.quantum = 2.0;
    return std::make_unique<sched::FifoLmScheduler>(cfg);
  }
  if (name == "las") {
    sched::LasConfig cfg;
    cfg.quantum = 2.0;
    return std::make_unique<sched::DecentralizedLasScheduler>(cfg);
  }
  if (name == "sampling") {
    return std::make_unique<sched::SamplingScheduler>(sched::SamplingConfig{});
  }
  if (name == "dcoflow") {
    return std::make_unique<sched::DCoflowScheduler>(sched::DCoflowConfig{});
  }
  if (name == "uncoordinated") {
    return std::make_unique<sched::UncoordinatedDClasScheduler>(sched::DClasConfig{},
                                                                2.0);
  }
  if (name == "gossip") {
    return std::make_unique<sched::GossipDClasScheduler>(sched::GossipConfig{});
  }
  if (name == "clas") {
    return std::make_unique<sched::ContinuousClasScheduler>(sched::ClasConfig{});
  }
  if (name == "offline") {
    return std::make_unique<sched::OfflineOrderScheduler>(
        sched::computeConcurrentOpenShopOrder(wl));
  }
  std::fprintf(stderr, "unknown scheduler '%s'\n", name.c_str());
  usage();
}

/// Folds a run's per-round queue samples into the registry: an occupancy
/// histogram and a non-empty-round counter per (scheduler, queue).
void bridgeQueueTelemetry(obs::Registry& registry, const std::string& scheduler,
                          const sched::DClasTelemetry& telemetry) {
  if (telemetry.samples().empty()) return;
  const std::size_t k = telemetry.samples().front().occupancy.size();
  for (std::size_t q = 0; q < k; ++q) {
    const std::string labels = "scheduler=\"" + scheduler + "\",queue=\"" +
                               std::to_string(q) + "\"";
    obs::LatencyHistogram& occupancy = registry.histogram(
        "aalo_sim_queue_occupancy",
        "Coflows resident in the D-CLAS queue, sampled every allocation round.",
        obs::HistogramOptions{.first_bound = 1.0, .growth = 2.0, .num_bounds = 12},
        labels);
    obs::Counter& nonempty = registry.counter(
        "aalo_sim_queue_nonempty_rounds_total",
        "Allocation rounds in which the D-CLAS queue held at least one coflow.",
        labels);
    for (const auto& sample : telemetry.samples()) {
      occupancy.observe(static_cast<double>(sample.occupancy[q]));
      if (sample.occupancy[q] > 0) nonempty.fetch_add(1);
    }
  }
}

/// Folds a sampling run's finish-time estimates into the registry:
/// mature/immature finish counters and a relative-error histogram.
void bridgeSamplingTelemetry(obs::Registry& registry, const std::string& scheduler,
                             const sched::SamplingTelemetry& telemetry) {
  if (telemetry.finishes.empty()) return;
  const std::string labels = "scheduler=\"" + scheduler + "\"";
  obs::Counter& mature = registry.counter(
      "aalo_sim_sampling_mature_finishes_total",
      "Coflows whose probe-based size estimate matured before they finished.",
      labels);
  obs::Counter& immature = registry.counter(
      "aalo_sim_sampling_immature_finishes_total",
      "Coflows that finished before all their probes completed (LAS fallback).",
      labels);
  obs::LatencyHistogram& error = registry.histogram(
      "aalo_sim_sampling_estimate_rel_error",
      "Relative error |estimate - actual| / actual of mature size estimates.",
      obs::HistogramOptions{.first_bound = 0.01, .growth = 2.0, .num_bounds = 12},
      labels);
  for (const sched::SamplingEstimate& f : telemetry.finishes) {
    if (!f.mature) {
      immature.fetch_add(1);
      continue;
    }
    mature.fetch_add(1);
    if (f.actual > 0) error.observe(std::fabs(f.estimated - f.actual) / f.actual);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string sched_list = "aalo,fair,varys";
  std::string csv_path;
  int ports_per_rack = 0;
  double oversubscription = 1.0;
  double delta = 0.0;
  int jobs = 1;
  bool stats = false;
  std::string metrics_dump_path;
  double deadline_slack = 0.0;
  bool lp_bound = false;
  bool lp_check = false;

  for (int i = 1; i < argc; ++i) {
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--trace")) {
      trace_path = needValue("--trace");
    } else if (!std::strcmp(argv[i], "--sched") ||
               !std::strcmp(argv[i], "--scheduler")) {
      sched_list = needValue("--sched");
    } else if (!std::strcmp(argv[i], "--csv")) {
      csv_path = needValue("--csv");
    } else if (!std::strcmp(argv[i], "--ports-per-rack")) {
      ports_per_rack = std::atoi(needValue("--ports-per-rack"));
    } else if (!std::strcmp(argv[i], "--oversubscription")) {
      oversubscription = std::atof(needValue("--oversubscription"));
    } else if (!std::strcmp(argv[i], "--delta")) {
      delta = std::atof(needValue("--delta"));
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = std::atoi(needValue("--jobs"));
    } else if (!std::strcmp(argv[i], "--stats")) {
      stats = true;
    } else if (!std::strcmp(argv[i], "--metrics-dump")) {
      metrics_dump_path = needValue("--metrics-dump");
    } else if (!std::strcmp(argv[i], "--deadline-slack")) {
      deadline_slack = std::atof(needValue("--deadline-slack"));
    } else if (!std::strcmp(argv[i], "--lp-bound")) {
      lp_bound = true;
    } else if (!std::strcmp(argv[i], "--lp-check")) {
      lp_bound = true;
      lp_check = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage();
    }
  }
  if (trace_path.empty()) usage();

  // Auto-detect format: the public coflow-benchmark traces start with
  // "<numRacks> <numJobs>", ours with "aalo-trace 1".
  coflow::Workload wl;
  {
    std::ifstream probe(trace_path);
    std::string first;
    probe >> first;
    if (first == "aalo-trace") {
      wl = workload::readTraceFile(trace_path);
    } else {
      wl = workload::readCoflowBenchmarkTraceFile(trace_path);
      std::fprintf(stderr, "detected coflow-benchmark format (%d racks)\n",
                   wl.num_ports);
    }
  }
  if (deadline_slack > 0) {
    workload::DeadlineConfig dl;
    dl.slack = deadline_slack;
    workload::assignDeadlines(wl, dl);
  }
  bool has_deadlines = false;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) has_deadlines = has_deadlines || c.deadline > 0;
  }
  fabric::FabricConfig fc{wl.num_ports, util::kGbps};
  fc.rack.ports_per_rack = ports_per_rack;
  fc.rack.oversubscription = oversubscription;
  sched::LpBoundResult bound;
  if (lp_bound) {
    bound = sched::computeCctLowerBound(wl, fc);
    std::fprintf(stderr, "LP lower bound on total CCT: %s (%zu coflows)\n",
                 util::formatSeconds(bound.total_cct).c_str(), bound.num_coflows);
  }

  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    if (!csv) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    csv << "scheduler,coflow,job,release,finish,cct,bytes,width\n";
  }

  std::vector<std::string> sched_names;
  {
    std::stringstream names(sched_list);
    std::string name;
    while (std::getline(names, name, ',')) {
      if (name.empty()) continue;
      if (!knownScheduler(name)) {
        std::fprintf(stderr, "unknown scheduler '%s'\n", name.c_str());
        usage();
      }
      sched_names.push_back(name);
    }
  }

  // One BatchJob per scheduler; --jobs threads run them concurrently.
  // Results come back in --sched order, so CSV and table output match a
  // serial run exactly.
  // With --metrics-dump every job gets a telemetry sink (deque: stable
  // addresses). Only the D-CLAS schedulers actually feed theirs; each
  // worker thread touches only its own sink.
  obs::Registry registry;
  std::deque<sched::DClasTelemetry> telemetry;
  std::deque<sched::SamplingTelemetry> sampling_telemetry;
  std::vector<sim::BatchJob> batch;
  for (const std::string& name : sched_names) {
    sched::DClasTelemetry* sink = nullptr;
    sched::SamplingTelemetry* sampling_sink = nullptr;
    if (!metrics_dump_path.empty()) {
      telemetry.emplace_back();
      sink = &telemetry.back();
      sampling_telemetry.emplace_back();
      sampling_sink = &sampling_telemetry.back();
    }
    sim::BatchJob job;
    job.label = name;
    job.workload = &wl;
    job.fabric = fc;
    job.make_scheduler = [&wl, name, delta, sink, sampling_sink] {
      auto scheduler = makeScheduler(name, wl, delta);
      if (sink != nullptr) {
        if (auto* dclas = dynamic_cast<sched::DClasScheduler*>(scheduler.get())) {
          dclas->setTelemetry(sink);
        }
      }
      if (sampling_sink != nullptr) {
        if (auto* sampling =
                dynamic_cast<sched::SamplingScheduler*>(scheduler.get())) {
          sampling->setTelemetry(sampling_sink);
        }
      }
      return scheduler;
    };
    batch.push_back(std::move(job));
  }
  sim::BatchOptions bopts;
  bopts.num_threads = jobs;
  if (!metrics_dump_path.empty()) bopts.metrics = &registry;
  bopts.on_done = [](std::size_t /*index*/, const sim::BatchJob& /*job*/,
                     const sim::SimResult& result, double wall) {
    std::fprintf(stderr, "finished %s (%.1fs wall)\n", result.scheduler.c_str(), wall);
  };
  const std::vector<sim::SimResult> results = sim::runBatch(batch, bopts);

  std::vector<std::string> columns = {"scheduler", "avg CCT", "p95 CCT", "makespan",
                                      "rounds"};
  if (has_deadlines) {
    columns.insert(columns.end(), {"dl miss", "rejected"});
  }
  if (lp_bound) {
    columns.insert(columns.end(), {"total CCT", "vs LP"});
  }
  if (stats) {
    columns.insert(columns.end(), {"allocs", "reused", "rebuilds", "events", "rekeys"});
  }
  util::Table table(columns);
  bool bound_violated = false;
  for (const auto& result : results) {
    util::Summary cct;
    for (const auto& rec : result.coflows) {
      cct.add(rec.cct());
      if (csv.is_open()) {
        csv << result.scheduler << ',' << rec.id.toString() << ',' << rec.job << ','
            << rec.release << ',' << rec.finish << ',' << rec.cct() << ','
            << rec.bytes << ',' << rec.width << '\n';
      }
    }
    std::vector<std::string> row = {result.scheduler, util::formatSeconds(cct.mean()),
                                    util::formatSeconds(cct.percentile(95)),
                                    util::formatSeconds(result.makespan),
                                    std::to_string(result.allocation_rounds)};
    if (has_deadlines) {
      char miss[64];
      std::snprintf(miss, sizeof(miss), "%zu/%zu (%.1f%%)", result.deadline_misses,
                    result.deadline_coflows, 100.0 * result.deadlineMissRate());
      row.push_back(miss);
      row.push_back(std::to_string(result.rejected_coflows));
    }
    if (lp_bound) {
      const double ratio = sched::boundRatio(result.totalCct(), bound);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx", ratio);
      row.push_back(util::formatSeconds(result.totalCct()));
      row.push_back(buf);
      // Fluid event batching can shave at most O(eps) per coflow; any
      // bigger shortfall means the bound (or the engine) is unsound.
      if (ratio < 1.0 - 1e-6) {
        bound_violated = true;
        std::fprintf(stderr, "BOUND VIOLATION: %s total CCT %.9f < LP bound %.9f\n",
                     result.scheduler.c_str(), result.totalCct(), bound.total_cct);
      }
    }
    if (stats) {
      row.push_back(std::to_string(result.allocate_calls));
      row.push_back(std::to_string(result.reused_allocations));
      row.push_back(std::to_string(result.heap_rebuilds));
      row.push_back(std::to_string(result.events_processed));
      row.push_back(std::to_string(result.heap_rekeys));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  if (lp_check && bound_violated) return 1;

  if (!metrics_dump_path.empty()) {
    for (std::size_t j = 0; j < results.size(); ++j) {
      bridgeQueueTelemetry(registry, results[j].scheduler, telemetry[j]);
      bridgeSamplingTelemetry(registry, results[j].scheduler, sampling_telemetry[j]);
    }
    registry.dumpFiles(metrics_dump_path);
    std::fprintf(stderr, "metrics written to %s and %s.json\n",
                 metrics_dump_path.c_str(), metrics_dump_path.c_str());
  }
  return 0;
}
