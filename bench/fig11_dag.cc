// Figure 11: TPC-DS query DAGs from the Cloudera benchmark. Aalo runs
// pipelined DAGs with dependency-aware CoflowIds; Varys needs barriers
// between stages; per-flow fairness ignores structure entirely.
#include <map>

#include "bench/common.h"
#include "workload/tpcds.h"
#include "workload/transforms.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 11: job-level communication times for TPC-DS query DAGs",
      "Aalo outperforms both baselines on multi-level DAGs: ~1.7x over "
      "per-flow fairness, ~3.7x over Varys-with-barriers on average");

  workload::TpcdsConfig cfg;
  // Cluster sized so that concurrent queries actually contend (the
  // Cloudera benchmark ran all 20 queries against one warehouse).
  cfg.num_ports = 20;
  cfg.mean_interarrival = 3.0;
  cfg.base_stage_bytes = 2 * util::kGB;
  const auto pipelined = workload::generateTpcdsWorkload(cfg);
  const auto barriered = workload::addBarriersToDags(pipelined);
  const auto fc = bench::standardFabric(cfg.num_ports);

  auto aalo = bench::makeAalo();
  const auto aalo_result = bench::run(pipelined, fc, *aalo, "aalo pipelined");
  auto fair = bench::makeFair();
  const auto fair_result = bench::run(pipelined, fc, *fair, "fair pipelined");
  auto varys = bench::makeVarys();
  const auto varys_result = bench::run(barriered, fc, *varys, "varys barriers");

  std::map<coflow::JobId, const sim::JobRecord*> aalo_jobs;
  std::map<coflow::JobId, const sim::JobRecord*> fair_jobs;
  std::map<coflow::JobId, const sim::JobRecord*> varys_jobs;
  for (const auto& j : aalo_result.jobs) aalo_jobs[j.id] = &j;
  for (const auto& j : fair_result.jobs) fair_jobs[j.id] = &j;
  for (const auto& j : varys_result.jobs) varys_jobs[j.id] = &j;

  const auto& queries = workload::clouderaBenchmarkQueries();
  util::Table table({"query (critical path)", "fair / aalo", "varys / aalo"});
  double fair_sum = 0;
  double varys_sum = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto id = static_cast<coflow::JobId>(q);
    const double aalo_t = aalo_jobs.at(id)->commTime();
    const double fair_ratio = fair_jobs.at(id)->commTime() / aalo_t;
    const double varys_ratio = varys_jobs.at(id)->commTime() / aalo_t;
    fair_sum += fair_ratio;
    varys_sum += varys_ratio;
    table.addRow({queries[q].name + " (" +
                      std::to_string(workload::criticalPathLength(queries[q])) + ")",
                  util::Table::num(fair_ratio, 2) + "x",
                  util::Table::num(varys_ratio, 2) + "x"});
  }
  const double n = static_cast<double>(queries.size());
  table.addRow({"Overall (avg)", util::Table::num(fair_sum / n, 2) + "x",
                util::Table::num(varys_sum / n, 2) + "x"});
  table.print(std::cout);
  std::printf("\n(normalized job communication time w.r.t. Aalo; >1 = Aalo faster)\n");
  return 0;
}
