// Figure 7: CDFs of coflow completion times for Aalo, Varys, and per-flow
// fairness (EC2-scale run; log-spaced CCT probe points).
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 7: CCT distributions",
      "Aalo matches or beats fair sharing across the whole range "
      "(milliseconds to hours); Aalo beats Varys on sub-200ms coflows "
      "(no coordination overhead) and trails it in the 200ms-30s range");

  const auto wl = bench::standardWorkload();
  const auto fc = bench::standardFabric();

  auto aalo = bench::makeAalo();
  auto varys = bench::makeVarys();
  auto fair = bench::makeFair();
  std::vector<sim::SimResult> results;
  results.push_back(bench::run(wl, fc, *aalo, aalo->name()));
  results.push_back(bench::run(wl, fc, *varys, varys->name()));
  results.push_back(bench::run(wl, fc, *fair, fair->name()));

  std::printf("\nFraction of coflows with CCT <= t:\n");
  bench::printCctCdfs(results, 14);

  // The paper explains Varys's mid-range edge via coflow width (few-flow
  // coflows suffer when interleaved with very wide ones) — quantify the
  // tail percentiles to make the crossover visible.
  std::printf("\nCCT percentiles (seconds):\n");
  util::Table table({"percentile", "aalo", "varys", "fair"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::vector<std::string> row = {util::Table::num(p, 0) + "th"};
    for (const auto& r : results) {
      util::Summary s;
      for (const auto& rec : r.coflows) s.add(rec.cct());
      row.push_back(util::Table::num(s.percentile(p), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
