// Appendix B: continuous vs discretized prioritization. N identical
// coflows of size S in [Q_k^lo, Q_k^hi) arrive together.
//
// Continuous CLAS degenerates into byte-by-byte round-robin:
//   T_cont ~ N^2 f(S).
// D-CLAS (strict priorities, the appendix's model) fair-shares only while
// the coflows cascade down to queue k, then serves them FIFO:
//   T_disc ~ N^2 f(Q_k^lo) + N(N+1)/2 f(S - Q_k^lo).
// The normalized total T_cont/T_disc approaches 2x from 1x as S grows
// from Q_k^lo toward Q_k^hi. The paper's deployed weighted-queue variant
// lands between the two (it trades a little of this gain for starvation
// freedom) — shown in the last column.
#include "bench/common.h"

using namespace aalo;

namespace {

coflow::Workload identicalCoflows(int n, util::Bytes size, int ports) {
  coflow::Workload wl;
  wl.num_ports = ports;
  for (int k = 0; k < n; ++k) {
    coflow::JobSpec job;
    job.id = k;
    job.arrival = 0;
    coflow::CoflowSpec spec;
    spec.id = {k, 0};
    spec.flows.push_back({0, 1, size, 0});  // All contend on one port pair.
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  return wl;
}

double totalCct(const sim::SimResult& r) {
  double total = 0;
  for (const auto& rec : r.coflows) total += rec.cct();
  return total;
}

}  // namespace

int main() {
  bench::header(
      "Appendix B: continuous vs discretized prioritization",
      "T_cont/T_disc grows from ~1x at S = Q_k^lo toward 2x at S -> "
      "Q_k^hi (exactly 2 in the N -> infinity, S >> Q_k^lo limit)");

  constexpr int kN = 8;
  const fabric::FabricConfig fc{2, 1e6};  // 1 MB/s; MB == seconds.

  auto runOnce = [&](int n, double s, bool strict) {
    const auto wl = identicalCoflows(n, s, 2);
    sched::DClasConfig cfg;  // Queue k = [10MB, 100MB) with defaults.
    if (strict) cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    sched::DClasScheduler dclas(cfg);
    return totalCct(sim::runSimulation(wl, fc, dclas));
  };
  auto runCont = [&](int n, double s) {
    const auto wl = identicalCoflows(n, s, 2);
    sched::ClasConfig cfg;
    cfg.tie_window = 1024;  // Identical coflows stay tied: round-robin.
    cfg.quantum = 2.0;
    sched::ContinuousClasScheduler clas(cfg);
    return totalCct(sim::runSimulation(wl, fc, clas));
  };

  std::printf("\nSweep S across queue k = [10MB, 100MB), N = %d coflows:\n", kN);
  util::Table table({"S", "T_cont", "T_disc (strict)", "ratio",
                     "model", "ratio (weighted)"});
  // Start just above Q_k^lo: at exactly 10 MB a coflow completes the
  // instant it would be demoted, which degenerates to plain FIFO.
  for (const double s : {12e6, 20e6, 40e6, 60e6, 80e6, 99e6}) {
    const double cont = runCont(kN, s);
    const double strict = runOnce(kN, s, true);
    const double weighted = runOnce(kN, s, false);
    const double smb = s / 1e6;
    const double model = (kN * kN * smb) /
                         (kN * kN * 10.0 + kN * (kN + 1) / 2.0 * (smb - 10.0));
    table.addRow({util::formatBytes(s), util::Table::num(cont, 0),
                  util::Table::num(strict, 0),
                  util::Table::num(cont / strict, 2) + "x",
                  util::Table::num(model, 2) + "x",
                  util::Table::num(cont / weighted, 2) + "x"});
  }
  table.print(std::cout);

  std::printf("\nLimit behaviour: N sweep at S = 99 MB (model -> 2S/(S+Q_k^lo)):\n");
  util::Table limit({"N", "T_cont/T_disc (strict)"});
  for (const int n : {2, 4, 8, 16, 32}) {
    limit.addRow({std::to_string(n),
                  util::Table::num(runCont(n, 99e6) / runOnce(n, 99e6, true), 2) + "x"});
  }
  limit.print(std::cout);
  return 0;
}
