// §8 extensions ("Discussion" / future work), implemented and measured:
//  1. In-network bottlenecks: Aalo on an oversubscribed (rack-aware)
//     fabric — "Aalo performs well even if the network is not
//     non-blocking".
//  2. Adaptive queue thresholds via online quantile tracking —
//     "dynamically changing these parameters based on online learning".
//  3. Decentralizing Aalo with Push-Sum-style gossip aggregation —
//     gossip frequency ladders between fully uncoordinated and
//     coordinated scheduling.
#include "bench/common.h"
#include "sched/adaptive.h"
#include "sched/gossip.h"
#include "workload/facebook.h"
#include "workload/transforms.h"

using namespace aalo;

int main() {
  bench::header(
      "§8 extensions: oversubscription, adaptive thresholds, gossip",
      "(1) Aalo's edge over fairness survives rack oversubscription; "
      "(2) adaptive thresholds recover the defaults' performance on a "
      "100x-shifted workload; (3) more gossip closes most of the gap "
      "between uncoordinated and coordinated Aalo");

  // ---- 1. Oversubscribed fabric -----------------------------------------
  {
    std::printf("\n1. Rack oversubscription (40 ports, 8 per rack):\n");
    const auto wl = bench::standardWorkload(200, 40, 88);
    util::Table table({"oversubscription", "aalo avg CCT",
                       "improvement over fair"});
    for (const double oversub : {1.0, 2.0, 4.0}) {
      fabric::FabricConfig fc = bench::standardFabric();
      fc.rack.ports_per_rack = 8;
      fc.rack.oversubscription = oversub;
      auto aalo = bench::makeAalo();
      auto fair = bench::makeFair();
      const auto aalo_result = bench::run(wl, fc, *aalo, "aalo oversub");
      const auto fair_result = bench::run(wl, fc, *fair, "fair oversub");
      util::Summary s;
      for (const auto& rec : aalo_result.coflows) s.add(rec.cct());
      table.addRow({util::Table::num(oversub, 0) + ":1",
                    util::formatSeconds(s.mean()),
                    util::Table::num(
                        analysis::normalizedCct(fair_result, aalo_result).avg, 2) +
                        "x"});
    }
    table.print(std::cout);
  }

  // ---- 2. Adaptive thresholds -------------------------------------------
  {
    std::printf("\n2. Adaptive thresholds on a 100x size-shifted workload:\n");
    // Default D-CLAS expects 10MB-scale smalls; this trace's coflows are
    // ~100x bigger, so the fixed ladder tops out far too early.
    workload::FacebookConfig cfg;
    cfg.num_jobs = 200;
    cfg.num_ports = 40;
    cfg.seed = 17;
    cfg.mean_interarrival = 2.0;
    cfg.max_flow_bytes = 100 * util::kGB;
    auto wl = workload::generateFacebookWorkload(cfg);
    for (auto& job : wl.jobs) {
      for (auto& c : job.coflows) {
        for (auto& f : c.flows) f.bytes *= 100.0;
      }
    }
    const auto fc = bench::standardFabric();

    auto fixed = bench::makeAalo();
    const auto fixed_result = bench::run(wl, fc, *fixed, "fixed defaults");
    sched::AdaptiveConfig acfg;
    sched::AdaptiveDClasScheduler adaptive(acfg);
    const auto adaptive_result = bench::run(wl, fc, adaptive, "adaptive");
    auto fair = bench::makeFair();
    const auto fair_result = bench::run(wl, fc, *fair, "per-flow fair");

    util::Table table({"variant", "avg CCT", "improvement over fair"});
    for (const auto* r : {&fixed_result, &adaptive_result}) {
      util::Summary s;
      for (const auto& rec : r->coflows) s.add(rec.cct());
      table.addRow({r->scheduler, util::formatSeconds(s.mean()),
                    util::Table::num(analysis::normalizedCct(fair_result, *r).avg, 2) +
                        "x"});
    }
    table.print(std::cout);
    std::printf("(adaptive refits: %zu)\n", adaptive.refits());
  }

  // ---- 3. Gossip ladder ---------------------------------------------------
  {
    std::printf("\n3. Gossip-based decentralization ladder:\n");
    const auto wl = bench::standardWorkload(150, 40, 44);
    const auto fc = bench::standardFabric();
    auto fair = bench::makeFair();
    const auto fair_result = bench::run(wl, fc, *fair, "per-flow fair");

    util::Table table({"coordination", "improvement over fair (avg CCT)"});
    auto addRow = [&](const std::string& label, const sim::SimResult& r) {
      table.addRow({label,
                    util::Table::num(analysis::normalizedCct(fair_result, r).avg, 2) +
                        "x"});
    };

    auto uncoordinated = bench::makeUncoordinated();
    addRow("none (local only)",
           bench::run(wl, fc, *uncoordinated, "uncoordinated"));
    for (const double interval : {5.0, 1.0, 0.2}) {
      sched::GossipConfig gcfg;
      gcfg.round_interval = interval;
      sched::GossipDClasScheduler gossip(gcfg);
      addRow("gossip every " + util::formatSeconds(interval),
             bench::run(wl, fc, gossip, "gossip " + util::formatSeconds(interval)));
    }
    auto aalo = bench::makeAalo();
    addRow("central coordinator", bench::run(wl, fc, *aalo, "aalo"));
    table.print(std::cout);
  }

  // ---- 4. Task failures & speculation (§5.2) -----------------------------
  {
    std::printf("\n4. Task failures / speculative restarts (§5.2):\n");
    const auto fc = bench::standardFabric();
    util::Table table({"failure rate", "restarted flows", "aalo avg CCT",
                       "improvement over fair"});
    for (const double rate : {0.0, 0.1, 0.3}) {
      auto wl = bench::standardWorkload(150, 40, 66);
      workload::FailureConfig fcfg;
      fcfg.failure_probability = rate;
      const std::size_t failures = workload::injectTaskFailures(wl, fcfg);
      auto aalo = bench::makeAalo();
      auto fair = bench::makeFair();
      const auto aalo_result = bench::run(wl, fc, *aalo, "aalo failures");
      const auto fair_result = bench::run(wl, fc, *fair, "fair failures");
      util::Summary s;
      for (const auto& rec : aalo_result.coflows) s.add(rec.cct());
      table.addRow({util::Table::num(100 * rate, 0) + "%", std::to_string(failures),
                    util::formatSeconds(s.mean()),
                    util::Table::num(
                        analysis::normalizedCct(fair_result, aalo_result).avg, 2) +
                        "x"});
    }
    table.print(std::cout);
    std::printf("(restarts only add attained service, so Aalo needs no special\n"
                " handling — its edge over fairness is stable across failure rates)\n");
  }
  return 0;
}
