// Tables 2 and 3 (+ Table 4): workload calibration check. The synthetic
// Facebook-like trace must reproduce the paper's published marginals.
#include <map>

#include "bench/common.h"
#include "workload/transforms.h"

using namespace aalo;

int main() {
  bench::header("Tables 2-4: workload composition",
                "jobs 61/13/14/12 % by comm fraction; coflows 52/16/15/17 % by "
                "bin with 0.01/0.67/0.22/99.10 % of bytes; waves 100 | 90/10 | "
                "81/9/4/6 %");

  const auto wl = bench::standardWorkload(4000, 40, 7);

  // ---- Table 2: jobs binned by time spent in communication --------------
  {
    int bands[4] = {0, 0, 0, 0};
    for (const auto& job : wl.jobs) {
      const double comm =
          workload::isolatedBottleneckSeconds(job.coflows[0], util::kGbps);
      const double frac = comm / (comm + job.compute_time);
      bands[analysis::commBand(frac)]++;
    }
    util::Table table({"shuffle duration", "% of jobs (paper)", "% of jobs (measured)"});
    const char* labels[4] = {"< 25%", "25-49%", "50-74%", ">= 75%"};
    const double paper[4] = {61, 13, 14, 12};
    for (int b = 0; b < 4; ++b) {
      table.addRow({labels[b], util::Table::num(paper[b], 0),
                    util::Table::num(100.0 * bands[b] / double(wl.jobs.size()), 1)});
    }
    std::printf("\nTable 2 — jobs by communication fraction:\n");
    table.print(std::cout);
  }

  // ---- Table 3: coflow bins ----------------------------------------------
  {
    std::map<int, int> counts;
    std::map<int, double> bytes;
    double total_bytes = 0;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) {
        const int bin =
            static_cast<int>(workload::classifyCoflow(c.maxFlowBytes(), c.width()));
        counts[bin]++;
        bytes[bin] += c.totalBytes();
        total_bytes += c.totalBytes();
      }
    }
    util::Table table({"coflow bin", "% coflows (paper)", "% coflows (measured)",
                       "% bytes (paper)", "% bytes (measured)"});
    const char* labels[4] = {"1 (SN)", "2 (LN)", "3 (SW)", "4 (LW)"};
    const double paper_counts[4] = {52, 16, 15, 17};
    const double paper_bytes[4] = {0.01, 0.67, 0.22, 99.10};
    const double n = static_cast<double>(wl.coflowCount());
    for (int b = 1; b <= 4; ++b) {
      table.addRow({labels[b - 1], util::Table::num(paper_counts[b - 1], 0),
                    util::Table::num(100.0 * counts[b] / n, 1),
                    util::Table::num(paper_bytes[b - 1], 2),
                    util::Table::num(100.0 * bytes[b] / total_bytes, 2)});
    }
    std::printf("\nTable 3 — coflows by length (Short/Long) and width (Narrow/Wide):\n");
    table.print(std::cout);
  }

  // ---- Table 4: wave counts ----------------------------------------------
  {
    std::printf("\nTable 4 — coflows binned by number of waves:\n");
    util::Table table({"max waves", "1 wave", "2 waves", "3 waves", "4 waves"});
    for (const int max_waves : {1, 2, 4}) {
      auto waved = wl;
      workload::MultiWaveConfig mw;
      mw.max_waves = max_waves;
      workload::applyMultiWave(waved, mw);
      const auto hist = workload::waveHistogram(waved, 4);
      std::vector<std::string> row = {std::to_string(max_waves)};
      for (int w = 0; w < 4; ++w) {
        row.push_back(util::Table::num(100.0 * hist[static_cast<std::size_t>(w)], 1) + "%");
      }
      table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::printf("(paper: 100|-|-|- ; 90|10|-|- ; 81|9|4|6; single-sender coflows\n"
                " cannot be staggered, so measured 1-wave mass runs slightly high)\n");
  }
  return 0;
}
