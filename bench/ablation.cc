// Ablations of Aalo's design choices (DESIGN.md §5):
//  1. weighted fair vs strict priority across queues
//  2. Varys admission overhead (the cost the paper attributes to full
//     centralization for tiny coflows)
//  3. queue-weight schemes
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Ablation: D-CLAS design choices",
      "weighted queues trade a little average CCT for starvation freedom; "
      "strict priority is marginally better on average but unboundedly "
      "worse at the tail for demoted coflows; Varys's centralized "
      "admission delay hurts small coflows most");

  const auto wl = bench::standardWorkload(250, 40, 77);
  const auto fc = bench::standardFabric();

  auto weighted = bench::makeAalo();
  const auto weighted_result = bench::run(wl, fc, *weighted, "aalo weighted");

  // 1. Strict priority across queues.
  {
    sched::DClasConfig cfg;
    cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    auto strict = bench::makeAaloWith(cfg);
    const auto strict_result = bench::run(wl, fc, *strict, "aalo strict");

    util::Table table({"policy", "avg CCT", "p95 CCT", "p99 CCT", "max CCT"});
    for (const auto* result : {&weighted_result, &strict_result}) {
      util::Summary s;
      for (const auto& rec : result->coflows) s.add(rec.cct());
      table.addRow({result->scheduler, util::formatSeconds(s.mean()),
                    util::formatSeconds(s.percentile(95)),
                    util::formatSeconds(s.percentile(99)),
                    util::formatSeconds(s.max())});
    }
    std::printf("\n1. Weighted fair vs strict priority across queues:\n");
    table.print(std::cout);
  }

  // 2. Varys admission delay.
  {
    std::printf("\n2. Varys centralized admission overhead (bin-1 = short/narrow "
                "coflows):\n");
    util::Table table({"admission delay", "bin1 avg CCT", "ALL avg CCT",
                       "normalized vs aalo (ALL)"});
    for (const double delay : {0.0, 0.1, 0.5}) {
      sched::VarysScheduler varys{sched::VarysConfig{delay}};
      const auto result =
          bench::run(wl, fc, varys, "varys delay=" + util::formatSeconds(delay));
      util::Summary bin1;
      util::Summary all;
      for (const auto& rec : result.coflows) {
        all.add(rec.cct());
        if (analysis::coflowBin(rec) == 1) bin1.add(rec.cct());
      }
      table.addRow({util::formatSeconds(delay), util::formatSeconds(bin1.mean()),
                    util::formatSeconds(all.mean()),
                    util::Table::num(
                        analysis::normalizedCct(result, weighted_result).avg, 2) +
                        "x"});
    }
    table.print(std::cout);
  }

  // 3. Queue-weight schemes: K-i+1 (paper) vs exponential decay vs equal.
  {
    std::printf("\n3. Queue-weight scheme (improvement over per-flow fairness):\n");
    auto fair = bench::makeFair();
    const auto fair_result = bench::run(wl, fc, *fair, "per-flow fair");
    util::Table table({"weights", "improvement over fair (avg CCT)"});
    table.addRow({"K-i+1 (paper)",
                  util::Table::num(
                      analysis::normalizedCct(fair_result, weighted_result).avg, 2) +
                      "x"});
    sched::DClasConfig strict_cfg;
    strict_cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    auto strict = bench::makeAaloWith(strict_cfg);
    const auto strict_result = bench::run(wl, fc, *strict, "strict (≈ weight ∞)");
    table.addRow({"strict priority",
                  util::Table::num(
                      analysis::normalizedCct(fair_result, strict_result).avg, 2) +
                      "x"});
    table.print(std::cout);
  }
  return 0;
}
