// Figure 9: simulated CCT distributions for Aalo, Varys, per-flow
// fairness, and uncoordinated non-clairvoyant coflow scheduling.
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 9: simulated CCT distributions",
      "Aalo tracks Varys closely; the uncoordinated scheduler's CDF is "
      "shifted far right (orders of magnitude at the tail); Varys ~1.25x "
      "ahead only for coflows longer than 10s");

  const auto wl = bench::standardWorkload(300, 40, 11);
  const auto fc = bench::standardFabric();

  std::vector<sim::SimResult> results;
  auto aalo = bench::makeAalo();
  results.push_back(bench::run(wl, fc, *aalo, aalo->name()));
  auto varys = bench::makeVarys();
  results.push_back(bench::run(wl, fc, *varys, varys->name()));
  auto fair = bench::makeFair();
  results.push_back(bench::run(wl, fc, *fair, fair->name()));
  auto uncoordinated = bench::makeUncoordinated();
  results.push_back(bench::run(wl, fc, *uncoordinated, uncoordinated->name()));

  std::printf("\nFraction of coflows with CCT <= t:\n");
  bench::printCctCdfs(results, 14);

  // Varys-vs-Aalo for long coflows (paper: 1.25x for CCTs > 10s).
  const auto& aalo_r = results[0];
  const auto& varys_r = results[1];
  util::Summary aalo_long;
  util::Summary varys_long;
  for (std::size_t i = 0; i < aalo_r.coflows.size(); ++i) {
    if (aalo_r.coflows[i].cct() > 10.0) {
      aalo_long.add(aalo_r.coflows[i].cct());
      varys_long.add(varys_r.coflows[i].cct());
    }
  }
  if (!aalo_long.empty()) {
    std::printf("\ncoflows with CCT > 10s under Aalo: %zu; avg CCT ratio "
                "aalo/varys = %.2fx (paper: ~1.25x)\n",
                aalo_long.count(), aalo_long.mean() / varys_long.mean());
  }
  return 0;
}
