// Figure 13: coflow size distributions beyond heavy tails. (a) uniform
// U(0, x) total sizes; (b) all coflows the same size, probed just below
// and above Aalo's queue thresholds. Averages over ten seeded runs of 100
// coflows, as in the paper.
#include "bench/common.h"
#include "workload/distributions.h"

using namespace aalo;

namespace {

struct Averaged {
  double vs_fair = 0;       // Weighted-queue Aalo (deployed default).
  double vs_fifo = 0;
  double strict_fair = 0;   // Strict-priority D-CLAS (no starvation guard).
  double strict_fifo = 0;
};

Averaged runScenario(const std::function<coflow::Workload(std::uint64_t seed)>& make,
                     fabric::FabricConfig fc) {
  Averaged acc;
  constexpr int kRuns = 5;
  for (int r = 0; r < kRuns; ++r) {
    const auto wl = make(100 + static_cast<std::uint64_t>(r));
    auto aalo = bench::makeAalo();
    sched::DClasConfig strict_cfg;
    strict_cfg.policy = sched::DClasConfig::QueuePolicy::kStrictPriority;
    auto strict = bench::makeAaloWith(strict_cfg);
    auto fair = bench::makeFair();
    auto fifo = bench::makeFifo();
    const auto aalo_result = sim::runSimulation(wl, fc, *aalo);
    const auto strict_result = sim::runSimulation(wl, fc, *strict);
    const auto fair_result = sim::runSimulation(wl, fc, *fair);
    const auto fifo_result = sim::runSimulation(wl, fc, *fifo);
    acc.vs_fair += analysis::normalizedCct(fair_result, aalo_result).avg;
    acc.vs_fifo += analysis::normalizedCct(fifo_result, aalo_result).avg;
    acc.strict_fair += analysis::normalizedCct(fair_result, strict_result).avg;
    acc.strict_fifo += analysis::normalizedCct(fifo_result, strict_result).avg;
  }
  acc.vs_fair /= kRuns;
  acc.vs_fifo /= kRuns;
  acc.strict_fair /= kRuns;
  acc.strict_fifo /= kRuns;
  return acc;
}

}  // namespace

int main() {
  bench::header(
      "Figure 13: uniform and fixed coflow size distributions",
      "Aalo matches or outperforms both per-flow fairness and "
      "non-preemptive FIFO in all cases: it emulates FIFO while coflows "
      "are below Q1^hi and the efficient scheduler as they grow");

  const auto fc = bench::standardFabric();

  std::printf("\nFigure 13a — coflow sizes ~ U(0, max):\n");
  util::Table uniform({"max coflow size", "fair / aalo", "fifo / aalo",
                       "fair / strict", "fifo / strict"});
  for (const double max_size : {1e7, 1e8, 1e9, 1e10, 1e11, 1e12}) {
    const auto avg = runScenario(
        [max_size](std::uint64_t seed) {
          workload::SizeDistributionConfig cfg;
          cfg.seed = seed;
          // Offered load tracks coflow size (~40% utilization) so that
          // every scenario has comparable contention.
          cfg.mean_interarrival = std::max(0.3, max_size / 2 / 2.5e9);
          return workload::generateUniformSizeWorkload(cfg, max_size);
        },
        fc);
    uniform.addRow({util::formatBytes(max_size),
                    util::Table::num(avg.vs_fair, 2) + "x",
                    util::Table::num(avg.vs_fifo, 2) + "x",
                    util::Table::num(avg.strict_fair, 2) + "x",
                    util::Table::num(avg.strict_fifo, 2) + "x"});
    std::fprintf(stderr, "  [uniform %-8s] done\n", util::formatBytes(max_size).c_str());
  }
  uniform.print(std::cout);

  std::printf("\nFigure 13b — fixed-size coflows around queue thresholds:\n");
  util::Table fixed({"coflow size", "fair / aalo", "fifo / aalo",
                     "fair / strict", "fifo / strict"});
  const std::pair<const char*, double> sizes[] = {
      {"10MB-", 8e6},   {"10MB+", 12e6},  {"1GB-", 0.8e9},
      {"1GB+", 1.2e9},  {"100GB-", 0.8e11}, {"100GB+", 1.2e11}};
  for (const auto& [label, size] : sizes) {
    const auto avg = runScenario(
        [size](std::uint64_t seed) {
          workload::SizeDistributionConfig cfg;
          cfg.seed = seed;
          cfg.mean_interarrival = std::max(0.3, size / 2.5e9);
          return workload::generateFixedSizeWorkload(cfg, size);
        },
        fc);
    fixed.addRow({label, util::Table::num(avg.vs_fair, 2) + "x",
                  util::Table::num(avg.vs_fifo, 2) + "x",
                  util::Table::num(avg.strict_fair, 2) + "x",
                  util::Table::num(avg.strict_fifo, 2) + "x"});
    std::fprintf(stderr, "  [fixed %-8s] done\n", label);
  }
  fixed.print(std::cout);
  std::printf(
      "\n(>= 1.0 everywhere reproduces the paper's claim. The weighted\n"
      "deployed variant trades a few percent against pure FIFO on\n"
      "identical coflows — the price of starvation freedom; the strict\n"
      "columns show the underlying discipline matches or beats both\n"
      "baselines.)\n");
  return 0;
}
