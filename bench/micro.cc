// Microbenchmarks (google-benchmark): hot paths of the library —
// water-filling allocation, one D-CLAS reschedule, wire codec, the
// delta-coded coordination path, and the end-to-end simulator event rate.
#include <benchmark/benchmark.h>

#include <sys/socket.h>

#include "bench/common.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "runtime/schedule_state.h"
#include "sim/calendar.h"

using namespace aalo;

namespace {

void BM_MaxMinAllocate(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  fabric::Fabric fabric(fabric::FabricConfig{ports, util::kGbps});
  util::Rng rng(7);
  std::vector<fabric::Demand> demands;
  for (int i = 0; i < flows; ++i) {
    demands.push_back(fabric::Demand{
        static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)),
        static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1)), 1.0,
        fabric::kUncapped});
  }
  for (auto _ : state) {
    fabric::ResidualCapacity residual(fabric);
    benchmark::DoNotOptimize(fabric::maxMinAllocate(demands, residual));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinAllocate)->Args({40, 100})->Args({40, 1000})->Args({150, 1000});

// One full D-CLAS allocation round over a standing mix of active coflows.
void BM_DClasReschedule(benchmark::State& state) {
  const auto num_coflows = static_cast<std::size_t>(state.range(0));
  const int ports = 40;

  // Hand-build a frozen mid-simulation view.
  std::vector<sim::CoflowState> coflows;
  sim::FlowArena flows;
  std::vector<std::size_t> active;
  util::Rng rng(13);
  for (std::size_t c = 0; c < num_coflows; ++c) {
    sim::CoflowState cs;
    cs.id = {static_cast<coflow::JobId>(c), 0};
    cs.released = true;
    cs.sent = rng.uniform(0, 1e9);
    const int width = static_cast<int>(rng.uniformInt(1, 20));
    for (int f = 0; f < width; ++f) {
      sim::FlowState fs;
      fs.id = static_cast<coflow::FlowId>(flows.size());
      fs.coflow_index = c;
      fs.src = static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1));
      fs.dst = static_cast<coflow::PortId>(rng.uniformInt(0, ports - 1));
      fs.size = 1e9;
      fs.sent = rng.uniform(0, 5e8);
      fs.started = true;
      cs.flow_indices.push_back(flows.push(fs));
      active.push_back(cs.flow_indices.back());
    }
    coflows.push_back(std::move(cs));
  }
  fabric::Fabric fabric(fabric::FabricConfig{ports, util::kGbps});
  sim::ActiveCoflowIndex index;
  index.rebuild(flows, active);
  sim::SimView view;
  view.now = 1.0;
  view.fabric = &fabric;
  view.coflows = &coflows;
  view.flows = &flows;
  view.active_flows = &active;
  view.active_index = &index;

  sched::DClasScheduler dclas{sched::DClasConfig{}};
  dclas.reset(fabric);
  std::vector<util::Rate> rates(flows.size(), 0.0);
  for (auto _ : state) {
    std::fill(rates.begin(), rates.end(), 0.0);
    dclas.allocate(view, rates);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(active.size()));
}
BENCHMARK(BM_DClasReschedule)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

void BM_ProtocolEncodeDecode(benchmark::State& state) {
  net::Message update;
  update.type = net::MessageType::kScheduleUpdate;
  update.epoch = 42;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    update.schedule.push_back(net::ScheduleEntry{{i, 0}, 1e6 * i, i % 10});
  }
  for (auto _ : state) {
    net::Buffer buffer;
    net::encodeMessage(update, buffer);
    benchmark::DoNotOptimize(net::decodeMessage(buffer));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProtocolEncodeDecode)->Arg(100)->Arg(1000);

// Steady-state delta frame: a handful of moved coflows plus a few
// removals — what the coordinator actually encodes every Δ in delta mode
// (compare BM_ProtocolEncodeDecode/100, the full-snapshot cost).
void BM_EncodeScheduleDelta(benchmark::State& state) {
  net::Message delta;
  delta.type = net::MessageType::kScheduleDelta;
  delta.epoch = 43;
  delta.base_epoch = 42;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    delta.schedule.push_back(net::ScheduleEntry{{i, 0}, 1e6 * i, i % 10, true});
  }
  for (int i = 0; i < 3; ++i) delta.removals.push_back({1000 + i, 0});
  net::Buffer buffer;
  for (auto _ : state) {
    buffer.clear();
    net::encodeMessage(delta, buffer);
    benchmark::DoNotOptimize(buffer.peek());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeScheduleDelta)->Arg(5)->Arg(100);

// One report landing in the incrementally maintained ScheduleState: 5
// changed coflows folded in (O(log n) queue moves) and the round's delta
// drained — the coordinator's per-report hot path, vs. the legacy
// rebuild which re-sorted all registered coflows every round.
void BM_ReportApply(benchmark::State& state) {
  const int num_coflows = static_cast<int>(state.range(0));
  const sched::DClasConfig dclas;
  runtime::ScheduleState sstate(dclas.thresholds(), 0);
  util::Rng rng(23);
  std::vector<coflow::CoflowId> ids;
  std::vector<double> sizes;
  for (int c = 0; c < num_coflows; ++c) {
    const coflow::CoflowId id{c, 0};
    sstate.registerCoflow(id);
    ids.push_back(id);
    sizes.push_back(rng.uniform(0, 100) * util::kMB);
    sstate.applySize(0, id, sizes.back());
  }
  std::vector<net::ScheduleEntry> entries;
  std::vector<coflow::CoflowId> removals;
  sstate.buildDelta(entries, removals);  // Drain the warm-up churn.
  std::size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < 5; ++i) {
      const std::size_t pick = next++ % ids.size();
      sizes[pick] += 4 * util::kMB;
      sstate.applySize(0, ids[pick], sizes[pick]);
    }
    sstate.buildDelta(entries, removals);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_ReportApply)->Arg(100)->Arg(1000);

// Encode-once shared-buffer fan-out: one 100-coflow schedule frame sent
// to N peers over loopback socketpairs. The payload bytes are queued by
// reference on every connection (zero copies), so per-peer cost is the
// frame header plus the writev.
void BM_BroadcastFanout(benchmark::State& state) {
  const std::size_t peers = static_cast<std::size_t>(state.range(0));
  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> senders;
  std::vector<std::unique_ptr<net::Connection>> receivers;
  std::size_t received = 0;
  for (std::size_t p = 0; p < peers; ++p) {
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds) != 0) {
      state.SkipWithError("socketpair failed");
      return;
    }
    senders.push_back(std::make_unique<net::Connection>(
        loop, net::Fd(fds[0]), [](net::Buffer&) {},
        net::Connection::CloseHandler{}));
    receivers.push_back(std::make_unique<net::Connection>(
        loop, net::Fd(fds[1]), [&received](net::Buffer&) { ++received; },
        net::Connection::CloseHandler{}));
  }
  net::Message update;
  update.type = net::MessageType::kScheduleUpdate;
  update.epoch = 1;
  for (int i = 0; i < 100; ++i) {
    update.schedule.push_back(net::ScheduleEntry{{i, 0}, 1e6 * i, i % 10});
  }
  auto frame = std::make_shared<net::Buffer>();
  net::encodeMessage(update, *frame);
  const std::shared_ptr<const net::Buffer> shared = frame;
  for (auto _ : state) {
    received = 0;
    for (auto& sender : senders) sender->sendFrame(shared);
    while (received < peers) loop.runOnce(std::chrono::milliseconds(1));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_BroadcastFanout)->Arg(10)->Arg(100)->Arg(1000);

void BM_SimulatorEndToEnd(benchmark::State& state) {
  const auto wl = bench::standardWorkload(static_cast<std::size_t>(state.range(0)),
                                          40, 99);
  for (auto _ : state) {
    auto aalo = bench::makeAalo();
    const auto result =
        sim::runSimulation(wl, bench::standardFabric(), *aalo);
    benchmark::DoNotOptimize(result.makespan);
    state.counters["rounds"] = static_cast<double>(result.allocation_rounds);
    state.counters["allocs"] = static_cast<double>(result.allocate_calls);
    state.counters["events"] = static_cast<double>(result.events_processed);
    state.counters["rekeys"] = static_cast<double>(result.heap_rekeys);
  }
}
BENCHMARK(BM_SimulatorEndToEnd)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

// Instrumented A/B for BM_SimulatorEndToEnd: identical run with
// SimOptions::metrics set, so every result is folded into a live
// obs::Registry. The acceptance bar for the observability layer is <2%
// overhead versus the stub (metrics == nullptr) variant above.
void BM_SimulatorEndToEndMetrics(benchmark::State& state) {
  const auto wl = bench::standardWorkload(static_cast<std::size_t>(state.range(0)),
                                          40, 99);
  obs::Registry registry;
  sim::SimOptions opts;
  opts.metrics = &registry;
  for (auto _ : state) {
    auto aalo = bench::makeAalo();
    const auto result =
        sim::runSimulation(wl, bench::standardFabric(), *aalo, opts);
    benchmark::DoNotOptimize(result.makespan);
    state.counters["rounds"] = static_cast<double>(result.allocation_rounds);
  }
}
BENCHMARK(BM_SimulatorEndToEndMetrics)
    ->Arg(50)
    ->Arg(150)
    ->Unit(benchmark::kMillisecond);

// Raw cost of the metrics primitives: the per-increment price paid at
// every instrumented site (counter add, histogram observe, gauge set) and
// the cold-path exposition renders. Counter/histogram numbers are the
// hot-path contract — they must stay in the few-nanosecond range for the
// <2% end-to-end bound to hold.
void BM_MetricsOverhead(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench_counter_total", "bench");
  obs::Gauge& gauge = registry.gauge("bench_gauge", "bench");
  obs::LatencyHistogram& histogram =
      registry.histogram("bench_seconds", "bench", obs::HistogramOptions{});
  const int mode = static_cast<int>(state.range(0));
  double x = 1e-6;
  for (auto _ : state) {
    switch (mode) {
      case 0:
        counter.fetch_add(1);
        break;
      case 1:
        histogram.observe(x);
        x = x * 1.7 + 1e-9;
        if (x > 1.0) x = 1e-6;
        break;
      case 2:
        gauge.set(x);
        x += 1.0;
        break;
      case 3: {
        const std::string text = registry.renderPrometheus();
        benchmark::DoNotOptimize(text.data());
        break;
      }
      default: {
        const std::string json = registry.renderJson();
        benchmark::DoNotOptimize(json.data());
        break;
      }
    }
  }
  static const char* const kModes[] = {"counter_add", "histogram_observe",
                                       "gauge_set", "render_prometheus",
                                       "render_json"};
  state.SetLabel(kModes[mode]);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverhead)->DenseRange(0, 4);

// Raw event-calendar churn: one membership-change round's worth of
// invalidate + re-push against a standing population of range(0) keyed
// flows, followed by the round's peek / drain / compaction hooks. This is
// the fixed per-round calendar overhead the event-driven engine pays in
// exchange for dropping the O(active) completion scan; items processed
// counts re-keyed flows, so the ns/item rate is the marginal re-key cost.
void BM_EventHeap(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  sim::EventCalendar calendar;
  calendar.reset(flows);
  // Deterministic key stream (no RNG in the timed loop): keys land in
  // [1, 2) so pushes interleave instead of appending in sorted order.
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  const auto next_key = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return 1.0 + static_cast<double>(lcg >> 11) * 0x1.0p-53;
  };
  for (std::size_t fi = 0; fi < flows; ++fi) {
    calendar.pushCompletion(fi, next_key());
    calendar.pushSnap(fi, next_key());
  }
  std::vector<std::uint32_t> due;
  const std::size_t burst = std::max<std::size_t>(1, flows / 8);
  std::size_t cursor = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) {
      const std::size_t fi = cursor++ % flows;
      calendar.invalidate(fi);
      calendar.pushCompletion(fi, next_key());
      calendar.pushSnap(fi, next_key());
    }
    benchmark::DoNotOptimize(calendar.nextCompletion());
    calendar.drainSnapDue(0.5, due);  // Below every key: the common no-op gate.
    calendar.compactIfBloated();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_EventHeap)->Arg(64)->Arg(512)->Arg(4096);

// The engine's integration sweep in isolation: pass 1 is the vectorizable
// min/add over the slot-packed SoA columns, pass 2 scatters the deltas
// into per-coflow totals — byte-for-byte the loop in executeIncremental.
// Sizes are set far above what the sweep can drain during the bench, so
// the min never clamps and every iteration does identical work.
void BM_SoAIntegrate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(31);
  std::vector<util::Rate> rate_col(n);
  std::vector<util::Bytes> size_col(n), sent_col(n, 0.0), delta_col(n);
  std::vector<std::uint32_t> slot_coflow(n);
  std::vector<util::Bytes> coflow_sent(n / 16 + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    rate_col[k] = rng.uniform(0, util::kGbps / 8);
    size_col[k] = 1e18;
    slot_coflow[k] = static_cast<std::uint32_t>(k / 16);
  }
  const util::Seconds dt = 1e-3;
  for (auto _ : state) {
    const util::Rate* __restrict rate = rate_col.data();
    const util::Bytes* __restrict size = size_col.data();
    util::Bytes* __restrict sent = sent_col.data();
    util::Bytes* __restrict delta = delta_col.data();
    for (std::size_t k = 0; k < n; ++k) {
      const util::Bytes d = std::min(rate[k] * dt, size[k] - sent[k]);
      sent[k] += d;
      delta[k] = d;
    }
    for (std::size_t k = 0; k < n; ++k) {
      coflow_sent[slot_coflow[k]] += delta[k];
    }
    benchmark::DoNotOptimize(sent_col.data());
    benchmark::DoNotOptimize(coflow_sent.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoAIntegrate)->Arg(64)->Arg(512)->Arg(4096);

// Figure 8-style trace replay: the Facebook-like mix under Aalo with a
// non-zero coordination interval Δ (arg = Δ in milliseconds), plus
// per-flow fair sharing as the prior-free baseline (arg = 0). With
// Δ > 0 most sync-boundary wake-ups change no queue membership, so this
// bench exercises — and its counters record — the allocation-reuse path
// (reused > 0 is part of the PR acceptance for the incremental engine).
void BM_TraceReplay(benchmark::State& state) {
  const auto wl = bench::standardWorkload(60, 40, 99);
  const util::Seconds delta = static_cast<double>(state.range(0)) * 1e-3;
  for (auto _ : state) {
    auto sched = delta > 0 ? bench::makeAalo(delta) : bench::makeFair();
    const auto result = sim::runSimulation(wl, bench::standardFabric(), *sched);
    benchmark::DoNotOptimize(result.makespan);
    state.counters["rounds"] = static_cast<double>(result.allocation_rounds);
    state.counters["allocs"] = static_cast<double>(result.allocate_calls);
    state.counters["reused"] = static_cast<double>(result.reused_allocations);
  }
}
BENCHMARK(BM_TraceReplay)->Arg(0)->Arg(100)->Unit(benchmark::kMillisecond);

// Scale stressor for the event calendar: a 100k-coflow Facebook-shaped
// trace (same generator as tools/aalo_tracegen --kind fb --coflows
// 100000) replayed end to end under Aalo with Δ = 100 ms. Width is
// capped at 6x6 senders/receivers — the fb shape keeps its size and
// length distributions but the tail coflows stop carrying 300+ flows
// each, which bounds the run at roughly one allocation per flow arrival
// and one per completion. (The caps must keep sender x receiver above
// the generator's wide-coflow width floor of 51, so 8 x 8 is the
// tightest square choice.) One iteration per run: this is a
// tens-of-seconds soak, recorded for trend, not for tight medians.
void BM_TraceReplayLarge(benchmark::State& state) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = static_cast<std::size_t>(state.range(0)) * 1000;
  cfg.num_ports = 40;
  cfg.seed = 99;
  cfg.mean_interarrival = 2.0;
  cfg.sender_cap = 8;
  cfg.receiver_cap = 8;
  const auto wl = workload::generateFacebookWorkload(cfg);
  sim::SimOptions opts;
  opts.max_rounds = 40'000'000;
  for (auto _ : state) {
    auto aalo = bench::makeAalo(0.5);
    const auto result =
        sim::runSimulation(wl, bench::standardFabric(), *aalo, opts);
    benchmark::DoNotOptimize(result.makespan);
    state.counters["rounds"] = static_cast<double>(result.allocation_rounds);
    state.counters["allocs"] = static_cast<double>(result.allocate_calls);
    state.counters["events"] = static_cast<double>(result.events_processed);
    state.counters["rekeys"] = static_cast<double>(result.heap_rekeys);
  }
}
BENCHMARK(BM_TraceReplayLarge)->Arg(10)->Arg(100)->Iterations(1)->Unit(benchmark::kSecond);

// A 6-job scheduler sweep through sim::runBatch at varying thread counts.
// On a multi-core host throughput should scale near-linearly with the
// argument; tools/bench_record.sh captures this alongside the hot-path
// numbers so the perf trajectory covers both single-run and batch cost.
void BM_BatchRunnerSweep(benchmark::State& state) {
  const auto wl = bench::standardWorkload(30, 40, 77);
  const auto fc = bench::standardFabric();
  const int threads = static_cast<int>(state.range(0));
  std::vector<sim::BatchJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(bench::job(wl, fc, [] { return bench::makeAalo(); }));
    jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); }));
  }
  sim::BatchOptions opts;
  opts.num_threads = threads;
  for (auto _ : state) {
    const auto results = sim::runBatch(jobs, opts);
    benchmark::DoNotOptimize(results.front().makespan);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchRunnerSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
