// Figure 14: Aalo at scale.
//  (a) Real coordination rounds over loopback TCP: one coordinator thread
//      serving N emulated daemons (each receiving the round's schedule
//      frame and answering with a size report). The paper measured 8ms at
//      100 daemons up to 992ms at 100,000 (EC2, 100 machines); here every
//      daemon shares one host, so absolute numbers differ but the linear
//      growth in N is the result. Both coordination data paths are
//      measured side by side: the rebuild-the-world oracle (full
//      broadcasts + full reports) and the default delta-coded path
//      (kScheduleDelta heartbeats, changed-coflows-only reports), with
//      bytes-on-wire per round recorded for each.
//  (b) Simulation: the price of stale coordination — Aalo's improvement
//      over per-flow fairness as Δ grows.
//
// `--json PATH` skips panel (b) and records panel (a) at N ∈ {100, 1000}
// as machine-readable JSON (see tools/bench_net_record.sh).
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "bench/common.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"

using namespace aalo;

namespace {

struct RoundCost {
  double avg_fanout_seconds = -1;  ///< First to last delivery per round.
  double down_bytes_per_round = 0; ///< Broadcast bytes, all daemons.
  double up_bytes_per_round = 0;   ///< Size-report bytes, all daemons.
};

struct RoundOptions {
  /// Adds one extra registered daemon that never reads a byte (a
  /// blackholed machine); the coordinator's backpressure must park it
  /// without slowing the healthy fan-out.
  bool blackhole_peer = false;
  /// Disables the liveness/one-way watchdogs so the blackholed peer is
  /// isolated by backpressure, not evicted (set for both sides of the
  /// isolation A/B so the configs match).
  bool disable_watchdogs = false;
};

/// Runs `rounds` coordination rounds against a live Coordinator with
/// `num_daemons` emulated daemons and returns the average time from a
/// round's first schedule delivery to its last (the broadcast fan-out
/// cost the paper plots) plus the bytes crossing the wire per round.
/// Every round 5 of the 100 coflows grow, each on a rotating 1-in-20
/// subset of the daemons — the steady state the delta path is designed
/// for: a handful of changed coflows per Δ against a standing
/// population, with most machines seeing no change at all that Δ. Full
/// mode reports and broadcasts everything every Δ regardless (the
/// pre-delta data path); delta mode sends changed-only reports with the
/// real daemon's keepalive pacing for idle ticks.
RoundCost measureRounds(std::size_t num_daemons, int rounds, bool full_mode,
                        RoundOptions opt = {}) {
  runtime::CoordinatorConfig ccfg;
  // Rounds must not overlap or send backlogs compound — the paper makes
  // the same point: "Δ must be increased for Aalo to scale" (§7.6).
  ccfg.sync_interval = std::max(0.050, static_cast<double>(num_daemons) * 100e-6);
  ccfg.full_broadcasts = full_mode;
  if (opt.disable_watchdogs) {
    ccfg.liveness_timeout_intervals = 0;
    ccfg.one_way_timeout_intervals = 0;
  }
  runtime::Coordinator coordinator(ccfg);
  coordinator.start();

  // 100 concurrent coflows' scheduling info per update, as in the paper.
  runtime::AaloClient client(coordinator.port());
  std::vector<coflow::CoflowId> coflows;
  for (int i = 0; i < 100; ++i) coflows.push_back(client.registerCoflow());

  using Clock = std::chrono::steady_clock;
  struct EpochTimes {
    Clock::time_point first;
    Clock::time_point last;
    std::size_t count = 0;
  };
  std::unordered_map<std::uint64_t, EpochTimes> epochs;

  // Byte accounting is restricted to the measured epoch window so the
  // settle phase (connects, per-peer snapshots) does not pollute the
  // steady-state numbers.
  std::uint64_t window_begin = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t window_end = std::numeric_limits<std::uint64_t>::max();
  double bytes_down = 0, bytes_up = 0;

  // Per-daemon absolute local sizes (what a real daemon accumulates).
  std::vector<std::vector<double>> local(num_daemons,
                                         std::vector<double>(coflows.size(), 0));

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> daemons;
  daemons.reserve(num_daemons);
  std::uint64_t max_full_epoch = 0;

  // One size report from daemon `d`, mirroring runtime::Daemon: full
  // mode reports every coflow every Δ; delta mode reports only the
  // coflows whose local bytes changed, and an idle tick is suppressed
  // entirely save for an empty keepalive every 3rd Δ (the daemon's
  // report_keepalive_intervals default). Replies happen inline, so the
  // timed window is the full round on this host: schedule deliveries
  // with the daemons' report encode/send work serialized between them —
  // the same end-to-end per-Δ cost the paper's Fig. 14 plots.
  std::vector<int> ticks_since_report(num_daemons, 0);
  auto sendReport = [&](std::size_t d, std::uint64_t epoch, bool in_window) {
    const bool has_traffic = d % 20 == epoch % 20;
    net::Message report;
    report.type = net::MessageType::kSizeReport;
    report.daemon_id = d;
    report.epoch = epoch;  // Echo, as a live daemon would.
    for (std::size_t i = 0; i < coflows.size(); ++i) {
      const bool changed = has_traffic && i % 20 == epoch % 20;
      if (changed) local[d][i] += 10 * util::kMB;
      if (full_mode || changed) {
        report.sizes.push_back(net::CoflowSize{coflows[i], local[d][i]});
      }
    }
    if (!full_mode && report.sizes.empty() &&
        ++ticks_since_report[d] < 3) {
      return;  // Suppressed, exactly as the real daemon would.
    }
    ticks_since_report[d] = 0;
    net::Buffer out;
    net::encodeMessage(report, out);
    if (in_window) bytes_up += static_cast<double>(out.readableBytes());
    daemons[d]->sendFrame(out);
  };

  for (std::size_t d = 0; d < num_daemons; ++d) {
    net::Fd fd = net::connectTcp(coordinator.port());
    auto conn = std::make_unique<net::Connection>(
        loop, std::move(fd),
        [&, d](net::Buffer& payload) {
          const auto frame_bytes = static_cast<double>(payload.readableBytes());
          const auto msg = net::decodeMessage(payload);
          if (msg.type != net::MessageType::kScheduleUpdate &&
              msg.type != net::MessageType::kScheduleDelta) {
            return;
          }
          const bool in_window =
              msg.epoch >= window_begin && msg.epoch < window_end;
          if (in_window) bytes_down += frame_bytes;
          auto& times = epochs[msg.epoch];
          const auto now = Clock::now();
          if (times.count == 0) times.first = now;
          times.last = now;
          if (++times.count == num_daemons && msg.epoch > max_full_epoch) {
            max_full_epoch = msg.epoch;
          }
          sendReport(d, msg.epoch, in_window);
        },
        net::Connection::CloseHandler{});
    daemons.push_back(std::move(conn));
    // Hello so the coordinator counts us as a daemon.
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = d;
    net::Buffer out;
    net::encodeMessage(hello, out);
    daemons.back()->sendFrame(out);
  }

  // A blackholed machine: says Hello over a raw blocking socket (same
  // [u32 length][payload] framing Connection writes), then never reads.
  // Broadcasts pile up in its kernel buffers until the coordinator's
  // backpressure parks it; it must not slow the healthy rounds timed
  // below. The fd stays open (and unread) for the whole measurement.
  net::Fd blackholed;
  if (opt.blackhole_peer) {
    blackholed = net::connectTcp(coordinator.port(), /*non_blocking=*/false);
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = num_daemons + 7;
    net::Buffer payload;
    net::encodeMessage(hello, payload);
    net::Buffer frame;
    frame.putU32(static_cast<std::uint32_t>(payload.readableBytes()));
    frame.append(payload.readable());
    const auto bytes = frame.readable();
    for (std::size_t off = 0; off < bytes.size();) {
      const ssize_t n = ::write(blackholed.get(), bytes.data() + off,
                                bytes.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  const std::size_t settle_target = num_daemons + (opt.blackhole_peer ? 1 : 0);

  // Let the fleet settle, then time `rounds` full epochs.
  const auto deadline = Clock::now() + std::chrono::seconds(90);
  while (coordinator.daemonCount() < settle_target && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }
  const std::uint64_t start_epoch = max_full_epoch + 2;
  const std::uint64_t end_epoch = start_epoch + static_cast<std::uint64_t>(rounds);
  window_begin = start_epoch;
  window_end = end_epoch;
  while (max_full_epoch < end_epoch && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  double total = 0;
  int counted = 0;
  for (const auto& [epoch, times] : epochs) {
    if (epoch >= start_epoch && epoch < end_epoch && times.count == num_daemons) {
      total += std::chrono::duration<double>(times.last - times.first).count();
      ++counted;
    }
  }
  daemons.clear();
  coordinator.stop();
  RoundCost cost;
  cost.avg_fanout_seconds = counted > 0 ? total / counted : -1;
  cost.down_bytes_per_round = bytes_down / rounds;
  cost.up_bytes_per_round = bytes_up / rounds;
  return cost;
}

struct FailoverCost {
  double p50_seconds = -1;   ///< Median kill-to-recovered time per daemon.
  double p99_seconds = -1;
  std::size_t recovered = 0; ///< Daemons that converged on the standby.
};

/// Kills a primary serving `num_daemons` emulated daemons mid-stream and
/// measures, per daemon, the time from the kill to the first fenced
/// schedule frame applied from the promoted warm standby (detection +
/// reconnect + takeover + re-broadcast — the full outage as a machine
/// experiences it). Daemons redial the standby as soon as their primary
/// connection drops, exactly like runtime::Daemon's endpoint rotation.
FailoverCost measureFailover(std::size_t num_daemons) {
  using Clock = std::chrono::steady_clock;
  runtime::CoordinatorConfig ccfg;
  ccfg.sync_interval = std::max(0.050, static_cast<double>(num_daemons) * 100e-6);
  auto primary = std::make_unique<runtime::Coordinator>(ccfg);
  primary->start();
  runtime::CoordinatorConfig scfg = ccfg;
  scfg.standby_of = primary->port();
  scfg.takeover_intervals = 5;
  runtime::Coordinator standby(scfg);
  standby.start();

  runtime::AaloClient client(primary->port());
  std::vector<coflow::CoflowId> coflows;
  for (int i = 0; i < 100; ++i) coflows.push_back(client.registerCoflow());

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> daemons(num_daemons);
  std::vector<Clock::time_point> recovered_at(num_daemons);
  std::vector<char> recovered(num_daemons, 0), needs_dial(num_daemons, 0);
  std::size_t recovered_count = 0;
  bool killed = false;
  Clock::time_point kill_time;

  auto dial = [&](std::size_t d, std::uint16_t port) {
    net::Fd fd = net::connectTcp(port);
    daemons[d] = std::make_unique<net::Connection>(
        loop, std::move(fd),
        [&, d](net::Buffer& payload) {
          const auto msg = net::decodeMessage(payload);
          if (msg.type != net::MessageType::kScheduleUpdate &&
              msg.type != net::MessageType::kScheduleDelta) {
            return;
          }
          // Fence 2 can only come from the promoted standby.
          if (killed && !recovered[d] && msg.fence >= 2) {
            recovered[d] = 1;
            recovered_at[d] = Clock::now();
            ++recovered_count;
          }
        },
        [&, d] { needs_dial[d] = 1; });
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = d;
    net::Buffer out;
    net::encodeMessage(hello, out);
    daemons[d]->sendFrame(out);
    // One absolute report so the recovered schedule is non-trivial; the
    // redial resends it, mirroring the real daemon's forced resync.
    net::Message report;
    report.type = net::MessageType::kSizeReport;
    report.daemon_id = d;
    report.sizes.push_back(
        net::CoflowSize{coflows[d % coflows.size()], 10 * util::kMB});
    out.clear();
    net::encodeMessage(report, out);
    daemons[d]->sendFrame(out);
  };

  for (std::size_t d = 0; d < num_daemons; ++d) dial(d, primary->port());
  const auto deadline = Clock::now() + std::chrono::seconds(120);
  while (primary->daemonCount() < num_daemons && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }
  // Loopback settle beats the primary's first broadcast tick: killing now
  // would measure a cold-start takeover of an empty standby. Wait until
  // the standby has mirrored a snapshot plus a delta — the warm-standby
  // scenario this benchmark claims to measure.
  while (standby.stats().follower_frames_applied.load(
             std::memory_order_relaxed) < 2 &&
         Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  kill_time = Clock::now();
  killed = true;
  primary->stop();
  primary.reset();

  while (recovered_count < num_daemons && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(1));
    for (std::size_t d = 0; d < num_daemons; ++d) {
      if (!needs_dial[d]) continue;
      needs_dial[d] = 0;  // Replacing daemons[d] outside its callbacks.
      dial(d, standby.port());
    }
  }

  FailoverCost cost;
  cost.recovered = recovered_count;
  if (recovered_count > 0) {
    std::vector<double> times;
    times.reserve(recovered_count);
    for (std::size_t d = 0; d < num_daemons; ++d) {
      if (recovered[d]) {
        times.push_back(
            std::chrono::duration<double>(recovered_at[d] - kill_time).count());
      }
    }
    std::sort(times.begin(), times.end());
    cost.p50_seconds = times[times.size() / 2];
    cost.p99_seconds = times[std::min(times.size() - 1, times.size() * 99 / 100)];
  }
  daemons.clear();
  standby.stop();
  return cost;
}

std::string formatBytes(double bytes) {
  char buf[32];
  if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1e3);
  }
  return buf;
}

/// `--json PATH` mode: the A/B record the acceptance criteria cite
/// (BENCH_net.json) — both modes at N ∈ {100, 1000}, 15 rounds each.
int recordJson(const char* path) {
  const int rounds = 15;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fig14: cannot open %s\n", path);
    return 1;
  }
  out << "{\n  \"bench\": \"fig14_coordination_data_path\",\n"
      << "  \"rounds\": " << rounds << ",\n  \"coflows\": 100,\n"
      << "  \"changed_per_round\": 5,\n  \"results\": [";
  bool first = true;
  std::unordered_map<std::string, RoundCost> by_key;
  for (const std::size_t n : {100ul, 1000ul}) {
    for (const bool full : {true, false}) {
      const RoundCost cost = measureRounds(n, rounds, full);
      const std::string mode = full ? "full" : "delta";
      by_key[mode + std::to_string(n)] = cost;
      out << (first ? "" : ",") << "\n    {\"daemons\": " << n
          << ", \"mode\": \"" << mode
          << "\", \"avg_round_s\": " << cost.avg_fanout_seconds
          << ", \"down_bytes_per_round\": " << cost.down_bytes_per_round
          << ", \"up_bytes_per_round\": " << cost.up_bytes_per_round << "}";
      first = false;
      std::fprintf(stderr, "  [%s %4zu daemons] round %s, down %s, up %s\n",
                   mode.c_str(), n,
                   util::formatSeconds(cost.avg_fanout_seconds).c_str(),
                   formatBytes(cost.down_bytes_per_round).c_str(),
                   formatBytes(cost.up_bytes_per_round).c_str());
    }
  }
  const auto& full1k = by_key["full1000"];
  const auto& delta1k = by_key["delta1000"];
  const double speedup = delta1k.avg_fanout_seconds > 0
                             ? full1k.avg_fanout_seconds / delta1k.avg_fanout_seconds
                             : -1;
  const double wire_total_full =
      full1k.down_bytes_per_round + full1k.up_bytes_per_round;
  const double wire_total_delta =
      delta1k.down_bytes_per_round + delta1k.up_bytes_per_round;
  const double wire_ratio =
      wire_total_delta > 0 ? wire_total_full / wire_total_delta : -1;
  // High-availability record: warm-standby failover recovery and the
  // blackholed-daemon isolation A/B, both at 1000 daemons.
  const FailoverCost failover = measureFailover(1000);
  std::fprintf(stderr,
               "  [failover 1000 daemons] recovered %zu, p50 %s, p99 %s\n",
               failover.recovered,
               util::formatSeconds(failover.p50_seconds).c_str(),
               util::formatSeconds(failover.p99_seconds).c_str());
  RoundOptions iso;
  iso.disable_watchdogs = true;
  const RoundCost iso_healthy = measureRounds(1000, rounds, false, iso);
  iso.blackhole_peer = true;
  const RoundCost iso_degraded = measureRounds(1000, rounds, false, iso);
  const double iso_ratio =
      iso_healthy.avg_fanout_seconds > 0
          ? iso_degraded.avg_fanout_seconds / iso_healthy.avg_fanout_seconds
          : -1;
  std::fprintf(stderr,
               "  [isolation 1000 daemons] healthy round %s, with blackholed "
               "peer %s (ratio %.2f)\n",
               util::formatSeconds(iso_healthy.avg_fanout_seconds).c_str(),
               util::formatSeconds(iso_degraded.avg_fanout_seconds).c_str(),
               iso_ratio);

  out << "\n  ],\n  \"round_time_speedup_1000\": " << speedup
      << ",\n  \"wire_bytes_ratio_1000\": " << wire_ratio
      << ",\n  \"failover\": {\"daemons\": 1000, \"takeover_intervals\": 5"
      << ", \"recovered\": " << failover.recovered
      << ", \"recovery_p50_s\": " << failover.p50_seconds
      << ", \"recovery_p99_s\": " << failover.p99_seconds << "}"
      << ",\n  \"overload_isolation\": {\"daemons\": 1000"
      << ", \"healthy_round_s\": " << iso_healthy.avg_fanout_seconds
      << ", \"blackholed_round_s\": " << iso_degraded.avg_fanout_seconds
      << ", \"round_time_ratio\": " << iso_ratio << "}\n}\n";
  std::fprintf(stderr,
               "fig14: @1000 daemons delta is %.2fx faster per round, "
               "%.1fx fewer bytes on the wire\n",
               speedup, wire_ratio);
  std::fprintf(stderr, "wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0) {
    return recordJson(argv[2]);
  }

  bench::header(
      "Figure 14: scalability",
      "(a) coordination time grows ~linearly with daemon count (paper: "
      "8ms @100 ... 992ms @100k daemons across 100 machines); (b) "
      "improvement over fairness degrades gently to Δ=1s (1.93x -> "
      "1.78x) and collapses past Δ=10s");

  std::printf("\nFigure 14a — real loopback coordination rounds "
              "(100 coflows, 5 changing per Δ), full vs delta data path:\n");
  util::Table rounds_table({"# emulated daemons", "full round", "full wire/round",
                            "delta round", "delta wire/round"});
  for (const std::size_t n : {100ul, 500ul, 1000ul, 2500ul, 5000ul}) {
    const RoundCost full = measureRounds(n, 15, true);
    const RoundCost delta = measureRounds(n, 15, false);
    rounds_table.addRow(
        {std::to_string(n),
         full.avg_fanout_seconds < 0 ? "timeout"
                                     : util::formatSeconds(full.avg_fanout_seconds),
         formatBytes(full.down_bytes_per_round + full.up_bytes_per_round),
         delta.avg_fanout_seconds < 0
             ? "timeout"
             : util::formatSeconds(delta.avg_fanout_seconds),
         formatBytes(delta.down_bytes_per_round + delta.up_bytes_per_round)});
    std::fprintf(stderr, "  [fanout %5zu daemons] done\n", n);
  }
  rounds_table.print(std::cout);

  std::printf("\nHigh availability at 1000 daemons (warm standby, "
              "takeover after 5Δ):\n");
  const FailoverCost failover = measureFailover(1000);
  std::printf("  failover recovery: %zu/1000 daemons, p50 %s, p99 %s\n",
              failover.recovered,
              util::formatSeconds(failover.p50_seconds).c_str(),
              util::formatSeconds(failover.p99_seconds).c_str());
  RoundOptions iso;
  iso.disable_watchdogs = true;
  const RoundCost iso_healthy = measureRounds(1000, 15, false, iso);
  iso.blackhole_peer = true;
  const RoundCost iso_degraded = measureRounds(1000, 15, false, iso);
  std::printf("  blackholed-peer isolation: healthy round %s vs %s "
              "(ratio %.2f)\n",
              util::formatSeconds(iso_healthy.avg_fanout_seconds).c_str(),
              util::formatSeconds(iso_degraded.avg_fanout_seconds).c_str(),
              iso_healthy.avg_fanout_seconds > 0
                  ? iso_degraded.avg_fanout_seconds /
                        iso_healthy.avg_fanout_seconds
                  : -1.0);

  std::printf("\nFigure 14b — impact of the coordination interval Δ "
              "(simulation):\n");
  const auto wl = bench::standardWorkload(250, 40, 55);
  const auto fc = bench::standardFabric();
  // The Δ sweep is pure simulation — batch it. (Panel (a) above exercises
  // real sockets on this host and must stay serial to keep timings clean.)
  const std::vector<double> deltas = {0.01, 0.1, 1.0, 10.0, 100.0};
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); },
                            "per-flow fair"));
  for (const double delta : deltas) {
    jobs.push_back(bench::job(wl, fc, [delta] { return bench::makeAalo(delta); },
                              "aalo Δ=" + util::formatSeconds(delta)));
  }
  const auto results = bench::runBatch(std::move(jobs));
  const auto& fair_result = results[0];
  util::Table delta_table({"Δ", "improvement over fair (avg CCT)"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    delta_table.addRow({util::formatSeconds(deltas[i]),
                        util::Table::num(
                            analysis::normalizedCct(fair_result, results[1 + i]).avg,
                            2) +
                            "x"});
  }
  delta_table.print(std::cout);
  std::printf("\n(paper: tiny coflows are still better off under Aalo than "
              "per-flow fairness even at large Δ)\n");
  return 0;
}
