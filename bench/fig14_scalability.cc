// Figure 14: Aalo at scale.
//  (a) Real coordination rounds over loopback TCP: a coordinator serving N
//      emulated daemons (each receiving the round's schedule frame and
//      answering with a size report). The paper measured 8ms at 100
//      daemons up to 992ms at 100,000 (EC2, 100 machines); here every
//      daemon shares one host, so absolute numbers differ but the linear
//      growth in N is the result. Both coordination data paths are
//      measured side by side: the rebuild-the-world oracle (full
//      broadcasts + full reports) and the default delta-coded path
//      (kScheduleDelta heartbeats, changed-coflows-only reports), with
//      bytes-on-wire per round recorded for each. A daemons x shards
//      sweep measures the multi-threaded sharded coordinator against the
//      single-threaded oracle (--shards 1) at up to 100k daemons and
//      >= 1M live coflows.
//  (b) Simulation: the price of stale coordination — Aalo's improvement
//      over per-flow fairness as Δ grows.
//
// `--json PATH` skips panel (b) and records panel (a) as machine-readable
// JSON (see tools/bench_net_record.sh): the full/delta A/B at
// N ∈ {100, 1000}, the shard sweep, HA drills, and the live-coflow point.
// `--daemons`/`--shards` (comma lists) override the sweep grid;
// `--sweep-only` records just the shard sweep (the CI perf gate's mode).
//
// Host constraints, disclosed in the JSON: this box has one CPU core, so
// the sharded coordinator's worker threads time-slice it — shard counts
// > 1 measure the coordination-plane overhead and correctness at scale,
// not a parallel speedup. RLIMIT_NOFILE (20000, with both ends of every
// loopback socket in this process) caps physical connections at 2500;
// above that, logical daemons are multiplexed over shared connections
// (`mux_factor` per sweep point) — valid because the coordinator keys
// size reports by the message's daemon_id, not by connection.
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>

#include "bench/common.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"

using namespace aalo;

namespace {

/// Physical-connection ceiling: RLIMIT_NOFILE is 20000 here and every
/// emulated daemon's loopback socket holds two fds in this process.
constexpr std::size_t kMaxConnections = 2500;

struct RoundCost {
  double avg_fanout_seconds = -1;  ///< First to last delivery per round.
  double down_bytes_per_round = 0; ///< Broadcast bytes, all daemons.
  double up_bytes_per_round = 0;   ///< Size-report bytes, all daemons.
  std::size_t live_coflows = 0;    ///< Coflow population actually driven.
};

struct RoundOptions {
  /// Adds one extra registered daemon that never reads a byte (a
  /// blackholed machine); the coordinator's backpressure must park it
  /// without slowing the healthy fan-out.
  bool blackhole_peer = false;
  /// Disables the liveness/one-way watchdogs so the blackholed peer is
  /// isolated by backpressure, not evicted (set for both sides of the
  /// isolation A/B so the configs match).
  bool disable_watchdogs = false;
};

/// One measured configuration of the loopback round benchmark.
struct RoundSetup {
  std::size_t daemons = 0;      ///< Logical daemons (reporting identities).
  /// Physical TCP connections; 0 = one per daemon. When fewer than
  /// `daemons`, each connection multiplexes daemons/connections logical
  /// daemons (Hello once, reports under each logical daemon_id).
  std::size_t connections = 0;
  std::size_t shards = 1;       ///< CoordinatorConfig::shards.
  /// Coflow population. <= 1000 keeps the legacy shared model (every
  /// daemon reports against the same 100 coflows); above that the
  /// population is partitioned into disjoint per-daemon slices and seeded
  /// through paced absolute reports before the timed window.
  std::size_t coflows = 100;
  int rounds = 15;
  bool full_mode = false;
  double interval = -1;         ///< Sync interval Δ; < 0 = legacy formula.
  int snapshot_every = -1;      ///< < 0 = coordinator default.
  RoundOptions opt;
};

/// Runs `rounds` coordination rounds against a live Coordinator and
/// returns the average time from a round's first schedule delivery to its
/// last (the broadcast fan-out cost the paper plots) plus the bytes
/// crossing the wire per round. In the legacy shared-coflow model, every
/// round 5 of the 100 coflows grow, each on a rotating 1-in-20 subset of
/// the daemons — the steady state the delta path is designed for: a
/// handful of changed coflows per Δ against a standing population, with
/// most machines seeing no change at all that Δ. Full mode reports and
/// broadcasts everything every Δ regardless (the pre-delta data path);
/// delta mode sends changed-only reports with the real daemon's keepalive
/// pacing for idle ticks (keepalives only in the unmultiplexed shape —
/// idle *logical* daemons on a shared connection stay silent).
RoundCost measureRounds(const RoundSetup& s) {
  const std::size_t conns = s.connections == 0 ? s.daemons : s.connections;
  const std::size_t mux = s.daemons / conns;  // Logical daemons per connection.
  const bool partitioned = s.coflows > 1000;
  const bool keepalives = !s.full_mode && mux == 1 && !partitioned;

  runtime::CoordinatorConfig ccfg;
  // Rounds must not overlap or send backlogs compound — the paper makes
  // the same point: "Δ must be increased for Aalo to scale" (§7.6).
  ccfg.sync_interval =
      s.interval > 0
          ? s.interval
          : std::max(0.050, static_cast<double>(s.daemons) * 100e-6);
  ccfg.full_broadcasts = s.full_mode;
  ccfg.shards = s.shards;
  if (s.snapshot_every >= 0) ccfg.snapshot_every = s.snapshot_every;
  if (s.opt.disable_watchdogs || mux > 1) {
    // Multiplexed logical daemons report only when they have traffic; the
    // per-peer watchdogs would evict their shared connection for silence.
    ccfg.liveness_timeout_intervals = 0;
    ccfg.one_way_timeout_intervals = 0;
  }
  runtime::Coordinator coordinator(ccfg);
  coordinator.start();

  // Coflow population. Legacy model: 100 concurrent coflows' scheduling
  // info per update, as in the paper, registered through a real client.
  // Partitioned model: a fabricated population far beyond what per-id
  // registration round trips could seed — coflows become live through
  // size reports alone (ScheduleState::applySize creates entries), each
  // logical daemon owning a disjoint slice.
  std::unique_ptr<runtime::AaloClient> client;
  std::vector<coflow::CoflowId> coflows;
  std::size_t slice = 0;  // Coflows per logical daemon (partitioned only).
  if (partitioned) {
    slice = (s.coflows + s.daemons - 1) / s.daemons;
    coflows.reserve(slice * s.daemons);
    for (std::size_t j = 0; j < slice * s.daemons; ++j) {
      // High external ids keep fabricated coflows clear of minted ones.
      coflows.push_back(coflow::CoflowId{
          .external = static_cast<std::int64_t>((1ll << 40) + j),
          .internal = 0});
    }
  } else {
    client = std::make_unique<runtime::AaloClient>(coordinator.port());
    for (std::size_t i = 0; i < s.coflows; ++i) {
      coflows.push_back(client->registerCoflow());
    }
  }

  using Clock = std::chrono::steady_clock;
  struct EpochTimes {
    Clock::time_point first;
    Clock::time_point last;
    std::size_t count = 0;
  };
  std::unordered_map<std::uint64_t, EpochTimes> epochs;

  // Byte accounting is restricted to the measured epoch window so the
  // settle phase (connects, per-peer snapshots, population seeding) does
  // not pollute the steady-state numbers.
  std::uint64_t window_begin = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t window_end = std::numeric_limits<std::uint64_t>::max();
  double bytes_down = 0, bytes_up = 0;

  // Per-daemon absolute local sizes (what a real daemon accumulates):
  // the full shared population in the legacy model, the daemon's own
  // slice in the partitioned one.
  std::vector<std::vector<double>> local(
      s.daemons, std::vector<double>(partitioned ? slice : coflows.size(), 0));

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> daemons;
  daemons.reserve(conns);
  std::uint64_t max_full_epoch = 0;

  // One size report from logical daemon `d`, mirroring runtime::Daemon:
  // full mode reports every coflow every Δ; delta mode reports only the
  // coflows whose local bytes changed, and an idle tick is suppressed
  // entirely save for an empty keepalive every 3rd Δ (the daemon's
  // report_keepalive_intervals default). Replies happen inline, so the
  // timed window is the full round on this host: schedule deliveries
  // with the daemons' report encode/send work serialized between them —
  // the same end-to-end per-Δ cost the paper's Fig. 14 plots.
  std::vector<int> ticks_since_report(keepalives ? s.daemons : 0, 0);
  auto sendReport = [&](std::size_t d, std::uint64_t epoch, bool in_window) {
    const bool has_traffic = d % 20 == epoch % 20;
    net::Message report;
    report.type = net::MessageType::kSizeReport;
    report.daemon_id = d;
    report.epoch = epoch;  // Echo, as a live daemon would.
    if (partitioned) {
      if (!has_traffic) return;
      for (std::size_t i = 0; i < 5; ++i) {
        const std::size_t k =
            (static_cast<std::size_t>(epoch) * 5 + i) % slice;
        local[d][k] += 10 * util::kMB;
        report.sizes.push_back(
            net::CoflowSize{coflows[d * slice + k], local[d][k]});
      }
    } else {
      for (std::size_t i = 0; i < coflows.size(); ++i) {
        const bool changed = has_traffic && i % 20 == epoch % 20;
        if (changed) local[d][i] += 10 * util::kMB;
        if (s.full_mode || changed) {
          report.sizes.push_back(net::CoflowSize{coflows[i], local[d][i]});
        }
      }
      if (!s.full_mode && report.sizes.empty()) {
        if (!keepalives) return;  // Idle multiplexed daemons stay silent.
        if (++ticks_since_report[d] < 3) {
          return;  // Suppressed, exactly as the real daemon would.
        }
      }
      if (keepalives) ticks_since_report[d] = 0;
    }
    net::Buffer out;
    net::encodeMessage(report, out);
    if (in_window) bytes_up += static_cast<double>(out.readableBytes());
    daemons[d / mux]->sendFrame(out);
  };

  for (std::size_t c = 0; c < conns; ++c) {
    net::Fd fd = net::connectTcp(coordinator.port());
    auto conn = std::make_unique<net::Connection>(
        loop, std::move(fd),
        [&, c](net::Buffer& payload) {
          const auto frame_bytes = static_cast<double>(payload.readableBytes());
          const auto msg = net::decodeMessage(payload);
          if (msg.type != net::MessageType::kScheduleUpdate &&
              msg.type != net::MessageType::kScheduleDelta) {
            return;
          }
          const bool in_window =
              msg.epoch >= window_begin && msg.epoch < window_end;
          if (in_window) bytes_down += frame_bytes;
          auto& times = epochs[msg.epoch];
          const auto now = Clock::now();
          if (times.count == 0) times.first = now;
          times.last = now;
          if (++times.count == conns && msg.epoch > max_full_epoch) {
            max_full_epoch = msg.epoch;
          }
          for (std::size_t k = 0; k < mux; ++k) {
            sendReport(c * mux + k, msg.epoch, in_window);
          }
        },
        net::Connection::CloseHandler{});
    daemons.push_back(std::move(conn));
    // Hello so the coordinator counts the connection as a daemon (one
    // Hello per connection; multiplexed reports carry their own ids).
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = c * mux;
    net::Buffer out;
    net::encodeMessage(hello, out);
    daemons.back()->sendFrame(out);
  }

  // A blackholed machine: says Hello over a raw blocking socket (same
  // [u32 length][payload] framing Connection writes), then never reads.
  // Broadcasts pile up in its kernel buffers until the coordinator's
  // backpressure parks it; it must not slow the healthy rounds timed
  // below. The fd stays open (and unread) for the whole measurement.
  net::Fd blackholed;
  if (s.opt.blackhole_peer) {
    blackholed = net::connectTcp(coordinator.port(), /*non_blocking=*/false);
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = s.daemons + 7;
    net::Buffer payload;
    net::encodeMessage(hello, payload);
    net::Buffer frame;
    frame.putU32(static_cast<std::uint32_t>(payload.readableBytes()));
    frame.append(payload.readable());
    const auto bytes = frame.readable();
    for (std::size_t off = 0; off < bytes.size();) {
      const ssize_t n = ::write(blackholed.get(), bytes.data() + off,
                                bytes.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  const std::size_t settle_target = conns + (s.opt.blackhole_peer ? 1 : 0);

  // Let the fleet settle, then time `rounds` full epochs. The deadline
  // scales with the configured interval: the big sweep points run long
  // rounds by design.
  const auto deadline =
      Clock::now() +
      std::chrono::seconds(
          90 + static_cast<int>(ccfg.sync_interval *
                                (static_cast<double>(s.rounds) +
                                 static_cast<double>(mux)) *
                                6.0));
  while (coordinator.daemonCount() < settle_target && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }
  // Epochs broadcast while connections were still joining can never be
  // fully delivered — their frames only went to the peers connected at
  // the time. Wait for a post-settle epoch to complete end to end before
  // deriving the timed window (or pacing the seeding) off max_full_epoch,
  // else the window can cover permanently incomplete epochs.
  const std::uint64_t settled_epoch = max_full_epoch;
  while (max_full_epoch < settled_epoch + 2 && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  if (partitioned) {
    // Seed the population in paced batches: one logical daemon's full
    // slice per connection per epoch. Seeding everything at once would
    // put the entire population into a single delta frame per peer
    // (coflows x ~25 B, fanned out to every connection); pacing keeps
    // each tick's delta at conns x slice entries.
    std::vector<std::size_t> next_seed(conns, 0);
    std::size_t seeded = 0;
    std::uint64_t seed_epoch = max_full_epoch;
    while (seeded < s.daemons && Clock::now() < deadline) {
      if (max_full_epoch > seed_epoch) {
        seed_epoch = max_full_epoch;
        for (std::size_t c = 0; c < conns; ++c) {
          if (next_seed[c] >= mux) continue;
          const std::size_t d = c * mux + next_seed[c]++;
          net::Message report;
          report.type = net::MessageType::kSizeReport;
          report.daemon_id = d;
          report.epoch = seed_epoch;
          report.sizes.reserve(slice);
          for (std::size_t k = 0; k < slice; ++k) {
            // Spread starting sizes so the population lands across the
            // D-CLAS queues instead of piling into the first one.
            local[d][k] =
                (1.0 + static_cast<double>((d * slice + k) % 64)) * util::kMB;
            report.sizes.push_back(
                net::CoflowSize{coflows[d * slice + k], local[d][k]});
          }
          net::Buffer out;
          net::encodeMessage(report, out);
          daemons[c]->sendFrame(out);
          ++seeded;
        }
      }
      loop.runOnce(std::chrono::milliseconds(5));
    }
  }

  const std::uint64_t start_epoch = max_full_epoch + 2;
  const std::uint64_t end_epoch = start_epoch + static_cast<std::uint64_t>(s.rounds);
  window_begin = start_epoch;
  window_end = end_epoch;
  while (max_full_epoch < end_epoch && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  double total = 0;
  int counted = 0;
  for (const auto& [epoch, times] : epochs) {
    if (epoch >= start_epoch && epoch < end_epoch && times.count == conns) {
      total += std::chrono::duration<double>(times.last - times.first).count();
      ++counted;
    }
  }
  daemons.clear();
  coordinator.stop();
  RoundCost cost;
  cost.avg_fanout_seconds = counted > 0 ? total / counted : -1;
  cost.down_bytes_per_round = bytes_down / s.rounds;
  cost.up_bytes_per_round = bytes_up / s.rounds;
  cost.live_coflows = coflows.size();
  return cost;
}

/// Legacy entry point (the full/delta A/B, the isolation drill, table
/// mode): one connection per daemon, 100 shared coflows, single shard.
RoundCost measureRounds(std::size_t num_daemons, int rounds, bool full_mode,
                        RoundOptions opt = {}) {
  RoundSetup s;
  s.daemons = num_daemons;
  s.rounds = rounds;
  s.full_mode = full_mode;
  s.opt = opt;
  return measureRounds(s);
}

struct FailoverCost {
  double p50_seconds = -1;   ///< Median kill-to-recovered time per daemon.
  double p99_seconds = -1;
  std::size_t recovered = 0; ///< Daemons that converged on the standby.
};

/// Kills a primary serving `num_daemons` emulated daemons mid-stream and
/// measures, per daemon, the time from the kill to the first fenced
/// schedule frame applied from the promoted warm standby (detection +
/// reconnect + takeover + re-broadcast — the full outage as a machine
/// experiences it). Daemons redial the standby as soon as their primary
/// connection drops, exactly like runtime::Daemon's endpoint rotation.
FailoverCost measureFailover(std::size_t num_daemons) {
  using Clock = std::chrono::steady_clock;
  runtime::CoordinatorConfig ccfg;
  ccfg.sync_interval = std::max(0.050, static_cast<double>(num_daemons) * 100e-6);
  auto primary = std::make_unique<runtime::Coordinator>(ccfg);
  primary->start();
  runtime::CoordinatorConfig scfg = ccfg;
  scfg.standby_of = primary->port();
  scfg.takeover_intervals = 5;
  runtime::Coordinator standby(scfg);
  standby.start();

  runtime::AaloClient client(primary->port());
  std::vector<coflow::CoflowId> coflows;
  for (int i = 0; i < 100; ++i) coflows.push_back(client.registerCoflow());

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> daemons(num_daemons);
  std::vector<Clock::time_point> recovered_at(num_daemons);
  std::vector<char> recovered(num_daemons, 0), needs_dial(num_daemons, 0);
  std::size_t recovered_count = 0;
  bool killed = false;
  Clock::time_point kill_time;

  auto dial = [&](std::size_t d, std::uint16_t port) {
    net::Fd fd = net::connectTcp(port);
    daemons[d] = std::make_unique<net::Connection>(
        loop, std::move(fd),
        [&, d](net::Buffer& payload) {
          const auto msg = net::decodeMessage(payload);
          if (msg.type != net::MessageType::kScheduleUpdate &&
              msg.type != net::MessageType::kScheduleDelta) {
            return;
          }
          // Fence 2 can only come from the promoted standby.
          if (killed && !recovered[d] && msg.fence >= 2) {
            recovered[d] = 1;
            recovered_at[d] = Clock::now();
            ++recovered_count;
          }
        },
        [&, d] { needs_dial[d] = 1; });
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = d;
    net::Buffer out;
    net::encodeMessage(hello, out);
    daemons[d]->sendFrame(out);
    // One absolute report so the recovered schedule is non-trivial; the
    // redial resends it, mirroring the real daemon's forced resync.
    net::Message report;
    report.type = net::MessageType::kSizeReport;
    report.daemon_id = d;
    report.sizes.push_back(
        net::CoflowSize{coflows[d % coflows.size()], 10 * util::kMB});
    out.clear();
    net::encodeMessage(report, out);
    daemons[d]->sendFrame(out);
  };

  for (std::size_t d = 0; d < num_daemons; ++d) dial(d, primary->port());
  const auto deadline = Clock::now() + std::chrono::seconds(120);
  while (primary->daemonCount() < num_daemons && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }
  // Loopback settle beats the primary's first broadcast tick: killing now
  // would measure a cold-start takeover of an empty standby. Wait until
  // the standby has mirrored a snapshot plus a delta — the warm-standby
  // scenario this benchmark claims to measure.
  while (standby.stats().follower_frames_applied.load(
             std::memory_order_relaxed) < 2 &&
         Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  kill_time = Clock::now();
  killed = true;
  primary->stop();
  primary.reset();

  while (recovered_count < num_daemons && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(1));
    for (std::size_t d = 0; d < num_daemons; ++d) {
      if (!needs_dial[d]) continue;
      needs_dial[d] = 0;  // Replacing daemons[d] outside its callbacks.
      dial(d, standby.port());
    }
  }

  FailoverCost cost;
  cost.recovered = recovered_count;
  if (recovered_count > 0) {
    std::vector<double> times;
    times.reserve(recovered_count);
    for (std::size_t d = 0; d < num_daemons; ++d) {
      if (recovered[d]) {
        times.push_back(
            std::chrono::duration<double>(recovered_at[d] - kill_time).count());
      }
    }
    std::sort(times.begin(), times.end());
    cost.p50_seconds = times[times.size() / 2];
    cost.p99_seconds = times[std::min(times.size() - 1, times.size() * 99 / 100)];
  }
  daemons.clear();
  standby.stop();
  return cost;
}

std::string formatBytes(double bytes) {
  char buf[32];
  if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1e3);
  }
  return buf;
}

// --- daemons x shards sweep -----------------------------------------------

struct SweepPoint {
  std::size_t daemons = 0;
  std::size_t shards = 1;
};

struct SweepResult {
  SweepPoint point;
  std::size_t connections = 0;
  std::size_t mux = 1;
  int rounds = 0;
  double interval = 0;
  RoundCost cost;
};

/// Builds the shard-sweep grid: explicit --daemons/--shards lists cross
/// producted, or the default grid — every shard count at 1000 daemons,
/// the 1-vs-8 A/B at 10k and 100k.
std::vector<SweepPoint> sweepGrid(const std::vector<std::size_t>& daemons_list,
                                  const std::vector<std::size_t>& shards_list) {
  std::vector<SweepPoint> grid;
  if (!daemons_list.empty()) {
    const std::vector<std::size_t> shards =
        shards_list.empty() ? std::vector<std::size_t>{1, 8} : shards_list;
    for (const std::size_t d : daemons_list) {
      for (const std::size_t sh : shards) grid.push_back({d, sh});
    }
    return grid;
  }
  for (const std::size_t sh : {1ul, 2ul, 4ul, 8ul}) grid.push_back({1000, sh});
  for (const std::size_t d : {10000ul, 100000ul}) {
    for (const std::size_t sh : {1ul, 8ul}) grid.push_back({d, sh});
  }
  return grid;
}

SweepResult runSweepPoint(const SweepPoint& p, int rounds_override) {
  SweepResult r;
  r.point = p;
  // Smallest mux factor that fits the connection ceiling and divides the
  // daemon count evenly (logical daemons per connection must be uniform).
  std::size_t mux = (p.daemons + kMaxConnections - 1) / kMaxConnections;
  while (p.daemons % mux != 0) ++mux;
  r.mux = mux;
  r.connections = p.daemons / mux;
  r.rounds = rounds_override > 0 ? rounds_override
             : p.daemons <= 1000 ? 15
             : p.daemons <= 10000 ? 10
                                  : 5;
  // Identical Δ across shard counts at a given size so the fan-out A/B
  // compares like with like; grows with N per §7.6.
  r.interval = std::max(0.050, static_cast<double>(p.daemons) * 20e-6);

  RoundSetup s;
  s.daemons = p.daemons;
  s.connections = r.connections;
  s.shards = p.shards;
  s.rounds = r.rounds;
  s.interval = r.interval;
  s.snapshot_every = 0;  // Periodic snapshot refreshes off the timed path.
  r.cost = measureRounds(s);
  std::fprintf(stderr,
               "  [sweep %6zu daemons x %zu shards, %4zu conns] round %s, "
               "down %s, up %s\n",
               p.daemons, p.shards, r.connections,
               util::formatSeconds(r.cost.avg_fanout_seconds).c_str(),
               formatBytes(r.cost.down_bytes_per_round).c_str(),
               formatBytes(r.cost.up_bytes_per_round).c_str());
  return r;
}

struct JsonOptions {
  const char* path = nullptr;
  std::vector<std::size_t> daemons_list;
  std::vector<std::size_t> shards_list;
  int rounds_override = -1;
  /// Record only the shard sweep (skips the full/delta A/B, the HA
  /// drills, and the live-coflow point) — the CI perf gate's mode.
  bool sweep_only = false;
  /// Coflow population for the high-cardinality point; 0 skips it.
  std::size_t live_coflows = 1'000'000;
  /// --live-coflows was given explicitly: run the point even under
  /// --sweep-only (which otherwise skips it along with the HA drills).
  bool live_coflows_explicit = false;
};

/// `--json PATH` mode: the record the acceptance criteria cite
/// (BENCH_net.json) — the full/delta A/B at N ∈ {100, 1000}, the
/// daemons x shards sweep, HA drills, and the >= 1M live-coflow point.
int recordJson(const JsonOptions& jopt) {
  const int rounds = 15;
  std::ofstream out(jopt.path);
  if (!out) {
    std::fprintf(stderr, "fig14: cannot open %s\n", jopt.path);
    return 1;
  }
  out << "{\n  \"bench\": \"fig14_coordination_data_path\",\n"
      << "  \"rounds\": " << rounds << ",\n  \"coflows\": 100,\n"
      << "  \"changed_per_round\": 5,\n"
      << "  \"single_core_host\": true,\n"
      << "  \"mux_note\": \"logical daemons share TCP connections above "
      << kMaxConnections
      << " (RLIMIT_NOFILE; both socket ends in-process); fan-out timing "
         "is per connection — see connections/mux_factor per point\",\n"
      << "  \"results\": [";
  bool first = true;
  std::unordered_map<std::string, RoundCost> by_key;
  if (!jopt.sweep_only) {
    for (const std::size_t n : {100ul, 1000ul}) {
      for (const bool full : {true, false}) {
        const RoundCost cost = measureRounds(n, rounds, full);
        const std::string mode = full ? "full" : "delta";
        by_key[mode + std::to_string(n)] = cost;
        out << (first ? "" : ",") << "\n    {\"daemons\": " << n
            << ", \"mode\": \"" << mode
            << "\", \"avg_round_s\": " << cost.avg_fanout_seconds
            << ", \"down_bytes_per_round\": " << cost.down_bytes_per_round
            << ", \"up_bytes_per_round\": " << cost.up_bytes_per_round << "}";
        first = false;
        std::fprintf(stderr, "  [%s %4zu daemons] round %s, down %s, up %s\n",
                     mode.c_str(), n,
                     util::formatSeconds(cost.avg_fanout_seconds).c_str(),
                     formatBytes(cost.down_bytes_per_round).c_str(),
                     formatBytes(cost.up_bytes_per_round).c_str());
      }
    }
  }
  out << "\n  ],";

  // The daemons x shards sweep: the multi-threaded sharded coordinator
  // against the single-threaded oracle at matched Δ.
  const auto grid = sweepGrid(jopt.daemons_list, jopt.shards_list);
  std::vector<SweepResult> sweep;
  sweep.reserve(grid.size());
  for (const auto& p : grid) {
    sweep.push_back(runSweepPoint(p, jopt.rounds_override));
  }
  out << "\n  \"shard_sweep\": [";
  first = true;
  for (const auto& r : sweep) {
    out << (first ? "" : ",") << "\n    {\"daemons\": " << r.point.daemons
        << ", \"shards\": " << r.point.shards
        << ", \"connections\": " << r.connections
        << ", \"mux_factor\": " << r.mux << ", \"rounds\": " << r.rounds
        << ", \"interval_s\": " << r.interval
        << ", \"avg_round_s\": " << r.cost.avg_fanout_seconds
        << ", \"down_bytes_per_round\": " << r.cost.down_bytes_per_round
        << ", \"up_bytes_per_round\": " << r.cost.up_bytes_per_round << "}";
    first = false;
  }
  out << "\n  ],";
  // Per-size speedup of the highest shard count over --shards 1. On this
  // one-core host the workers time-slice, so ~1.0 is the honest expected
  // value; the record exists so multi-core runs can diff against it.
  out << "\n  \"shard_speedups\": [";
  first = true;
  for (const auto& r : sweep) {
    if (r.point.shards == 1) continue;
    const SweepResult* base = nullptr;
    for (const auto& b : sweep) {
      if (b.point.daemons == r.point.daemons && b.point.shards == 1) base = &b;
    }
    if (base == nullptr || r.cost.avg_fanout_seconds <= 0) continue;
    const double speedup =
        base->cost.avg_fanout_seconds / r.cost.avg_fanout_seconds;
    out << (first ? "" : ",") << "\n    {\"daemons\": " << r.point.daemons
        << ", \"shards\": " << r.point.shards
        << ", \"round_time_speedup_vs_1shard\": " << speedup << "}";
    first = false;
    std::fprintf(stderr,
                 "  [sweep %6zu daemons] %zu shards vs 1: %.2fx round time\n",
                 r.point.daemons, r.point.shards, speedup);
  }
  out << "\n  ]";

  if ((!jopt.sweep_only || jopt.live_coflows_explicit) &&
      jopt.live_coflows > 0) {
    // High-cardinality point: a >= 1M live-coflow schedule state under
    // the sharded coordinator. Few connections by design — the cost being
    // measured is the coordination tick against a huge standing
    // population, not fan-out width.
    RoundSetup lc;
    lc.daemons = 256;
    lc.connections = 8;
    lc.shards = 8;
    lc.coflows = jopt.live_coflows;
    lc.rounds = 10;
    lc.interval = 0.050;
    lc.snapshot_every = 0;
    const RoundCost lcost = measureRounds(lc);
    std::fprintf(stderr,
                 "  [live-coflows %zu, 256 daemons x 8 shards] round %s\n",
                 lcost.live_coflows,
                 util::formatSeconds(lcost.avg_fanout_seconds).c_str());
    out << ",\n  \"live_coflows\": {\"coflows\": " << lcost.live_coflows
        << ", \"daemons\": 256, \"connections\": 8, \"shards\": 8"
        << ", \"rounds\": " << lc.rounds
        << ", \"avg_round_s\": " << lcost.avg_fanout_seconds
        << ", \"down_bytes_per_round\": " << lcost.down_bytes_per_round
        << ", \"up_bytes_per_round\": " << lcost.up_bytes_per_round << "}";
  }

  if (!jopt.sweep_only) {
    const auto& full1k = by_key["full1000"];
    const auto& delta1k = by_key["delta1000"];
    const double speedup =
        delta1k.avg_fanout_seconds > 0
            ? full1k.avg_fanout_seconds / delta1k.avg_fanout_seconds
            : -1;
    const double wire_total_full =
        full1k.down_bytes_per_round + full1k.up_bytes_per_round;
    const double wire_total_delta =
        delta1k.down_bytes_per_round + delta1k.up_bytes_per_round;
    const double wire_ratio =
        wire_total_delta > 0 ? wire_total_full / wire_total_delta : -1;
    // High-availability record: warm-standby failover recovery and the
    // blackholed-daemon isolation A/B, both at 1000 daemons.
    const FailoverCost failover = measureFailover(1000);
    std::fprintf(stderr,
                 "  [failover 1000 daemons] recovered %zu, p50 %s, p99 %s\n",
                 failover.recovered,
                 util::formatSeconds(failover.p50_seconds).c_str(),
                 util::formatSeconds(failover.p99_seconds).c_str());
    RoundOptions iso;
    iso.disable_watchdogs = true;
    const RoundCost iso_healthy = measureRounds(1000, rounds, false, iso);
    iso.blackhole_peer = true;
    const RoundCost iso_degraded = measureRounds(1000, rounds, false, iso);
    const double iso_ratio =
        iso_healthy.avg_fanout_seconds > 0
            ? iso_degraded.avg_fanout_seconds / iso_healthy.avg_fanout_seconds
            : -1;
    std::fprintf(stderr,
                 "  [isolation 1000 daemons] healthy round %s, with blackholed "
                 "peer %s (ratio %.2f)\n",
                 util::formatSeconds(iso_healthy.avg_fanout_seconds).c_str(),
                 util::formatSeconds(iso_degraded.avg_fanout_seconds).c_str(),
                 iso_ratio);

    out << ",\n  \"round_time_speedup_1000\": " << speedup
        << ",\n  \"wire_bytes_ratio_1000\": " << wire_ratio
        << ",\n  \"failover\": {\"daemons\": 1000, \"takeover_intervals\": 5"
        << ", \"recovered\": " << failover.recovered
        << ", \"recovery_p50_s\": " << failover.p50_seconds
        << ", \"recovery_p99_s\": " << failover.p99_seconds << "}"
        << ",\n  \"overload_isolation\": {\"daemons\": 1000"
        << ", \"healthy_round_s\": " << iso_healthy.avg_fanout_seconds
        << ", \"blackholed_round_s\": " << iso_degraded.avg_fanout_seconds
        << ", \"round_time_ratio\": " << iso_ratio << "}";
    std::fprintf(stderr,
                 "fig14: @1000 daemons delta is %.2fx faster per round, "
                 "%.1fx fewer bytes on the wire\n",
                 speedup, wire_ratio);
  }
  out << "\n}\n";
  std::fprintf(stderr, "wrote %s\n", jopt.path);
  return 0;
}

std::vector<std::size_t> parseSizeList(const char* arg) {
  std::vector<std::size_t> out;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) {
      std::fprintf(stderr, "fig14: bad list element in '%s'\n", arg);
      std::exit(2);
    }
    out.push_back(static_cast<std::size_t>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonOptions jopt;
  for (int i = 1; i < argc; ++i) {
    const auto needsValue = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fig14: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      jopt.path = needsValue("--json");
    } else if (std::strcmp(argv[i], "--daemons") == 0) {
      jopt.daemons_list = parseSizeList(needsValue("--daemons"));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      jopt.shards_list = parseSizeList(needsValue("--shards"));
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      jopt.rounds_override = std::atoi(needsValue("--rounds"));
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      jopt.sweep_only = true;
    } else if (std::strcmp(argv[i], "--live-coflows") == 0) {
      jopt.live_coflows = static_cast<std::size_t>(
          std::strtoull(needsValue("--live-coflows"), nullptr, 10));
      jopt.live_coflows_explicit = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--daemons N,N,...] "
                   "[--shards K,K,...] [--rounds R] [--sweep-only] "
                   "[--live-coflows M]\n",
                   argv[0]);
      return 2;
    }
  }
  if (jopt.path != nullptr) return recordJson(jopt);

  bench::header(
      "Figure 14: scalability",
      "(a) coordination time grows ~linearly with daemon count (paper: "
      "8ms @100 ... 992ms @100k daemons across 100 machines); (b) "
      "improvement over fairness degrades gently to Δ=1s (1.93x -> "
      "1.78x) and collapses past Δ=10s");

  std::printf("\nFigure 14a — real loopback coordination rounds "
              "(100 coflows, 5 changing per Δ), full vs delta data path:\n");
  util::Table rounds_table({"# emulated daemons", "full round", "full wire/round",
                            "delta round", "delta wire/round"});
  for (const std::size_t n : {100ul, 500ul, 1000ul, 2500ul, 5000ul}) {
    const RoundCost full = measureRounds(n, 15, true);
    const RoundCost delta = measureRounds(n, 15, false);
    rounds_table.addRow(
        {std::to_string(n),
         full.avg_fanout_seconds < 0 ? "timeout"
                                     : util::formatSeconds(full.avg_fanout_seconds),
         formatBytes(full.down_bytes_per_round + full.up_bytes_per_round),
         delta.avg_fanout_seconds < 0
             ? "timeout"
             : util::formatSeconds(delta.avg_fanout_seconds),
         formatBytes(delta.down_bytes_per_round + delta.up_bytes_per_round)});
    std::fprintf(stderr, "  [fanout %5zu daemons] done\n", n);
  }
  rounds_table.print(std::cout);

  std::printf("\nSharded coordinator fan-out at 1000 daemons "
              "(delta path, matched Δ; one-core host — workers time-slice):\n");
  util::Table shard_table({"shards", "round", "wire/round"});
  for (const std::size_t sh : {1ul, 2ul, 4ul, 8ul}) {
    const SweepResult r = runSweepPoint({1000, sh}, 10);
    shard_table.addRow(
        {std::to_string(sh),
         r.cost.avg_fanout_seconds < 0
             ? "timeout"
             : util::formatSeconds(r.cost.avg_fanout_seconds),
         formatBytes(r.cost.down_bytes_per_round +
                     r.cost.up_bytes_per_round)});
  }
  shard_table.print(std::cout);

  std::printf("\nHigh availability at 1000 daemons (warm standby, "
              "takeover after 5Δ):\n");
  const FailoverCost failover = measureFailover(1000);
  std::printf("  failover recovery: %zu/1000 daemons, p50 %s, p99 %s\n",
              failover.recovered,
              util::formatSeconds(failover.p50_seconds).c_str(),
              util::formatSeconds(failover.p99_seconds).c_str());
  RoundOptions iso;
  iso.disable_watchdogs = true;
  const RoundCost iso_healthy = measureRounds(1000, 15, false, iso);
  iso.blackhole_peer = true;
  const RoundCost iso_degraded = measureRounds(1000, 15, false, iso);
  std::printf("  blackholed-peer isolation: healthy round %s vs %s "
              "(ratio %.2f)\n",
              util::formatSeconds(iso_healthy.avg_fanout_seconds).c_str(),
              util::formatSeconds(iso_degraded.avg_fanout_seconds).c_str(),
              iso_healthy.avg_fanout_seconds > 0
                  ? iso_degraded.avg_fanout_seconds /
                        iso_healthy.avg_fanout_seconds
                  : -1.0);

  std::printf("\nFigure 14b — impact of the coordination interval Δ "
              "(simulation):\n");
  const auto wl = bench::standardWorkload(250, 40, 55);
  const auto fc = bench::standardFabric();
  // The Δ sweep is pure simulation — batch it. (Panel (a) above exercises
  // real sockets on this host and must stay serial to keep timings clean.)
  const std::vector<double> deltas = {0.01, 0.1, 1.0, 10.0, 100.0};
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); },
                            "per-flow fair"));
  for (const double delta : deltas) {
    jobs.push_back(bench::job(wl, fc, [delta] { return bench::makeAalo(delta); },
                              "aalo Δ=" + util::formatSeconds(delta)));
  }
  const auto results = bench::runBatch(std::move(jobs));
  const auto& fair_result = results[0];
  util::Table delta_table({"Δ", "improvement over fair (avg CCT)"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    delta_table.addRow({util::formatSeconds(deltas[i]),
                        util::Table::num(
                            analysis::normalizedCct(fair_result, results[1 + i]).avg,
                            2) +
                            "x"});
  }
  delta_table.print(std::cout);
  std::printf("\n(paper: tiny coflows are still better off under Aalo than "
              "per-flow fairness even at large Δ)\n");
  return 0;
}
