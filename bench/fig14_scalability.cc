// Figure 14: Aalo at scale.
//  (a) Real coordination rounds over loopback TCP: one coordinator thread
//      serving N emulated daemons (each receiving a 100-coflow schedule
//      and answering with a size report). The paper measured 8ms at 100
//      daemons up to 992ms at 100,000 (EC2, 100 machines); here every
//      daemon shares one host, so absolute numbers differ but the linear
//      growth in N is the result.
//  (b) Simulation: the price of stale coordination — Aalo's improvement
//      over per-flow fairness as Δ grows.
#include <sys/epoll.h>

#include <chrono>
#include <unordered_map>

#include "bench/common.h"
#include "net/connection.h"
#include "net/protocol.h"
#include "runtime/client.h"
#include "runtime/coordinator.h"

using namespace aalo;

namespace {

/// Runs `rounds` coordination rounds against a live Coordinator with
/// `num_daemons` emulated daemons and returns the average time from a
/// round's first schedule delivery to its last (the broadcast fan-out
/// cost the paper plots).
double measureRounds(std::size_t num_daemons, int rounds) {
  runtime::CoordinatorConfig ccfg;
  // Rounds must not overlap or send backlogs compound — the paper makes
  // the same point: "Δ must be increased for Aalo to scale" (§7.6).
  ccfg.sync_interval = std::max(0.050, static_cast<double>(num_daemons) * 100e-6);
  runtime::Coordinator coordinator(ccfg);
  coordinator.start();

  // 100 concurrent coflows' scheduling info per update, as in the paper.
  runtime::AaloClient client(coordinator.port());
  std::vector<coflow::CoflowId> coflows;
  for (int i = 0; i < 100; ++i) coflows.push_back(client.registerCoflow());

  using Clock = std::chrono::steady_clock;
  struct EpochTimes {
    Clock::time_point first;
    Clock::time_point last;
    std::size_t count = 0;
  };
  std::unordered_map<std::uint64_t, EpochTimes> epochs;

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Connection>> daemons;
  daemons.reserve(num_daemons);
  std::uint64_t max_full_epoch = 0;
  for (std::size_t d = 0; d < num_daemons; ++d) {
    net::Fd fd = net::connectTcp(coordinator.port());
    auto conn = std::make_unique<net::Connection>(
        loop, std::move(fd),
        [&, d](net::Buffer& payload) {
          const auto msg = net::decodeMessage(payload);
          if (msg.type != net::MessageType::kScheduleUpdate) return;
          auto& times = epochs[msg.epoch];
          const auto now = Clock::now();
          if (times.count == 0) times.first = now;
          times.last = now;
          if (++times.count == num_daemons && msg.epoch > max_full_epoch) {
            max_full_epoch = msg.epoch;
          }
          // Answer with this daemon's size report, like a real round.
          net::Message report;
          report.type = net::MessageType::kSizeReport;
          report.daemon_id = d;
          for (const auto& id : coflows) {
            report.sizes.push_back(net::CoflowSize{id, 1e6});
          }
          net::Buffer out;
          net::encodeMessage(report, out);
          daemons[d]->sendFrame(out);
        },
        net::Connection::CloseHandler{});
    daemons.push_back(std::move(conn));
    // Hello so the coordinator counts us as a daemon.
    net::Message hello;
    hello.type = net::MessageType::kHello;
    hello.daemon_id = d;
    net::Buffer out;
    net::encodeMessage(hello, out);
    daemons.back()->sendFrame(out);
  }

  // Let the fleet settle, then time `rounds` full epochs.
  const auto deadline = Clock::now() + std::chrono::seconds(90);
  while (coordinator.daemonCount() < num_daemons && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }
  const std::uint64_t start_epoch = max_full_epoch + 2;
  const std::uint64_t end_epoch = start_epoch + static_cast<std::uint64_t>(rounds);
  while (max_full_epoch < end_epoch && Clock::now() < deadline) {
    loop.runOnce(std::chrono::milliseconds(5));
  }

  double total = 0;
  int counted = 0;
  for (const auto& [epoch, times] : epochs) {
    if (epoch >= start_epoch && epoch < end_epoch && times.count == num_daemons) {
      total += std::chrono::duration<double>(times.last - times.first).count();
      ++counted;
    }
  }
  daemons.clear();
  coordinator.stop();
  return counted > 0 ? total / counted : -1;
}

}  // namespace

int main() {
  bench::header(
      "Figure 14: scalability",
      "(a) coordination time grows ~linearly with daemon count (paper: "
      "8ms @100 ... 992ms @100k daemons across 100 machines); (b) "
      "improvement over fairness degrades gently to Δ=1s (1.93x -> "
      "1.78x) and collapses past Δ=10s");

  std::printf("\nFigure 14a — real loopback coordination rounds "
              "(100 coflows/update):\n");
  util::Table rounds_table({"# emulated daemons", "avg round fan-out time"});
  for (const std::size_t n : {100ul, 500ul, 1000ul, 2500ul, 5000ul}) {
    const double avg = measureRounds(n, 15);
    rounds_table.addRow({std::to_string(n),
                         avg < 0 ? "timeout" : util::formatSeconds(avg)});
    std::fprintf(stderr, "  [fanout %5zu daemons] done\n", n);
  }
  rounds_table.print(std::cout);

  std::printf("\nFigure 14b — impact of the coordination interval Δ "
              "(simulation):\n");
  const auto wl = bench::standardWorkload(250, 40, 55);
  const auto fc = bench::standardFabric();
  // The Δ sweep is pure simulation — batch it. (Panel (a) above exercises
  // real sockets on this host and must stay serial to keep timings clean.)
  const std::vector<double> deltas = {0.01, 0.1, 1.0, 10.0, 100.0};
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); },
                            "per-flow fair"));
  for (const double delta : deltas) {
    jobs.push_back(bench::job(wl, fc, [delta] { return bench::makeAalo(delta); },
                              "aalo Δ=" + util::formatSeconds(delta)));
  }
  const auto results = bench::runBatch(std::move(jobs));
  const auto& fair_result = results[0];
  util::Table delta_table({"Δ", "improvement over fair (avg CCT)"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    delta_table.addRow({util::formatSeconds(deltas[i]),
                        util::Table::num(
                            analysis::normalizedCct(fair_result, results[1 + i]).avg,
                            2) +
                            "x"});
  }
  delta_table.print(std::cout);
  std::printf("\n(paper: tiny coflows are still better off under Aalo than "
              "per-flow fairness even at large Δ)\n");
  return 0;
}
