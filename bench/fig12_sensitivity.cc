// Figure 12: Aalo's sensitivity to its queue structure, measured as the
// improvement over per-flow fairness (higher is better for Aalo).
//  (a) number of queues K            (b) first threshold Q1^hi
//  (c) (K, E, Q1^hi) combinations    (d) equal-sized (linear) queues
#include "bench/common.h"

using namespace aalo;

namespace {

double improvementOverFair(const coflow::Workload& wl, fabric::FabricConfig fc,
                           const sim::SimResult& fair_result,
                           sched::DClasConfig cfg, const std::string& label) {
  auto aalo = bench::makeAaloWith(cfg);
  const auto result = bench::run(wl, fc, *aalo, label);
  return analysis::normalizedCct(fair_result, result).avg;
}

}  // namespace

int main() {
  bench::header(
      "Figure 12: sensitivity to the queue structure",
      "(a) biggest jump going K=1 -> 2 (HOL blocking avoided), flat after; "
      "(b) steady for Q1 up to ~100MB, degrades beyond; (c) stable across "
      "(K,E,Q1) for K>2; (d) equal-sized queues need orders of magnitude "
      "more queues than exponential spacing");

  const auto wl = bench::standardWorkload(250, 40, 33);
  const auto fc = bench::standardFabric();
  auto fair = bench::makeFair();
  const auto fair_result = bench::run(wl, fc, *fair, "per-flow fair");

  // (a) Number of queues.
  {
    std::printf("\nFigure 12a — number of queues K (E=10, Q1=10MB):\n");
    util::Table table({"K", "improvement over fair (avg CCT)"});
    for (const int k : {1, 2, 5, 10, 15}) {
      sched::DClasConfig cfg;
      cfg.num_queues = k;
      table.addRow({std::to_string(k),
                    util::Table::num(improvementOverFair(wl, fc, fair_result, cfg,
                                                         "K=" + std::to_string(k)),
                                     2) +
                        "x"});
    }
    table.print(std::cout);
  }

  // (b) First queue threshold.
  {
    std::printf("\nFigure 12b — Q1 upper limit (K=10, E=10):\n");
    util::Table table({"Q1^hi", "improvement over fair (avg CCT)"});
    for (const double q1 : {1e6, 1e7, 1e8, 1e9, 1e10}) {
      sched::DClasConfig cfg;
      cfg.first_threshold = q1;
      table.addRow({util::formatBytes(q1),
                    util::Table::num(improvementOverFair(wl, fc, fair_result, cfg,
                                                         "Q1=" + util::formatBytes(q1)),
                                     2) +
                        "x"});
    }
    table.print(std::cout);
  }

  // (c) Combinations.
  {
    std::printf("\nFigure 12c — (K, E, Q1) combinations:\n");
    util::Table table({"K", "E", "Q1^hi", "improvement over fair"});
    struct Combo {
      int k;
      double e;
      double q1;
    };
    const Combo combos[] = {{2, 10, 1e7},  {5, 10, 1e7},  {10, 10, 1e7},
                            {10, 4, 1e7},  {10, 32, 1e7}, {5, 10, 1e8},
                            {10, 10, 1e6}, {15, 4, 1e6},  {10, 32, 1e8}};
    for (const auto& combo : combos) {
      sched::DClasConfig cfg;
      cfg.num_queues = combo.k;
      cfg.exp_factor = combo.e;
      cfg.first_threshold = combo.q1;
      table.addRow({std::to_string(combo.k), util::Table::num(combo.e, 0),
                    util::formatBytes(combo.q1),
                    util::Table::num(improvementOverFair(wl, fc, fair_result, cfg,
                                                         "combo"),
                                     2) +
                        "x"});
    }
    table.print(std::cout);
  }

  // (d) Equal-sized queues: linear thresholds over the max coflow size.
  {
    std::printf("\nFigure 12d — equal-sized queues (linear thresholds):\n");
    util::Bytes max_size = 0;
    for (const auto& job : wl.jobs) {
      for (const auto& c : job.coflows) max_size = std::max(max_size, c.totalBytes());
    }
    util::Table table({"num queues", "improvement over fair"});
    for (const int k : {2, 10, 100, 1000}) {
      sched::DClasConfig cfg;
      cfg.explicit_thresholds.clear();
      for (int q = 1; q < k; ++q) {
        cfg.explicit_thresholds.push_back(max_size * static_cast<double>(q) /
                                          static_cast<double>(k));
      }
      if (cfg.explicit_thresholds.empty()) cfg.num_queues = 1;
      table.addRow({std::to_string(k),
                    util::Table::num(improvementOverFair(wl, fc, fair_result, cfg,
                                                         "linear K=" + std::to_string(k)),
                                     2) +
                        "x"});
    }
    table.print(std::cout);
    std::printf("(max coflow size in this trace: %s)\n",
                util::formatBytes(max_size).c_str());
  }
  return 0;
}
