// Figure 12: Aalo's sensitivity to its queue structure, measured as the
// improvement over per-flow fairness (higher is better for Aalo).
//  (a) number of queues K            (b) first threshold Q1^hi
//  (c) (K, E, Q1^hi) combinations    (d) equal-sized (linear) queues
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 12: sensitivity to the queue structure",
      "(a) biggest jump going K=1 -> 2 (HOL blocking avoided), flat after; "
      "(b) steady for Q1 up to ~100MB, degrades beyond; (c) stable across "
      "(K,E,Q1) for K>2; (d) equal-sized queues need orders of magnitude "
      "more queues than exponential spacing");

  const auto wl = bench::standardWorkload(250, 40, 33);
  const auto fc = bench::standardFabric();

  // The whole figure is one sweep of independent runs (per-flow fair plus
  // 23 D-CLAS configurations); collect every point, then run the batch.
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); },
                            "per-flow fair"));
  auto addPoint = [&](sched::DClasConfig cfg, std::string label) {
    jobs.push_back(bench::job(
        wl, fc, [cfg] { return bench::makeAaloWith(cfg); }, std::move(label)));
  };

  // (a) Number of queues.
  const std::vector<int> ks = {1, 2, 5, 10, 15};
  for (const int k : ks) {
    sched::DClasConfig cfg;
    cfg.num_queues = k;
    addPoint(cfg, "K=" + std::to_string(k));
  }

  // (b) First queue threshold.
  const std::vector<double> q1s = {1e6, 1e7, 1e8, 1e9, 1e10};
  for (const double q1 : q1s) {
    sched::DClasConfig cfg;
    cfg.first_threshold = q1;
    addPoint(cfg, "Q1=" + util::formatBytes(q1));
  }

  // (c) Combinations.
  struct Combo {
    int k;
    double e;
    double q1;
  };
  const std::vector<Combo> combos = {{2, 10, 1e7},  {5, 10, 1e7},  {10, 10, 1e7},
                                     {10, 4, 1e7},  {10, 32, 1e7}, {5, 10, 1e8},
                                     {10, 10, 1e6}, {15, 4, 1e6},  {10, 32, 1e8}};
  for (const auto& combo : combos) {
    sched::DClasConfig cfg;
    cfg.num_queues = combo.k;
    cfg.exp_factor = combo.e;
    cfg.first_threshold = combo.q1;
    addPoint(cfg, "combo K=" + std::to_string(combo.k));
  }

  // (d) Equal-sized queues: linear thresholds over the max coflow size.
  util::Bytes max_size = 0;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) max_size = std::max(max_size, c.totalBytes());
  }
  const std::vector<int> linear_ks = {2, 10, 100, 1000};
  for (const int k : linear_ks) {
    sched::DClasConfig cfg;
    for (int q = 1; q < k; ++q) {
      cfg.explicit_thresholds.push_back(max_size * static_cast<double>(q) /
                                        static_cast<double>(k));
    }
    if (cfg.explicit_thresholds.empty()) cfg.num_queues = 1;
    addPoint(cfg, "linear K=" + std::to_string(k));
  }

  const auto results = bench::runBatch(std::move(jobs));
  const auto& fair_result = results[0];
  std::size_t next = 1;
  auto improvement = [&] {
    return util::Table::num(
               analysis::normalizedCct(fair_result, results[next++]).avg, 2) +
           "x";
  };

  {
    std::printf("\nFigure 12a — number of queues K (E=10, Q1=10MB):\n");
    util::Table table({"K", "improvement over fair (avg CCT)"});
    for (const int k : ks) table.addRow({std::to_string(k), improvement()});
    table.print(std::cout);
  }
  {
    std::printf("\nFigure 12b — Q1 upper limit (K=10, E=10):\n");
    util::Table table({"Q1^hi", "improvement over fair (avg CCT)"});
    for (const double q1 : q1s) table.addRow({util::formatBytes(q1), improvement()});
    table.print(std::cout);
  }
  {
    std::printf("\nFigure 12c — (K, E, Q1) combinations:\n");
    util::Table table({"K", "E", "Q1^hi", "improvement over fair"});
    for (const auto& combo : combos) {
      table.addRow({std::to_string(combo.k), util::Table::num(combo.e, 0),
                    util::formatBytes(combo.q1), improvement()});
    }
    table.print(std::cout);
  }
  {
    std::printf("\nFigure 12d — equal-sized queues (linear thresholds):\n");
    util::Table table({"num queues", "improvement over fair"});
    for (const int k : linear_ks) table.addRow({std::to_string(k), improvement()});
    table.print(std::cout);
    std::printf("(max coflow size in this trace: %s)\n",
                util::formatBytes(max_size).c_str());
  }
  return 0;
}
