// Figure 6: average and 95th-percentile CCT improvements over per-flow
// fairness and Varys, split by the Table 3 coflow bins.
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 6: CCT improvements by coflow bin (EC2 scale)",
      "Aalo beats fairness in every bin (more in bins 2/4 than 1/3: longer "
      "coflows give better size estimates); Aalo matches Varys on bin 4 "
      "(almost all bytes) and trails only on the short bins 1/3");

  const auto wl = bench::standardWorkload();
  const auto fc = bench::standardFabric();

  auto aalo = bench::makeAalo();
  auto fair = bench::makeFair();
  auto varys = bench::makeVarys();
  const auto aalo_result = bench::run(wl, fc, *aalo, aalo->name());
  const auto fair_result = bench::run(wl, fc, *fair, fair->name());
  const auto varys_result = bench::run(wl, fc, *varys, varys->name());

  util::Table table({"bin", "coflows", "fair (avg)", "fair (p95)", "varys (avg)",
                     "varys (p95)"});
  const char* labels[5] = {"Bin 1 (SN)", "Bin 2 (LN)", "Bin 3 (SW)", "Bin 4 (LW)",
                           "ALL"};
  for (int bin = 0; bin <= 4; ++bin) {
    const int selector = bin == 4 ? 0 : bin + 1;  // 0 = all bins.
    const auto f = analysis::normalizedCctForBin(fair_result, aalo_result, selector);
    const auto v = analysis::normalizedCctForBin(varys_result, aalo_result, selector);
    table.addRow({labels[bin], std::to_string(f.count),
                  util::Table::num(f.avg, 2) + "x", util::Table::num(f.p95, 2) + "x",
                  util::Table::num(v.avg, 2) + "x", util::Table::num(v.p95, 2) + "x"});
  }
  table.print(std::cout);
  std::printf("\n(>1 = Aalo faster; <1 = the compared scheme faster)\n");
  return 0;
}
