#include "bench/common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aalo::bench {

coflow::Workload standardWorkload(std::size_t jobs, int ports, std::uint64_t seed) {
  workload::FacebookConfig cfg;
  cfg.num_jobs = jobs;
  cfg.num_ports = ports;
  cfg.seed = seed;
  // High enough load that coflows actually contend (the paper's trace has
  // intense bursts); at 0.15 s mean spacing the fabric sees sustained
  // backlog and scheduling discipline dominates CCTs.
  cfg.mean_interarrival = 0.25;
  return workload::generateFacebookWorkload(cfg);
}

fabric::FabricConfig standardFabric(int ports) {
  return fabric::FabricConfig{ports, util::kGbps};
}

util::Bytes heavyThreshold(const coflow::Workload& workload, double percentile) {
  util::Summary sizes;
  for (const auto& job : workload.jobs) {
    for (const auto& c : job.coflows) sizes.add(c.totalBytes());
  }
  return sizes.percentile(percentile);
}

std::unique_ptr<sim::Scheduler> makeAalo(util::Seconds sync_interval) {
  sched::DClasConfig cfg;  // Paper defaults: K=10, E=10, Q1=10MB.
  cfg.sync_interval = sync_interval;
  return std::make_unique<sched::DClasScheduler>(cfg);
}

std::unique_ptr<sim::Scheduler> makeAaloWith(sched::DClasConfig config) {
  return std::make_unique<sched::DClasScheduler>(config);
}

std::unique_ptr<sim::Scheduler> makeFair() {
  return std::make_unique<sched::PerFlowFairScheduler>();
}

std::unique_ptr<sim::Scheduler> makeVarys() {
  return std::make_unique<sched::VarysScheduler>();
}

std::unique_ptr<sim::Scheduler> makeUncoordinated() {
  sched::DClasConfig cfg;  // Same queue structure as Aalo, local knowledge.
  return std::make_unique<sched::UncoordinatedDClasScheduler>(cfg, /*quantum=*/2.0);
}

std::unique_ptr<sim::Scheduler> makeFifoLm(util::Bytes heavy_threshold) {
  sched::FifoLmConfig cfg;
  cfg.heavy_threshold = heavy_threshold;
  cfg.quantum = 2.0;
  return std::make_unique<sched::FifoLmScheduler>(cfg);
}

std::unique_ptr<sim::Scheduler> makeFifo() {
  return std::make_unique<sched::FifoScheduler>();
}

sim::SimResult run(const coflow::Workload& workload, fabric::FabricConfig fabric,
                   sim::Scheduler& scheduler, const std::string& label) {
  const auto start = std::chrono::steady_clock::now();
  sim::SimResult result = sim::runSimulation(workload, fabric, scheduler);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::fprintf(stderr, "  [%-24s] %zu coflows, %zu rounds, %.1fs wall\n",
               label.c_str(), result.coflows.size(), result.allocation_rounds, wall);
  return result;
}

sim::BatchJob job(const coflow::Workload& workload, fabric::FabricConfig fabric,
                  std::function<std::unique_ptr<sim::Scheduler>()> make_scheduler,
                  std::string label) {
  sim::BatchJob j;
  j.label = std::move(label);
  j.workload = &workload;
  j.fabric = fabric;
  j.make_scheduler = std::move(make_scheduler);
  return j;
}

std::vector<sim::SimResult> runBatch(std::vector<sim::BatchJob> jobs) {
  sim::BatchOptions opts;
  if (const char* env = std::getenv("AALO_BENCH_JOBS")) {
    opts.num_threads = std::atoi(env);
  }
  opts.on_done = [](std::size_t /*index*/, const sim::BatchJob& j,
                    const sim::SimResult& result, double wall) {
    const std::string& label = j.label.empty() ? result.scheduler : j.label;
    std::fprintf(stderr, "  [%-24s] %zu coflows, %zu rounds, %.1fs wall\n",
                 label.c_str(), result.coflows.size(), result.allocation_rounds,
                 wall);
  };
  return sim::runBatch(jobs, opts);
}

void printNormalizedByBin(const std::vector<sim::SimResult>& compared,
                          const sim::SimResult& aalo) {
  util::Table table({"scheme", "bin1 SN", "bin2 LN", "bin3 SW", "bin4 LW", "ALL",
                     "ALL p95"});
  for (const auto& result : compared) {
    std::vector<std::string> row = {result.scheduler};
    for (int bin = 1; bin <= 4; ++bin) {
      const auto n = analysis::normalizedCctForBin(result, aalo, bin);
      row.push_back(n.count == 0 ? "-" : util::Table::num(n.avg, 2) + "x");
    }
    const auto all = analysis::normalizedCct(result, aalo);
    row.push_back(util::Table::num(all.avg, 2) + "x");
    row.push_back(util::Table::num(all.p95, 2) + "x");
    table.addRow(std::move(row));
  }
  table.print(std::cout);
}

void printCctCdfs(const std::vector<sim::SimResult>& runs, std::size_t points) {
  // One shared set of log-spaced probe points spanning all runs.
  double lo = 1e18;
  double hi = 0;
  for (const auto& r : runs) {
    for (const auto& rec : r.coflows) {
      lo = std::min(lo, std::max(rec.cct(), 1e-4));
      hi = std::max(hi, rec.cct());
    }
  }
  std::vector<std::string> header = {"CCT <="};
  std::vector<util::Cdf> cdfs;
  for (const auto& r : runs) {
    header.push_back(r.scheduler);
    cdfs.emplace_back(analysis::cctSamples(r));
  }
  util::Table table(std::move(header));
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = lo * std::pow(hi / lo, t);
    std::vector<std::string> row = {util::formatSeconds(x)};
    for (const auto& cdf : cdfs) {
      row.push_back(util::Table::num(cdf.fractionAtOrBelow(x), 3));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
}

void header(const std::string& figure, const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper expectation: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

}  // namespace aalo::bench
