// Theorem A.1: any coflow scheduling algorithm in which schedulers do not
// coordinate has a worst-case approximation ratio of Omega(sqrt(n)) for n
// concurrent coflows.
//
// Adversarial family (the proof's structure, instantiated so local
// knowledge actively misleads): on an m-port fabric,
//   * w "wide" coflows arrive first, each with one flow of size
//     0.9*Q1 on every port pair (i -> m-i-1). Locally each piece stays
//     below the first queue threshold forever, so an uncoordinated
//     scheduler keeps every wide coflow in its top local queue and serves
//     them FIFO ahead of everything else — even though each wide coflow's
//     *global* size is m times larger.
//   * m "thin" coflows follow, one per port pair, of size 0.95*Q1 —
//     genuinely small, globally and locally.
// Coordination reveals the wide coflows' global sizes and demotes them
// immediately; without it, every thin coflow waits for the whole wide
// convoy. With m = w^2 ports (n = w^2 + w coflows) the sum-CCT ratio
// grows as Theta(w) = Theta(sqrt(n)).
#include <cmath>

#include "bench/common.h"

using namespace aalo;

namespace {

constexpr double kQ1 = 10.0;  // First queue threshold (bytes; rate 1 B/s).

coflow::Workload adversarialInstance(int wides, int ports) {
  coflow::Workload wl;
  wl.num_ports = ports;
  coflow::JobId next = 0;
  for (int k = 0; k < wides; ++k) {
    coflow::JobSpec job;
    job.id = next++;
    job.arrival = 0;
    coflow::CoflowSpec spec;
    spec.id = {job.id, 0};
    for (int i = 0; i < ports; ++i) {
      spec.flows.push_back({static_cast<coflow::PortId>(i),
                            static_cast<coflow::PortId>(ports - i - 1), 0.9 * kQ1, 0});
    }
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  for (int i = 0; i < ports; ++i) {
    coflow::JobSpec job;
    job.id = next++;
    job.arrival = 0;
    coflow::CoflowSpec spec;
    spec.id = {job.id, 0};
    spec.flows.push_back({static_cast<coflow::PortId>(i),
                          static_cast<coflow::PortId>(ports - i - 1), 0.95 * kQ1, 0});
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  return wl;
}

double sumCct(const sim::SimResult& r) {
  double total = 0;
  for (const auto& rec : r.coflows) total += rec.cct();
  return total;
}

}  // namespace

int main() {
  bench::header(
      "Theorem A.1: the cost of no coordination",
      "the uncoordinated/coordinated sum-CCT ratio grows ~ sqrt(n) on the "
      "adversarial family; §7.2.1 measured a 15.8x average loss on the "
      "Facebook trace");

  util::Table table({"n coflows", "ports", "coordinated sum CCT",
                     "uncoordinated sum CCT", "ratio", "sqrt(n)"});
  for (const int w : {2, 3, 4, 5, 6}) {
    const int m = w * w;
    const int n = m + w;
    const auto wl = adversarialInstance(w, m);
    const fabric::FabricConfig fc{m, 1.0};

    sched::DClasConfig cfg;
    cfg.first_threshold = kQ1;
    cfg.exp_factor = 10.0;
    cfg.num_queues = 4;
    sched::DClasScheduler coordinated(cfg);
    sched::UncoordinatedDClasScheduler uncoordinated(cfg, /*quantum=*/0.2);

    const auto coord = sim::runSimulation(wl, fc, coordinated);
    const auto local = sim::runSimulation(wl, fc, uncoordinated);
    const double c = sumCct(coord);
    const double u = sumCct(local);
    table.addRow({std::to_string(n), std::to_string(m), util::Table::num(c, 1),
                  util::Table::num(u, 1), util::Table::num(u / c, 2) + "x",
                  util::Table::num(std::sqrt(n), 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nThe ratio tracks sqrt(n): locally every wide coflow looks tiny\n"
      "(0.9*Q1 per port), so uncoordinated D-CLAS convoys them ahead of the\n"
      "truly-small thin coflows; the coordinator sees their global sizes\n"
      "and demotes them within one threshold crossing.\n");
  return 0;
}
