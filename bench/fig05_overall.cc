// Figure 5: average and 95th-percentile improvements in job completion
// time (a) and time spent in communication (b) using Aalo, binned by the
// fraction of job duration spent in communication (Table 2 bands).
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 5: job-level improvements over per-flow fairness and Varys",
      "vs fairness: JCT up to 1.57x (p95 1.77x), comm time up to 2.25x "
      "(p95 2.93x); improvements grow with communication fraction; Aalo "
      "within ~12% of clairvoyant Varys on average");

  const auto wl = bench::standardWorkload();
  const auto fc = bench::standardFabric();

  // The three runs are independent; let the BatchRunner overlap them.
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeAalo(); }));
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); }));
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeVarys(); }));
  const auto results = bench::runBatch(std::move(jobs));
  const auto& aalo_result = results[0];
  const auto& fair_result = results[1];
  const auto& varys_result = results[2];

  const char* band_labels[5] = {"<25%", "25-49%", "50-74%", ">=75%", "All Jobs"};

  auto printPanel = [&](const char* title, bool comm) {
    std::printf("\n%s (normalized w.r.t. Aalo; >1 = Aalo faster):\n", title);
    util::Table table({"comm fraction", "fair (avg)", "fair (p95)", "varys (avg)",
                       "varys (p95)", "jobs"});
    for (int band = 0; band < 5; ++band) {
      // Jobs are binned by their communication fraction under the
      // status-quo baseline (per-flow fairness), as in the trace.
      const auto vs_fair =
          analysis::normalizedJobTimes(fair_result, aalo_result, fair_result, band);
      const auto vs_varys =
          analysis::normalizedJobTimes(varys_result, aalo_result, fair_result, band);
      const auto& f = comm ? vs_fair.comm : vs_fair.jct;
      const auto& v = comm ? vs_varys.comm : vs_varys.jct;
      if (f.count == 0) {
        table.addRow({band_labels[band], "-", "-", "-", "-", "0"});
        continue;
      }
      table.addRow({band_labels[band], util::Table::num(f.avg, 2) + "x",
                    util::Table::num(f.p95, 2) + "x", util::Table::num(v.avg, 2) + "x",
                    util::Table::num(v.p95, 2) + "x", std::to_string(f.count)});
    }
    table.print(std::cout);
  };

  printPanel("Figure 5a — end-to-end job completion time", /*comm=*/false);
  printPanel("Figure 5b — time spent in communication", /*comm=*/true);
  return 0;
}
