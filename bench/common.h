// Shared harness for the paper-reproduction benches (one binary per table
// or figure; see DESIGN.md section 4 for the experiment index).
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/compare.h"
#include "coflow/spec.h"
#include "sched/clas.h"
#include "sched/dclas.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/fifo_lm.h"
#include "sched/las.h"
#include "sched/offline_opt.h"
#include "sched/uncoordinated.h"
#include "sched/varys.h"
#include "sim/batch.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/facebook.h"

namespace aalo::bench {

/// The workload Figures 5-9 benches replay: Facebook-like mix (Tables 2
/// and 3) on a 40-port, 1 Gbps fabric.
coflow::Workload standardWorkload(std::size_t jobs = 250, int ports = 40,
                                  std::uint64_t seed = 42);

fabric::FabricConfig standardFabric(int ports = 40);

/// 80th percentile of coflow total size — FIFO-LM's heavy threshold, as
/// the paper selected for Baraat (§7.2.1).
util::Bytes heavyThreshold(const coflow::Workload& workload, double percentile = 80);

// Paper-default scheduler factories (Δ, quanta scaled to trace seconds).
std::unique_ptr<sim::Scheduler> makeAalo(util::Seconds sync_interval = 0);
std::unique_ptr<sim::Scheduler> makeAaloWith(sched::DClasConfig config);
std::unique_ptr<sim::Scheduler> makeFair();
std::unique_ptr<sim::Scheduler> makeVarys();
std::unique_ptr<sim::Scheduler> makeUncoordinated();
std::unique_ptr<sim::Scheduler> makeFifoLm(util::Bytes heavy_threshold);
std::unique_ptr<sim::Scheduler> makeFifo();

/// Runs and reports wall time to stderr so long benches show progress.
sim::SimResult run(const coflow::Workload& workload, fabric::FabricConfig fabric,
                   sim::Scheduler& scheduler, const std::string& label);

/// Builds a BatchJob for the sweep benches. The workload is captured by
/// pointer and must outlive the batch; the factory runs once, inside the
/// worker thread. An empty label falls back to the scheduler's name.
sim::BatchJob job(const coflow::Workload& workload, fabric::FabricConfig fabric,
                  std::function<std::unique_ptr<sim::Scheduler>()> make_scheduler,
                  std::string label = "");

/// Runs independent sims on the BatchRunner pool with the same stderr
/// progress lines as `run`. Results come back in submission order, so
/// output is identical to a serial loop. Thread count: AALO_BENCH_JOBS
/// env var if set, else all hardware threads.
std::vector<sim::SimResult> runBatch(std::vector<sim::BatchJob> jobs);

/// Prints the paper's standard table: normalized completion time w.r.t.
/// Aalo for each Table 3 bin and overall, average and 95th percentile.
void printNormalizedByBin(const std::vector<sim::SimResult>& compared,
                          const sim::SimResult& aalo);

/// Prints a CDF table (log-spaced CCT points) for several runs.
void printCctCdfs(const std::vector<sim::SimResult>& runs, std::size_t points = 12);

/// Banner with the paper's expectation for this experiment.
void header(const std::string& figure, const std::string& expectation);

}  // namespace aalo::bench
