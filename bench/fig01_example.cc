// Figure 1: the worked 3x3 example. Instance recovered by
// tools/fig1_search.cc; the caption's averages are 5.33 / 5 / 4 / 3.67.
#include <unordered_map>

#include "bench/common.h"

using namespace aalo;

namespace {

coflow::Workload figure1Workload() {
  coflow::Workload wl;
  wl.num_ports = 8;
  auto add = [&](coflow::JobId id, double arrival,
                 std::vector<coflow::FlowSpec> flows) {
    coflow::JobSpec job;
    job.id = id;
    job.arrival = arrival;
    coflow::CoflowSpec spec;
    spec.id = {id, 0};
    spec.flows = std::move(flows);
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  };
  add(0, 0.0, {{0, 2, 3.0, 0}, {1, 3, 3.0, 0}});  // C1 (orange)
  add(1, 1.0, {{1, 4, 2.0, 0}});                  // C2 (blue)
  add(2, 0.0, {{0, 5, 3.0, 0}});                  // C3 (black)
  return wl;
}

double avgCct(const sim::SimResult& r) {
  double total = 0;
  for (const auto& rec : r.coflows) total += rec.cct();
  return total / static_cast<double>(r.coflows.size());
}

}  // namespace

int main() {
  bench::header("Figure 1: online coflow scheduling over a 3x3 fabric",
                "avg CCT — per-flow fairness 5.33, decentralized LAS 5.00, "
                "CLAS 4.00, optimal 3.67 time units");

  const auto wl = figure1Workload();
  const fabric::FabricConfig fc{8, 1.0};

  sched::PerFlowFairScheduler fair;
  sched::LasConfig las_cfg;
  las_cfg.tie_window = 1e-4;
  las_cfg.quantum = 0.05;
  sched::DecentralizedLasScheduler las(las_cfg);
  sched::ClasConfig clas_cfg;
  clas_cfg.tie_window = 1e-4;
  clas_cfg.quantum = 0.05;
  sched::ContinuousClasScheduler clas(clas_cfg);
  std::unordered_map<coflow::CoflowId, int> opt_order = {
      {{2, 0}, 0}, {{1, 0}, 1}, {{0, 0}, 2}};
  sched::OfflineOrderScheduler opt(opt_order);

  util::Table table({"mechanism (subfigure)", "avg CCT (paper)", "avg CCT (measured)"});
  struct Row {
    const char* label;
    const char* paper;
    sim::Scheduler* scheduler;
  };
  std::vector<Row> rows = {{"per-flow fairness (c)", "5.33", &fair},
                           {"decentralized LAS (d)", "5.00", &las},
                           {"CLAS, instant coordination (e)", "4.00", &clas},
                           {"optimal schedule (f)", "3.67", &opt}};
  for (const Row& row : rows) {
    const auto result = sim::runSimulation(wl, fc, *row.scheduler);
    table.addRow({row.label, row.paper, util::Table::num(avgCct(result), 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nInstance: C1 = {3 units on P1, 3 on P2} @t=0, C2 = {2 on P2} @t=1,\n"
      "C3 = {3 on P1} @t=0; unit-capacity ports, egress uncontended.\n");
  return 0;
}
