// Figure 8: trace-driven simulation comparing Aalo with per-flow
// fairness, clairvoyant Varys, uncoordinated non-clairvoyant scheduling
// (per-port D-CLAS on local knowledge), and Baraat's FIFO-LM; plus the
// §7.2.1 "how far from optimal" estimate against the offline
// 2-approximation for concurrent open shop.
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 8: simulated improvements in average CCT",
      "fairness ~2.7x; uncoordinated non-clairvoyant ~15.8x (coordination "
      "is the key!); FIFO-LM ~18.6x with its 80th-percentile heavy "
      "threshold; offline 2-approx: 0.75/0.78/1.32/1.15x per bin, 1.19x "
      "overall");

  const auto wl = bench::standardWorkload(300, 40, 11);
  const auto fc = bench::standardFabric();

  // All eleven runs (Aalo, five baselines, five FIFO-LM sweep points) are
  // independent — one batch keeps every core busy.
  const std::vector<double> sweep_pcts = {20.0, 40.0, 60.0, 80.0, 90.0};
  std::vector<sim::BatchJob> jobs;
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeAalo(); }));
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeFair(); }));
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeVarys(); }));
  jobs.push_back(bench::job(wl, fc, [] { return bench::makeUncoordinated(); }));
  const util::Bytes heavy80 = bench::heavyThreshold(wl, 80);
  jobs.push_back(bench::job(wl, fc, [heavy80] { return bench::makeFifoLm(heavy80); }));
  jobs.push_back(bench::job(wl, fc, [&wl] {
    return std::make_unique<sched::OfflineOrderScheduler>(
        sched::computeConcurrentOpenShopOrder(wl));
  }));
  for (const double pct : sweep_pcts) {
    const util::Bytes threshold = bench::heavyThreshold(wl, pct);
    jobs.push_back(bench::job(
        wl, fc, [threshold] { return bench::makeFifoLm(threshold); },
        "fifo-lm@p" + util::Table::num(pct, 0)));
  }
  const auto results = bench::runBatch(std::move(jobs));
  const auto& aalo_result = results[0];
  const std::vector<sim::SimResult> compared(results.begin() + 1, results.begin() + 6);

  std::printf("\nNormalized average CCT w.r.t. Aalo, per Table 3 bin:\n");
  bench::printNormalizedByBin(compared, aalo_result);

  // The paper swept FIFO-LM's heavy threshold and found the 80th
  // percentile best; reproduce the sweep direction.
  std::printf("\nFIFO-LM heavy-threshold sweep (normalized avg CCT w.r.t. Aalo):\n");
  util::Table sweep({"threshold percentile", "normalized avg CCT"});
  for (std::size_t i = 0; i < sweep_pcts.size(); ++i) {
    const auto& result = results[6 + i];
    sweep.addRow({util::Table::num(sweep_pcts[i], 0) + "th",
                  util::Table::num(analysis::normalizedCct(result, aalo_result).avg, 2) +
                      "x"});
  }
  sweep.print(std::cout);
  return 0;
}
