// Figure 8: trace-driven simulation comparing Aalo with per-flow
// fairness, clairvoyant Varys, uncoordinated non-clairvoyant scheduling
// (per-port D-CLAS on local knowledge), and Baraat's FIFO-LM; plus the
// §7.2.1 "how far from optimal" estimate against the offline
// 2-approximation for concurrent open shop.
#include "bench/common.h"

using namespace aalo;

int main() {
  bench::header(
      "Figure 8: simulated improvements in average CCT",
      "fairness ~2.7x; uncoordinated non-clairvoyant ~15.8x (coordination "
      "is the key!); FIFO-LM ~18.6x with its 80th-percentile heavy "
      "threshold; offline 2-approx: 0.75/0.78/1.32/1.15x per bin, 1.19x "
      "overall");

  const auto wl = bench::standardWorkload(300, 40, 11);
  const auto fc = bench::standardFabric();

  auto aalo = bench::makeAalo();
  const auto aalo_result = bench::run(wl, fc, *aalo, aalo->name());

  std::vector<sim::SimResult> compared;
  auto fair = bench::makeFair();
  compared.push_back(bench::run(wl, fc, *fair, fair->name()));
  auto varys = bench::makeVarys();
  compared.push_back(bench::run(wl, fc, *varys, varys->name()));
  auto uncoordinated = bench::makeUncoordinated();
  compared.push_back(bench::run(wl, fc, *uncoordinated, uncoordinated->name()));
  auto fifo_lm = bench::makeFifoLm(bench::heavyThreshold(wl, 80));
  compared.push_back(bench::run(wl, fc, *fifo_lm, fifo_lm->name()));
  auto offline = std::make_unique<sched::OfflineOrderScheduler>(
      sched::computeConcurrentOpenShopOrder(wl));
  compared.push_back(bench::run(wl, fc, *offline, offline->name()));

  std::printf("\nNormalized average CCT w.r.t. Aalo, per Table 3 bin:\n");
  bench::printNormalizedByBin(compared, aalo_result);

  // The paper swept FIFO-LM's heavy threshold and found the 80th
  // percentile best; reproduce the sweep direction.
  std::printf("\nFIFO-LM heavy-threshold sweep (normalized avg CCT w.r.t. Aalo):\n");
  util::Table sweep({"threshold percentile", "normalized avg CCT"});
  for (const double pct : {20.0, 40.0, 60.0, 80.0, 90.0}) {
    auto lm = bench::makeFifoLm(bench::heavyThreshold(wl, pct));
    const auto result = bench::run(wl, fc, *lm, "fifo-lm@p" + util::Table::num(pct, 0));
    sweep.addRow({util::Table::num(pct, 0) + "th",
                  util::Table::num(analysis::normalizedCct(result, aalo_result).avg, 2) +
                      "x"});
  }
  sweep.print(std::cout);
  return 0;
}
