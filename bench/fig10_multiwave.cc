// Figure 10 (+ Table 4): multi-wave coflows. Aalo keeps one coflow per
// stage across waves; Varys must either split each wave into its own
// coflow (losing the stage-level objective) or add barriers (losing
// parallelism). Stage-level completion = the job's communication time.
#include <set>

#include "bench/common.h"
#include "workload/transforms.h"

using namespace aalo;

namespace {

/// Average stage-level communication time (the job's comm time: all
/// stage coflows done). With a filter, only the listed jobs count.
double avgStageTime(const sim::SimResult& result,
                    const std::set<coflow::JobId>* only = nullptr) {
  util::Summary s;
  for (const auto& job : result.jobs) {
    if (only != nullptr && !only->contains(job.id)) continue;
    s.add(job.commTime());
  }
  return s.empty() ? 0.0 : s.mean();
}

double p95StageTime(const sim::SimResult& result,
                    const std::set<coflow::JobId>* only = nullptr) {
  util::Summary s;
  for (const auto& job : result.jobs) {
    if (only != nullptr && !only->contains(job.id)) continue;
    s.add(job.commTime());
  }
  return s.empty() ? 0.0 : s.percentile(95);
}

/// Jobs whose stage actually has more than one wave.
std::set<coflow::JobId> multiWaveJobs(const coflow::Workload& wl) {
  std::set<coflow::JobId> jobs;
  for (const auto& job : wl.jobs) {
    for (const auto& c : job.coflows) {
      if (c.waveCount() > 1) jobs.insert(job.id);
    }
  }
  return jobs;
}

}  // namespace

int main() {
  bench::header(
      "Figure 10: multi-wave coflows (normalized w.r.t. Aalo, stage level)",
      "with max waves 1 -> 2 -> 4, Aalo goes from trailing Varys (0.94x) "
      "to beating it (1.21x, up to 7.91x): per-wave Varys coflows ignore "
      "that all waves must finish; barriers kill parallelism");

  const auto fc = bench::standardFabric();

  util::Table table({"max waves", "multi-wave coflows", "varys-per-wave",
                     "varys-barrier", "per-flow fair", "varys-bar (mw avg)",
                     "varys-bar (mw p95)"});
  for (const int max_waves : {1, 2, 4}) {
    // Moderate load: multi-wave effects concern stage structure, not
    // backlog, so queues should mostly drain between bursts.
    workload::FacebookConfig fb_cfg;
    fb_cfg.num_jobs = 200;
    fb_cfg.num_ports = 40;
    fb_cfg.seed = 21;
    fb_cfg.mean_interarrival = 0.8;
    auto wl = workload::generateFacebookWorkload(fb_cfg);
    workload::MultiWaveConfig mw;
    mw.max_waves = max_waves;
    mw.seed = 5;
    const std::size_t multi = workload::applyMultiWave(wl, mw);

    // Aalo handles waves natively: one coflow per stage, attained service
    // only grows (§5.2).
    auto aalo = bench::makeAalo();
    const auto aalo_result = bench::run(wl, fc, *aalo, "aalo waves<=" +
                                                           std::to_string(max_waves));

    // Varys pays its centralized admission cost once per *coflow* (§7.2:
    // "fully centralized solutions like Varys introduce high overheads");
    // per-wave splitting multiplies the number of coflows it must admit.
    const sched::VarysConfig varys_cfg{/*admission_delay=*/0.1};

    // Varys mode (i): each wave is its own clairvoyant coflow.
    const auto split = workload::splitWavesIntoCoflows(wl);
    sched::VarysScheduler varys_split{varys_cfg};
    const auto split_result = bench::run(split, fc, varys_split, "varys per-wave");

    // Varys mode (ii): barrier until the last wave arrives.
    const auto barrier = workload::barrierWaves(wl);
    sched::VarysScheduler varys_barrier{varys_cfg};
    const auto barrier_result = bench::run(barrier, fc, varys_barrier, "varys barrier");

    auto fair = bench::makeFair();
    const auto fair_result = bench::run(wl, fc, *fair, "per-flow fair");

    const auto mw_jobs = multiWaveJobs(wl);
    const double aalo_avg = avgStageTime(aalo_result);
    const double aalo_mw = avgStageTime(aalo_result, &mw_jobs);
    auto cell = [](double v, double base) {
      return base <= 0 ? std::string("-") : util::Table::num(v / base, 2) + "x";
    };
    const double aalo_mw_p95 = p95StageTime(aalo_result, &mw_jobs);
    table.addRow({std::to_string(max_waves), std::to_string(multi),
                  cell(avgStageTime(split_result), aalo_avg),
                  cell(avgStageTime(barrier_result), aalo_avg),
                  cell(avgStageTime(fair_result), aalo_avg),
                  cell(avgStageTime(barrier_result, &mw_jobs), aalo_mw),
                  cell(p95StageTime(barrier_result, &mw_jobs), aalo_mw_p95)});
  }
  std::printf("\nAverage stage-level communication time, normalized w.r.t. Aalo:\n");
  table.print(std::cout);
  std::printf(
      "\n(>1 = Aalo faster. The barrier mode loses parallelism, so its\n"
      "multi-wave columns grow past 1x with the wave count — the paper's\n"
      "trend. Our per-wave Varys stays competitive because it is an\n"
      "idealized SEBF with instantaneous, starvation-free admission; the\n"
      "paper's 7.91x against the real Varys came from straggler waves its\n"
      "admission pipeline scheduled much later, see EXPERIMENTS.md.)\n");
  return 0;
}
