# Empty dependencies file for bench_fig12_sensitivity.
# This may be replaced when dependencies are built.
