file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sensitivity.dir/fig12_sensitivity.cc.o"
  "CMakeFiles/bench_fig12_sensitivity.dir/fig12_sensitivity.cc.o.d"
  "bench_fig12_sensitivity"
  "bench_fig12_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
