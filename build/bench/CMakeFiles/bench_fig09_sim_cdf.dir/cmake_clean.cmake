file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_sim_cdf.dir/fig09_sim_cdf.cc.o"
  "CMakeFiles/bench_fig09_sim_cdf.dir/fig09_sim_cdf.cc.o.d"
  "bench_fig09_sim_cdf"
  "bench_fig09_sim_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sim_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
