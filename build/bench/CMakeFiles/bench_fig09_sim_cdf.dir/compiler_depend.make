# Empty compiler generated dependencies file for bench_fig09_sim_cdf.
# This may be replaced when dependencies are built.
