# Empty dependencies file for bench_fig08_sim.
# This may be replaced when dependencies are built.
