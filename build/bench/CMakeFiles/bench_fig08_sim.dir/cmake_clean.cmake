file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sim.dir/fig08_sim.cc.o"
  "CMakeFiles/bench_fig08_sim.dir/fig08_sim.cc.o.d"
  "bench_fig08_sim"
  "bench_fig08_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
