file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_distributions.dir/fig13_distributions.cc.o"
  "CMakeFiles/bench_fig13_distributions.dir/fig13_distributions.cc.o.d"
  "bench_fig13_distributions"
  "bench_fig13_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
