# Empty compiler generated dependencies file for bench_fig01_example.
# This may be replaced when dependencies are built.
