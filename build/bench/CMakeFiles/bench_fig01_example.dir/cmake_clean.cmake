file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_example.dir/fig01_example.cc.o"
  "CMakeFiles/bench_fig01_example.dir/fig01_example.cc.o.d"
  "bench_fig01_example"
  "bench_fig01_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
