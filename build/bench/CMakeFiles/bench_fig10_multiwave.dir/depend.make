# Empty dependencies file for bench_fig10_multiwave.
# This may be replaced when dependencies are built.
