file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multiwave.dir/fig10_multiwave.cc.o"
  "CMakeFiles/bench_fig10_multiwave.dir/fig10_multiwave.cc.o.d"
  "bench_fig10_multiwave"
  "bench_fig10_multiwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multiwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
