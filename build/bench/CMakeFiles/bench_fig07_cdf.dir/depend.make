# Empty dependencies file for bench_fig07_cdf.
# This may be replaced when dependencies are built.
