file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_cdf.dir/fig07_cdf.cc.o"
  "CMakeFiles/bench_fig07_cdf.dir/fig07_cdf.cc.o.d"
  "bench_fig07_cdf"
  "bench_fig07_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
