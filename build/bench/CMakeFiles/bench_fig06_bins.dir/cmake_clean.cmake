file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_bins.dir/fig06_bins.cc.o"
  "CMakeFiles/bench_fig06_bins.dir/fig06_bins.cc.o.d"
  "bench_fig06_bins"
  "bench_fig06_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
