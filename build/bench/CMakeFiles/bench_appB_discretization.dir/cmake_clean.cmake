file(REMOVE_RECURSE
  "CMakeFiles/bench_appB_discretization.dir/appB_discretization.cc.o"
  "CMakeFiles/bench_appB_discretization.dir/appB_discretization.cc.o.d"
  "bench_appB_discretization"
  "bench_appB_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appB_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
