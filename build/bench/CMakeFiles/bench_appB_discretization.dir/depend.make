# Empty dependencies file for bench_appB_discretization.
# This may be replaced when dependencies are built.
