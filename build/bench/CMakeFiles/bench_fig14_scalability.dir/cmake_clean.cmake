file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_scalability.dir/fig14_scalability.cc.o"
  "CMakeFiles/bench_fig14_scalability.dir/fig14_scalability.cc.o.d"
  "bench_fig14_scalability"
  "bench_fig14_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
