# Empty dependencies file for bench_thmA1_coordination.
# This may be replaced when dependencies are built.
