file(REMOVE_RECURSE
  "CMakeFiles/bench_thmA1_coordination.dir/thmA1_coordination.cc.o"
  "CMakeFiles/bench_thmA1_coordination.dir/thmA1_coordination.cc.o.d"
  "bench_thmA1_coordination"
  "bench_thmA1_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thmA1_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
