file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dag.dir/fig11_dag.cc.o"
  "CMakeFiles/bench_fig11_dag.dir/fig11_dag.cc.o.d"
  "bench_fig11_dag"
  "bench_fig11_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
