file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3_workload.dir/table2_3_workload.cc.o"
  "CMakeFiles/bench_table2_3_workload.dir/table2_3_workload.cc.o.d"
  "bench_table2_3_workload"
  "bench_table2_3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
