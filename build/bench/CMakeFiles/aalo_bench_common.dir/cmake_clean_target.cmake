file(REMOVE_RECURSE
  "libaalo_bench_common.a"
)
