# Empty dependencies file for aalo_bench_common.
# This may be replaced when dependencies are built.
