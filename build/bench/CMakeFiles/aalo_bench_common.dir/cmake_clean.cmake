file(REMOVE_RECURSE
  "CMakeFiles/aalo_bench_common.dir/common.cc.o"
  "CMakeFiles/aalo_bench_common.dir/common.cc.o.d"
  "libaalo_bench_common.a"
  "libaalo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
