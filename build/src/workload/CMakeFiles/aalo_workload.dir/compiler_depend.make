# Empty compiler generated dependencies file for aalo_workload.
# This may be replaced when dependencies are built.
