file(REMOVE_RECURSE
  "CMakeFiles/aalo_workload.dir/distributions.cc.o"
  "CMakeFiles/aalo_workload.dir/distributions.cc.o.d"
  "CMakeFiles/aalo_workload.dir/facebook.cc.o"
  "CMakeFiles/aalo_workload.dir/facebook.cc.o.d"
  "CMakeFiles/aalo_workload.dir/tpcds.cc.o"
  "CMakeFiles/aalo_workload.dir/tpcds.cc.o.d"
  "CMakeFiles/aalo_workload.dir/trace_io.cc.o"
  "CMakeFiles/aalo_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/aalo_workload.dir/transforms.cc.o"
  "CMakeFiles/aalo_workload.dir/transforms.cc.o.d"
  "libaalo_workload.a"
  "libaalo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
