
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/distributions.cc" "src/workload/CMakeFiles/aalo_workload.dir/distributions.cc.o" "gcc" "src/workload/CMakeFiles/aalo_workload.dir/distributions.cc.o.d"
  "/root/repo/src/workload/facebook.cc" "src/workload/CMakeFiles/aalo_workload.dir/facebook.cc.o" "gcc" "src/workload/CMakeFiles/aalo_workload.dir/facebook.cc.o.d"
  "/root/repo/src/workload/tpcds.cc" "src/workload/CMakeFiles/aalo_workload.dir/tpcds.cc.o" "gcc" "src/workload/CMakeFiles/aalo_workload.dir/tpcds.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/aalo_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/aalo_workload.dir/trace_io.cc.o.d"
  "/root/repo/src/workload/transforms.cc" "src/workload/CMakeFiles/aalo_workload.dir/transforms.cc.o" "gcc" "src/workload/CMakeFiles/aalo_workload.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aalo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/aalo_coflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
