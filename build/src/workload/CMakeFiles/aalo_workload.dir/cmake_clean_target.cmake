file(REMOVE_RECURSE
  "libaalo_workload.a"
)
