
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adaptive.cc" "src/sched/CMakeFiles/aalo_sched.dir/adaptive.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/adaptive.cc.o.d"
  "/root/repo/src/sched/clas.cc" "src/sched/CMakeFiles/aalo_sched.dir/clas.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/clas.cc.o.d"
  "/root/repo/src/sched/common.cc" "src/sched/CMakeFiles/aalo_sched.dir/common.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/common.cc.o.d"
  "/root/repo/src/sched/dclas.cc" "src/sched/CMakeFiles/aalo_sched.dir/dclas.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/dclas.cc.o.d"
  "/root/repo/src/sched/fair.cc" "src/sched/CMakeFiles/aalo_sched.dir/fair.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/fair.cc.o.d"
  "/root/repo/src/sched/fifo.cc" "src/sched/CMakeFiles/aalo_sched.dir/fifo.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/fifo.cc.o.d"
  "/root/repo/src/sched/fifo_lm.cc" "src/sched/CMakeFiles/aalo_sched.dir/fifo_lm.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/fifo_lm.cc.o.d"
  "/root/repo/src/sched/gossip.cc" "src/sched/CMakeFiles/aalo_sched.dir/gossip.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/gossip.cc.o.d"
  "/root/repo/src/sched/las.cc" "src/sched/CMakeFiles/aalo_sched.dir/las.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/las.cc.o.d"
  "/root/repo/src/sched/offline_opt.cc" "src/sched/CMakeFiles/aalo_sched.dir/offline_opt.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/offline_opt.cc.o.d"
  "/root/repo/src/sched/uncoordinated.cc" "src/sched/CMakeFiles/aalo_sched.dir/uncoordinated.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/uncoordinated.cc.o.d"
  "/root/repo/src/sched/varys.cc" "src/sched/CMakeFiles/aalo_sched.dir/varys.cc.o" "gcc" "src/sched/CMakeFiles/aalo_sched.dir/varys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aalo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/aalo_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/aalo_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aalo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
