file(REMOVE_RECURSE
  "libaalo_sched.a"
)
