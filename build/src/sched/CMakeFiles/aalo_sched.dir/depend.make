# Empty dependencies file for aalo_sched.
# This may be replaced when dependencies are built.
