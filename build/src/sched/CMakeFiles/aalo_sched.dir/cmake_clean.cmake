file(REMOVE_RECURSE
  "CMakeFiles/aalo_sched.dir/adaptive.cc.o"
  "CMakeFiles/aalo_sched.dir/adaptive.cc.o.d"
  "CMakeFiles/aalo_sched.dir/clas.cc.o"
  "CMakeFiles/aalo_sched.dir/clas.cc.o.d"
  "CMakeFiles/aalo_sched.dir/common.cc.o"
  "CMakeFiles/aalo_sched.dir/common.cc.o.d"
  "CMakeFiles/aalo_sched.dir/dclas.cc.o"
  "CMakeFiles/aalo_sched.dir/dclas.cc.o.d"
  "CMakeFiles/aalo_sched.dir/fair.cc.o"
  "CMakeFiles/aalo_sched.dir/fair.cc.o.d"
  "CMakeFiles/aalo_sched.dir/fifo.cc.o"
  "CMakeFiles/aalo_sched.dir/fifo.cc.o.d"
  "CMakeFiles/aalo_sched.dir/fifo_lm.cc.o"
  "CMakeFiles/aalo_sched.dir/fifo_lm.cc.o.d"
  "CMakeFiles/aalo_sched.dir/gossip.cc.o"
  "CMakeFiles/aalo_sched.dir/gossip.cc.o.d"
  "CMakeFiles/aalo_sched.dir/las.cc.o"
  "CMakeFiles/aalo_sched.dir/las.cc.o.d"
  "CMakeFiles/aalo_sched.dir/offline_opt.cc.o"
  "CMakeFiles/aalo_sched.dir/offline_opt.cc.o.d"
  "CMakeFiles/aalo_sched.dir/uncoordinated.cc.o"
  "CMakeFiles/aalo_sched.dir/uncoordinated.cc.o.d"
  "CMakeFiles/aalo_sched.dir/varys.cc.o"
  "CMakeFiles/aalo_sched.dir/varys.cc.o.d"
  "libaalo_sched.a"
  "libaalo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
