# Empty dependencies file for aalo_sim.
# This may be replaced when dependencies are built.
