file(REMOVE_RECURSE
  "libaalo_sim.a"
)
