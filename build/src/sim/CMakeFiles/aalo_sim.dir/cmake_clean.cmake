file(REMOVE_RECURSE
  "CMakeFiles/aalo_sim.dir/simulator.cc.o"
  "CMakeFiles/aalo_sim.dir/simulator.cc.o.d"
  "libaalo_sim.a"
  "libaalo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
