file(REMOVE_RECURSE
  "libaalo_util.a"
)
