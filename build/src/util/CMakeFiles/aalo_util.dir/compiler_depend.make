# Empty compiler generated dependencies file for aalo_util.
# This may be replaced when dependencies are built.
