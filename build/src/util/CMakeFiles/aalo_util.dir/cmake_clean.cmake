file(REMOVE_RECURSE
  "CMakeFiles/aalo_util.dir/log.cc.o"
  "CMakeFiles/aalo_util.dir/log.cc.o.d"
  "CMakeFiles/aalo_util.dir/rng.cc.o"
  "CMakeFiles/aalo_util.dir/rng.cc.o.d"
  "CMakeFiles/aalo_util.dir/stats.cc.o"
  "CMakeFiles/aalo_util.dir/stats.cc.o.d"
  "CMakeFiles/aalo_util.dir/table.cc.o"
  "CMakeFiles/aalo_util.dir/table.cc.o.d"
  "CMakeFiles/aalo_util.dir/units.cc.o"
  "CMakeFiles/aalo_util.dir/units.cc.o.d"
  "libaalo_util.a"
  "libaalo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
