file(REMOVE_RECURSE
  "CMakeFiles/aalo_coflow.dir/id_generator.cc.o"
  "CMakeFiles/aalo_coflow.dir/id_generator.cc.o.d"
  "CMakeFiles/aalo_coflow.dir/spec.cc.o"
  "CMakeFiles/aalo_coflow.dir/spec.cc.o.d"
  "libaalo_coflow.a"
  "libaalo_coflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_coflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
