# Empty compiler generated dependencies file for aalo_coflow.
# This may be replaced when dependencies are built.
