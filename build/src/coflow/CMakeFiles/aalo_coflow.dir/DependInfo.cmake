
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coflow/id_generator.cc" "src/coflow/CMakeFiles/aalo_coflow.dir/id_generator.cc.o" "gcc" "src/coflow/CMakeFiles/aalo_coflow.dir/id_generator.cc.o.d"
  "/root/repo/src/coflow/spec.cc" "src/coflow/CMakeFiles/aalo_coflow.dir/spec.cc.o" "gcc" "src/coflow/CMakeFiles/aalo_coflow.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
