file(REMOVE_RECURSE
  "libaalo_coflow.a"
)
