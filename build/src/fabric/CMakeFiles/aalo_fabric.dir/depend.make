# Empty dependencies file for aalo_fabric.
# This may be replaced when dependencies are built.
