file(REMOVE_RECURSE
  "libaalo_fabric.a"
)
