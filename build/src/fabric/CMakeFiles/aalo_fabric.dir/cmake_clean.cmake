file(REMOVE_RECURSE
  "CMakeFiles/aalo_fabric.dir/fabric.cc.o"
  "CMakeFiles/aalo_fabric.dir/fabric.cc.o.d"
  "CMakeFiles/aalo_fabric.dir/maxmin.cc.o"
  "CMakeFiles/aalo_fabric.dir/maxmin.cc.o.d"
  "libaalo_fabric.a"
  "libaalo_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
