# Empty compiler generated dependencies file for aalo_net.
# This may be replaced when dependencies are built.
