
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/buffer.cc" "src/net/CMakeFiles/aalo_net.dir/buffer.cc.o" "gcc" "src/net/CMakeFiles/aalo_net.dir/buffer.cc.o.d"
  "/root/repo/src/net/connection.cc" "src/net/CMakeFiles/aalo_net.dir/connection.cc.o" "gcc" "src/net/CMakeFiles/aalo_net.dir/connection.cc.o.d"
  "/root/repo/src/net/event_loop.cc" "src/net/CMakeFiles/aalo_net.dir/event_loop.cc.o" "gcc" "src/net/CMakeFiles/aalo_net.dir/event_loop.cc.o.d"
  "/root/repo/src/net/protocol.cc" "src/net/CMakeFiles/aalo_net.dir/protocol.cc.o" "gcc" "src/net/CMakeFiles/aalo_net.dir/protocol.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/aalo_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/aalo_net.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aalo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/aalo_coflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
