file(REMOVE_RECURSE
  "libaalo_net.a"
)
