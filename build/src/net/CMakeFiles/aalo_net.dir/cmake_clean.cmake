file(REMOVE_RECURSE
  "CMakeFiles/aalo_net.dir/buffer.cc.o"
  "CMakeFiles/aalo_net.dir/buffer.cc.o.d"
  "CMakeFiles/aalo_net.dir/connection.cc.o"
  "CMakeFiles/aalo_net.dir/connection.cc.o.d"
  "CMakeFiles/aalo_net.dir/event_loop.cc.o"
  "CMakeFiles/aalo_net.dir/event_loop.cc.o.d"
  "CMakeFiles/aalo_net.dir/protocol.cc.o"
  "CMakeFiles/aalo_net.dir/protocol.cc.o.d"
  "CMakeFiles/aalo_net.dir/socket.cc.o"
  "CMakeFiles/aalo_net.dir/socket.cc.o.d"
  "libaalo_net.a"
  "libaalo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
