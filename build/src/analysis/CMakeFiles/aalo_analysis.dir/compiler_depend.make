# Empty compiler generated dependencies file for aalo_analysis.
# This may be replaced when dependencies are built.
