file(REMOVE_RECURSE
  "libaalo_analysis.a"
)
