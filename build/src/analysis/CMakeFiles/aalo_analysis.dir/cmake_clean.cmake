file(REMOVE_RECURSE
  "CMakeFiles/aalo_analysis.dir/compare.cc.o"
  "CMakeFiles/aalo_analysis.dir/compare.cc.o.d"
  "libaalo_analysis.a"
  "libaalo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
