file(REMOVE_RECURSE
  "CMakeFiles/aalo_runtime.dir/client.cc.o"
  "CMakeFiles/aalo_runtime.dir/client.cc.o.d"
  "CMakeFiles/aalo_runtime.dir/coordinator.cc.o"
  "CMakeFiles/aalo_runtime.dir/coordinator.cc.o.d"
  "CMakeFiles/aalo_runtime.dir/daemon.cc.o"
  "CMakeFiles/aalo_runtime.dir/daemon.cc.o.d"
  "libaalo_runtime.a"
  "libaalo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
