# Empty dependencies file for aalo_runtime.
# This may be replaced when dependencies are built.
