file(REMOVE_RECURSE
  "libaalo_runtime.a"
)
