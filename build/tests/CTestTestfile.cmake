# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/maxmin_test[1]_include.cmake")
include("/root/repo/build/tests/coflow_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/dclas_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fig1_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/uncoordinated_test[1]_include.cmake")
include("/root/repo/build/tests/rack_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
