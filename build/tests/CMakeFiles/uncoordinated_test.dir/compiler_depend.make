# Empty compiler generated dependencies file for uncoordinated_test.
# This may be replaced when dependencies are built.
