file(REMOVE_RECURSE
  "CMakeFiles/uncoordinated_test.dir/uncoordinated_test.cc.o"
  "CMakeFiles/uncoordinated_test.dir/uncoordinated_test.cc.o.d"
  "uncoordinated_test"
  "uncoordinated_test.pdb"
  "uncoordinated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncoordinated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
