# Empty dependencies file for dclas_test.
# This may be replaced when dependencies are built.
