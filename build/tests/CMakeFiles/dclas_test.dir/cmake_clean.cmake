file(REMOVE_RECURSE
  "CMakeFiles/dclas_test.dir/dclas_test.cc.o"
  "CMakeFiles/dclas_test.dir/dclas_test.cc.o.d"
  "dclas_test"
  "dclas_test.pdb"
  "dclas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dclas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
