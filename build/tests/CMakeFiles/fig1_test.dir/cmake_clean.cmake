file(REMOVE_RECURSE
  "CMakeFiles/fig1_test.dir/fig1_test.cc.o"
  "CMakeFiles/fig1_test.dir/fig1_test.cc.o.d"
  "fig1_test"
  "fig1_test.pdb"
  "fig1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
