# Empty compiler generated dependencies file for fig1_test.
# This may be replaced when dependencies are built.
