# Empty compiler generated dependencies file for rack_fabric_test.
# This may be replaced when dependencies are built.
