# Empty dependencies file for rack_fabric_test.
# This may be replaced when dependencies are built.
