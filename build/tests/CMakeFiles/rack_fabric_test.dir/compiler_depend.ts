# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rack_fabric_test.
