file(REMOVE_RECURSE
  "CMakeFiles/rack_fabric_test.dir/rack_fabric_test.cc.o"
  "CMakeFiles/rack_fabric_test.dir/rack_fabric_test.cc.o.d"
  "rack_fabric_test"
  "rack_fabric_test.pdb"
  "rack_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
