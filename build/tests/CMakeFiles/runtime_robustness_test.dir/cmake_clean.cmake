file(REMOVE_RECURSE
  "CMakeFiles/runtime_robustness_test.dir/runtime_robustness_test.cc.o"
  "CMakeFiles/runtime_robustness_test.dir/runtime_robustness_test.cc.o.d"
  "runtime_robustness_test"
  "runtime_robustness_test.pdb"
  "runtime_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
