# Empty dependencies file for runtime_robustness_test.
# This may be replaced when dependencies are built.
