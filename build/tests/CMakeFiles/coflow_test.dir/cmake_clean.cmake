file(REMOVE_RECURSE
  "CMakeFiles/coflow_test.dir/coflow_test.cc.o"
  "CMakeFiles/coflow_test.dir/coflow_test.cc.o.d"
  "coflow_test"
  "coflow_test.pdb"
  "coflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
