# Empty dependencies file for coflow_test.
# This may be replaced when dependencies are built.
