file(REMOVE_RECURSE
  "CMakeFiles/aalo_daemon.dir/aalo_daemon.cc.o"
  "CMakeFiles/aalo_daemon.dir/aalo_daemon.cc.o.d"
  "aalo_daemon"
  "aalo_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
