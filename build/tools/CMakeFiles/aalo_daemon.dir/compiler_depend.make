# Empty compiler generated dependencies file for aalo_daemon.
# This may be replaced when dependencies are built.
