# Empty compiler generated dependencies file for fig1_search.
# This may be replaced when dependencies are built.
