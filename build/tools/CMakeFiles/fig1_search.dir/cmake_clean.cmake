file(REMOVE_RECURSE
  "CMakeFiles/fig1_search.dir/fig1_search.cc.o"
  "CMakeFiles/fig1_search.dir/fig1_search.cc.o.d"
  "fig1_search"
  "fig1_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
