file(REMOVE_RECURSE
  "CMakeFiles/aalo_sim_cli.dir/aalo_sim.cc.o"
  "CMakeFiles/aalo_sim_cli.dir/aalo_sim.cc.o.d"
  "aalo_sim"
  "aalo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
