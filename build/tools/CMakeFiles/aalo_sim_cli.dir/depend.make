# Empty dependencies file for aalo_sim_cli.
# This may be replaced when dependencies are built.
