file(REMOVE_RECURSE
  "CMakeFiles/aalo_tracegen.dir/aalo_tracegen.cc.o"
  "CMakeFiles/aalo_tracegen.dir/aalo_tracegen.cc.o.d"
  "aalo_tracegen"
  "aalo_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
