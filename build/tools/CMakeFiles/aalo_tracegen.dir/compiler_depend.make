# Empty compiler generated dependencies file for aalo_tracegen.
# This may be replaced when dependencies are built.
