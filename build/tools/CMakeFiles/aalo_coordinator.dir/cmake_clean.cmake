file(REMOVE_RECURSE
  "CMakeFiles/aalo_coordinator.dir/aalo_coordinator.cc.o"
  "CMakeFiles/aalo_coordinator.dir/aalo_coordinator.cc.o.d"
  "aalo_coordinator"
  "aalo_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalo_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
