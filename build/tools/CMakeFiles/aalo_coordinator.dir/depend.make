# Empty dependencies file for aalo_coordinator.
# This may be replaced when dependencies are built.
