# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dag_scheduling "/root/repo/build/examples/dag_scheduling")
set_tests_properties(example_dag_scheduling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shuffle_pipeline "/root/repo/build/examples/shuffle_pipeline")
set_tests_properties(example_shuffle_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
