file(REMOVE_RECURSE
  "CMakeFiles/shuffle_pipeline.dir/shuffle_pipeline.cpp.o"
  "CMakeFiles/shuffle_pipeline.dir/shuffle_pipeline.cpp.o.d"
  "shuffle_pipeline"
  "shuffle_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
