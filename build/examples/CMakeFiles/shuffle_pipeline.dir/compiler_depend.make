# Empty compiler generated dependencies file for shuffle_pipeline.
# This may be replaced when dependencies are built.
