# Empty compiler generated dependencies file for dag_scheduling.
# This may be replaced when dependencies are built.
