file(REMOVE_RECURSE
  "CMakeFiles/dag_scheduling.dir/dag_scheduling.cpp.o"
  "CMakeFiles/dag_scheduling.dir/dag_scheduling.cpp.o.d"
  "dag_scheduling"
  "dag_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
