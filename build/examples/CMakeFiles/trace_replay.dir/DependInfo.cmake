
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_replay.cpp" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o" "gcc" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aalo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/coflow/CMakeFiles/aalo_coflow.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/aalo_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aalo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/aalo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aalo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/aalo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aalo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aalo_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
