#include "fabric/maxmin.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aalo::fabric {

namespace {

constexpr double kLevelSlack = 1e-9;

}  // namespace

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       ResidualCapacity& residual) {
  const std::size_t n = demands.size();
  std::vector<util::Rate> rates(n, 0.0);
  if (n == 0) return rates;

  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const Fabric* fabric = residual.fabric();  // Non-null only with racks.
  for (const Demand& d : demands) {
    if (d.src < 0 || static_cast<std::size_t>(d.src) >= ports || d.dst < 0 ||
        static_cast<std::size_t>(d.dst) >= ports) {
      throw std::out_of_range("maxMinAllocate: demand port out of range");
    }
    if (d.rate_cap < 0) throw std::invalid_argument("maxMinAllocate: negative rate cap");
  }

  std::vector<bool> frozen(n, false);
  std::vector<double> wsum_in(ports, 0.0);
  std::vector<double> wsum_out(ports, 0.0);
  const std::size_t racks =
      fabric != nullptr ? static_cast<std::size_t>(fabric->numRacks()) : 0;
  std::vector<double> wsum_up(racks, 0.0);
  std::vector<double> wsum_down(racks, 0.0);
  std::size_t unfrozen = 0;

  auto crossRack = [&](const Demand& d) {
    return fabric != nullptr && fabric->crossRack(d.src, d.dst);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    if (d.weight <= 0.0 || d.rate_cap <= 0.0) {
      frozen[i] = true;  // Rate stays 0; consumes nothing.
      continue;
    }
    wsum_in[static_cast<std::size_t>(d.src)] += d.weight;
    wsum_out[static_cast<std::size_t>(d.dst)] += d.weight;
    if (crossRack(d)) {
      wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] += d.weight;
      wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] += d.weight;
    }
    ++unfrozen;
  }

  // The water level a given unfrozen demand could rise to right now.
  auto levelOf = [&](const Demand& d) {
    const auto sp = static_cast<std::size_t>(d.src);
    const auto dp = static_cast<std::size_t>(d.dst);
    double level = std::min(residual.ingress(d.src) / wsum_in[sp],
                            residual.egress(d.dst) / wsum_out[dp]);
    level = std::min(level, d.rate_cap / d.weight);
    if (crossRack(d)) {
      const auto ur = static_cast<std::size_t>(fabric->rackOf(d.src));
      const auto dr = static_cast<std::size_t>(fabric->rackOf(d.dst));
      level = std::min({level, residual.rackUplink(fabric->rackOf(d.src)) / wsum_up[ur],
                        residual.rackDownlink(fabric->rackOf(d.dst)) / wsum_down[dr]});
    }
    return level;
  };

  // Each iteration freezes at least one flow, so this terminates in <= n
  // iterations; the guard catches logic regressions rather than input.
  std::size_t guard = n + 2 * ports + 2 * racks + 4;
  while (unfrozen > 0) {
    if (guard-- == 0) throw std::logic_error("maxMinAllocate: failed to converge");

    double min_level = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) min_level = std::min(min_level, levelOf(demands[i]));
    }
    if (!std::isfinite(min_level)) min_level = 0.0;
    min_level = std::max(min_level, 0.0);

    // Freeze every flow constrained at (numerically) the minimum level.
    const double cutoff = min_level * (1.0 + kLevelSlack) + 1e-15;
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const Demand& d = demands[i];
      if (levelOf(d) > cutoff) continue;
      const util::Rate rate = std::min(d.weight * min_level, d.rate_cap);
      rates[i] = rate;
      frozen[i] = true;
      froze_any = true;
      --unfrozen;
      residual.consume(d.src, d.dst, rate);
      wsum_in[static_cast<std::size_t>(d.src)] -= d.weight;
      wsum_out[static_cast<std::size_t>(d.dst)] -= d.weight;
      if (crossRack(d)) {
        wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] -= d.weight;
        wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] -= d.weight;
      }
    }
    if (!froze_any) throw std::logic_error("maxMinAllocate: no progress");
  }
  return rates;
}

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       const Fabric& fabric) {
  ResidualCapacity residual(fabric);
  return maxMinAllocate(demands, residual);
}

}  // namespace aalo::fabric
