#include "fabric/maxmin.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define AALO_MAXMIN_AVX2 1
#include <immintrin.h>
#endif

namespace aalo::fabric {

namespace {

constexpr double kLevelSlack = 1e-9;

// The per-round water-level sweep over the packed SoA lane columns: for
// each live lane, gather its four resource levels, min them against the
// lane's cap, scatter the result to `lvl`, and return the global minimum.
//
// Bit-identity with the original branching AoS loop: intra-rack lanes
// point their rack columns at a sentinel slot pinned to +infinity, and
// min(x, +inf) == x exactly; min over doubles is associative and
// commutative as long as no input is NaN or -0.0 — levels are
// residual/weight with residual finite and weight > 0 (never -0: exact
// cancellation yields +0), caps are > 0 — so the balanced fold tree and
// the four independent running minima below produce the same bits as the
// original left-to-right chain. The compiler may not reassociate FP math
// itself, so the reassociation is spelled out to break the serial min
// dependency and let lanes pipeline.
double levelSweepScalar(std::size_t count, const std::uint32_t* src_col,
                        const std::uint32_t* dst_col, const std::uint32_t* up_col,
                        const std::uint32_t* down_col, const double* cap_col,
                        const double* lvl_in, const double* lvl_out,
                        const double* lvl_up, const double* lvl_down, double* lvl) {
  const auto laneLevel = [&](std::size_t k) {
    const double ab = std::min(lvl_in[src_col[k]], lvl_out[dst_col[k]]);
    const double cd = std::min(lvl_up[up_col[k]], lvl_down[down_col[k]]);
    return std::min(ab, std::min(cd, cap_col[k]));
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double m0 = kInf, m1 = kInf, m2 = kInf, m3 = kInf;
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const double l0 = laneLevel(k);
    const double l1 = laneLevel(k + 1);
    const double l2 = laneLevel(k + 2);
    const double l3 = laneLevel(k + 3);
    lvl[k] = l0;
    lvl[k + 1] = l1;
    lvl[k + 2] = l2;
    lvl[k + 3] = l3;
    m0 = std::min(m0, l0);
    m1 = std::min(m1, l1);
    m2 = std::min(m2, l2);
    m3 = std::min(m3, l3);
  }
  for (; k < count; ++k) {
    const double l = laneLevel(k);
    lvl[k] = l;
    m0 = std::min(m0, l);
  }
  return std::min(std::min(m0, m1), std::min(m2, m3));
}

#if AALO_MAXMIN_AVX2
// GCC's gather intrinsics read an undefined pass-through operand by
// design (the all-ones mask makes it dead), which trips
// -Wmaybe-uninitialized inside avx2intrin.h.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
// Four lanes per step with hardware gathers (vgatherdpd) and packed mins
// (vminpd). minpd(a, b) differs from std::min only for NaN operands and
// for -0.0 vs +0.0 ordering, neither of which can appear here (see the
// scalar sweep's comment), so this path is bit-identical too. Runtime
// dispatched — the repo's baseline codegen stays plain x86-64.
__attribute__((target("avx2"))) double levelSweepAvx2(
    std::size_t count, const std::uint32_t* src_col, const std::uint32_t* dst_col,
    const std::uint32_t* up_col, const std::uint32_t* down_col,
    const double* cap_col, const double* lvl_in, const double* lvl_out,
    const double* lvl_up, const double* lvl_down, double* lvl) {
  __m256d vmin = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d in = _mm256_i32gather_pd(
        lvl_in, _mm_loadu_si128(reinterpret_cast<const __m128i*>(src_col + k)), 8);
    const __m256d out = _mm256_i32gather_pd(
        lvl_out, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_col + k)), 8);
    const __m256d up = _mm256_i32gather_pd(
        lvl_up, _mm_loadu_si128(reinterpret_cast<const __m128i*>(up_col + k)), 8);
    const __m256d down = _mm256_i32gather_pd(
        lvl_down, _mm_loadu_si128(reinterpret_cast<const __m128i*>(down_col + k)), 8);
    const __m256d cap = _mm256_loadu_pd(cap_col + k);
    const __m256d level = _mm256_min_pd(_mm256_min_pd(in, out),
                                        _mm256_min_pd(_mm256_min_pd(up, down), cap));
    _mm256_storeu_pd(lvl + k, level);
    vmin = _mm256_min_pd(vmin, level);
  }
  alignas(32) double m[4];
  _mm256_store_pd(m, vmin);
  double min_level = std::min(std::min(m[0], m[1]), std::min(m[2], m[3]));
  for (; k < count; ++k) {
    const double ab = std::min(lvl_in[src_col[k]], lvl_out[dst_col[k]]);
    const double cd = std::min(lvl_up[up_col[k]], lvl_down[down_col[k]]);
    const double l = std::min(ab, std::min(cd, cap_col[k]));
    lvl[k] = l;
    min_level = std::min(min_level, l);
  }
  return min_level;
}
#pragma GCC diagnostic pop
#endif

double levelSweep(std::size_t count, const std::uint32_t* src_col,
                  const std::uint32_t* dst_col, const std::uint32_t* up_col,
                  const std::uint32_t* down_col, const double* cap_col,
                  const double* lvl_in, const double* lvl_out, const double* lvl_up,
                  const double* lvl_down, double* lvl) {
#if AALO_MAXMIN_AVX2
  static const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (kHaveAvx2) {
    return levelSweepAvx2(count, src_col, dst_col, up_col, down_col, cap_col,
                          lvl_in, lvl_out, lvl_up, lvl_down, lvl);
  }
#endif
  return levelSweepScalar(count, src_col, dst_col, up_col, down_col, cap_col,
                          lvl_in, lvl_out, lvl_up, lvl_down, lvl);
}

}  // namespace

const std::vector<util::Rate>& maxMinAllocate(std::span<const Demand> demands,
                                              ResidualCapacity& residual,
                                              MaxMinScratch& scratch) {
  const std::size_t n = demands.size();
  std::vector<util::Rate>& rates = scratch.shares;
  rates.assign(n, 0.0);
  if (n == 0) return rates;

  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const Fabric* fabric = residual.fabric();  // Non-null only with racks.
  for (const Demand& d : demands) {
    if (d.src < 0 || static_cast<std::size_t>(d.src) >= ports || d.dst < 0 ||
        static_cast<std::size_t>(d.dst) >= ports) {
      throw std::out_of_range("maxMinAllocate: demand port out of range");
    }
    if (d.rate_cap < 0) throw std::invalid_argument("maxMinAllocate: negative rate cap");
  }

  // Single unit-weight demand (the dominant shape of gainers-only passes
  // over narrow coflows): one min over the flow's resources, no water
  // level needed. Value-identical to the general path because x / 1.0 and
  // 1.0 * x are exact, min-folding order cannot change a minimum, and the
  // wsum columns are never touched.
  if (n == 1 && demands[0].weight == 1.0) {
    const Demand& d = demands[0];
    if (d.rate_cap > 0.0) {
      const util::Rate rate = std::min(residual.available(d.src, d.dst), d.rate_cap);
      rates[0] = rate;
      residual.consume(d.src, d.dst, rate);
    }
    return rates;
  }

  const std::size_t racks =
      fabric != nullptr ? static_cast<std::size_t>(fabric->numRacks()) : 0;
  // Invariant: every wsum entry is zero between calls (touched entries are
  // re-zeroed on exit below), so growing with zero-fill is all that is
  // needed — no O(ports) clear per call.
  if (scratch.wsum_in.size() < ports) scratch.wsum_in.resize(ports, 0.0);
  if (scratch.wsum_out.size() < ports) scratch.wsum_out.resize(ports, 0.0);
  if (scratch.wsum_up.size() < racks) scratch.wsum_up.resize(racks, 0.0);
  if (scratch.wsum_down.size() < racks) scratch.wsum_down.resize(racks, 0.0);
  scratch.level_in.resize(ports);
  scratch.level_out.resize(ports);
  // One sentinel slot past the real racks, pinned to +inf: intra-rack
  // demands point at it so the level loop needs no cross-rack branch.
  scratch.level_up.resize(racks + 1);
  scratch.level_down.resize(racks + 1);
  scratch.level_up[racks] = std::numeric_limits<double>::infinity();
  scratch.level_down[racks] = std::numeric_limits<double>::infinity();
  scratch.ctx.resize(n);
  scratch.level.resize(n);
  scratch.soa_src.clear();
  scratch.soa_dst.clear();
  scratch.soa_up.clear();
  scratch.soa_down.clear();
  scratch.soa_cap.clear();
  scratch.lane_id.clear();
  scratch.soa_src.reserve(n);
  scratch.soa_dst.reserve(n);
  scratch.soa_up.reserve(n);
  scratch.soa_down.reserve(n);
  scratch.soa_cap.reserve(n);
  scratch.lane_id.reserve(n);
  scratch.lane_of.resize(n);  // Only entries of live demands are ever read.
  scratch.touched_in.clear();
  scratch.touched_out.clear();
  scratch.touched_up.clear();
  scratch.touched_down.clear();

  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    if (d.weight <= 0.0 || d.rate_cap <= 0.0) continue;  // Rate stays 0.
    MaxMinScratch::DemandCtx& c = scratch.ctx[i];
    c.src = static_cast<std::uint32_t>(d.src);
    c.dst = static_cast<std::uint32_t>(d.dst);
    c.weight = d.weight;
    // x / 1.0 == x bitwise; unit weight is the universal case here (every
    // scheduler pass emits weight-1 demands), so skip the divide.
    c.cap_level = d.weight == 1.0 ? d.rate_cap : d.rate_cap / d.weight;
    c.rate_cap = d.rate_cap;
    if (scratch.wsum_in[c.src] == 0.0) scratch.touched_in.push_back(c.src);
    if (scratch.wsum_out[c.dst] == 0.0) scratch.touched_out.push_back(c.dst);
    scratch.wsum_in[c.src] += d.weight;
    scratch.wsum_out[c.dst] += d.weight;
    if (fabric != nullptr && fabric->crossRack(d.src, d.dst)) {
      c.up_rack = fabric->rackOf(d.src);
      c.down_rack = fabric->rackOf(d.dst);
      const auto ur = static_cast<std::size_t>(c.up_rack);
      const auto dr = static_cast<std::size_t>(c.down_rack);
      if (scratch.wsum_up[ur] == 0.0) {
        scratch.touched_up.push_back(static_cast<std::uint32_t>(ur));
      }
      if (scratch.wsum_down[dr] == 0.0) {
        scratch.touched_down.push_back(static_cast<std::uint32_t>(dr));
      }
      scratch.wsum_up[ur] += d.weight;
      scratch.wsum_down[dr] += d.weight;
    } else {
      c.up_rack = -1;
      c.down_rack = -1;
    }
    scratch.lane_of[i] = static_cast<std::uint32_t>(scratch.lane_id.size());
    scratch.lane_id.push_back(static_cast<std::uint32_t>(i));
    scratch.soa_src.push_back(c.src);
    scratch.soa_dst.push_back(c.dst);
    scratch.soa_up.push_back(c.up_rack >= 0 ? static_cast<std::uint32_t>(c.up_rack)
                                            : static_cast<std::uint32_t>(racks));
    scratch.soa_down.push_back(c.down_rack >= 0
                                   ? static_cast<std::uint32_t>(c.down_rack)
                                   : static_cast<std::uint32_t>(racks));
    scratch.soa_cap.push_back(c.cap_level);
  }

  // Each iteration freezes at least one flow, so this terminates in <= n
  // iterations; the guard catches logic regressions rather than input.
  std::size_t lanes = scratch.lane_id.size();
  // When a demand freezes, its lane is swap-removed (the last lane moves
  // into its slot) so the SoA columns stay dense at O(frozen) copies per
  // round — surviving lanes are never touched. lane_of keeps the
  // demand->lane map consistent under the swaps.
  const auto dropLane = [&scratch, &lanes](std::uint32_t i) {
    const std::uint32_t l = scratch.lane_of[i];
    const std::size_t last = --lanes;
    if (l != last) {
      scratch.soa_src[l] = scratch.soa_src[last];
      scratch.soa_dst[l] = scratch.soa_dst[last];
      scratch.soa_up[l] = scratch.soa_up[last];
      scratch.soa_down[l] = scratch.soa_down[last];
      scratch.soa_cap[l] = scratch.soa_cap[last];
      scratch.level[l] = scratch.level[last];
      scratch.lane_id[l] = scratch.lane_id[last];
      scratch.lane_of[scratch.lane_id[l]] = l;
    }
  };
  std::size_t guard = n + 2 * ports + 2 * racks + 4;
  while (lanes > 0) {
    if (guard-- == 0) throw std::logic_error("maxMinAllocate: failed to converge");

    // One division per *touched resource*, not per demand. Ports all of
    // whose demands froze keep wsum 0 and produce inf/NaN levels, but no
    // live demand reads those entries.
    for (const std::uint32_t p : scratch.touched_in) {
      scratch.level_in[p] =
          residual.ingress(static_cast<coflow::PortId>(p)) / scratch.wsum_in[p];
    }
    for (const std::uint32_t p : scratch.touched_out) {
      scratch.level_out[p] =
          residual.egress(static_cast<coflow::PortId>(p)) / scratch.wsum_out[p];
    }
    for (const std::uint32_t r : scratch.touched_up) {
      scratch.level_up[r] =
          residual.rackUplink(static_cast<int>(r)) / scratch.wsum_up[r];
    }
    for (const std::uint32_t r : scratch.touched_down) {
      scratch.level_down[r] =
          residual.rackDownlink(static_cast<int>(r)) / scratch.wsum_down[r];
    }

    // The water level each live lane could rise to right now, plus the
    // global minimum — one dense gather/min/scatter sweep over the SoA
    // columns (AVX2 when the CPU has it; see levelSweep).
    double min_level = levelSweep(
        lanes, scratch.soa_src.data(), scratch.soa_dst.data(),
        scratch.soa_up.data(), scratch.soa_down.data(), scratch.soa_cap.data(),
        scratch.level_in.data(), scratch.level_out.data(), scratch.level_up.data(),
        scratch.level_down.data(), scratch.level.data());
    if (!std::isfinite(min_level)) min_level = 0.0;
    min_level = std::max(min_level, 0.0);

    // Freeze every flow constrained at (numerically) the minimum level.
    // Freezing a flow raises (never lowers) the water level of every port
    // it leaves, so a sweep level above the cutoff is a safe skip; only
    // the few at-cutoff candidates re-read the mutated state. Candidates
    // are gathered from the dense level column (sequential compare, no
    // survivor copies at all) and processed in ascending demand-index
    // order, so the recompute/consume/weight-subtraction sequence matches
    // the reference implementation bit for bit.
    const double cutoff = min_level * (1.0 + kLevelSlack) + 1e-15;
    // Hoisted raw pointers and a manual count: a push_back in the loop
    // would force the compiler to reload the column pointers every
    // iteration (the store could alias them).
    if (scratch.freeze_cand.size() < lanes) scratch.freeze_cand.resize(lanes);
    std::uint32_t* const cand = scratch.freeze_cand.data();
    const double* const lvl = scratch.level.data();
    const std::uint32_t* const lid = scratch.lane_id.data();
    std::size_t num_cand = 0;
    for (std::size_t k = 0; k < lanes; ++k) {
      // Branchless emit: the store always happens, the count only advances
      // on a hit — no mispredict per candidate.
      cand[num_cand] = lid[k];
      num_cand += lvl[k] <= cutoff ? 1 : 0;
    }
    // Candidate sets are tiny (typically the handful of flows at the
    // bottleneck), so an inline insertion sort beats std::sort's setup.
    for (std::size_t a = 1; a < num_cand; ++a) {
      const std::uint32_t v = cand[a];
      std::size_t b = a;
      for (; b > 0 && cand[b - 1] > v; --b) cand[b] = cand[b - 1];
      cand[b] = v;
    }
    const std::size_t lanes_before = lanes;
    for (std::size_t ci = 0; ci < num_cand; ++ci) {
      const std::uint32_t i = cand[ci];
      const MaxMinScratch::DemandCtx& c = scratch.ctx[i];
      // Current level against mid-pass residual/weights, mirroring the
      // reference's per-candidate recomputation.
      double level = std::min(
          residual.ingress(static_cast<coflow::PortId>(c.src)) / scratch.wsum_in[c.src],
          residual.egress(static_cast<coflow::PortId>(c.dst)) / scratch.wsum_out[c.dst]);
      level = std::min(level, c.cap_level);
      if (c.up_rack >= 0) {
        level = std::min(
            {level,
             residual.rackUplink(c.up_rack) /
                 scratch.wsum_up[static_cast<std::size_t>(c.up_rack)],
             residual.rackDownlink(c.down_rack) /
                 scratch.wsum_down[static_cast<std::size_t>(c.down_rack)]});
      }
      if (level > cutoff) continue;  // Raised past the cutoff mid-pass.
      const util::Rate rate = std::min(c.weight * min_level, c.rate_cap);
      rates[i] = rate;
      residual.consume(static_cast<coflow::PortId>(c.src),
                       static_cast<coflow::PortId>(c.dst), rate);
      scratch.wsum_in[c.src] -= c.weight;
      scratch.wsum_out[c.dst] -= c.weight;
      if (c.up_rack >= 0) {
        scratch.wsum_up[static_cast<std::size_t>(c.up_rack)] -= c.weight;
        scratch.wsum_down[static_cast<std::size_t>(c.down_rack)] -= c.weight;
      }
      dropLane(i);
    }
    if (lanes == lanes_before) {
      throw std::logic_error("maxMinAllocate: no progress");
    }
  }
  // Restore the all-zero wsum invariant: the freeze-pass subtractions
  // leave +/- epsilon residues on touched entries.
  for (const std::uint32_t p : scratch.touched_in) scratch.wsum_in[p] = 0.0;
  for (const std::uint32_t p : scratch.touched_out) scratch.wsum_out[p] = 0.0;
  for (const std::uint32_t r : scratch.touched_up) scratch.wsum_up[r] = 0.0;
  for (const std::uint32_t r : scratch.touched_down) scratch.wsum_down[r] = 0.0;
  return rates;
}

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       ResidualCapacity& residual) {
  MaxMinScratch scratch;
  return maxMinAllocate(std::span<const Demand>(demands), residual, scratch);
}

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       const Fabric& fabric) {
  ResidualCapacity residual(fabric);
  return maxMinAllocate(demands, residual);
}

std::vector<util::Rate> maxMinAllocateReference(const std::vector<Demand>& demands,
                                                ResidualCapacity& residual) {
  const std::size_t n = demands.size();
  std::vector<util::Rate> rates(n, 0.0);
  if (n == 0) return rates;

  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const Fabric* fabric = residual.fabric();  // Non-null only with racks.
  for (const Demand& d : demands) {
    if (d.src < 0 || static_cast<std::size_t>(d.src) >= ports || d.dst < 0 ||
        static_cast<std::size_t>(d.dst) >= ports) {
      throw std::out_of_range("maxMinAllocate: demand port out of range");
    }
    if (d.rate_cap < 0) throw std::invalid_argument("maxMinAllocate: negative rate cap");
  }

  std::vector<bool> frozen(n, false);
  std::vector<double> wsum_in(ports, 0.0);
  std::vector<double> wsum_out(ports, 0.0);
  const std::size_t racks =
      fabric != nullptr ? static_cast<std::size_t>(fabric->numRacks()) : 0;
  std::vector<double> wsum_up(racks, 0.0);
  std::vector<double> wsum_down(racks, 0.0);
  std::size_t unfrozen = 0;

  auto crossRack = [&](const Demand& d) {
    return fabric != nullptr && fabric->crossRack(d.src, d.dst);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    if (d.weight <= 0.0 || d.rate_cap <= 0.0) {
      frozen[i] = true;  // Rate stays 0; consumes nothing.
      continue;
    }
    wsum_in[static_cast<std::size_t>(d.src)] += d.weight;
    wsum_out[static_cast<std::size_t>(d.dst)] += d.weight;
    if (crossRack(d)) {
      wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] += d.weight;
      wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] += d.weight;
    }
    ++unfrozen;
  }

  // The water level a given unfrozen demand could rise to right now.
  auto levelOf = [&](const Demand& d) {
    const auto sp = static_cast<std::size_t>(d.src);
    const auto dp = static_cast<std::size_t>(d.dst);
    double level = std::min(residual.ingress(d.src) / wsum_in[sp],
                            residual.egress(d.dst) / wsum_out[dp]);
    level = std::min(level, d.rate_cap / d.weight);
    if (crossRack(d)) {
      const auto ur = static_cast<std::size_t>(fabric->rackOf(d.src));
      const auto dr = static_cast<std::size_t>(fabric->rackOf(d.dst));
      level = std::min({level, residual.rackUplink(fabric->rackOf(d.src)) / wsum_up[ur],
                        residual.rackDownlink(fabric->rackOf(d.dst)) / wsum_down[dr]});
    }
    return level;
  };

  std::size_t guard = n + 2 * ports + 2 * racks + 4;
  while (unfrozen > 0) {
    if (guard-- == 0) throw std::logic_error("maxMinAllocate: failed to converge");

    double min_level = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) min_level = std::min(min_level, levelOf(demands[i]));
    }
    if (!std::isfinite(min_level)) min_level = 0.0;
    min_level = std::max(min_level, 0.0);

    // Freeze every flow constrained at (numerically) the minimum level.
    const double cutoff = min_level * (1.0 + kLevelSlack) + 1e-15;
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const Demand& d = demands[i];
      if (levelOf(d) > cutoff) continue;
      const util::Rate rate = std::min(d.weight * min_level, d.rate_cap);
      rates[i] = rate;
      frozen[i] = true;
      froze_any = true;
      --unfrozen;
      residual.consume(d.src, d.dst, rate);
      wsum_in[static_cast<std::size_t>(d.src)] -= d.weight;
      wsum_out[static_cast<std::size_t>(d.dst)] -= d.weight;
      if (crossRack(d)) {
        wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] -= d.weight;
        wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] -= d.weight;
      }
    }
    if (!froze_any) throw std::logic_error("maxMinAllocate: no progress");
  }
  return rates;
}

}  // namespace aalo::fabric
