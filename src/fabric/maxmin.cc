#include "fabric/maxmin.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aalo::fabric {

namespace {

constexpr double kLevelSlack = 1e-9;

}  // namespace

const std::vector<util::Rate>& maxMinAllocate(std::span<const Demand> demands,
                                              ResidualCapacity& residual,
                                              MaxMinScratch& scratch) {
  const std::size_t n = demands.size();
  std::vector<util::Rate>& rates = scratch.shares;
  rates.assign(n, 0.0);
  if (n == 0) return rates;

  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const Fabric* fabric = residual.fabric();  // Non-null only with racks.
  for (const Demand& d : demands) {
    if (d.src < 0 || static_cast<std::size_t>(d.src) >= ports || d.dst < 0 ||
        static_cast<std::size_t>(d.dst) >= ports) {
      throw std::out_of_range("maxMinAllocate: demand port out of range");
    }
    if (d.rate_cap < 0) throw std::invalid_argument("maxMinAllocate: negative rate cap");
  }

  // Single unit-weight demand (the dominant shape of gainers-only passes
  // over narrow coflows): one min over the flow's resources, no water
  // level needed. Value-identical to the general path because x / 1.0 and
  // 1.0 * x are exact, min-folding order cannot change a minimum, and the
  // wsum columns are never touched.
  if (n == 1 && demands[0].weight == 1.0) {
    const Demand& d = demands[0];
    if (d.rate_cap > 0.0) {
      const util::Rate rate = std::min(residual.available(d.src, d.dst), d.rate_cap);
      rates[0] = rate;
      residual.consume(d.src, d.dst, rate);
    }
    return rates;
  }

  const std::size_t racks =
      fabric != nullptr ? static_cast<std::size_t>(fabric->numRacks()) : 0;
  // Invariant: every wsum entry is zero between calls (touched entries are
  // re-zeroed on exit below), so growing with zero-fill is all that is
  // needed — no O(ports) clear per call.
  if (scratch.wsum_in.size() < ports) scratch.wsum_in.resize(ports, 0.0);
  if (scratch.wsum_out.size() < ports) scratch.wsum_out.resize(ports, 0.0);
  if (scratch.wsum_up.size() < racks) scratch.wsum_up.resize(racks, 0.0);
  if (scratch.wsum_down.size() < racks) scratch.wsum_down.resize(racks, 0.0);
  scratch.level_in.resize(ports);
  scratch.level_out.resize(ports);
  scratch.level_up.resize(racks);
  scratch.level_down.resize(racks);
  scratch.ctx.resize(n);
  scratch.level.resize(n);
  scratch.unfrozen.clear();
  scratch.unfrozen.reserve(n);
  scratch.touched_in.clear();
  scratch.touched_out.clear();
  scratch.touched_up.clear();
  scratch.touched_down.clear();

  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    if (d.weight <= 0.0 || d.rate_cap <= 0.0) continue;  // Rate stays 0.
    MaxMinScratch::DemandCtx& c = scratch.ctx[i];
    c.src = static_cast<std::uint32_t>(d.src);
    c.dst = static_cast<std::uint32_t>(d.dst);
    c.weight = d.weight;
    // x / 1.0 == x bitwise; unit weight is the universal case here (every
    // scheduler pass emits weight-1 demands), so skip the divide.
    c.cap_level = d.weight == 1.0 ? d.rate_cap : d.rate_cap / d.weight;
    c.rate_cap = d.rate_cap;
    if (scratch.wsum_in[c.src] == 0.0) scratch.touched_in.push_back(c.src);
    if (scratch.wsum_out[c.dst] == 0.0) scratch.touched_out.push_back(c.dst);
    scratch.wsum_in[c.src] += d.weight;
    scratch.wsum_out[c.dst] += d.weight;
    if (fabric != nullptr && fabric->crossRack(d.src, d.dst)) {
      c.up_rack = fabric->rackOf(d.src);
      c.down_rack = fabric->rackOf(d.dst);
      const auto ur = static_cast<std::size_t>(c.up_rack);
      const auto dr = static_cast<std::size_t>(c.down_rack);
      if (scratch.wsum_up[ur] == 0.0) {
        scratch.touched_up.push_back(static_cast<std::uint32_t>(ur));
      }
      if (scratch.wsum_down[dr] == 0.0) {
        scratch.touched_down.push_back(static_cast<std::uint32_t>(dr));
      }
      scratch.wsum_up[ur] += d.weight;
      scratch.wsum_down[dr] += d.weight;
    } else {
      c.up_rack = -1;
      c.down_rack = -1;
    }
    scratch.unfrozen.push_back(static_cast<std::uint32_t>(i));
  }

  // Each iteration freezes at least one flow, so this terminates in <= n
  // iterations; the guard catches logic regressions rather than input.
  std::size_t guard = n + 2 * ports + 2 * racks + 4;
  while (!scratch.unfrozen.empty()) {
    if (guard-- == 0) throw std::logic_error("maxMinAllocate: failed to converge");

    // One division per *touched resource*, not per demand. Ports all of
    // whose demands froze keep wsum 0 and produce inf/NaN levels, but no
    // live demand reads those entries.
    for (const std::uint32_t p : scratch.touched_in) {
      scratch.level_in[p] =
          residual.ingress(static_cast<coflow::PortId>(p)) / scratch.wsum_in[p];
    }
    for (const std::uint32_t p : scratch.touched_out) {
      scratch.level_out[p] =
          residual.egress(static_cast<coflow::PortId>(p)) / scratch.wsum_out[p];
    }
    for (const std::uint32_t r : scratch.touched_up) {
      scratch.level_up[r] =
          residual.rackUplink(static_cast<int>(r)) / scratch.wsum_up[r];
    }
    for (const std::uint32_t r : scratch.touched_down) {
      scratch.level_down[r] =
          residual.rackDownlink(static_cast<int>(r)) / scratch.wsum_down[r];
    }

    // The water level each live demand could rise to right now.
    double min_level = std::numeric_limits<double>::infinity();
    for (const std::uint32_t i : scratch.unfrozen) {
      const MaxMinScratch::DemandCtx& c = scratch.ctx[i];
      double level = std::min(scratch.level_in[c.src], scratch.level_out[c.dst]);
      level = std::min(level, c.cap_level);
      if (c.up_rack >= 0) {
        level = std::min({level, scratch.level_up[static_cast<std::size_t>(c.up_rack)],
                          scratch.level_down[static_cast<std::size_t>(c.down_rack)]});
      }
      scratch.level[i] = level;
      min_level = std::min(min_level, level);
    }
    if (!std::isfinite(min_level)) min_level = 0.0;
    min_level = std::max(min_level, 0.0);

    // Freeze every flow constrained at (numerically) the minimum level.
    // Freezing a flow raises (never lowers) the water level of every port
    // it leaves, so a cached pre-pass level above the cutoff is a safe
    // skip; only the few at-cutoff candidates re-read the mutated state.
    // Compaction preserves index order so the consume/weight-subtraction
    // sequence matches the reference implementation bit for bit.
    const double cutoff = min_level * (1.0 + kLevelSlack) + 1e-15;
    std::size_t live = 0;
    for (std::size_t k = 0; k < scratch.unfrozen.size(); ++k) {
      const std::uint32_t i = scratch.unfrozen[k];
      const MaxMinScratch::DemandCtx& c = scratch.ctx[i];
      if (scratch.level[i] > cutoff) {
        scratch.unfrozen[live++] = i;
        continue;
      }
      // Current level against mid-pass residual/weights, mirroring the
      // reference's per-candidate recomputation.
      double level = std::min(
          residual.ingress(static_cast<coflow::PortId>(c.src)) / scratch.wsum_in[c.src],
          residual.egress(static_cast<coflow::PortId>(c.dst)) / scratch.wsum_out[c.dst]);
      level = std::min(level, c.cap_level);
      if (c.up_rack >= 0) {
        level = std::min(
            {level,
             residual.rackUplink(c.up_rack) /
                 scratch.wsum_up[static_cast<std::size_t>(c.up_rack)],
             residual.rackDownlink(c.down_rack) /
                 scratch.wsum_down[static_cast<std::size_t>(c.down_rack)]});
      }
      if (level > cutoff) {
        scratch.unfrozen[live++] = i;
        continue;
      }
      const util::Rate rate = std::min(c.weight * min_level, c.rate_cap);
      rates[i] = rate;
      residual.consume(static_cast<coflow::PortId>(c.src),
                       static_cast<coflow::PortId>(c.dst), rate);
      scratch.wsum_in[c.src] -= c.weight;
      scratch.wsum_out[c.dst] -= c.weight;
      if (c.up_rack >= 0) {
        scratch.wsum_up[static_cast<std::size_t>(c.up_rack)] -= c.weight;
        scratch.wsum_down[static_cast<std::size_t>(c.down_rack)] -= c.weight;
      }
    }
    if (live == scratch.unfrozen.size()) {
      throw std::logic_error("maxMinAllocate: no progress");
    }
    scratch.unfrozen.resize(live);
  }
  // Restore the all-zero wsum invariant: the freeze-pass subtractions
  // leave +/- epsilon residues on touched entries.
  for (const std::uint32_t p : scratch.touched_in) scratch.wsum_in[p] = 0.0;
  for (const std::uint32_t p : scratch.touched_out) scratch.wsum_out[p] = 0.0;
  for (const std::uint32_t r : scratch.touched_up) scratch.wsum_up[r] = 0.0;
  for (const std::uint32_t r : scratch.touched_down) scratch.wsum_down[r] = 0.0;
  return rates;
}

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       ResidualCapacity& residual) {
  MaxMinScratch scratch;
  return maxMinAllocate(std::span<const Demand>(demands), residual, scratch);
}

std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       const Fabric& fabric) {
  ResidualCapacity residual(fabric);
  return maxMinAllocate(demands, residual);
}

std::vector<util::Rate> maxMinAllocateReference(const std::vector<Demand>& demands,
                                                ResidualCapacity& residual) {
  const std::size_t n = demands.size();
  std::vector<util::Rate> rates(n, 0.0);
  if (n == 0) return rates;

  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const Fabric* fabric = residual.fabric();  // Non-null only with racks.
  for (const Demand& d : demands) {
    if (d.src < 0 || static_cast<std::size_t>(d.src) >= ports || d.dst < 0 ||
        static_cast<std::size_t>(d.dst) >= ports) {
      throw std::out_of_range("maxMinAllocate: demand port out of range");
    }
    if (d.rate_cap < 0) throw std::invalid_argument("maxMinAllocate: negative rate cap");
  }

  std::vector<bool> frozen(n, false);
  std::vector<double> wsum_in(ports, 0.0);
  std::vector<double> wsum_out(ports, 0.0);
  const std::size_t racks =
      fabric != nullptr ? static_cast<std::size_t>(fabric->numRacks()) : 0;
  std::vector<double> wsum_up(racks, 0.0);
  std::vector<double> wsum_down(racks, 0.0);
  std::size_t unfrozen = 0;

  auto crossRack = [&](const Demand& d) {
    return fabric != nullptr && fabric->crossRack(d.src, d.dst);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Demand& d = demands[i];
    if (d.weight <= 0.0 || d.rate_cap <= 0.0) {
      frozen[i] = true;  // Rate stays 0; consumes nothing.
      continue;
    }
    wsum_in[static_cast<std::size_t>(d.src)] += d.weight;
    wsum_out[static_cast<std::size_t>(d.dst)] += d.weight;
    if (crossRack(d)) {
      wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] += d.weight;
      wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] += d.weight;
    }
    ++unfrozen;
  }

  // The water level a given unfrozen demand could rise to right now.
  auto levelOf = [&](const Demand& d) {
    const auto sp = static_cast<std::size_t>(d.src);
    const auto dp = static_cast<std::size_t>(d.dst);
    double level = std::min(residual.ingress(d.src) / wsum_in[sp],
                            residual.egress(d.dst) / wsum_out[dp]);
    level = std::min(level, d.rate_cap / d.weight);
    if (crossRack(d)) {
      const auto ur = static_cast<std::size_t>(fabric->rackOf(d.src));
      const auto dr = static_cast<std::size_t>(fabric->rackOf(d.dst));
      level = std::min({level, residual.rackUplink(fabric->rackOf(d.src)) / wsum_up[ur],
                        residual.rackDownlink(fabric->rackOf(d.dst)) / wsum_down[dr]});
    }
    return level;
  };

  std::size_t guard = n + 2 * ports + 2 * racks + 4;
  while (unfrozen > 0) {
    if (guard-- == 0) throw std::logic_error("maxMinAllocate: failed to converge");

    double min_level = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) min_level = std::min(min_level, levelOf(demands[i]));
    }
    if (!std::isfinite(min_level)) min_level = 0.0;
    min_level = std::max(min_level, 0.0);

    // Freeze every flow constrained at (numerically) the minimum level.
    const double cutoff = min_level * (1.0 + kLevelSlack) + 1e-15;
    bool froze_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      const Demand& d = demands[i];
      if (levelOf(d) > cutoff) continue;
      const util::Rate rate = std::min(d.weight * min_level, d.rate_cap);
      rates[i] = rate;
      frozen[i] = true;
      froze_any = true;
      --unfrozen;
      residual.consume(d.src, d.dst, rate);
      wsum_in[static_cast<std::size_t>(d.src)] -= d.weight;
      wsum_out[static_cast<std::size_t>(d.dst)] -= d.weight;
      if (crossRack(d)) {
        wsum_up[static_cast<std::size_t>(fabric->rackOf(d.src))] -= d.weight;
        wsum_down[static_cast<std::size_t>(fabric->rackOf(d.dst))] -= d.weight;
      }
    }
    if (!froze_any) throw std::logic_error("maxMinAllocate: no progress");
  }
  return rates;
}

}  // namespace aalo::fabric
