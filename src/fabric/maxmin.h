// Weighted max-min fair rate allocation via progressive water-filling.
//
// Used in three places: per-flow fairness across the whole fabric (the TCP
// baseline), max-min among flows *within* a coflow (line 6 of Pseudocode 1
// — no flow-size information, so this is the only sensible discipline),
// and excess redistribution between D-CLAS queues (line 14).
//
// The allocator is called on every scheduler round of every simulation, so
// the primary entry point is allocation-free: all intermediate state lives
// in a caller-owned MaxMinScratch arena that is reused across calls. The
// water-filling iteration computes one water level per *port* (and rack
// link) instead of one per demand, then takes cheap minima per demand —
// the level of a demand is fully determined by its ports' levels and its
// own cap. A slower reference implementation (maxMinAllocateReference) is
// retained for randomized equivalence testing.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "coflow/ids.h"
#include "fabric/fabric.h"
#include "util/units.h"

namespace aalo::fabric {

inline constexpr util::Rate kUncapped = std::numeric_limits<util::Rate>::infinity();

/// One flow's demand entry for the water-filling pass.
struct Demand {
  coflow::PortId src = 0;
  coflow::PortId dst = 0;
  /// Weighted fairness: a flow with weight 2 gets twice the share of a
  /// weight-1 flow at every shared bottleneck.
  double weight = 1.0;
  /// Upper bound on this flow's rate (e.g. remaining/eps for nearly-done
  /// flows, or a scheduler-imposed limit). kUncapped for none.
  util::Rate rate_cap = kUncapped;
};

/// Reusable buffers for the water-filling pass and its callers. One arena
/// per scheduler (or per thread) amortizes every heap allocation on the
/// allocation hot path. The arena carries no state between calls — only
/// capacity — so it never needs resetting.
struct MaxMinScratch {
  /// Caller-assembled demand list (for helpers that build demands on the
  /// fly, e.g. sched::allocateCoflowMaxMin). maxMinAllocate may be called
  /// with this vector as its input span; it does not modify it.
  std::vector<Demand> demands;
  /// Rates of the last maxMinAllocate call, aligned with its input.
  std::vector<util::Rate> shares;

  // --- internal to maxMinAllocate -----------------------------------------
  /// Per-demand precomputed routing/cap data (ports as indices, rack ids,
  /// weight, cap-implied level).
  struct DemandCtx {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::int32_t up_rack = -1;    ///< Source rack, or -1 if not cross-rack.
    std::int32_t down_rack = -1;  ///< Destination rack, or -1.
    double weight = 1.0;
    double cap_level = 0.0;  ///< rate_cap / weight.
    double rate_cap = 0.0;   ///< Verbatim copy (freeze pass stays on ctx lines).
  };
  std::vector<DemandCtx> ctx;
  std::vector<double> wsum_in, wsum_out, wsum_up, wsum_down;
  /// level_up/level_down carry one extra sentinel slot (index = numRacks)
  /// pinned to +infinity: demands that stay inside a rack point their SoA
  /// rack columns at it, so the per-demand level loop is branch-free —
  /// min(x, +inf) == x exactly, preserving bit-identical results.
  std::vector<double> level_in, level_out, level_up, level_down;
  std::vector<double> level;  ///< Water level of each live lane, by lane.
  /// Demand indices whose sweep level sits at the round's cutoff,
  /// re-sorted ascending so freezes happen in reference order.
  std::vector<std::uint32_t> freeze_cand;
  /// Packed SoA columns over the *live* demands ("lanes"). The
  /// water-level sweep — the hot inner loop of every scheduler round —
  /// reads only these columns: contiguous, branch-free gather/min per
  /// lane, no DemandCtx pointer chasing. soa_up/soa_down hold the rack
  /// index or the +inf sentinel slot. Lanes are kept dense by
  /// swap-removing a lane when its demand freezes (O(frozen) per round,
  /// not O(survivors)), so lane order is arbitrary; the freeze pass walks
  /// the index-ordered `unfrozen` list and maps through lane_of, keeping
  /// the consume/subtraction sequence bit-identical to the reference.
  std::vector<std::uint32_t> soa_src, soa_dst, soa_up, soa_down;
  std::vector<double> soa_cap;          ///< cap_level column (rate_cap / weight).
  std::vector<std::uint32_t> lane_id;   ///< lane -> demand index.
  std::vector<std::uint32_t> lane_of;   ///< demand index -> lane.
  /// Ports/racks referenced by at least one live demand — the level
  /// refresh loops over these, so a call with few demands on a large
  /// fabric costs O(demands), not O(ports).
  std::vector<std::uint32_t> touched_in, touched_out, touched_up, touched_down;

  // --- buffers for sched::allocateCoflowMadd (per-resource remaining) -----
  std::vector<util::Bytes> rem_in, rem_out, rem_up, rem_down;
};

/// Computes weighted max-min fair rates for `demands` against `residual`,
/// consuming the capacity it hands out. Returns `scratch.shares` resized
/// and aligned with `demands`. Weight <= 0 yields rate 0.
///
/// Algorithm: repeatedly find the tightest constraint — either a port
/// whose residual divided by the total weight of unfrozen flows crossing
/// it is minimal, or an individual flow's rate cap — freeze the affected
/// flows at the implied water level, subtract, and continue. Each
/// iteration costs O(ports + racks) divisions plus O(live demands) minima;
/// at most (2 x ports + 2 x racks + demands) iterations.
const std::vector<util::Rate>& maxMinAllocate(std::span<const Demand> demands,
                                              ResidualCapacity& residual,
                                              MaxMinScratch& scratch);

/// Convenience overload using a transient scratch arena. Prefer the
/// scratch-threaded overload on hot paths.
std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       ResidualCapacity& residual);

/// Convenience overload: allocate against a fresh copy of the fabric's
/// full capacity.
std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       const Fabric& fabric);

/// The original (pre-arena) progressive-filling implementation, retained
/// verbatim as the oracle for randomized equivalence tests. Semantically
/// identical to maxMinAllocate; O(demands) work per iteration with two
/// level computations per live demand.
std::vector<util::Rate> maxMinAllocateReference(const std::vector<Demand>& demands,
                                                ResidualCapacity& residual);

}  // namespace aalo::fabric
