// Weighted max-min fair rate allocation via progressive water-filling.
//
// Used in three places: per-flow fairness across the whole fabric (the TCP
// baseline), max-min among flows *within* a coflow (line 6 of Pseudocode 1
// — no flow-size information, so this is the only sensible discipline),
// and excess redistribution between D-CLAS queues (line 14).
#pragma once

#include <limits>
#include <vector>

#include "coflow/ids.h"
#include "fabric/fabric.h"
#include "util/units.h"

namespace aalo::fabric {

inline constexpr util::Rate kUncapped = std::numeric_limits<util::Rate>::infinity();

/// One flow's demand entry for the water-filling pass.
struct Demand {
  coflow::PortId src = 0;
  coflow::PortId dst = 0;
  /// Weighted fairness: a flow with weight 2 gets twice the share of a
  /// weight-1 flow at every shared bottleneck.
  double weight = 1.0;
  /// Upper bound on this flow's rate (e.g. remaining/eps for nearly-done
  /// flows, or a scheduler-imposed limit). kUncapped for none.
  util::Rate rate_cap = kUncapped;
};

/// Computes weighted max-min fair rates for `demands` against `residual`,
/// consuming the capacity it hands out. Returns rates aligned with
/// `demands`. Weight <= 0 yields rate 0.
///
/// Algorithm: repeatedly find the tightest constraint — either a port
/// whose residual divided by the total weight of unfrozen flows crossing
/// it is minimal, or an individual flow's rate cap — freeze the affected
/// flows at the implied water level, subtract, and continue. O(iterations
/// x flows) with at most (2 x ports + flows) iterations.
std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       ResidualCapacity& residual);

/// Convenience overload: allocate against a fresh copy of the fabric's
/// full capacity.
std::vector<util::Rate> maxMinAllocate(const std::vector<Demand>& demands,
                                       const Fabric& fabric);

}  // namespace aalo::fabric
