#include "fabric/fabric.h"

#include <algorithm>
#include <stdexcept>

namespace aalo::fabric {

Fabric::Fabric(const FabricConfig& config) : num_ports_(config.num_ports) {
  if (config.num_ports <= 0) {
    throw std::invalid_argument("Fabric: num_ports must be positive");
  }
  if (config.port_capacity <= 0) {
    throw std::invalid_argument("Fabric: port_capacity must be positive");
  }
  ingress_.assign(static_cast<std::size_t>(num_ports_), config.port_capacity);
  egress_.assign(static_cast<std::size_t>(num_ports_), config.port_capacity);

  if (config.rack.ports_per_rack > 0) {
    if (num_ports_ % config.rack.ports_per_rack != 0) {
      throw std::invalid_argument("Fabric: num_ports must be a multiple of ports_per_rack");
    }
    if (config.rack.oversubscription <= 0) {
      throw std::invalid_argument("Fabric: oversubscription must be positive");
    }
    ports_per_rack_ = config.rack.ports_per_rack;
    num_racks_ = num_ports_ / ports_per_rack_;
    const util::Rate rack_cap = static_cast<double>(ports_per_rack_) *
                                config.port_capacity / config.rack.oversubscription;
    rack_up_.assign(static_cast<std::size_t>(num_racks_), rack_cap);
    rack_down_.assign(static_cast<std::size_t>(num_racks_), rack_cap);
  }
}

std::size_t Fabric::checked(coflow::PortId p) const {
  if (p < 0 || p >= num_ports_) throw std::out_of_range("Fabric: port id out of range");
  return static_cast<std::size_t>(p);
}

std::size_t Fabric::checkedRack(int rack) const {
  if (rack < 0 || rack >= num_racks_) {
    throw std::out_of_range("Fabric: rack id out of range");
  }
  return static_cast<std::size_t>(rack);
}

ResidualCapacity::ResidualCapacity(const Fabric& fabric, double scale)
    : fabric_(fabric.hasRacks() ? &fabric : nullptr),
      ingress_(fabric.ingressCapacities()),
      egress_(fabric.egressCapacities()),
      rack_up_(fabric.rackUplinkCapacities()),
      rack_down_(fabric.rackDownlinkCapacities()) {
  if (scale != 1.0) {
    for (auto& c : ingress_) c *= scale;
    for (auto& c : egress_) c *= scale;
    for (auto& c : rack_up_) c *= scale;
    for (auto& c : rack_down_) c *= scale;
  }
}

ResidualCapacity::ResidualCapacity(std::vector<util::Rate> ingress,
                                   std::vector<util::Rate> egress)
    : ingress_(std::move(ingress)), egress_(std::move(egress)) {
  if (ingress_.size() != egress_.size()) {
    throw std::invalid_argument("ResidualCapacity: ingress/egress size mismatch");
  }
}

bool ResidualCapacity::exhausted(util::Rate threshold) const {
  for (std::size_t p = 0; p < ingress_.size(); ++p) {
    if (ingress_[p] > threshold || egress_[p] > threshold) return false;
  }
  return true;
}

}  // namespace aalo::fabric
