// Datacenter fabric model (§2.1, Figure 1a; §8 "In-Network Bottlenecks").
//
// By default the whole fabric is abstracted as one big non-blocking
// switch: machine uplinks (ingress ports) and downlinks (egress ports)
// are the only points of contention. A rate allocation is feasible iff,
// at every ingress port, the rates of flows originating there sum to at
// most the port capacity, and symmetrically at every egress port.
//
// The paper's discussion (§8) notes that when bottleneck locations are
// known — e.g. oversubscribed rack-to-core links — Aalo can allocate
// rack-to-core bandwidth instead of NIC bandwidth. Setting
// FabricConfig::rack enables that: ports are grouped into racks, and a
// cross-rack flow additionally consumes its source rack's uplink and its
// destination rack's downlink, each with capacity
//   ports_per_rack * port_capacity / oversubscription.
#pragma once

#include <algorithm>
#include <vector>

#include "coflow/ids.h"
#include "util/units.h"

namespace aalo::fabric {

struct RackConfig {
  /// 0 disables rack modeling (pure non-blocking switch).
  int ports_per_rack = 0;
  /// Core oversubscription ratio; the Facebook cluster in §7.1 ran 10:1.
  double oversubscription = 1.0;
};

struct FabricConfig {
  constexpr FabricConfig() = default;
  constexpr FabricConfig(int ports, util::Rate capacity)
      : num_ports(ports), port_capacity(capacity) {}

  int num_ports = 0;
  /// Uniform port capacity (bytes/s) for both uplinks and downlinks.
  util::Rate port_capacity = util::kGbps;
  RackConfig rack;
};

class Fabric {
 public:
  explicit Fabric(const FabricConfig& config);

  int numPorts() const { return num_ports_; }
  util::Rate ingressCapacity(coflow::PortId p) const { return ingress_[checked(p)]; }
  util::Rate egressCapacity(coflow::PortId p) const { return egress_[checked(p)]; }

  /// Heterogeneous capacities (e.g. modeling slower stragglers).
  void setIngressCapacity(coflow::PortId p, util::Rate cap) { ingress_[checked(p)] = cap; }
  void setEgressCapacity(coflow::PortId p, util::Rate cap) { egress_[checked(p)] = cap; }

  const std::vector<util::Rate>& ingressCapacities() const { return ingress_; }
  const std::vector<util::Rate>& egressCapacities() const { return egress_; }

  // --- rack topology (§8) -------------------------------------------------
  bool hasRacks() const { return num_racks_ > 0; }
  int numRacks() const { return num_racks_; }
  int rackOf(coflow::PortId p) const {
    return static_cast<int>(checked(p)) / ports_per_rack_;
  }
  bool crossRack(coflow::PortId src, coflow::PortId dst) const {
    return hasRacks() && rackOf(src) != rackOf(dst);
  }
  util::Rate rackUplinkCapacity(int rack) const { return rack_up_[checkedRack(rack)]; }
  util::Rate rackDownlinkCapacity(int rack) const {
    return rack_down_[checkedRack(rack)];
  }
  const std::vector<util::Rate>& rackUplinkCapacities() const { return rack_up_; }
  const std::vector<util::Rate>& rackDownlinkCapacities() const { return rack_down_; }

 private:
  std::size_t checked(coflow::PortId p) const;
  std::size_t checkedRack(int rack) const;

  int num_ports_;
  int ports_per_rack_ = 1;
  int num_racks_ = 0;
  std::vector<util::Rate> ingress_;
  std::vector<util::Rate> egress_;
  std::vector<util::Rate> rack_up_;
  std::vector<util::Rate> rack_down_;
};

/// Mutable residual capacity tracker used by greedy scheduler passes:
/// start from a fabric (or a scaled share of it), hand out rate to flows,
/// and query what is left. Tracks rack up/down links when the fabric has
/// racks.
class ResidualCapacity {
 public:
  /// Empty tracker; fill via assignFrom() (reusable scheduler scratch).
  ResidualCapacity() = default;
  explicit ResidualCapacity(const Fabric& fabric, double scale = 1.0);
  ResidualCapacity(std::vector<util::Rate> ingress, std::vector<util::Rate> egress);

  int numPorts() const { return static_cast<int>(ingress_.size()); }
  util::Rate ingress(coflow::PortId p) const { return ingress_[static_cast<std::size_t>(p)]; }
  util::Rate egress(coflow::PortId p) const { return egress_[static_cast<std::size_t>(p)]; }

  bool hasRacks() const { return fabric_ != nullptr && fabric_->hasRacks(); }
  const Fabric* fabric() const { return fabric_; }
  util::Rate rackUplink(int rack) const {
    return rack_up_[static_cast<std::size_t>(rack)];
  }
  util::Rate rackDownlink(int rack) const {
    return rack_down_[static_cast<std::size_t>(rack)];
  }

  /// Largest rate a single src->dst flow could still get (includes rack
  /// links for cross-rack flows). Inline: this and consume() are the
  /// innermost operations of every greedy scheduler pass.
  util::Rate available(coflow::PortId src, coflow::PortId dst) const {
    util::Rate limit = std::min(ingress_[static_cast<std::size_t>(src)],
                                egress_[static_cast<std::size_t>(dst)]);
    if (fabric_ != nullptr && fabric_->crossRack(src, dst)) {
      limit = std::min({limit, rack_up_[static_cast<std::size_t>(fabric_->rackOf(src))],
                        rack_down_[static_cast<std::size_t>(fabric_->rackOf(dst))]});
    }
    return limit;
  }

  /// Removes `rate` from every resource the flow crosses. Clamps at zero
  /// (tiny negative residuals arise from floating-point water-filling).
  void consume(coflow::PortId src, coflow::PortId dst, util::Rate rate) {
    auto& in = ingress_[static_cast<std::size_t>(src)];
    auto& out = egress_[static_cast<std::size_t>(dst)];
    in = std::max(0.0, in - rate);
    out = std::max(0.0, out - rate);
    if (fabric_ != nullptr && fabric_->crossRack(src, dst)) {
      auto& up = rack_up_[static_cast<std::size_t>(fabric_->rackOf(src))];
      auto& down = rack_down_[static_cast<std::size_t>(fabric_->rackOf(dst))];
      up = std::max(0.0, up - rate);
      down = std::max(0.0, down - rate);
    }
  }

  /// Adds `rate` back (used when transplanting allocations between passes).
  void release(coflow::PortId src, coflow::PortId dst, util::Rate rate) {
    ingress_[static_cast<std::size_t>(src)] += rate;
    egress_[static_cast<std::size_t>(dst)] += rate;
    if (fabric_ != nullptr && fabric_->crossRack(src, dst)) {
      rack_up_[static_cast<std::size_t>(fabric_->rackOf(src))] += rate;
      rack_down_[static_cast<std::size_t>(fabric_->rackOf(dst))] += rate;
    }
  }

  /// Re-initializes from a fabric without reallocating (scratch reuse in
  /// per-round scheduler passes).
  void assignFrom(const Fabric& fabric, double scale = 1.0) {
    fabric_ = fabric.hasRacks() ? &fabric : nullptr;
    ingress_.assign(fabric.ingressCapacities().begin(), fabric.ingressCapacities().end());
    egress_.assign(fabric.egressCapacities().begin(), fabric.egressCapacities().end());
    rack_up_.assign(fabric.rackUplinkCapacities().begin(),
                    fabric.rackUplinkCapacities().end());
    rack_down_.assign(fabric.rackDownlinkCapacities().begin(),
                      fabric.rackDownlinkCapacities().end());
    if (scale != 1.0) {
      for (auto& c : ingress_) c *= scale;
      for (auto& c : egress_) c *= scale;
      for (auto& c : rack_up_) c *= scale;
      for (auto& c : rack_down_) c *= scale;
    }
  }

  /// True when every port has (numerically) zero residual on both sides.
  /// `threshold` bounds what counts as zero; the default kEps is absolute,
  /// so callers comparing against multi-Gbps capacities should pass a
  /// capacity-relative threshold (water-filling leaves O(capacity * 1e-16)
  /// dust per pass, which an absolute 1e-9 does not cover).
  bool exhausted(util::Rate threshold = util::kEps) const;

  std::vector<util::Rate>& ingressAll() { return ingress_; }
  std::vector<util::Rate>& egressAll() { return egress_; }
  std::vector<util::Rate>& rackUplinkAll() { return rack_up_; }
  std::vector<util::Rate>& rackDownlinkAll() { return rack_down_; }

 private:
  const Fabric* fabric_ = nullptr;  // For rack lookups; null if rack-free.
  std::vector<util::Rate> ingress_;
  std::vector<util::Rate> egress_;
  std::vector<util::Rate> rack_up_;
  std::vector<util::Rate> rack_down_;
};

}  // namespace aalo::fabric
