// RAII socket primitives for the Aalo runtime (loopback TCP).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace aalo::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Throws std::system_error on failure for all of the below.

/// Creates a non-blocking listening socket bound to 127.0.0.1:`port`
/// (port 0 = ephemeral). Returns the socket and the actual port.
std::pair<Fd, std::uint16_t> listenTcp(std::uint16_t port, int backlog = 1024);

/// Connects to 127.0.0.1:`port`. Blocking connect, then switched to
/// non-blocking if requested.
Fd connectTcp(std::uint16_t port, bool non_blocking = true);

/// Accepts one connection (non-blocking listener); invalid Fd if none
/// pending.
Fd acceptTcp(int listener_fd);

void setNonBlocking(int fd);
void setNoDelay(int fd);

}  // namespace aalo::net
