#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace aalo::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throwErrno("fcntl(O_NONBLOCK)");
  }
}

void setNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    throwErrno("setsockopt(TCP_NODELAY)");
  }
}

std::pair<Fd, std::uint16_t> listenTcp(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throwErrno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    throwErrno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throwErrno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) throwErrno("listen");
  setNonBlocking(fd.get());

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throwErrno("getsockname");
  }
  return {std::move(fd), ntohs(addr.sin_port)};
}

Fd connectTcp(std::uint16_t port, bool non_blocking) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throwErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throwErrno("connect");
  }
  setNoDelay(fd.get());
  if (non_blocking) setNonBlocking(fd.get());
  return fd;
}

Fd acceptTcp(int listener_fd) {
  const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    throwErrno("accept4");
  }
  Fd out(fd);
  setNoDelay(fd);
  return out;
}

}  // namespace aalo::net
