// Deterministic fault injection for the Aalo control plane.
//
// ChaosProxy is an in-process TCP relay: peers connect to its listen port
// and it forwards their byte stream to the upstream port (and back),
// re-framing at message granularity so a seeded util::Rng policy can
// drop, delay, duplicate, reorder, truncate, or bit-corrupt individual
// frames, split the relayed stream at arbitrary byte boundaries, and
// sever/heal the link on command. Every decision is drawn from a
// per-direction Rng in frame-arrival order, so a scenario replayed with
// the same seed and the same frame sequence produces the same mangled
// stream — failure modes become plain deterministic unit tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "util/rng.h"
#include "util/units.h"

namespace aalo::net {

/// Per-direction mangling policy; all probabilities are per frame.
struct ChaosPolicy {
  double drop = 0;       ///< Frame silently discarded.
  double duplicate = 0;  ///< Frame forwarded twice back-to-back.
  double reorder = 0;    ///< Frame held and emitted after its successor.
  double truncate = 0;   ///< Payload cut short (still correctly framed).
  double corrupt = 0;    ///< One random payload bit flipped.
  double delay = 0;      ///< Frame forwarded after delay_min..delay_max.
  util::Seconds delay_min = 0.001;
  util::Seconds delay_max = 0.005;
  /// Split relayed writes into chunks of at most this many bytes with a
  /// short pause between them (exercises partial-frame reassembly).
  /// 0 = write as much as the socket accepts.
  std::size_t max_write_bytes = 0;
  /// Drop every frame in this direction (a one-way link failure); the
  /// TCP connection itself stays up.
  bool blackhole = false;
  /// Relay only a strict prefix of the framed bytes (possibly cutting
  /// inside the 4-byte length header) and then sever the session —
  /// simulating a sender killed mid-write (torn broadcast). The receiver
  /// must discard the partial frame without ever half-applying it.
  double kill_mid_frame = 0;
};

/// Monotonic counters; safe to read from any thread.
struct ChaosStats {
  using Counter = std::atomic<std::uint64_t>;
  Counter sessions_accepted{0};
  Counter sessions_refused{0};  ///< Accepted while the link was down.
  Counter frames_relayed{0};    ///< Frames forwarded (possibly mangled).
  Counter frames_dropped{0};
  Counter frames_duplicated{0};
  Counter frames_reordered{0};
  Counter frames_truncated{0};
  Counter frames_corrupted{0};
  Counter frames_delayed{0};
  Counter frames_blackholed{0};
  Counter frames_torn{0};  ///< Sessions severed mid-frame (kill_mid_frame).
  Counter link_kills{0};

  ChaosStats() = default;
  ChaosStats(const ChaosStats&) = delete;
  ChaosStats& operator=(const ChaosStats&) = delete;
};

struct ChaosProxyConfig {
  std::uint16_t listen_port = 0;  ///< 0 picks an ephemeral port.
  std::uint16_t upstream_port = 0;
  std::uint64_t seed = 1;
  ChaosPolicy client_to_upstream;
  ChaosPolicy upstream_to_client;
  /// Record one human-readable line per policy decision (see trace()).
  bool record_trace = false;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyConfig config);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen port and starts the relay thread.
  void start();
  /// Idempotent and safe under concurrent callers.
  void stop();

  std::uint16_t port() const { return port_; }

  /// Severs every active session (peers see a close). New connections are
  /// still accepted; combine with setLinkUp(false) to refuse them too.
  void killLink();

  /// While down, existing sessions are severed and new connections are
  /// closed immediately after accept.
  void setLinkUp(bool up);

  /// Replaces both direction policies (applied to subsequent frames).
  void setPolicies(ChaosPolicy client_to_upstream, ChaosPolicy upstream_to_client);

  const ChaosStats& stats() const { return stats_; }

  /// Decision log (only populated with record_trace): entries such as
  /// "c2u#12 drop" in per-direction frame order. Deterministic for a
  /// given seed and frame sequence.
  std::vector<std::string> trace() const;

 private:
  /// One endpoint of a relayed session: raw fd plus staging buffers.
  struct Leg {
    Fd fd;
    Buffer incoming;
    Buffer outgoing;
    bool want_write = false;
    bool flush_timer_armed = false;
  };

  /// Frame held back by a reorder decision (emitted after its successor).
  struct HeldFrame {
    std::vector<std::uint8_t> blob;
    int copies = 1;
  };

  struct Session {
    std::uint64_t id = 0;
    Leg client;
    Leg upstream;
    std::optional<HeldFrame> held_c2u;
    std::optional<HeldFrame> held_u2c;
    bool closed = false;
  };

  void onAcceptable();
  void addLeg(const std::shared_ptr<Session>& session, bool client_side);
  void onLegEvents(const std::shared_ptr<Session>& session, bool client_side,
                   std::uint32_t events);
  void relayFrames(const std::shared_ptr<Session>& session, bool client_to_upstream);
  void deliver(const std::shared_ptr<Session>& session, bool client_to_upstream,
               const std::vector<std::uint8_t>& blob, int copies);
  void flushLeg(const std::shared_ptr<Session>& session, bool client_side);
  void closeSession(const std::shared_ptr<Session>& session);
  void record(bool client_to_upstream, std::uint64_t frame_index,
              const char* action);

  ChaosProxyConfig config_;
  EventLoop loop_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex lifecycle_mutex_;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  util::Rng rng_c2u_;
  util::Rng rng_u2c_;
  std::uint64_t frames_c2u_ = 0;
  std::uint64_t frames_u2c_ = 0;
  bool link_up_ = true;

  ChaosStats stats_;
  mutable std::mutex trace_mutex_;
  std::vector<std::string> trace_;
};

}  // namespace aalo::net
