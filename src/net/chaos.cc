#include "net/chaos.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <system_error>
#include <utility>

#include "net/connection.h"  // kMaxFrameBytes
#include "util/log.h"

namespace aalo::net {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

/// Pause between split-write chunks: long enough that the kernel delivers
/// them as separate reads, short enough to keep tests fast.
constexpr auto kSplitFlushPause = std::chrono::microseconds(200);

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyConfig config)
    : config_(std::move(config)),
      // Independent per-direction streams: decisions in one direction must
      // not perturb the other (their frame interleaving is timing-dependent
      // but each direction's frame order is fixed by TCP).
      rng_c2u_(config_.seed * 2 + 1),
      rng_u2c_(config_.seed * 2 + 2) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  auto [fd, port] = listenTcp(config_.listen_port);
  listener_ = std::move(fd);
  port_ = port;
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { onAcceptable(); });
  thread_ = std::thread([this] { loop_.run(); });
  AALO_LOG_INFO << "chaos proxy on 127.0.0.1:" << port_ << " -> 127.0.0.1:"
                << config_.upstream_port << " (seed " << config_.seed << ")";
}

void ChaosProxy::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  // Loop thread is gone; tear sessions down inline.
  for (auto& [id, session] : sessions_) {
    if (session->closed) continue;
    session->closed = true;
    if (session->client.fd.valid()) loop_.remove(session->client.fd.get());
    if (session->upstream.fd.valid()) loop_.remove(session->upstream.fd.get());
  }
  sessions_.clear();
  if (listener_.valid()) loop_.remove(listener_.get());
  listener_.reset();
}

void ChaosProxy::killLink() {
  stats_.link_kills.fetch_add(1, std::memory_order_relaxed);
  loop_.post([this] {
    std::vector<std::shared_ptr<Session>> doomed;
    doomed.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) doomed.push_back(session);
    for (const auto& session : doomed) closeSession(session);
  });
}

void ChaosProxy::setLinkUp(bool up) {
  loop_.post([this, up] {
    link_up_ = up;
    if (!up) {
      std::vector<std::shared_ptr<Session>> doomed;
      doomed.reserve(sessions_.size());
      for (const auto& [id, session] : sessions_) doomed.push_back(session);
      for (const auto& session : doomed) closeSession(session);
    }
  });
}

void ChaosProxy::setPolicies(ChaosPolicy client_to_upstream,
                             ChaosPolicy upstream_to_client) {
  loop_.post([this, c2u = std::move(client_to_upstream),
              u2c = std::move(upstream_to_client)] {
    config_.client_to_upstream = c2u;
    config_.upstream_to_client = u2c;
  });
}

std::vector<std::string> ChaosProxy::trace() const {
  std::lock_guard lock(trace_mutex_);
  return trace_;
}

void ChaosProxy::record(bool client_to_upstream, std::uint64_t frame_index,
                        const char* action) {
  if (!config_.record_trace) return;
  std::lock_guard lock(trace_mutex_);
  trace_.push_back(std::string(client_to_upstream ? "c2u#" : "u2c#") +
                   std::to_string(frame_index) + " " + action);
}

void ChaosProxy::onAcceptable() {
  for (;;) {
    Fd client_fd = acceptTcp(listener_.get());
    if (!client_fd.valid()) break;
    if (!link_up_) {
      stats_.sessions_refused.fetch_add(1, std::memory_order_relaxed);
      continue;  // Fd destructor closes: the peer sees an immediate hangup.
    }
    Fd upstream_fd;
    try {
      upstream_fd = connectTcp(config_.upstream_port);
    } catch (const std::system_error&) {
      stats_.sessions_refused.fetch_add(1, std::memory_order_relaxed);
      continue;  // Upstream down: refuse by closing the accepted fd.
    }
    auto session = std::make_shared<Session>();
    session->id = next_session_id_++;
    session->client.fd = std::move(client_fd);
    session->upstream.fd = std::move(upstream_fd);
    sessions_.emplace(session->id, session);
    stats_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
    addLeg(session, /*client_side=*/true);
    addLeg(session, /*client_side=*/false);
  }
}

void ChaosProxy::addLeg(const std::shared_ptr<Session>& session, bool client_side) {
  Leg& leg = client_side ? session->client : session->upstream;
  std::weak_ptr<Session> weak = session;
  loop_.add(leg.fd.get(), EPOLLIN, [this, weak, client_side](std::uint32_t events) {
    if (auto locked = weak.lock()) onLegEvents(locked, client_side, events);
  });
}

void ChaosProxy::onLegEvents(const std::shared_ptr<Session>& session,
                             bool client_side, std::uint32_t events) {
  if (session->closed) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    closeSession(session);
    return;
  }
  Leg& leg = client_side ? session->client : session->upstream;
  if (events & EPOLLIN) {
    for (;;) {
      std::uint8_t* area = leg.incoming.writableArea(64 * 1024);
      const ssize_t n = ::read(leg.fd.get(), area, 64 * 1024);
      if (n > 0) {
        leg.incoming.commitWrite(static_cast<std::size_t>(n));
        if (n < 64 * 1024) break;
        continue;
      }
      if (n == 0) {
        closeSession(session);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      closeSession(session);
      return;
    }
    // Bytes read on the client leg travel client->upstream and vice versa.
    relayFrames(session, /*client_to_upstream=*/client_side);
    if (session->closed) return;
  }
  if (events & EPOLLOUT) {
    leg.want_write = false;
    loop_.modify(leg.fd.get(), EPOLLIN);
    flushLeg(session, client_side);
  }
}

void ChaosProxy::relayFrames(const std::shared_ptr<Session>& session,
                             bool client_to_upstream) {
  Leg& src = client_to_upstream ? session->client : session->upstream;
  const ChaosPolicy& policy =
      client_to_upstream ? config_.client_to_upstream : config_.upstream_to_client;
  util::Rng& rng = client_to_upstream ? rng_c2u_ : rng_u2c_;
  std::uint64_t& frame_counter = client_to_upstream ? frames_c2u_ : frames_u2c_;
  auto& held = client_to_upstream ? session->held_c2u : session->held_u2c;

  while (!session->closed && src.incoming.readableBytes() >= 4) {
    const std::uint8_t* p = src.incoming.peek();
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > kMaxFrameBytes) {
      closeSession(session);  // Upstream/peer stream itself is corrupt.
      return;
    }
    if (src.incoming.readableBytes() < 4 + static_cast<std::size_t>(len)) break;
    src.incoming.consume(4);
    std::vector<std::uint8_t> payload(src.incoming.peek(),
                                      src.incoming.peek() + len);
    src.incoming.consume(len);
    const std::uint64_t index = frame_counter++;

    // Policy decisions, in a fixed order so the Rng stream alone
    // determines the outcome for frame `index`.
    if (policy.blackhole) {
      stats_.frames_blackholed.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "blackhole");
      continue;
    }
    if (rng.chance(policy.drop)) {
      stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "drop");
      continue;
    }
    if (rng.chance(policy.kill_mid_frame)) {
      // Sender killed mid-write: forward a strict prefix of the framed
      // bytes — the cut may land inside the 4-byte header or the payload
      // — then sever the session so no continuation ever arrives.
      stats_.frames_torn.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "tear");
      std::vector<std::uint8_t> torn;
      torn.reserve(4 + payload.size());
      const std::uint32_t full_len = static_cast<std::uint32_t>(payload.size());
      torn.push_back(static_cast<std::uint8_t>(full_len & 0xFF));
      torn.push_back(static_cast<std::uint8_t>((full_len >> 8) & 0xFF));
      torn.push_back(static_cast<std::uint8_t>((full_len >> 16) & 0xFF));
      torn.push_back(static_cast<std::uint8_t>((full_len >> 24) & 0xFF));
      torn.insert(torn.end(), payload.begin(), payload.end());
      torn.resize(static_cast<std::size_t>(
          rng.uniformInt(1, static_cast<std::int64_t>(torn.size()) - 1)));
      Leg& dst = client_to_upstream ? session->upstream : session->client;
      dst.outgoing.append(torn.data(), torn.size());
      flushLeg(session, /*client_side=*/!client_to_upstream);
      closeSession(session);
      return;
    }
    if (rng.chance(policy.truncate) && payload.size() > 1) {
      payload.resize(static_cast<std::size_t>(
          rng.uniformInt(1, static_cast<std::int64_t>(payload.size()) - 1)));
      stats_.frames_truncated.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "truncate");
    }
    if (rng.chance(policy.corrupt) && !payload.empty()) {
      const auto byte = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(payload.size()) - 1));
      const auto bit = static_cast<unsigned>(rng.uniformInt(0, 7));
      payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
      stats_.frames_corrupted.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "corrupt");
    }
    const int copies = rng.chance(policy.duplicate) ? 2 : 1;
    if (copies == 2) {
      stats_.frames_duplicated.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "duplicate");
    }

    // Re-frame the (possibly mangled) payload. The length prefix always
    // matches the forwarded payload so corruption stays *inside* frames;
    // stream desynchronization is exercised separately via truncation at
    // the receiver's decode layer and split writes below.
    std::vector<std::uint8_t> blob;
    blob.reserve(4 + payload.size());
    const std::uint32_t out_len = static_cast<std::uint32_t>(payload.size());
    blob.push_back(static_cast<std::uint8_t>(out_len & 0xFF));
    blob.push_back(static_cast<std::uint8_t>((out_len >> 8) & 0xFF));
    blob.push_back(static_cast<std::uint8_t>((out_len >> 16) & 0xFF));
    blob.push_back(static_cast<std::uint8_t>((out_len >> 24) & 0xFF));
    blob.insert(blob.end(), payload.begin(), payload.end());

    if (rng.chance(policy.delay)) {
      stats_.frames_delayed.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "delay");
      const double wait = rng.uniform(policy.delay_min, policy.delay_max);
      std::weak_ptr<Session> weak = session;
      loop_.callAfter(toNanos(wait),
                      [this, weak, client_to_upstream, blob = std::move(blob),
                       copies] {
                        if (auto locked = weak.lock()) {
                          if (!locked->closed) {
                            deliver(locked, client_to_upstream, blob, copies);
                          }
                        }
                      });
      continue;
    }
    if (rng.chance(policy.reorder) && !held.has_value()) {
      stats_.frames_reordered.fetch_add(1, std::memory_order_relaxed);
      record(client_to_upstream, index, "hold");
      held = HeldFrame{std::move(blob), copies};
      continue;
    }
    deliver(session, client_to_upstream, blob, copies);
    if (held.has_value()) {
      HeldFrame released = std::move(*held);
      held.reset();
      deliver(session, client_to_upstream, released.blob, released.copies);
    }
  }
}

void ChaosProxy::deliver(const std::shared_ptr<Session>& session,
                         bool client_to_upstream,
                         const std::vector<std::uint8_t>& blob, int copies) {
  if (session->closed) return;
  // Frames travelling client->upstream are written on the upstream leg.
  Leg& dst = client_to_upstream ? session->upstream : session->client;
  for (int i = 0; i < copies; ++i) dst.outgoing.append(blob.data(), blob.size());
  stats_.frames_relayed.fetch_add(static_cast<std::uint64_t>(copies),
                                  std::memory_order_relaxed);
  flushLeg(session, /*client_side=*/!client_to_upstream);
}

void ChaosProxy::flushLeg(const std::shared_ptr<Session>& session,
                          bool client_side) {
  Leg& leg = client_side ? session->client : session->upstream;
  const ChaosPolicy& policy =
      client_side ? config_.upstream_to_client : config_.client_to_upstream;
  while (!leg.outgoing.empty()) {
    std::size_t want = leg.outgoing.readableBytes();
    if (policy.max_write_bytes > 0) want = std::min(want, policy.max_write_bytes);
    const ssize_t n =
        ::send(leg.fd.get(), leg.outgoing.peek(), want, MSG_NOSIGNAL);
    if (n > 0) {
      leg.outgoing.consume(static_cast<std::size_t>(n));
      if (policy.max_write_bytes > 0 && !leg.outgoing.empty()) {
        // Split mode: pause so the remainder lands in a separate segment,
        // forcing the receiver through its partial-frame path.
        if (!leg.flush_timer_armed) {
          leg.flush_timer_armed = true;
          std::weak_ptr<Session> weak = session;
          loop_.callAfter(kSplitFlushPause, [this, weak, client_side] {
            if (auto locked = weak.lock()) {
              if (locked->closed) return;
              Leg& l = client_side ? locked->client : locked->upstream;
              l.flush_timer_armed = false;
              flushLeg(locked, client_side);
            }
          });
        }
        return;
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!leg.want_write) {
        leg.want_write = true;
        loop_.modify(leg.fd.get(), EPOLLIN | EPOLLOUT);
      }
      return;
    }
    if (errno == EINTR) continue;
    closeSession(session);
    return;
  }
}

void ChaosProxy::closeSession(const std::shared_ptr<Session>& session) {
  if (session->closed) return;
  session->closed = true;
  if (session->client.fd.valid()) loop_.remove(session->client.fd.get());
  if (session->upstream.fd.valid()) loop_.remove(session->upstream.fd.get());
  session->client.fd.reset();
  session->upstream.fd.reset();
  sessions_.erase(session->id);
}

}  // namespace aalo::net
