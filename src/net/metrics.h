// Per-connection wire counters.
//
// A ConnMetrics instance is shared by every Connection a component owns
// (one per coordinator, one per daemon, ...), so the counters aggregate
// frames and bytes across the component's whole socket set. Connections
// constructed without one write into a process-wide dummy sink — the
// increment stays branch-free either way.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace aalo::net {

struct ConnMetrics {
  obs::Counter frames_in;   ///< Complete frames delivered to the handler.
  obs::Counter frames_out;  ///< Frames queued for send.
  obs::Counter bytes_in;    ///< Wire bytes received (headers included).
  obs::Counter bytes_out;   ///< Wire bytes queued (headers included).
  /// Connections closed because their bounded send queue overflowed (a
  /// peer that stopped draining; see Connection::setSendQueueLimit).
  obs::Counter overflow_closes;

  /// Shared sink for unmetered connections.
  static ConnMetrics& dummy();
};

/// Attaches the counters to `registry` under
/// `<prefix>_net_{frames,bytes}_{in,out}_total` plus
/// `<prefix>_net_overflow_closes_total`.
void registerConnMetrics(obs::Registry& registry, const ConnMetrics& metrics,
                         const std::string& prefix);

}  // namespace aalo::net
