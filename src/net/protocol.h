// Aalo control-plane wire protocol (§6.2).
//
// Daemons report locally observed coflow sizes to the coordinator every Δ
// interval; the coordinator replies with the globally coordinated coflow
// order (queue per coflow + FIFO position implied by CoflowId). Clients
// register/unregister coflows through the same protocol.
//
// Encoding: little-endian primitives via net::Buffer, one message per
// frame (see net/connection.h for framing).
#pragma once

#include <cstdint>
#include <vector>

#include "coflow/ids.h"
#include "net/buffer.h"

namespace aalo::net {

enum class MessageType : std::uint8_t {
  kHello = 1,             ///< daemon -> coordinator: announce daemon_id.
  kRegisterCoflow = 2,    ///< client -> coordinator: new coflow (with parents).
  kRegisterReply = 3,     ///< coordinator -> client: assigned CoflowId.
  kUnregisterCoflow = 4,  ///< client -> coordinator: coflow completed.
  kSizeReport = 5,        ///< daemon -> coordinator: local attained bytes.
  kScheduleUpdate = 6,    ///< coordinator -> daemons: full schedule snapshot.
  /// coordinator -> daemons: only the entries that moved queues, toggled
  /// ON/OFF, or appeared since `base_epoch`, plus the coflows that
  /// vanished (unregistered). An empty delta is an epoch-only heartbeat:
  /// "the schedule you applied at base_epoch is still exact". A daemon
  /// whose applied epoch != base_epoch has missed a broadcast and must
  /// request a snapshot instead of applying.
  kScheduleDelta = 7,
  /// daemon -> coordinator: detected an epoch gap (or otherwise lost
  /// schedule state); send a full kScheduleUpdate on the next round.
  kSnapshotRequest = 8,
  /// standby coordinator -> primary: subscribe to the broadcast stream as
  /// a pseudo-daemon (warm standby). The follower receives the same
  /// snapshot-then-deltas sequence a daemon would but is exempt from
  /// liveness eviction (it sends no size reports).
  kFollowerSubscribe = 9,
};

struct CoflowSize {
  coflow::CoflowId id;
  double bytes = 0;

  friend bool operator==(const CoflowSize&, const CoflowSize&) = default;
};

struct ScheduleEntry {
  coflow::CoflowId id;
  double global_bytes = 0;
  std::int32_t queue = 0;
  /// Explicit ON/OFF signal (§6.2): the coordinator switches coflows off
  /// beyond its concurrency budget to avoid receiver-side contention and
  /// speed sender/receiver rate convergence.
  bool on = true;

  friend bool operator==(const ScheduleEntry&, const ScheduleEntry&) = default;
};

/// One decoded control message. Which fields are meaningful depends on
/// `type`; unused fields stay default-initialized.
struct Message {
  MessageType type = MessageType::kHello;
  std::uint64_t daemon_id = 0;    ///< kHello / kSizeReport.
  std::uint64_t request_id = 0;   ///< kRegisterCoflow / kRegisterReply.
  /// kScheduleUpdate / kScheduleDelta: this broadcast's coordination
  /// round. kSizeReport / kSnapshotRequest: the last epoch the daemon
  /// *applied* — the coordinator uses the echo to detect a one-way link
  /// (reports arrive, broadcasts don't).
  std::uint64_t epoch = 0;
  /// kScheduleDelta: the epoch this delta builds on. Applying it to any
  /// other state would silently diverge, so a daemon at a different
  /// applied epoch must fall back to a snapshot.
  std::uint64_t base_epoch = 0;
  /// kScheduleUpdate / kScheduleDelta: fencing epoch of the broadcasting
  /// coordinator incarnation. A standby that takes over bumps it, so
  /// daemons can ignore broadcasts from a deposed primary outright (no
  /// split-brain: follow the highest fence ever seen). kFollowerSubscribe:
  /// the highest fence the subscribing standby has witnessed.
  std::uint64_t fence = 0;
  coflow::CoflowId coflow;        ///< kRegisterReply / kUnregisterCoflow.
  std::vector<coflow::CoflowId> parents;   ///< kRegisterCoflow.
  std::vector<CoflowSize> sizes;           ///< kSizeReport.
  std::vector<ScheduleEntry> schedule;     ///< kScheduleUpdate / kScheduleDelta.
  std::vector<coflow::CoflowId> removals;  ///< kScheduleDelta: vanished coflows.
};

void encodeMessage(const Message& message, Buffer& out);

/// Decodes one message from `in` (a full frame payload); throws
/// std::out_of_range / std::runtime_error on malformed input.
Message decodeMessage(Buffer& in);

}  // namespace aalo::net
