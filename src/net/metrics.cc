#include "net/metrics.h"

namespace aalo::net {

ConnMetrics& ConnMetrics::dummy() {
  static ConnMetrics sink;
  return sink;
}

void registerConnMetrics(obs::Registry& registry, const ConnMetrics& metrics,
                         const std::string& prefix) {
  registry.attachCounter(prefix + "_net_frames_in_total",
                         "Complete frames delivered", metrics.frames_in);
  registry.attachCounter(prefix + "_net_frames_out_total", "Frames queued for send",
                         metrics.frames_out);
  registry.attachCounter(prefix + "_net_bytes_in_total",
                         "Wire bytes received incl. headers", metrics.bytes_in);
  registry.attachCounter(prefix + "_net_bytes_out_total",
                         "Wire bytes queued incl. headers", metrics.bytes_out);
  registry.attachCounter(prefix + "_net_overflow_closes_total",
                         "Connections closed on send-queue overflow",
                         metrics.overflow_closes);
}

}  // namespace aalo::net
