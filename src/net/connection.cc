#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>

namespace aalo::net {

namespace {

/// Segments gathered into one writev call. Outgoing queues are almost
/// always [staged header][shared payload] pairs, so a small batch covers
/// the common case without approaching IOV_MAX.
constexpr std::size_t kMaxIov = 16;

}  // namespace

Connection::Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
                       CloseHandler on_close, ConnMetrics* metrics)
    : loop_(loop),
      fd_(std::move(fd)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)),
      metrics_(metrics != nullptr ? metrics : &ConnMetrics::dummy()) {
  loop_.add(fd_.get(), EPOLLIN,
            [this](std::uint32_t events) { onEvents(events); });
}

Connection::~Connection() {
  if (!closed_ && fd_.valid()) loop_.remove(fd_.get());
}

void Connection::sendFrame(const Buffer& payload) {
  sendFrame(payload.readable());
}

Buffer& Connection::stagingTail() {
  if (outgoing_.empty() || outgoing_.back().shared) outgoing_.emplace_back();
  return outgoing_.back().owned;
}

bool Connection::overflowsSendQueue(std::size_t frame_bytes) {
  if (send_queue_limit_ == 0 ||
      pending_bytes_ + frame_bytes <= send_queue_limit_) {
    return false;
  }
  // The peer is not draining and the cap is exhausted: closing is the only
  // bounded-memory option left (the caller's coalescing policy should have
  // stopped sending long before this trips).
  metrics_->overflow_closes.fetch_add(1);
  close();
  return true;
}

void Connection::sendFrame(std::span<const std::uint8_t> payload) {
  if (closed_) return;
  if (overflowsSendQueue(4 + payload.size())) return;
  Buffer& tail = stagingTail();
  tail.putU32(static_cast<std::uint32_t>(payload.size()));
  tail.append(payload);
  pending_bytes_ += 4 + payload.size();
  metrics_->frames_out.fetch_add(1);
  metrics_->bytes_out.fetch_add(4 + payload.size());
  flush();
}

void Connection::sendFrame(std::shared_ptr<const Buffer> payload) {
  if (closed_ || !payload) return;
  const std::size_t len = payload->readableBytes();
  if (overflowsSendQueue(4 + len)) return;
  stagingTail().putU32(static_cast<std::uint32_t>(len));
  pending_bytes_ += 4 + len;
  metrics_->frames_out.fetch_add(1);
  metrics_->bytes_out.fetch_add(4 + len);
  if (len > 0) {
    Segment segment;
    segment.shared = std::move(payload);
    outgoing_.push_back(std::move(segment));
  }
  flush();
}

void Connection::onEvents(std::uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLIN) handleReadable();
  if (!closed_ && (events & EPOLLOUT)) flush();
}

void Connection::handleReadable() {
  for (;;) {
    std::uint8_t* area = incoming_.writableArea(64 * 1024);
    const ssize_t n = ::read(fd_.get(), area, 64 * 1024);
    if (n > 0) {
      incoming_.commitWrite(static_cast<std::size_t>(n));
      if (n < 64 * 1024) break;  // Drained.
      continue;
    }
    if (n == 0) {
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }

  // Deliver every complete frame.
  while (!closed_ && incoming_.readableBytes() >= 4) {
    const std::uint8_t* p = incoming_.peek();
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > kMaxFrameBytes) {
      close();  // Corrupt stream.
      return;
    }
    if (incoming_.readableBytes() < 4 + static_cast<std::size_t>(len)) break;
    incoming_.consume(4);
    Buffer payload;
    payload.append(incoming_.peek(), len);
    incoming_.consume(len);
    metrics_->frames_in.fetch_add(1);
    metrics_->bytes_in.fetch_add(4 + static_cast<std::size_t>(len));
    on_frame_(payload);
  }
}

void Connection::flush() {
  while (pending_bytes_ > 0) {
    std::array<iovec, kMaxIov> iov;
    std::size_t iov_count = 0;
    for (const Segment& segment : outgoing_) {
      if (iov_count == kMaxIov) break;
      const auto bytes = segment.bytes();
      if (bytes.empty()) continue;
      iov[iov_count].iov_base = const_cast<std::uint8_t*>(bytes.data());
      iov[iov_count].iov_len = bytes.size();
      ++iov_count;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = iov_count;
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE
    // (handled below as a close), never as a process-killing SIGPIPE.
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t left = static_cast<std::size_t>(n);
      pending_bytes_ -= left;
      while (left > 0) {
        Segment& front = outgoing_.front();
        const std::size_t take = std::min(left, front.bytes().size());
        front.consume(take);
        left -= take;
        if (front.drained()) outgoing_.pop_front();
      }
      while (!outgoing_.empty() && outgoing_.front().drained()) {
        outgoing_.pop_front();
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }
  if (pending_bytes_ == 0) outgoing_.clear();
  updateInterest();
}

void Connection::updateInterest() {
  const bool want_write = pending_bytes_ > 0;
  if (want_write == want_write_ || closed_) return;
  want_write_ = want_write;
  loop_.modify(fd_.get(), EPOLLIN | (want_write ? EPOLLOUT : 0u));
}

void Connection::close() {
  if (closed_) return;
  closed_ = true;
  loop_.remove(fd_.get());
  fd_.reset();
  // Release shared broadcast buffers promptly: a dead peer must not pin
  // the coordinator's encode scratch.
  outgoing_.clear();
  pending_bytes_ = 0;
  if (on_close_) on_close_();
}

}  // namespace aalo::net
