#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace aalo::net {

Connection::Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
                       CloseHandler on_close)
    : loop_(loop),
      fd_(std::move(fd)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {
  loop_.add(fd_.get(), EPOLLIN,
            [this](std::uint32_t events) { onEvents(events); });
}

Connection::~Connection() {
  if (!closed_ && fd_.valid()) loop_.remove(fd_.get());
}

void Connection::sendFrame(const Buffer& payload) {
  sendFrame(payload.readable());
}

void Connection::sendFrame(std::span<const std::uint8_t> payload) {
  if (closed_) return;
  outgoing_.putU32(static_cast<std::uint32_t>(payload.size()));
  outgoing_.append(payload);
  flush();
}

void Connection::onEvents(std::uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLIN) handleReadable();
  if (!closed_ && (events & EPOLLOUT)) flush();
}

void Connection::handleReadable() {
  for (;;) {
    std::uint8_t* area = incoming_.writableArea(64 * 1024);
    const ssize_t n = ::read(fd_.get(), area, 64 * 1024);
    if (n > 0) {
      incoming_.commitWrite(static_cast<std::size_t>(n));
      if (n < 64 * 1024) break;  // Drained.
      continue;
    }
    if (n == 0) {
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }

  // Deliver every complete frame.
  while (!closed_ && incoming_.readableBytes() >= 4) {
    const std::uint8_t* p = incoming_.peek();
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > kMaxFrameBytes) {
      close();  // Corrupt stream.
      return;
    }
    if (incoming_.readableBytes() < 4 + static_cast<std::size_t>(len)) break;
    incoming_.consume(4);
    Buffer payload;
    payload.append(incoming_.peek(), len);
    incoming_.consume(len);
    on_frame_(payload);
  }
}

void Connection::flush() {
  while (!outgoing_.empty()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE
    // (handled below as a close), never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_.get(), outgoing_.peek(),
                             outgoing_.readableBytes(), MSG_NOSIGNAL);
    if (n > 0) {
      outgoing_.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }
  updateInterest();
}

void Connection::updateInterest() {
  const bool want_write = !outgoing_.empty();
  if (want_write == want_write_ || closed_) return;
  want_write_ = want_write;
  loop_.modify(fd_.get(), EPOLLIN | (want_write ? EPOLLOUT : 0u));
}

void Connection::close() {
  if (closed_) return;
  closed_ = true;
  loop_.remove(fd_.get());
  fd_.reset();
  if (on_close_) on_close_();
}

}  // namespace aalo::net
