// Growable byte buffer with separate read/write cursors, used for socket
// I/O staging and message (de)serialization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aalo::net {

class Buffer {
 public:
  std::size_t readableBytes() const { return write_pos_ - read_pos_; }
  bool empty() const { return readableBytes() == 0; }

  const std::uint8_t* peek() const { return data_.data() + read_pos_; }
  std::span<const std::uint8_t> readable() const {
    return {peek(), readableBytes()};
  }

  void append(const void* data, std::size_t len);
  void append(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  /// Marks `len` bytes as consumed; throws std::out_of_range on overrun.
  void consume(std::size_t len);

  /// Ensures `len` writable bytes and returns the write pointer; commit
  /// with commitWrite(). Used for readv-style direct socket reads.
  std::uint8_t* writableArea(std::size_t len);
  void commitWrite(std::size_t len) { write_pos_ += len; }

  void clear();

  // --- primitive little-endian codec -------------------------------------
  void putU8(std::uint8_t v) { append(&v, 1); }
  void putU32(std::uint32_t v);
  void putU64(std::uint64_t v);
  void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }
  void putDouble(double v);
  void putString(const std::string& s);

  /// Reads throw std::out_of_range when not enough bytes are available.
  std::uint8_t getU8();
  std::uint32_t getU32();
  std::uint64_t getU64();
  std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }
  double getDouble();
  std::string getString();

 private:
  void compact();

  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
  std::size_t write_pos_ = 0;
};

}  // namespace aalo::net
