// Framed, non-blocking TCP connection bound to an EventLoop.
//
// Wire format: every message is a frame of [u32 length][payload]. The
// connection delivers complete payloads to its frame handler and flushes
// queued writes as the socket drains (EPOLLOUT is armed only while data
// is pending, so idle connections cost nothing).
//
// Two send paths:
//  * sendFrame(span / Buffer) copies the payload into the connection's
//    coalesced staging buffer — right for unicast messages built on the
//    stack.
//  * sendFrame(shared_ptr<const Buffer>) queues a *reference*: an
//    N-peer broadcast serializes once and every connection writes the
//    same bytes straight from the shared buffer (writev with the 4-byte
//    length header), so fan-out does no per-peer payload copies. The
//    buffer must not be mutated while any connection still holds it
//    (check use_count() before reusing it as scratch).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/metrics.h"
#include "net/socket.h"

namespace aalo::net {

/// Hard upper bound on a frame payload; anything larger indicates stream
/// corruption and closes the connection.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

class Connection {
 public:
  using FrameHandler = std::function<void(Buffer& payload)>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of `fd` (already non-blocking) and registers with
  /// the loop. Handlers run on the loop thread. `metrics` (optional)
  /// aggregates wire counters across every connection sharing it; null
  /// routes to the process-wide dummy sink so increments stay branch-free.
  Connection(EventLoop& loop, Fd fd, FrameHandler on_frame, CloseHandler on_close,
             ConnMetrics* metrics = nullptr);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queues one frame (length prefix added here) and flushes what the
  /// socket accepts immediately.
  void sendFrame(const Buffer& payload);
  void sendFrame(std::span<const std::uint8_t> payload);
  /// Zero-copy variant: queues the length header plus a reference to
  /// `payload`; the payload bytes are written directly from the shared
  /// buffer and the reference is dropped once fully flushed.
  void sendFrame(std::shared_ptr<const Buffer> payload);

  bool closed() const { return closed_; }
  int fd() const { return fd_.get(); }
  std::size_t pendingBytes() const { return pending_bytes_; }

  /// Hard cap on queued-but-unsent bytes (0 = unlimited). A sendFrame that
  /// would push the queue past the cap closes the connection instead of
  /// buffering without bound — the overload-protection backstop behind the
  /// coordinator's softer skip-and-coalesce policy. Counted in
  /// ConnMetrics::overflow_closes.
  void setSendQueueLimit(std::size_t bytes) { send_queue_limit_ = bytes; }

 private:
  /// One queued slice of outgoing bytes: either locally staged (owned,
  /// coalesces consecutive copied frames and headers) or a reference
  /// into a shared broadcast buffer consumed via `shared_offset`.
  struct Segment {
    Buffer owned;
    std::shared_ptr<const Buffer> shared;
    std::size_t shared_offset = 0;

    std::span<const std::uint8_t> bytes() const {
      if (!shared) return owned.readable();
      return shared->readable().subspan(shared_offset);
    }
    void consume(std::size_t n) {
      if (!shared) {
        owned.consume(n);
      } else {
        shared_offset += n;
      }
    }
    bool drained() const { return bytes().empty(); }
  };

  /// Tail owned segment to stage copied bytes into (appends one if the
  /// queue is empty or ends in a shared segment).
  Buffer& stagingTail();
  /// True (and the connection is closed) when queueing `frame_bytes` more
  /// would exceed send_queue_limit_.
  bool overflowsSendQueue(std::size_t frame_bytes);
  void onEvents(std::uint32_t events);
  void handleReadable();
  void flush();
  void close();
  void updateInterest();

  EventLoop& loop_;
  Fd fd_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  ConnMetrics* metrics_;
  Buffer incoming_;
  std::deque<Segment> outgoing_;
  std::size_t pending_bytes_ = 0;
  std::size_t send_queue_limit_ = 0;
  bool want_write_ = false;
  bool closed_ = false;
};

}  // namespace aalo::net
