// Framed, non-blocking TCP connection bound to an EventLoop.
//
// Wire format: every message is a frame of [u32 length][payload]. The
// connection delivers complete payloads to its frame handler and flushes
// queued writes as the socket drains (EPOLLOUT is armed only while data
// is pending, so idle connections cost nothing).
#pragma once

#include <functional>
#include <memory>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/socket.h"

namespace aalo::net {

/// Hard upper bound on a frame payload; anything larger indicates stream
/// corruption and closes the connection.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

class Connection {
 public:
  using FrameHandler = std::function<void(Buffer& payload)>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of `fd` (already non-blocking) and registers with
  /// the loop. Handlers run on the loop thread.
  Connection(EventLoop& loop, Fd fd, FrameHandler on_frame, CloseHandler on_close);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queues one frame (length prefix added here) and flushes what the
  /// socket accepts immediately.
  void sendFrame(const Buffer& payload);
  void sendFrame(std::span<const std::uint8_t> payload);

  bool closed() const { return closed_; }
  int fd() const { return fd_.get(); }
  std::size_t pendingBytes() const { return outgoing_.readableBytes(); }

 private:
  void onEvents(std::uint32_t events);
  void handleReadable();
  void flush();
  void close();
  void updateInterest();

  EventLoop& loop_;
  Fd fd_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  Buffer incoming_;
  Buffer outgoing_;
  bool want_write_ = false;
  bool closed_ = false;
};

}  // namespace aalo::net
