#include "net/buffer.h"

#include <cstring>
#include <stdexcept>

namespace aalo::net {

void Buffer::append(const void* data, std::size_t len) {
  std::memcpy(writableArea(len), data, len);
  commitWrite(len);
}

void Buffer::consume(std::size_t len) {
  if (len > readableBytes()) throw std::out_of_range("Buffer::consume overrun");
  read_pos_ += len;
  if (read_pos_ == write_pos_) {
    read_pos_ = write_pos_ = 0;  // Cheap reset when drained.
  }
}

std::uint8_t* Buffer::writableArea(std::size_t len) {
  if (write_pos_ + len > data_.size()) {
    compact();
    if (write_pos_ + len > data_.size()) {
      data_.resize(std::max(data_.size() * 2 + 64, write_pos_ + len));
    }
  }
  return data_.data() + write_pos_;
}

void Buffer::compact() {
  if (read_pos_ == 0) return;
  std::memmove(data_.data(), data_.data() + read_pos_, readableBytes());
  write_pos_ -= read_pos_;
  read_pos_ = 0;
}

void Buffer::clear() { read_pos_ = write_pos_ = 0; }

void Buffer::putU32(std::uint32_t v) {
  std::uint8_t b[4] = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 24)};
  append(b, 4);
}

void Buffer::putU64(std::uint64_t v) {
  putU32(static_cast<std::uint32_t>(v));
  putU32(static_cast<std::uint32_t>(v >> 32));
}

void Buffer::putDouble(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(bits);
}

void Buffer::putString(const std::string& s) {
  putU32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

std::uint8_t Buffer::getU8() {
  if (readableBytes() < 1) throw std::out_of_range("Buffer::getU8 underrun");
  const std::uint8_t v = *peek();
  consume(1);
  return v;
}

std::uint32_t Buffer::getU32() {
  if (readableBytes() < 4) throw std::out_of_range("Buffer::getU32 underrun");
  const std::uint8_t* p = peek();
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  consume(4);
  return v;
}

std::uint64_t Buffer::getU64() {
  const std::uint64_t lo = getU32();
  const std::uint64_t hi = getU32();
  return lo | (hi << 32);
}

double Buffer::getDouble() {
  const std::uint64_t bits = getU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Buffer::getString() {
  const std::uint32_t len = getU32();
  if (readableBytes() < len) throw std::out_of_range("Buffer::getString underrun");
  std::string s(reinterpret_cast<const char*>(peek()), len);
  consume(len);
  return s;
}

}  // namespace aalo::net
