#include "net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <system_error>

namespace aalo::net {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (!epoll_fd_.valid()) throwErrno("epoll_create1");
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) throwErrno("pipe2");
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  add(wake_read_.get(), EPOLLIN, [this](std::uint32_t) {
    std::array<char, 256> sink;
    while (::read(wake_read_.get(), sink.data(), sink.size()) > 0) {
    }
  });
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    throwErrno("epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::move(callback);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    throwErrno("epoll_ctl(MOD)");
  }
}

void EventLoop::remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);  // Best effort.
}

std::uint64_t EventLoop::callAt(Clock::time_point deadline, std::function<void()> fn) {
  const std::uint64_t token = next_timer_token_++;
  timers_.push(Timer{deadline, token, std::move(fn)});
  return token;
}

void EventLoop::cancelTimer(std::uint64_t token) {
  cancelled_timers_.push_back(token);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 1;
  (void)!::write(wake_write_.get(), &byte, 1);  // EAGAIN fine: already awake.
}

void EventLoop::drainPosted() {
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard lock(posted_mutex_);
    ready.swap(posted_);
  }
  for (auto& fn : ready) fn();
}

int EventLoop::dispatchTimers() {
  int dispatched = 0;
  const auto now = Clock::now();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    Timer timer = timers_.top();
    timers_.pop();
    const auto cancelled = std::find(cancelled_timers_.begin(),
                                     cancelled_timers_.end(), timer.token);
    if (cancelled != cancelled_timers_.end()) {
      cancelled_timers_.erase(cancelled);
      continue;
    }
    timer.fn();
    ++dispatched;
  }
  return dispatched;
}

int EventLoop::runOnce(std::chrono::milliseconds max_wait) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;

  auto wait = max_wait;
  if (!timers_.empty()) {
    const auto until_timer =
        duration_cast<milliseconds>(timers_.top().deadline - Clock::now());
    wait = std::clamp(until_timer, milliseconds(0), max_wait);
  }

  std::array<epoll_event, 256> events;
  const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                             static_cast<int>(events.size()),
                             static_cast<int>(wait.count()));
  if (n < 0 && errno != EINTR) throwErrno("epoll_wait");

  int dispatched = 0;
  for (int i = 0; i < std::max(n, 0); ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;  // Removed by an earlier callback.
    // Copy: the callback may remove itself (invalidates the map entry).
    FdCallback cb = it->second;
    cb(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  dispatched += dispatchTimers();
  drainPosted();
  return dispatched;
}

void EventLoop::run() {
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    runOnce(std::chrono::milliseconds(100));
  }
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  post([] {});  // Wake the loop if it is blocked in epoll_wait.
}

}  // namespace aalo::net
