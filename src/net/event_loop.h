// Single-threaded epoll event loop with deadline timers.
//
// The Aalo runtime is intentionally single-threaded per component (one
// loop in the coordinator, one per daemon): all scheduling state is
// confined to its loop, so no locks are needed on the hot path. Cross-
// thread work enters through post(), the only thread-safe method.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/socket.h"

namespace aalo::net {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT bitmask). The callback
  /// runs on the loop thread with the ready-event mask.
  void add(int fd, std::uint32_t events, FdCallback callback);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  bool watched(int fd) const { return callbacks_.contains(fd); }

  /// Runs `fn` on the loop at (or soon after) the deadline. Returns a
  /// token usable with cancelTimer().
  std::uint64_t callAt(Clock::time_point deadline, std::function<void()> fn);
  std::uint64_t callAfter(std::chrono::nanoseconds delay, std::function<void()> fn) {
    return callAt(Clock::now() + delay, std::move(fn));
  }
  void cancelTimer(std::uint64_t token);

  /// Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  void post(std::function<void()> fn);

  /// Processes ready events and due timers once, waiting at most
  /// `max_wait`. Returns the number of callbacks dispatched.
  int runOnce(std::chrono::milliseconds max_wait);

  /// Loops until stop() is called (from a callback or another thread).
  void run();
  void stop();

 private:
  void drainPosted();
  int dispatchTimers();

  Fd epoll_fd_;
  Fd wake_read_;
  Fd wake_write_;
  std::unordered_map<int, FdCallback> callbacks_;

  struct Timer {
    Clock::time_point deadline;
    std::uint64_t token;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return token > other.token;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t next_timer_token_ = 1;
  std::vector<std::uint64_t> cancelled_timers_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  std::atomic<bool> stop_{false};
};

}  // namespace aalo::net
