#include "net/protocol.h"

#include <stdexcept>

namespace aalo::net {

namespace {

void putCoflowId(Buffer& out, const coflow::CoflowId& id) {
  out.putI64(id.external);
  out.putU32(static_cast<std::uint32_t>(id.internal));
}

coflow::CoflowId getCoflowId(Buffer& in) {
  coflow::CoflowId id;
  id.external = in.getI64();
  id.internal = static_cast<std::int32_t>(in.getU32());
  return id;
}

}  // namespace

void encodeMessage(const Message& message, Buffer& out) {
  out.putU8(static_cast<std::uint8_t>(message.type));
  switch (message.type) {
    case MessageType::kHello:
      out.putU64(message.daemon_id);
      break;
    case MessageType::kRegisterCoflow:
      out.putU64(message.request_id);
      out.putU32(static_cast<std::uint32_t>(message.parents.size()));
      for (const auto& p : message.parents) putCoflowId(out, p);
      break;
    case MessageType::kRegisterReply:
      out.putU64(message.request_id);
      putCoflowId(out, message.coflow);
      break;
    case MessageType::kUnregisterCoflow:
      putCoflowId(out, message.coflow);
      break;
    case MessageType::kSizeReport:
      out.putU64(message.daemon_id);
      out.putU64(message.epoch);
      out.putU32(static_cast<std::uint32_t>(message.sizes.size()));
      for (const auto& s : message.sizes) {
        putCoflowId(out, s.id);
        out.putDouble(s.bytes);
      }
      break;
    case MessageType::kScheduleUpdate:
      out.putU64(message.epoch);
      out.putU64(message.fence);
      out.putU32(static_cast<std::uint32_t>(message.schedule.size()));
      for (const auto& e : message.schedule) {
        putCoflowId(out, e.id);
        out.putDouble(e.global_bytes);
        out.putU32(static_cast<std::uint32_t>(e.queue));
        out.putU8(e.on ? 1 : 0);
      }
      break;
    case MessageType::kScheduleDelta:
      out.putU64(message.epoch);
      out.putU64(message.base_epoch);
      out.putU64(message.fence);
      out.putU32(static_cast<std::uint32_t>(message.schedule.size()));
      for (const auto& e : message.schedule) {
        putCoflowId(out, e.id);
        out.putDouble(e.global_bytes);
        out.putU32(static_cast<std::uint32_t>(e.queue));
        out.putU8(e.on ? 1 : 0);
      }
      out.putU32(static_cast<std::uint32_t>(message.removals.size()));
      for (const auto& id : message.removals) putCoflowId(out, id);
      break;
    case MessageType::kSnapshotRequest:
      out.putU64(message.daemon_id);
      out.putU64(message.epoch);
      break;
    case MessageType::kFollowerSubscribe:
      out.putU64(message.daemon_id);
      out.putU64(message.epoch);
      out.putU64(message.fence);
      break;
  }
}

Message decodeMessage(Buffer& in) {
  Message message;
  const std::uint8_t raw_type = in.getU8();
  if (raw_type < 1 || raw_type > 9) {
    throw std::runtime_error("decodeMessage: unknown message type " +
                             std::to_string(raw_type));
  }
  message.type = static_cast<MessageType>(raw_type);
  switch (message.type) {
    case MessageType::kHello:
      message.daemon_id = in.getU64();
      break;
    case MessageType::kRegisterCoflow: {
      message.request_id = in.getU64();
      const std::uint32_t n = in.getU32();
      message.parents.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) message.parents.push_back(getCoflowId(in));
      break;
    }
    case MessageType::kRegisterReply:
      message.request_id = in.getU64();
      message.coflow = getCoflowId(in);
      break;
    case MessageType::kUnregisterCoflow:
      message.coflow = getCoflowId(in);
      break;
    case MessageType::kSizeReport: {
      message.daemon_id = in.getU64();
      message.epoch = in.getU64();
      const std::uint32_t n = in.getU32();
      message.sizes.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        CoflowSize s;
        s.id = getCoflowId(in);
        s.bytes = in.getDouble();
        message.sizes.push_back(s);
      }
      break;
    }
    case MessageType::kScheduleUpdate: {
      message.epoch = in.getU64();
      message.fence = in.getU64();
      const std::uint32_t n = in.getU32();
      message.schedule.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ScheduleEntry e;
        e.id = getCoflowId(in);
        e.global_bytes = in.getDouble();
        e.queue = static_cast<std::int32_t>(in.getU32());
        e.on = in.getU8() != 0;
        message.schedule.push_back(e);
      }
      break;
    }
    case MessageType::kScheduleDelta: {
      message.epoch = in.getU64();
      message.base_epoch = in.getU64();
      message.fence = in.getU64();
      const std::uint32_t n = in.getU32();
      message.schedule.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        ScheduleEntry e;
        e.id = getCoflowId(in);
        e.global_bytes = in.getDouble();
        e.queue = static_cast<std::int32_t>(in.getU32());
        e.on = in.getU8() != 0;
        message.schedule.push_back(e);
      }
      const std::uint32_t r = in.getU32();
      message.removals.reserve(r);
      for (std::uint32_t i = 0; i < r; ++i) {
        message.removals.push_back(getCoflowId(in));
      }
      break;
    }
    case MessageType::kSnapshotRequest:
      message.daemon_id = in.getU64();
      message.epoch = in.getU64();
      break;
    case MessageType::kFollowerSubscribe:
      message.daemon_id = in.getU64();
      message.epoch = in.getU64();
      message.fence = in.getU64();
      break;
  }
  if (!in.empty()) {
    throw std::runtime_error("decodeMessage: trailing bytes in frame");
  }
  return message;
}

}  // namespace aalo::net
