#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace aalo::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::string line = "[";
  line += levelName(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace aalo::util
