// Summary statistics and empirical CDFs for experiment reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace aalo::util {

/// Accumulates samples and answers mean / percentile / extrema queries.
/// Percentiles use linear interpolation between order statistics.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void addAll(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0, 100]; e.g. percentile(95) is the 95th percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double stddev() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

/// Empirical CDF: evaluate fractions at chosen points, or export steps.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  double fractionAtOrBelow(double x) const;

  /// Value below which fraction q of samples fall (inverse CDF), q in [0,1].
  double quantile(double q) const;

  std::size_t count() const { return sorted_.size(); }

  /// (value, cumulative fraction) pairs at `points` log-spaced probe values
  /// between min and max — handy for printing paper-style CDF tables.
  std::vector<std::pair<double, double>> logSpacedSteps(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Ratio of two means guarded against division by ~zero.
double safeRatio(double numerator, double denominator);

/// Quantile estimate from bucketed counts (histogram order statistics).
/// `upper_bounds` are the ascending finite bucket bounds; `counts` holds
/// one per bound plus a final overflow bucket (counts.size() ==
/// upper_bounds.size() + 1). Linear interpolation inside the landing
/// bucket (the first bucket interpolates from 0); a quantile landing in
/// the overflow bucket clamps to the last finite bound. q in [0, 1].
/// Returns 0 when the histogram is empty.
double bucketQuantile(std::span<const double> upper_bounds,
                      std::span<const std::uint64_t> counts, double q);

}  // namespace aalo::util
