#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aalo::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform(0.0, 1.0) < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  // Inverse-CDF sampling; clamp u away from 0 to bound the tail.
  const double u = std::max(uniform(0.0, 1.0), 1e-12);
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::logNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

std::size_t Rng::weightedIndex(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("weightedIndex: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("weightedIndex: non-positive total weight");
  double pick = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bucket.
}

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sampleWithoutReplacement: k > n");
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k slots end up uniformly sampled.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniformInt(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace aalo::util
