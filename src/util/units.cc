#include "util/units.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace aalo::util {

namespace {

std::string formatWithSuffix(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g %s", value, suffix);
  return buf;
}

}  // namespace

std::string formatBytes(Bytes b) {
  if (b < 0) return "-" + formatBytes(-b);
  if (b >= kTB) return formatWithSuffix(b / kTB, "TB");
  if (b >= kGB) return formatWithSuffix(b / kGB, "GB");
  if (b >= kMB) return formatWithSuffix(b / kMB, "MB");
  if (b >= kKB) return formatWithSuffix(b / kKB, "KB");
  return formatWithSuffix(b, "B");
}

std::string formatSeconds(Seconds s) {
  if (s < 0) return "-" + formatSeconds(-s);
  if (s >= 1.0) return formatWithSuffix(s, "s");
  if (s >= kMillisecond) return formatWithSuffix(s / kMillisecond, "ms");
  return formatWithSuffix(s / kMicrosecond, "us");
}

bool nearlyEqual(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace aalo::util
