#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace aalo::util {

void Summary::addAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty set");
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

void Summary::ensureSorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile on empty set");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  ensureSorted();
  const double rank = p / 100.0 * static_cast<double>(sorted_samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fractionAtOrBelow(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("Cdf::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Cdf::logSpacedSteps(std::size_t points) const {
  std::vector<std::pair<double, double>> steps;
  if (sorted_.empty() || points == 0) return steps;
  const double lo = std::max(sorted_.front(), 1e-12);
  const double hi = std::max(sorted_.back(), lo * (1.0 + 1e-9));
  const double logLo = std::log10(lo);
  const double logHi = std::log10(hi);
  steps.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 1.0
                                 : static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = std::pow(10.0, logLo + t * (logHi - logLo));
    steps.emplace_back(x, fractionAtOrBelow(x));
  }
  return steps;
}

double bucketQuantile(std::span<const double> upper_bounds,
                      std::span<const std::uint64_t> counts, double q) {
  if (counts.size() != upper_bounds.size() + 1) {
    throw std::invalid_argument("bucketQuantile: counts must be bounds + overflow");
  }
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (cum + c >= rank && c > 0.0) {
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double frac = (rank - cum) / c;
      return lo + frac * (upper_bounds[i] - lo);
    }
    cum += c;
  }
  // Overflow bucket: no finite upper edge to interpolate toward.
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

double safeRatio(double numerator, double denominator) {
  if (std::fabs(denominator) < 1e-12) return 0.0;
  return numerator / denominator;
}

}  // namespace aalo::util
