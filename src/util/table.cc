#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace aalo::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  printRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

void printBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace aalo::util
