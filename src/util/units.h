// Units and formatting helpers shared across the Aalo codebase.
//
// Quantities are represented as plain doubles with descriptive aliases:
// fluid-flow simulation constantly multiplies rates by durations, so strong
// arithmetic types would add friction without catching real bugs here.
// Identifiers (ports, flows, coflows) get real types in coflow/ids.h.
#pragma once

#include <cstdint>
#include <string>

namespace aalo::util {

/// Bytes of data (fractional values arise from fluid-rate integration).
using Bytes = double;
/// Simulation time in seconds.
using Seconds = double;
/// Transfer rate in bytes per second.
using Rate = double;

inline constexpr Bytes kKB = 1e3;
inline constexpr Bytes kMB = 1e6;
inline constexpr Bytes kGB = 1e9;
inline constexpr Bytes kTB = 1e12;

inline constexpr Seconds kMillisecond = 1e-3;
inline constexpr Seconds kMicrosecond = 1e-6;

/// 1 Gbps expressed in bytes per second — the paper's per-machine NIC
/// capacity on EC2 was ~900 Mbps; we default to an even 1 Gbps.
inline constexpr Rate kGbps = 125.0 * kMB;

/// Returns a human-readable byte count, e.g. "10.0 MB".
std::string formatBytes(Bytes b);

/// Returns a human-readable duration, e.g. "12.3 ms".
std::string formatSeconds(Seconds s);

/// Numeric comparison tolerance used throughout the fluid simulator.
inline constexpr double kEps = 1e-9;

/// True when |a - b| is within an absolute-plus-relative tolerance.
bool nearlyEqual(double a, double b, double tol = 1e-6);

}  // namespace aalo::util
