// Plain-text table rendering for benchmark/report output.
//
// Benches print paper-style rows ("Bin 1 | 2.1x | ...") through this class
// so every experiment's output is aligned and machine-greppable.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace aalo::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between experiment blocks.
void printBanner(std::ostream& os, const std::string& title);

}  // namespace aalo::util
