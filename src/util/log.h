// Minimal leveled logger.
//
// The runtime (coordinator/daemon) logs through this; the simulator stays
// silent by default so benches produce clean tables. Thread-safe: each
// message is formatted into one buffer and written with a single call.
#pragma once

#include <sstream>
#include <string>

namespace aalo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Writes one formatted line to stderr if `level` passes the threshold.
void logMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

#define AALO_LOG_DEBUG ::aalo::util::detail::LogLine(::aalo::util::LogLevel::kDebug)
#define AALO_LOG_INFO ::aalo::util::detail::LogLine(::aalo::util::LogLevel::kInfo)
#define AALO_LOG_WARN ::aalo::util::detail::LogLine(::aalo::util::LogLevel::kWarn)
#define AALO_LOG_ERROR ::aalo::util::detail::LogLine(::aalo::util::LogLevel::kError)

}  // namespace aalo::util
