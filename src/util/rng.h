// Deterministic random-number generation for workload synthesis.
//
// All stochastic choices in the repository flow through Rng so that every
// experiment is reproducible from a single seed printed in its header.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace aalo::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential variate with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Pareto variate with scale xm > 0 and shape alpha > 0 (heavy-tailed).
  double pareto(double xm, double alpha);

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  double logNormal(double mu, double sigma);

  /// Index sampled proportionally to the given non-negative weights.
  std::size_t weightedIndex(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct values from [0, n) without replacement.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace aalo::util
