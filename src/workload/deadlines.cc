#include "workload/deadlines.h"

#include <algorithm>

#include "util/rng.h"
#include "workload/facebook.h"

namespace aalo::workload {

void assignDeadlines(coflow::Workload& workload, const DeadlineConfig& config) {
  if (config.slack <= 0) return;
  util::Rng rng(config.seed);
  for (coflow::JobSpec& job : workload.jobs) {
    for (coflow::CoflowSpec& spec : job.coflows) {
      const util::Seconds iso =
          isolatedBottleneckSeconds(spec, config.port_capacity);
      // Floor at 1 ms so dust coflows get a representable deadline.
      const util::Seconds base = std::max(iso, 1e-3);
      spec.deadline = base * (1.0 + rng.uniform(0.0, config.slack));
    }
  }
}

}  // namespace aalo::workload
