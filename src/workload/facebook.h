// Synthetic Facebook-like coflow workload (§7.1).
//
// The paper replays a Hive/MapReduce trace from a 3000-machine Facebook
// cluster. The trace itself is not distributable, so we synthesize
// workloads calibrated to the paper's published marginals:
//
//  * Table 3 coflow mix — Short/Narrow 52 %, Long/Narrow 16 %,
//    Short/Wide 15 %, Long/Wide 17 % of coflows, with bin 4 carrying
//    ~99 % of all bytes ("short" = longest flow < 5 MB, "narrow" =
//    at most 50 flows);
//  * heavy-tailed coflow sizes (60 % < 100 MB, ~85 % < 1 GB);
//  * Poisson job arrivals; one coflow per job (as in the original trace);
//  * Table 2 communication fractions — 61/13/14/12 % of jobs spend
//    <25/25-49/50-74/>=75 % of their time in communication — realized by
//    drawing a target fraction and back-solving the job's compute time
//    from the coflow's ideal (isolated) transfer duration.
#pragma once

#include <cstdint>

#include "coflow/spec.h"
#include "util/rng.h"

namespace aalo::workload {

/// Table 3 bin of a coflow (1-based to match the paper).
enum class CoflowBin { kShortNarrow = 1, kLongNarrow = 2, kShortWide = 3, kLongWide = 4 };

/// Classification thresholds from §7.1.
inline constexpr util::Bytes kShortLengthLimit = 5 * util::kMB;
inline constexpr std::size_t kNarrowWidthLimit = 50;

/// Classifies by length (largest flow) and width (flow count).
CoflowBin classifyCoflow(util::Bytes max_flow_bytes, std::size_t width);

struct FacebookConfig {
  int num_ports = 40;
  std::size_t num_jobs = 150;
  /// Mean of the exponential inter-arrival distribution (seconds).
  util::Seconds mean_interarrival = 1.0;
  std::uint64_t seed = 1;
  /// Upper clamp for a single flow; bounds simulated makespan.
  util::Bytes max_flow_bytes = 1 * util::kGB;
  /// Cap on senders/receivers per coflow (bounds per-coflow width at
  /// sender_cap * receiver_cap flows).
  int sender_cap = 18;
  int receiver_cap = 18;
  /// When > 0, every coflow gets a deadline of its isolated bottleneck
  /// time x (1 + uniform(0, deadline_slack)) — see workload/deadlines.h.
  double deadline_slack = 0;
};

/// Generates a workload; deterministic in config.seed.
coflow::Workload generateFacebookWorkload(const FacebookConfig& config);

/// Ideal isolated duration of a coflow: its effective bottleneck at full
/// port capacity — used to back-solve compute times and wave gaps.
util::Seconds isolatedBottleneckSeconds(const coflow::CoflowSpec& spec,
                                        util::Rate port_capacity);

}  // namespace aalo::workload
