#include "workload/distributions.h"

#include <algorithm>
#include <array>
#include <span>

#include "coflow/id_generator.h"
#include "workload/facebook.h"

namespace aalo::workload {

namespace {

/// Builds one workload where each coflow's total size comes from `draw`.
template <typename DrawTotal>
coflow::Workload generateWithTotals(const SizeDistributionConfig& config,
                                    DrawTotal&& draw) {
  util::Rng rng(config.seed);
  coflow::Workload wl;
  wl.num_ports = config.num_ports;
  coflow::CoflowIdGenerator ids;

  const std::array<double, 4> bin_weights = {0.52, 0.16, 0.15, 0.17};
  util::Seconds arrival = 0;
  for (std::size_t j = 0; j < config.num_coflows; ++j) {
    arrival += rng.exponential(config.mean_interarrival);
    const std::size_t bin = rng.weightedIndex(std::span<const double>(bin_weights));
    const bool narrow = bin == 0 || bin == 1;

    int m = 0;
    int r = 0;
    if (narrow) {
      do {
        m = static_cast<int>(rng.uniformInt(1, 7));
        r = static_cast<int>(rng.uniformInt(1, 7));
      } while (m * r > static_cast<int>(kNarrowWidthLimit));
    } else {
      do {
        m = static_cast<int>(rng.uniformInt(4, std::min(16, config.num_ports)));
        r = static_cast<int>(rng.uniformInt(4, std::min(16, config.num_ports)));
      } while (m * r <= static_cast<int>(kNarrowWidthLimit));
    }

    const util::Bytes total = std::max(draw(rng), 1.0 * util::kKB);
    const auto senders = rng.sampleWithoutReplacement(
        static_cast<std::size_t>(config.num_ports), static_cast<std::size_t>(m));
    const auto receivers = rng.sampleWithoutReplacement(
        static_cast<std::size_t>(config.num_ports), static_cast<std::size_t>(r));

    coflow::CoflowSpec spec;
    spec.id = ids.newRootId();
    // Spread the total across flows with mild (deterministic-total) jitter.
    std::vector<double> shares;
    double share_sum = 0;
    for (int k = 0; k < m * r; ++k) {
      shares.push_back(rng.uniform(0.5, 1.5));
      share_sum += shares.back();
    }
    std::size_t k = 0;
    for (const std::size_t s : senders) {
      for (const std::size_t d : receivers) {
        spec.flows.push_back(coflow::FlowSpec{
            static_cast<coflow::PortId>(s), static_cast<coflow::PortId>(d),
            total * shares[k] / share_sum, 0.0});
        ++k;
      }
    }

    coflow::JobSpec job;
    job.id = static_cast<coflow::JobId>(j);
    job.arrival = arrival;
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  return wl;
}

}  // namespace

coflow::Workload generateUniformSizeWorkload(const SizeDistributionConfig& config,
                                             util::Bytes max_total_bytes) {
  return generateWithTotals(
      config, [max_total_bytes](util::Rng& rng) { return rng.uniform(0, max_total_bytes); });
}

coflow::Workload generateFixedSizeWorkload(const SizeDistributionConfig& config,
                                           util::Bytes total_bytes) {
  return generateWithTotals(config, [total_bytes](util::Rng&) { return total_bytes; });
}

}  // namespace aalo::workload
