#include "workload/tpcds.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "coflow/id_generator.h"
#include "workload/deadlines.h"

namespace aalo::workload {

const std::vector<TpcdsQueryShape>& clouderaBenchmarkQueries() {
  // Shapes follow the usual pattern of Shark plans for these queries:
  // fact-table scans feeding a chain of shuffles, with wider queries
  // joining several dimension tables in parallel branches (cf. Figure 4a
  // for q42). Critical-path lengths span 1-5 as in Figure 11.
  static const std::vector<TpcdsQueryShape> queries = {
      {"q19", {2, 1}, 1.0},        {"q27", {2, 1}, 0.8},
      {"q3", {1, 1}, 0.6},         {"q34", {2, 1}, 0.7},
      {"q42", {2, 2, 1, 1}, 1.2},  {"q43", {1, 1}, 0.5},
      {"q46", {2, 2, 1}, 1.1},     {"q52", {1, 1}, 0.6},
      {"q53", {2, 1, 1}, 0.9},     {"q55", {1, 1}, 0.5},
      {"q59", {2, 2, 1, 1}, 1.4},  {"q63", {2, 1, 1}, 0.9},
      {"q65", {2, 2, 1, 1, 1}, 1.6}, {"q68", {2, 2, 1}, 1.2},
      {"q7", {2, 1}, 0.8},         {"q73", {2, 1}, 0.7},
      {"q79", {2, 2, 1}, 1.0},     {"q89", {2, 1, 1}, 0.9},
      {"q98", {1, 1, 1}, 0.7},     {"ss_max", {3, 1}, 2.0},
  };
  return queries;
}

int criticalPathLength(const TpcdsQueryShape& shape) {
  return static_cast<int>(shape.coflows_per_level.size());
}

coflow::Workload generateTpcdsWorkload(const TpcdsConfig& config) {
  const auto& queries = clouderaBenchmarkQueries();
  util::Rng rng(config.seed);
  coflow::Workload wl;
  wl.num_ports = config.num_ports;

  coflow::CoflowIdGenerator ids;
  util::Seconds arrival = 0;
  coflow::JobId job_id = 0;
  for (const TpcdsQueryShape& shape : queries) {
    arrival += rng.exponential(config.mean_interarrival);
    coflow::JobSpec job;
    job.id = job_id++;
    job.arrival = arrival;
    job.compute_time = 0;  // DAG experiments compare communication only.

    // Pseudocode 2 permits equal internal ids for independent siblings
    // (Figure 4c shows several C42.1's); our simulator keys state by
    // CoflowId, so equal-priority siblings are disambiguated by bumping to
    // the next unused internal id — FIFO order among independent coflows
    // is arbitrary anyway (§9: the heuristic "cannot differentiate between
    // independent coflows").
    std::set<std::int32_t> used_internals;
    std::int64_t dag_external = -1;
    auto uniquified = [&](coflow::CoflowId id) {
      while (used_internals.contains(id.internal)) ++id.internal;
      used_internals.insert(id.internal);
      return id;
    };

    std::vector<std::vector<coflow::CoflowId>> level_ids;
    for (std::size_t level = 0; level < shape.coflows_per_level.size(); ++level) {
      const int n = shape.coflows_per_level[level];
      if (n <= 0) throw std::invalid_argument("TPC-DS shape: empty level");
      std::vector<coflow::CoflowId> this_level;
      for (int k = 0; k < n; ++k) {
        coflow::CoflowSpec spec;
        if (level == 0) {
          if (k == 0) {
            spec.id = uniquified(ids.newRootId());
            dag_external = spec.id.external;
          } else {
            spec.id = uniquified(coflow::CoflowId{dag_external, 0});
          }
        } else {
          // Depend on 1-2 coflows of the previous level.
          const auto& prev = level_ids[level - 1];
          std::vector<coflow::CoflowId> parents;
          parents.push_back(prev[static_cast<std::size_t>(k) % prev.size()]);
          if (prev.size() > 1 && rng.chance(0.5)) {
            parents.push_back(prev[(static_cast<std::size_t>(k) + 1) % prev.size()]);
          }
          spec.id = uniquified(ids.newChildId(parents));
          if (config.barriers_instead_of_pipelining) {
            spec.starts_after = parents;
          } else {
            spec.finishes_before = parents;
          }
        }

        // Shuffle shape: a handful of senders/receivers; early levels move
        // more data.
        const int m = static_cast<int>(rng.uniformInt(2, 6));
        const int r = static_cast<int>(rng.uniformInt(2, 6));
        const auto senders = rng.sampleWithoutReplacement(
            static_cast<std::size_t>(config.num_ports), static_cast<std::size_t>(m));
        const auto receivers = rng.sampleWithoutReplacement(
            static_cast<std::size_t>(config.num_ports), static_cast<std::size_t>(r));
        const util::Bytes stage_bytes = config.base_stage_bytes * shape.scale *
                                        std::pow(config.level_decay,
                                                 static_cast<double>(level)) *
                                        rng.uniform(0.6, 1.4);
        const util::Bytes per_flow =
            std::max(stage_bytes / static_cast<double>(m * r), 10.0 * util::kKB);
        for (const std::size_t s : senders) {
          for (const std::size_t d : receivers) {
            spec.flows.push_back(coflow::FlowSpec{
                static_cast<coflow::PortId>(s), static_cast<coflow::PortId>(d),
                per_flow * rng.uniform(0.7, 1.3), 0.0});
          }
        }
        this_level.push_back(spec.id);
        job.coflows.push_back(std::move(spec));
      }
      level_ids.push_back(std::move(this_level));
    }
    wl.jobs.push_back(std::move(job));
  }
  if (config.deadline_slack > 0) {
    DeadlineConfig dl;
    dl.slack = config.deadline_slack;
    dl.seed = config.seed + 0x9e3779b9;  // Decoupled from the size draws.
    assignDeadlines(wl, dl);
  }
  return wl;
}

}  // namespace aalo::workload
