// TPC-DS DAG workloads (§7.4, Figure 11).
//
// The paper runs the 20 TPC-DS queries of the Cloudera benchmark with
// query plans from Shark; each query is a DAG of coflows with
// Finishes-Before edges (pipelined stages). The SQL itself is irrelevant
// to scheduling — what matters is each DAG's shape (stages per level,
// critical-path length) and the data volume flowing between stages. We
// encode a fixed shape per query (critical-path lengths 1-5, branching
// like Figure 4) and draw stage sizes heavy-tailed with the customary
// decay from scan-heavy early stages to small final aggregations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coflow/spec.h"
#include "util/rng.h"

namespace aalo::workload {

struct TpcdsQueryShape {
  std::string name;
  /// coflows_per_level[l] = number of parallel coflows at DAG level l.
  /// Every coflow at level l+1 Finishes-Before-depends on 1-2 coflows at
  /// level l. Critical path length = number of levels.
  std::vector<int> coflows_per_level;
  /// Relative data scale of the query (multiplies stage sizes).
  double scale = 1.0;
};

/// The 20 queries of the Cloudera TPC-DS benchmark with plausible Shark
/// plan shapes (the paper's Figure 11 x-axis, critical paths 1-5).
const std::vector<TpcdsQueryShape>& clouderaBenchmarkQueries();

struct TpcdsConfig {
  int num_ports = 40;
  std::uint64_t seed = 7;
  /// Base bytes of a level-0 stage before scale/decay are applied.
  util::Bytes base_stage_bytes = 800 * util::kMB;
  /// Per-level size decay (later stages move less data).
  double level_decay = 0.35;
  /// Mean gap between query submissions.
  util::Seconds mean_interarrival = 4.0;
  /// Convert Finishes-Before edges into Starts-After barriers (the
  /// Varys-style execution mode without pipelining).
  bool barriers_instead_of_pipelining = false;
  /// When > 0, every coflow gets a deadline of its isolated bottleneck
  /// time x (1 + uniform(0, deadline_slack)) — see workload/deadlines.h.
  double deadline_slack = 0;
};

/// One job per benchmark query; coflow ids are generated with
/// CoflowIdGenerator exactly as Aalo's coordinator would (Figure 4c).
coflow::Workload generateTpcdsWorkload(const TpcdsConfig& config);

/// Critical-path length (levels) of a query DAG.
int criticalPathLength(const TpcdsQueryShape& shape);

}  // namespace aalo::workload
