// Deadline synthesis for generated workloads.
//
// Published coflow traces carry no deadlines, so deadline-aware
// experiments (DCoflow-style admission, arXiv:2205.01229) follow the
// Varys §5 convention: each coflow's deadline is its ideal isolated
// completion time inflated by a random slack factor. Tight slack makes
// admission selective; generous slack admits almost everything.
#pragma once

#include <cstdint>

#include "coflow/spec.h"
#include "util/units.h"

namespace aalo::workload {

struct DeadlineConfig {
  /// deadline = isolated bottleneck x (1 + uniform(0, slack)); <= 0
  /// leaves the workload deadline-free.
  double slack = 1.0;
  std::uint64_t seed = 1;
  /// Capacity used for the isolated-bottleneck baseline; must match the
  /// fabric the trace will be replayed on for the slack to mean anything.
  util::Rate port_capacity = 125 * util::kMB;  // 1 Gbps.
};

/// Assigns a deadline to every coflow in `workload`, deterministically in
/// config.seed (iteration order: jobs, then coflows within a job).
void assignDeadlines(coflow::Workload& workload, const DeadlineConfig& config);

}  // namespace aalo::workload
