// Controlled coflow-size distributions for the sensitivity study
// (§7.5, Figure 13): uniformly distributed and fixed-size coflows whose
// *structures* (length/width classes) still follow the Table 3 mix.
#pragma once

#include <cstdint>

#include "coflow/spec.h"
#include "util/rng.h"

namespace aalo::workload {

struct SizeDistributionConfig {
  int num_ports = 40;
  std::size_t num_coflows = 100;
  util::Seconds mean_interarrival = 0.5;
  std::uint64_t seed = 11;
};

/// Coflow total sizes drawn from U(0, max_total_bytes); the flow structure
/// (width, endpoints) follows the Table 3 mix and the total is spread
/// across the flows (Figure 13a).
coflow::Workload generateUniformSizeWorkload(const SizeDistributionConfig& config,
                                             util::Bytes max_total_bytes);

/// Every coflow has exactly `total_bytes` in total (Figure 13b probes
/// sizes just below/above Aalo's queue thresholds).
coflow::Workload generateFixedSizeWorkload(const SizeDistributionConfig& config,
                                           util::Bytes total_bytes);

}  // namespace aalo::workload
