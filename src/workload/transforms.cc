#include "workload/transforms.h"

#include <algorithm>
#include <map>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "workload/facebook.h"

namespace aalo::workload {

namespace {

/// Table 4 wave-count marginals for a given cap.
std::vector<double> waveCountWeights(int max_waves) {
  switch (max_waves) {
    case 1:
      return {1.0};
    case 2:
      return {0.90, 0.10};
    case 4:
      return {0.81, 0.09, 0.04, 0.06};
    default: {
      // Generic fallback: geometric-ish decay over 1..max_waves.
      std::vector<double> w;
      double p = 1.0;
      for (int i = 0; i < max_waves; ++i) {
        w.push_back(p);
        p *= 0.25;
      }
      return w;
    }
  }
}

}  // namespace

std::size_t applyMultiWave(coflow::Workload& workload, const MultiWaveConfig& config) {
  if (config.max_waves < 1) throw std::invalid_argument("applyMultiWave: max_waves < 1");
  util::Rng rng(config.seed);
  const std::vector<double> weights = waveCountWeights(config.max_waves);
  std::size_t multi_wave = 0;

  for (coflow::JobSpec& job : workload.jobs) {
    for (coflow::CoflowSpec& spec : job.coflows) {
      const int waves =
          1 + static_cast<int>(rng.weightedIndex(std::span<const double>(weights)));
      if (waves == 1) continue;

      // Senders arrive in batches: partition the distinct source ports
      // into `waves` groups; all flows of a sender join its wave.
      std::vector<coflow::PortId> sources;
      for (const coflow::FlowSpec& f : spec.flows) {
        if (std::find(sources.begin(), sources.end(), f.src) == sources.end()) {
          sources.push_back(f.src);
        }
      }
      if (sources.size() < 2) continue;  // Single sender: nothing to stagger.
      const int effective_waves = std::min<int>(waves, static_cast<int>(sources.size()));
      std::unordered_map<coflow::PortId, int> wave_of;
      for (std::size_t s = 0; s < sources.size(); ++s) {
        wave_of[sources[s]] = static_cast<int>(s) % effective_waves;
      }
      const util::Seconds wave_gap =
          std::max(isolatedBottleneckSeconds(spec, config.port_capacity) /
                       static_cast<double>(effective_waves),
                   1.0 * util::kMillisecond);
      for (coflow::FlowSpec& f : spec.flows) {
        f.start_offset = wave_of.at(f.src) * wave_gap;
      }
      ++multi_wave;
    }
  }
  return multi_wave;
}

coflow::Workload splitWavesIntoCoflows(const coflow::Workload& workload) {
  coflow::Workload out;
  out.num_ports = workload.num_ports;
  // Next free internal id per DAG, so split waves never collide.
  std::unordered_map<std::int64_t, std::int32_t> next_internal;
  for (const coflow::JobSpec& job : workload.jobs) {
    for (const coflow::CoflowSpec& c : job.coflows) {
      next_internal[c.id.external] =
          std::max(next_internal[c.id.external], c.id.internal + 1);
    }
  }

  for (const coflow::JobSpec& job : workload.jobs) {
    coflow::JobSpec new_job;
    new_job.id = job.id;
    new_job.arrival = job.arrival;
    new_job.compute_time = job.compute_time;
    for (const coflow::CoflowSpec& spec : job.coflows) {
      std::map<util::Seconds, std::vector<coflow::FlowSpec>> waves;
      for (const coflow::FlowSpec& f : spec.flows) {
        coflow::FlowSpec copy = f;
        copy.start_offset = 0;
        waves[f.start_offset].push_back(copy);
      }
      if (waves.size() == 1) {
        new_job.coflows.push_back(spec);
        continue;
      }
      if (!spec.starts_after.empty() || !spec.finishes_before.empty()) {
        throw std::invalid_argument(
            "splitWavesIntoCoflows: dependencies on multi-wave coflows unsupported");
      }
      bool first = true;
      for (auto& [offset, flows] : waves) {
        coflow::CoflowSpec wave_spec;
        if (first) {
          wave_spec.id = spec.id;
          first = false;
        } else {
          wave_spec.id =
              coflow::CoflowId{spec.id.external, next_internal[spec.id.external]++};
        }
        wave_spec.arrival_offset = spec.arrival_offset + offset;
        wave_spec.flows = std::move(flows);
        new_job.coflows.push_back(std::move(wave_spec));
      }
    }
    out.jobs.push_back(std::move(new_job));
  }
  return out;
}

coflow::Workload barrierWaves(const coflow::Workload& workload) {
  coflow::Workload out = workload;
  for (coflow::JobSpec& job : out.jobs) {
    for (coflow::CoflowSpec& spec : job.coflows) {
      util::Seconds max_offset = 0;
      for (const coflow::FlowSpec& f : spec.flows) {
        max_offset = std::max(max_offset, f.start_offset);
      }
      if (max_offset <= 0) continue;
      // The barrier delays the whole transfer until the last wave exists.
      spec.arrival_offset += max_offset;
      for (coflow::FlowSpec& f : spec.flows) f.start_offset = 0;
    }
  }
  return out;
}

coflow::Workload addBarriersToDags(const coflow::Workload& workload) {
  coflow::Workload out = workload;
  for (coflow::JobSpec& job : out.jobs) {
    for (coflow::CoflowSpec& spec : job.coflows) {
      for (const coflow::CoflowId& p : spec.finishes_before) {
        spec.starts_after.push_back(p);
      }
      spec.finishes_before.clear();
    }
  }
  return out;
}

std::size_t injectTaskFailures(coflow::Workload& workload,
                               const FailureConfig& config) {
  if (config.failure_probability < 0 || config.failure_probability > 1) {
    throw std::invalid_argument("injectTaskFailures: probability out of range");
  }
  util::Rng rng(config.seed);
  std::size_t failures = 0;
  for (coflow::JobSpec& job : workload.jobs) {
    for (coflow::CoflowSpec& spec : job.coflows) {
      std::vector<coflow::FlowSpec> restarted;
      for (coflow::FlowSpec& f : spec.flows) {
        if (!rng.chance(config.failure_probability)) continue;
        ++failures;
        // The task died after sending a fraction of its output...
        const double progress = rng.uniform(0.1, 0.9);
        const util::Seconds isolated = f.bytes / config.port_capacity;
        const util::Seconds failed_at = f.start_offset + progress * isolated;
        // ...and the restarted (or speculative) copy resends everything
        // after a detection lag, like a new wave (§5.2).
        coflow::FlowSpec restart = f;
        restart.start_offset =
            failed_at + config.restart_lag_factor * isolated;
        restarted.push_back(restart);
        f.bytes *= progress;  // The partial transfer still happened.
      }
      spec.flows.insert(spec.flows.end(), restarted.begin(), restarted.end());
    }
  }
  return failures;
}

std::vector<double> waveHistogram(const coflow::Workload& workload, int max_waves) {
  std::vector<double> histogram(static_cast<std::size_t>(std::max(max_waves, 1)), 0.0);
  std::size_t total = 0;
  for (const coflow::JobSpec& job : workload.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      const int waves = std::min(spec.waveCount(), max_waves);
      histogram[static_cast<std::size_t>(waves - 1)] += 1.0;
      ++total;
    }
  }
  if (total > 0) {
    for (double& h : histogram) h /= static_cast<double>(total);
  }
  return histogram;
}

}  // namespace aalo::workload
