// Plain-text trace format for saving and replaying workloads.
//
// Format (one token-separated record per line, '#' comments allowed):
//
//   aalo-trace 1
//   ports <num_ports>
//   job <job_id> <arrival_s> <compute_s> <num_coflows>
//   coflow <ext>.<int> <arrival_offset_s> <num_flows> [sa=<ext>.<int>,...]
//          [fb=<ext>.<int>,...]
//   flow <src> <dst> <bytes> <start_offset_s>
//
// Coflows follow their job line; flows follow their coflow line. This is
// deliberately close to the published coflow-benchmark format so traces
// are easy to eyeball and diff.
#pragma once

#include <iosfwd>
#include <string>

#include "coflow/spec.h"

namespace aalo::workload {

void writeTrace(std::ostream& os, const coflow::Workload& workload);
void writeTraceFile(const std::string& path, const coflow::Workload& workload);

/// Parses a trace; throws std::runtime_error with a line number on any
/// malformed input, and validates the resulting workload.
coflow::Workload readTrace(std::istream& is);
coflow::Workload readTraceFile(const std::string& path);

/// Reads the public *coflow-benchmark* format (github.com/coflow;
/// e.g. FB2010-1Hr-150-0.txt — the very trace the paper replays):
///
///   <numRacks> <numJobs>
///   <jobID> <arrivalMillis> <numMappers> <m_1> ... <numReducers>
///          <r_1>:<shuffleMB_1> ...
///
/// Mapper/reducer locations are rack numbers (1-based in the published
/// trace); each mapper sends an equal share of a reducer's shuffle to it.
/// Jobs become single-coflow jobs on a numRacks-port fabric.
coflow::Workload readCoflowBenchmarkTrace(std::istream& is);
coflow::Workload readCoflowBenchmarkTraceFile(const std::string& path);

}  // namespace aalo::workload
