// Workload transformations: multi-wave scheduling and the Varys execution
// modes the paper compares against (§5.2, §7.3, §7.4).
#pragma once

#include <cstdint>

#include "coflow/spec.h"
#include "util/rng.h"

namespace aalo::workload {

struct MultiWaveConfig {
  /// Maximum number of waves per coflow (Table 4: 1, 2, or 4).
  int max_waves = 1;
  /// Random seed for the per-coflow wave count draw.
  std::uint64_t seed = 3;
  /// Port capacity used to estimate a wave's duration: wave w starts when
  /// the previous wave's senders would roughly be done (tasks of wave w+1
  /// are scheduled as slots free up).
  util::Rate port_capacity = util::kGbps;
};

/// Splits each coflow's senders into waves. The number of waves per
/// coflow follows the paper's Table 4 marginals:
///   max 1: 100 % one wave
///   max 2: 90 % one, 10 % two
///   max 4: 81 % one, 9 % two, 4 % three, 6 % four
/// Flows of wave w get start offsets staggered by the estimated duration
/// of one wave. Returns the number of multi-wave coflows produced.
std::size_t applyMultiWave(coflow::Workload& workload, const MultiWaveConfig& config);

/// Varys mode (i) for multi-wave stages: every wave becomes its own
/// coflow (same job, fresh internal ids), because a clairvoyant scheduler
/// cannot admit a coflow whose future flows are unknown. Stage-level
/// completion is recovered from job records.
coflow::Workload splitWavesIntoCoflows(const coflow::Workload& workload);

/// Varys mode (ii): an artificial barrier holds *all* flows until the
/// last wave's start time, so the combined coflow's bottleneck is known.
coflow::Workload barrierWaves(const coflow::Workload& workload);

/// Varys DAG mode: pipelined Finishes-Before edges become Starts-After
/// barriers (a clairvoyant scheduler needs complete stages).
coflow::Workload addBarriersToDags(const coflow::Workload& workload);

/// Table 4 histogram: fraction of coflows with 1..max waves.
std::vector<double> waveHistogram(const coflow::Workload& workload, int max_waves);

struct FailureConfig {
  /// Probability that a given flow's sending task fails mid-transfer and
  /// is restarted (or speculatively re-executed) — §5.2.
  double failure_probability = 0.1;
  std::uint64_t seed = 13;
  /// Detection + rescheduling lag, as a fraction of the flow's isolated
  /// duration, before the restarted copy begins.
  double restart_lag_factor = 0.25;
  util::Rate port_capacity = util::kGbps;
};

/// Injects task failures/speculation (§5.2): a failed flow is split into
/// the partial transfer that completed before the failure plus a full
/// restarted copy beginning after a detection lag. The coflow's total
/// traffic *grows* (the paper: "their additional traffic is added up to
/// the current size of that coflow") — which is exactly why attained
/// service remains a valid, monotone signal. Returns the number of flows
/// that failed.
std::size_t injectTaskFailures(coflow::Workload& workload, const FailureConfig& config);

}  // namespace aalo::workload
