#include "workload/facebook.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "coflow/id_generator.h"
#include "coflow/ids.h"
#include "workload/deadlines.h"

namespace aalo::workload {

CoflowBin classifyCoflow(util::Bytes max_flow_bytes, std::size_t width) {
  const bool is_short = max_flow_bytes < kShortLengthLimit;
  const bool narrow = width <= kNarrowWidthLimit;
  if (is_short && narrow) return CoflowBin::kShortNarrow;
  if (!is_short && narrow) return CoflowBin::kLongNarrow;
  if (is_short && !narrow) return CoflowBin::kShortWide;
  return CoflowBin::kLongWide;
}

util::Seconds isolatedBottleneckSeconds(const coflow::CoflowSpec& spec,
                                        util::Rate port_capacity) {
  std::unordered_map<coflow::PortId, util::Bytes> in;
  std::unordered_map<coflow::PortId, util::Bytes> out;
  for (const coflow::FlowSpec& f : spec.flows) {
    in[f.src] += f.bytes;
    out[f.dst] += f.bytes;
  }
  util::Bytes bottleneck = 0;
  for (const auto& entry : in) bottleneck = std::max(bottleneck, entry.second);
  for (const auto& entry : out) bottleneck = std::max(bottleneck, entry.second);
  return bottleneck / port_capacity;
}

namespace {

/// Draws (senders, receivers) so that senders * receivers respects the
/// bin's width class.
std::pair<int, int> drawEndpointCounts(util::Rng& rng, bool narrow,
                                       const FacebookConfig& cfg) {
  const int max_m = std::min(cfg.sender_cap, cfg.num_ports);
  const int max_r = std::min(cfg.receiver_cap, cfg.num_ports);
  if (narrow) {
    // Mostly tiny fan-in/fan-out; width <= 50.
    for (;;) {
      const int m = static_cast<int>(rng.uniformInt(1, 7));
      const int r = static_cast<int>(rng.uniformInt(1, 7));
      if (m * r <= static_cast<int>(kNarrowWidthLimit)) return {m, r};
    }
  }
  // Wide: width > 50, i.e. m * r >= 51.
  for (;;) {
    const int m = static_cast<int>(rng.uniformInt(4, max_m));
    const int r = static_cast<int>(rng.uniformInt(4, max_r));
    if (m * r > static_cast<int>(kNarrowWidthLimit)) return {m, r};
  }
}

/// Per-flow size for a "short" coflow: every flow stays below 5 MB.
util::Bytes drawShortFlowBytes(util::Rng& rng) {
  // Log-normal around a few hundred KB, clamped below the short limit.
  const double b = rng.logNormal(std::log(300.0 * util::kKB), 1.1);
  return std::clamp(b, 10.0 * util::kKB, kShortLengthLimit * 0.98);
}

/// Per-flow size for a "long" coflow: heavy-tailed with a 5 MB floor for
/// the flows that define the coflow's length. Wide shuffles draw from a
/// heavier tail — in the Facebook trace the long-and-wide bin carries
/// 99.1 % of all bytes (Table 3).
util::Bytes drawLongFlowBytes(util::Rng& rng, util::Bytes max_flow, bool wide) {
  const double b = wide ? rng.pareto(8.0 * util::kMB, 1.1)
                        : rng.pareto(5.0 * util::kMB, 1.4);
  return std::clamp(b, 1.0 * util::kMB, max_flow);
}

}  // namespace

coflow::Workload generateFacebookWorkload(const FacebookConfig& config) {
  util::Rng rng(config.seed);
  coflow::Workload wl;
  wl.num_ports = config.num_ports;

  // Table 3 coflow mix.
  const std::array<double, 4> bin_weights = {0.52, 0.16, 0.15, 0.17};
  // Table 2 job communication-fraction mix; a representative fraction is
  // drawn uniformly inside the selected band.
  const std::array<double, 4> comm_weights = {0.61, 0.13, 0.14, 0.12};
  const std::array<std::pair<double, double>, 4> comm_bands = {
      {{0.05, 0.25}, {0.25, 0.50}, {0.50, 0.75}, {0.75, 0.95}}};

  coflow::CoflowIdGenerator ids;
  util::Seconds arrival = 0;
  for (std::size_t j = 0; j < config.num_jobs; ++j) {
    arrival += rng.exponential(config.mean_interarrival);

    const auto bin = static_cast<CoflowBin>(
        1 + rng.weightedIndex(std::span<const double>(bin_weights)));
    const bool narrow =
        bin == CoflowBin::kShortNarrow || bin == CoflowBin::kLongNarrow;
    const bool is_short =
        bin == CoflowBin::kShortNarrow || bin == CoflowBin::kShortWide;

    const auto [m, r] = drawEndpointCounts(rng, narrow, config);
    const std::vector<std::size_t> senders =
        rng.sampleWithoutReplacement(static_cast<std::size_t>(config.num_ports),
                                     static_cast<std::size_t>(m));
    const std::vector<std::size_t> receivers =
        rng.sampleWithoutReplacement(static_cast<std::size_t>(config.num_ports),
                                     static_cast<std::size_t>(r));

    coflow::CoflowSpec spec;
    spec.id = ids.newRootId();
    for (const std::size_t s : senders) {
      for (const std::size_t d : receivers) {
        coflow::FlowSpec f;
        f.src = static_cast<coflow::PortId>(s);
        f.dst = static_cast<coflow::PortId>(d);
        // Long/narrow coflows (bin 2) carry well under 1 % of all bytes in
        // the Facebook trace; the monster shuffles are long *and* wide.
        // Cap narrow coflows' flows an order of magnitude lower so bin 4
        // dominates the byte count as in Table 3.
        const util::Bytes cap = narrow
                                    ? std::min(config.max_flow_bytes, 60 * util::kMB)
                                    : config.max_flow_bytes;
        f.bytes = is_short ? drawShortFlowBytes(rng)
                           : drawLongFlowBytes(rng, cap, !narrow);
        spec.flows.push_back(f);
      }
    }
    // Long coflows must actually be long: force one flow past the limit.
    if (!is_short && spec.maxFlowBytes() < kShortLengthLimit) {
      spec.flows.front().bytes = std::min(
          config.max_flow_bytes, kShortLengthLimit * rng.uniform(1.2, 4.0));
    }

    coflow::JobSpec job;
    job.id = static_cast<coflow::JobId>(j);
    job.arrival = arrival;
    // Back-solve the compute time from the coflow's isolated duration so
    // the job lands in the drawn Table 2 communication band.
    const std::size_t band =
        rng.weightedIndex(std::span<const double>(comm_weights));
    const double frac =
        rng.uniform(comm_bands[band].first, comm_bands[band].second);
    const util::Seconds comm = std::max(
        isolatedBottleneckSeconds(spec, util::kGbps), 1.0 * util::kMillisecond);
    job.compute_time = comm * (1.0 - frac) / frac;
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  if (config.deadline_slack > 0) {
    DeadlineConfig dl;
    dl.slack = config.deadline_slack;
    dl.seed = config.seed + 0x9e3779b9;  // Decoupled from the size draws.
    assignDeadlines(wl, dl);
  }
  return wl;
}

}  // namespace aalo::workload
