#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aalo::workload {

namespace {

std::string formatId(const coflow::CoflowId& id) { return id.toString(); }

coflow::CoflowId parseId(const std::string& token, std::size_t line_no) {
  const auto dot = token.find('.');
  if (dot == std::string::npos) {
    throw std::runtime_error("trace line " + std::to_string(line_no) +
                             ": bad coflow id '" + token + "'");
  }
  try {
    return coflow::CoflowId{std::stoll(token.substr(0, dot)),
                            std::stoi(token.substr(dot + 1))};
  } catch (const std::exception&) {
    throw std::runtime_error("trace line " + std::to_string(line_no) +
                             ": bad coflow id '" + token + "'");
  }
}

/// Parses "sa=1.0,2.1" / "fb=..." suffix lists.
std::vector<coflow::CoflowId> parseIdList(const std::string& payload,
                                          std::size_t line_no) {
  std::vector<coflow::CoflowId> ids;
  std::stringstream ss(payload);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) ids.push_back(parseId(item, line_no));
  }
  return ids;
}

}  // namespace

void writeTrace(std::ostream& os, const coflow::Workload& workload) {
  // Full round-trip precision for times and sizes.
  os.precision(17);
  os << "aalo-trace 1\n";
  os << "ports " << workload.num_ports << "\n";
  for (const coflow::JobSpec& job : workload.jobs) {
    os << "job " << job.id << " " << job.arrival << " " << job.compute_time << " "
       << job.coflows.size() << "\n";
    for (const coflow::CoflowSpec& c : job.coflows) {
      os << "coflow " << formatId(c.id) << " " << c.arrival_offset << " "
         << c.flows.size();
      if (!c.starts_after.empty()) {
        os << " sa=";
        for (std::size_t i = 0; i < c.starts_after.size(); ++i) {
          os << (i ? "," : "") << formatId(c.starts_after[i]);
        }
      }
      if (!c.finishes_before.empty()) {
        os << " fb=";
        for (std::size_t i = 0; i < c.finishes_before.size(); ++i) {
          os << (i ? "," : "") << formatId(c.finishes_before[i]);
        }
      }
      // Emitted only when set so deadline-free traces stay byte-identical
      // with the pre-deadline format (and readable by older parsers).
      if (c.deadline > 0) os << " dl=" << c.deadline;
      os << "\n";
      for (const coflow::FlowSpec& f : c.flows) {
        os << "flow " << f.src << " " << f.dst << " " << f.bytes << " "
           << f.start_offset << "\n";
      }
    }
  }
}

void writeTraceFile(const std::string& path, const coflow::Workload& workload) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeTraceFile: cannot open " + path);
  writeTrace(out, workload);
}

coflow::Workload readTrace(std::istream& is) {
  coflow::Workload wl;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  coflow::JobSpec* job = nullptr;
  coflow::CoflowSpec* cf = nullptr;
  std::size_t flows_expected = 0;

  auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("trace line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string kind;
    if (!(ss >> kind)) continue;  // Blank line.

    if (kind == "aalo-trace") {
      int version = 0;
      if (!(ss >> version) || version != 1) fail("unsupported trace version");
      header_seen = true;
    } else if (!header_seen) {
      fail("missing 'aalo-trace 1' header");
    } else if (kind == "ports") {
      if (!(ss >> wl.num_ports)) fail("bad ports line");
    } else if (kind == "job") {
      std::size_t num_coflows = 0;
      coflow::JobSpec j;
      if (!(ss >> j.id >> j.arrival >> j.compute_time >> num_coflows)) {
        fail("bad job line");
      }
      if (cf != nullptr && flows_expected != cf->flows.size()) {
        fail("previous coflow has missing flows");
      }
      wl.jobs.push_back(std::move(j));
      job = &wl.jobs.back();
      job->coflows.reserve(num_coflows);
      cf = nullptr;
    } else if (kind == "coflow") {
      if (job == nullptr) fail("coflow before any job");
      if (cf != nullptr && flows_expected != cf->flows.size()) {
        fail("previous coflow has missing flows");
      }
      std::string id_token;
      coflow::CoflowSpec c;
      if (!(ss >> id_token >> c.arrival_offset >> flows_expected)) {
        fail("bad coflow line");
      }
      c.id = parseId(id_token, line_no);
      std::string extra;
      while (ss >> extra) {
        if (extra.rfind("sa=", 0) == 0) {
          c.starts_after = parseIdList(extra.substr(3), line_no);
        } else if (extra.rfind("fb=", 0) == 0) {
          c.finishes_before = parseIdList(extra.substr(3), line_no);
        } else if (extra.rfind("dl=", 0) == 0) {
          try {
            c.deadline = std::stod(extra.substr(3));
          } catch (const std::exception&) {
            fail("bad coflow deadline '" + extra + "'");
          }
        } else {
          fail("unknown coflow attribute '" + extra + "'");
        }
      }
      c.flows.reserve(flows_expected);
      job->coflows.push_back(std::move(c));
      cf = &job->coflows.back();
    } else if (kind == "flow") {
      if (cf == nullptr) fail("flow before any coflow");
      if (cf->flows.size() >= flows_expected) fail("more flows than declared");
      coflow::FlowSpec f;
      if (!(ss >> f.src >> f.dst >> f.bytes >> f.start_offset)) fail("bad flow line");
      cf->flows.push_back(f);
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (cf != nullptr && flows_expected != cf->flows.size()) {
    throw std::runtime_error("trace: last coflow has missing flows");
  }
  wl.validate();
  return wl;
}

coflow::Workload readTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("readTraceFile: cannot open " + path);
  return readTrace(in);
}

coflow::Workload readCoflowBenchmarkTrace(std::istream& is) {
  coflow::Workload wl;
  std::size_t num_jobs = 0;
  if (!(is >> wl.num_ports >> num_jobs)) {
    throw std::runtime_error("coflow-benchmark trace: bad header");
  }

  auto parsePort = [&](long raw, const char* what) -> coflow::PortId {
    // Published traces use 1-based rack ids.
    const long port = raw - 1;
    if (port < 0 || port >= wl.num_ports) {
      throw std::runtime_error(std::string("coflow-benchmark trace: ") + what +
                               " rack out of range");
    }
    return static_cast<coflow::PortId>(port);
  };

  for (std::size_t j = 0; j < num_jobs; ++j) {
    long job_id = 0;
    double arrival_ms = 0;
    int num_mappers = 0;
    if (!(is >> job_id >> arrival_ms >> num_mappers) || num_mappers <= 0) {
      throw std::runtime_error("coflow-benchmark trace: bad job line");
    }
    std::vector<coflow::PortId> mappers;
    for (int m = 0; m < num_mappers; ++m) {
      long rack = 0;
      if (!(is >> rack)) throw std::runtime_error("coflow-benchmark trace: bad mapper");
      mappers.push_back(parsePort(rack, "mapper"));
    }
    int num_reducers = 0;
    if (!(is >> num_reducers) || num_reducers <= 0) {
      throw std::runtime_error("coflow-benchmark trace: bad reducer count");
    }

    coflow::JobSpec job;
    job.id = job_id;
    job.arrival = arrival_ms * util::kMillisecond;
    coflow::CoflowSpec spec;
    spec.id = {job_id, 0};
    for (int r = 0; r < num_reducers; ++r) {
      std::string token;
      if (!(is >> token)) throw std::runtime_error("coflow-benchmark trace: bad reducer");
      const auto colon = token.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("coflow-benchmark trace: reducer missing ':' in '" +
                                 token + "'");
      }
      const auto reducer = parsePort(std::stol(token.substr(0, colon)), "reducer");
      const double total_mb = std::stod(token.substr(colon + 1));
      if (total_mb <= 0) {
        throw std::runtime_error("coflow-benchmark trace: non-positive shuffle size");
      }
      // Every mapper contributes an equal share of this reducer's input.
      const util::Bytes per_mapper =
          total_mb * util::kMB / static_cast<double>(mappers.size());
      for (const auto mapper : mappers) {
        spec.flows.push_back(coflow::FlowSpec{mapper, reducer, per_mapper, 0});
      }
    }
    job.coflows.push_back(std::move(spec));
    wl.jobs.push_back(std::move(job));
  }
  wl.validate();
  return wl;
}

coflow::Workload readCoflowBenchmarkTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("readCoflowBenchmarkTraceFile: cannot open " + path);
  }
  return readCoflowBenchmarkTrace(in);
}

}  // namespace aalo::workload
