// Low-overhead metrics subsystem (observability layer).
//
// Three instrument kinds, all safe for concurrent writers:
//  * Counter — monotonic u64, sharded across cache-line-padded relaxed
//    atomics so concurrent writers on different cores do not false-share.
//    API-compatible with the std::atomic<uint64_t> usage subset the
//    control plane already relies on (fetch_add / load), so existing
//    counter structs migrate by swapping the alias.
//  * Gauge — a last-write-wins double (bit-cast through one atomic u64).
//  * LatencyHistogram — fixed log-spaced buckets plus count and sum;
//    p50/p95/p99 extraction reuses util::bucketQuantile.
//
// A Registry names instruments and renders them as Prometheus text
// exposition or as a JSON dump shaped like the BENCH_*.json files
// ({"context": ..., "metrics": [...]}). Instruments are either owned by
// the registry (counter()/gauge()/histogram()) or borrowed via
// attachCounter()/attachGauge() — the bridge for pre-existing state such
// as runtime::RobustnessStats fields or lifecycle atomics.
//
// Hot-path contract: increments are branch-free (no null checks, no
// locks); the registry mutex is touched only at registration and render
// time. Rendering concurrent with writers is safe but sees an unordered
// snapshot; totals are exact once writers quiesce.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aalo::obs {

inline constexpr std::size_t kCounterShards = 8;

/// Per-thread shard index: a multiplicative hash of a thread-local
/// address, so threads spread across shards without coordination.
inline std::size_t shardIndex() noexcept {
  static thread_local const std::uint8_t tag = 0;
  const auto h = reinterpret_cast<std::uintptr_t>(&tag) *
                 std::uintptr_t{0x9E3779B97F4A7C15ull};
  static_assert(kCounterShards == 8, "shardIndex extracts 3 bits");
  return static_cast<std::size_t>(h >> 61);
}

/// Monotonic counter, sharded against false sharing. Mirrors the
/// std::atomic<uint64_t> calls used by the control-plane stats structs
/// (fetch_add with a discarded result, load), so those structs migrate
/// onto the registry without touching their call sites.
class Counter {
 public:
  Counter(std::uint64_t initial = 0) noexcept {  // NOLINT: implicit, {0} init
    shards_[0].v.store(initial, std::memory_order_relaxed);
  }
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void fetch_add(std::uint64_t n,
                 std::memory_order = std::memory_order_relaxed) noexcept {
    shards_[shardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void add(std::uint64_t n) noexcept { fetch_add(n); }

  std::uint64_t load(std::memory_order = std::memory_order_relaxed) const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

/// Last-write-wins double value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + delta);
    } while (!bits_.compare_exchange_weak(old, next, std::memory_order_relaxed));
  }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 is the bit pattern of +0.0.
};

struct HistogramOptions {
  /// First (smallest) bucket upper bound; log-spaced ladder grows from it.
  double first_bound = 1e-6;
  /// Geometric growth factor between consecutive bounds.
  double growth = 2.0;
  /// Number of finite bounds; one implicit +Inf overflow bucket follows.
  int num_bounds = 28;
};

/// Fixed-bucket histogram with log-spaced bounds; observe() is lock-free.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(HistogramOptions options = {});
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  /// q in [0, 1]; linear interpolation inside the landing bucket
  /// (util::bucketQuantile). 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is overflow.
  std::vector<std::uint64_t> bucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Names instruments and renders exposition. Keys are (family, labels);
/// entries render in sorted order so output is deterministic.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Owned instruments. Re-requesting an existing (name, labels) pair of
  /// the same kind returns the same instrument; a kind clash throws.
  /// `labels` is a preformatted Prometheus label list without braces,
  /// e.g. `scheduler="aalo-dclas"`.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  LatencyHistogram& histogram(const std::string& name, const std::string& help = "",
                              HistogramOptions options = {},
                              const std::string& labels = "");

  /// Borrowed instruments: the registry stores only a read callback, so
  /// pre-existing counters/atomics surface without being moved. The
  /// referenced state must outlive the registry entry.
  void attachCounter(const std::string& name, const std::string& help,
                     std::function<std::uint64_t()> read,
                     const std::string& labels = "");
  void attachCounter(const std::string& name, const std::string& help,
                     const Counter& c, const std::string& labels = "");
  void attachGauge(const std::string& name, const std::string& help,
                   std::function<double()> read, const std::string& labels = "");

  /// Prometheus text exposition: # HELP / # TYPE once per family, then
  /// one sample line per entry (histograms expand to _bucket/_sum/_count).
  std::string renderPrometheus() const;
  /// JSON dump shaped like BENCH_*.json: {"context": {...}, "metrics":
  /// [...]} with p50/p95/p99 precomputed for histograms.
  std::string renderJson() const;
  /// Writes renderPrometheus() to `path` and renderJson() to
  /// `path` + ".json". Returns false if either file cannot be written.
  bool dumpFiles(const std::string& path) const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string family;
    std::string labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;

    std::uint64_t counterValue() const {
      return counter_fn ? counter_fn() : counter->load();
    }
    double gaugeValue() const { return gauge_fn ? gauge_fn() : gauge->value(); }
  };

  Entry& insert(const std::string& name, const std::string& labels, Kind kind,
                const std::string& help);

  mutable std::mutex mutex_;
  /// Key = family + '\x01' + labels: sorts families together with their
  /// label variants adjacent, which the Prometheus renderer relies on.
  std::map<std::string, Entry> entries_;
};

/// Shortest-round-trip decimal formatting (std::to_chars) — deterministic
/// across runs and build types, used by both renderers.
std::string formatDouble(double v);

}  // namespace aalo::obs
