#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/stats.h"

namespace aalo::obs {

std::string formatDouble(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string sampleName(const std::string& family, const std::string& labels,
                       const char* suffix = "", const std::string& extra_label = "") {
  std::string out = family;
  out += suffix;
  std::string all = labels;
  if (!extra_label.empty()) {
    if (!all.empty()) all += ",";
    all += extra_label;
  }
  if (!all.empty()) {
    out += "{";
    out += all;
    out += "}";
  }
  return out;
}

}  // namespace

LatencyHistogram::LatencyHistogram(HistogramOptions options) {
  if (options.num_bounds < 1) {
    throw std::invalid_argument("LatencyHistogram: num_bounds must be >= 1");
  }
  if (options.first_bound <= 0 || options.growth <= 1.0) {
    throw std::invalid_argument("LatencyHistogram: bounds must grow from > 0");
  }
  bounds_.reserve(static_cast<std::size_t>(options.num_bounds));
  double b = options.first_bound;
  for (int i = 0; i < options.num_bounds; ++i) {
    bounds_.push_back(b);
    b *= options.growth;
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void LatencyHistogram::observe(double v) noexcept {
  // First bound >= v, i.e. the `le` bucket the sample lands in; past the
  // ladder it falls into the +Inf overflow bucket.
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v);
  } while (!sum_bits_.compare_exchange_weak(old, next, std::memory_order_relaxed));
}

std::vector<std::uint64_t> LatencyHistogram::bucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::quantile(double q) const {
  return util::bucketQuantile(bounds_, bucketCounts(), q);
}

Registry::Entry& Registry::insert(const std::string& name, const std::string& labels,
                                  Kind kind, const std::string& help) {
  const std::string key = name + '\x01' + labels;
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (!inserted) {
    if (e.kind != kind) {
      throw std::logic_error("Registry: metric '" + name +
                             "' re-registered with a different kind");
    }
    return e;
  }
  e.kind = kind;
  e.family = name;
  e.labels = labels;
  e.help = help;
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = insert(name, labels, Kind::kCounter, help);
  if (!e.counter && !e.counter_fn) e.counter = std::make_unique<Counter>();
  if (!e.counter) {
    throw std::logic_error("Registry: metric '" + name + "' is attached, not owned");
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = insert(name, labels, Kind::kGauge, help);
  if (!e.gauge && !e.gauge_fn) e.gauge = std::make_unique<Gauge>();
  if (!e.gauge) {
    throw std::logic_error("Registry: metric '" + name + "' is attached, not owned");
  }
  return *e.gauge;
}

LatencyHistogram& Registry::histogram(const std::string& name, const std::string& help,
                                      HistogramOptions options,
                                      const std::string& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = insert(name, labels, Kind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<LatencyHistogram>(options);
  return *e.histogram;
}

void Registry::attachCounter(const std::string& name, const std::string& help,
                             std::function<std::uint64_t()> read,
                             const std::string& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = insert(name, labels, Kind::kCounter, help);
  e.counter_fn = std::move(read);
}

void Registry::attachCounter(const std::string& name, const std::string& help,
                             const Counter& c, const std::string& labels) {
  attachCounter(name, help, [&c] { return c.load(); }, labels);
}

void Registry::attachGauge(const std::string& name, const std::string& help,
                           std::function<double()> read, const std::string& labels) {
  std::lock_guard lock(mutex_);
  Entry& e = insert(name, labels, Kind::kGauge, help);
  e.gauge_fn = std::move(read);
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::string Registry::renderPrometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  std::string last_family;
  for (const auto& [key, e] : entries_) {
    if (e.family != last_family) {
      last_family = e.family;
      if (!e.help.empty()) {
        out += "# HELP " + e.family + " " + e.help + "\n";
      }
      const char* type = e.kind == Kind::kCounter    ? "counter"
                         : e.kind == Kind::kGauge    ? "gauge"
                                                     : "histogram";
      out += "# TYPE " + e.family + " " + type + "\n";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += sampleName(e.family, e.labels) + " " +
               std::to_string(e.counterValue()) + "\n";
        break;
      case Kind::kGauge:
        out += sampleName(e.family, e.labels) + " " + formatDouble(e.gaugeValue()) +
               "\n";
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *e.histogram;
        const std::vector<std::uint64_t> counts = h.bucketCounts();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += counts[i];
          out += sampleName(e.family, e.labels, "_bucket",
                            "le=\"" + formatDouble(h.bounds()[i]) + "\"") +
                 " " + std::to_string(cum) + "\n";
        }
        cum += counts.back();
        out += sampleName(e.family, e.labels, "_bucket", "le=\"+Inf\"") + " " +
               std::to_string(cum) + "\n";
        out += sampleName(e.family, e.labels, "_sum") + " " + formatDouble(h.sum()) +
               "\n";
        out += sampleName(e.family, e.labels, "_count") + " " +
               std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::renderJson() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n  \"context\": {\"format\": \"aalo-metrics\", \"version\": 1},\n";
  out += "  \"metrics\": [\n";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + jsonEscape(e.family) + "\"";
    if (!e.labels.empty()) {
      out += ", \"labels\": \"" + jsonEscape(e.labels) + "\"";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += ", \"type\": \"counter\", \"value\": " +
               std::to_string(e.counterValue());
        break;
      case Kind::kGauge:
        out += ", \"type\": \"gauge\", \"value\": " + formatDouble(e.gaugeValue());
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *e.histogram;
        out += ", \"type\": \"histogram\", \"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + formatDouble(h.sum()) +
               ", \"p50\": " + formatDouble(h.quantile(0.50)) +
               ", \"p95\": " + formatDouble(h.quantile(0.95)) +
               ", \"p99\": " + formatDouble(h.quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Registry::dumpFiles(const std::string& path) const {
  // Render before opening: a render error must not leave an empty file.
  const std::string prom = renderPrometheus();
  const std::string json = renderJson();
  std::ofstream prom_out(path, std::ios::trunc);
  prom_out << prom;
  std::ofstream json_out(path + ".json", std::ios::trunc);
  json_out << json;
  return prom_out.good() && json_out.good();
}

}  // namespace aalo::obs
