// Incrementally maintained global schedule for the Aalo coordinator.
//
// The pre-delta coordinator did O(daemons x coflows) work every Δ: rebuild
// the global size map from every stored report, re-discretize every coflow,
// and fully re-sort the schedule — even when nothing changed. This class
// makes the per-Δ cost proportional to *change* instead:
//
//  * Size reports are applied as they arrive: each reported (daemon,
//    coflow, absolute bytes) pair updates the coflow's global size by the
//    difference from that daemon's previous report, re-discretizes just
//    that coflow (binary search over the thresholds), and — only on a
//    queue change — moves it within the ordered schedule in O(log n).
//  * The schedule is a std::set keyed by (queue, CoflowIdFifoLess), i.e.
//    permanently sorted; there is no per-broadcast sort.
//  * Coflows whose queue moved, whose ON/OFF gate toggled, or that
//    appeared/vanished since the last broadcast accumulate in a dirty set;
//    buildDelta() drains it into a kScheduleDelta payload (empty when the
//    schedule is unchanged — the broadcast is suppressed to a heartbeat).
//
// legacySchedule() reproduces the original rebuild-the-world path verbatim
// and serves both as the full-broadcast oracle mode and as the reference
// in equivalence tests (same pattern as fabric::maxMinAllocateReference).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "coflow/ids.h"
#include "net/protocol.h"
#include "util/units.h"

namespace aalo::runtime {

class ScheduleState {
 public:
  /// `thresholds`: ascending D-CLAS upper bounds (one fewer than the
  /// number of queues). `max_on_coflows`: §6.2 ON/OFF budget, 0 = all ON.
  ScheduleState(std::vector<util::Bytes> thresholds,
                std::size_t max_on_coflows);

  /// A client registered `id`: it enters the schedule at queue 0 with
  /// zero global bytes (new == likely small).
  void registerCoflow(const coflow::CoflowId& id);

  /// A client unregistered `id`: it leaves the schedule (daemons learn
  /// this through a delta removal or its absence from a snapshot) and all
  /// per-daemon observations of it are discarded.
  void unregisterCoflow(const coflow::CoflowId& id);

  /// One reported observation: daemon `daemon_id` has seen `bytes` total
  /// (absolute, monotone per daemon) for `id`. The caller must have
  /// tombstone-filtered `id` already. Creates the coflow if unknown —
  /// that is how a restarted coordinator re-learns state (§3.2).
  void applySize(std::uint64_t daemon_id, const coflow::CoflowId& id,
                 double bytes);

  /// The daemon disconnected or was evicted: subtract everything it
  /// reported from the global sizes (exactly what the legacy rebuild did
  /// by dropping its report map).
  void dropDaemon(std::uint64_t daemon_id);

  std::size_t registeredCount() const { return registered_.size(); }
  std::size_t scheduledCount() const { return global_.size(); }

  /// Global size of `id` (0 when unknown). Test/diagnostic accessor.
  double globalBytes(const coflow::CoflowId& id) const;
  std::unordered_map<coflow::CoflowId, double> globalSizes() const;

  /// Drains the accumulated changes since the previous buildDelta() into
  /// `entries` (coflows whose (queue, ON) differs from what the delta
  /// chain last announced, or that appeared) and `removals` (vanished
  /// coflows the chain had announced). Entries come sorted by
  /// (queue, FIFO id) so the wire bytes are deterministic. Returns false
  /// when both are empty — the schedule is unchanged and the broadcast
  /// can be suppressed to an epoch-only heartbeat.
  bool buildDelta(std::vector<net::ScheduleEntry>& entries,
                  std::vector<coflow::CoflowId>& removals);

  /// The full current schedule, sorted, with the ON gate applied
  /// positionally — what a snapshot (kScheduleUpdate) carries.
  void snapshotEntries(std::vector<net::ScheduleEntry>& out) const;

  /// Serialization accessors (checkpointing): the raw per-daemon absolute
  /// reports and the registered set are the whole ground truth — replaying
  /// them through registerCoflow()/applySize() on a freshly constructed
  /// state reproduces global_/order_ exactly (the schedule is a sorted
  /// set, so snapshotEntries() is bit-identical regardless of replay
  /// order).
  const std::unordered_map<std::uint64_t,
                           std::unordered_map<coflow::CoflowId, double>>&
  reportedSizes() const {
    return reported_;
  }
  const std::unordered_set<coflow::CoflowId>& registeredIds() const {
    return registered_;
  }

  struct OrderLess {
    bool operator()(const std::pair<int, coflow::CoflowId>& a,
                    const std::pair<int, coflow::CoflowId>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return coflow::CoflowIdFifoLess{}(a.second, b.second);
    }
  };
  using OrderSet = std::set<std::pair<int, coflow::CoflowId>, OrderLess>;

  /// The live schedule order, permanently sorted by (queue, FIFO id).
  /// Exposed for the sharded coordinator's k-way merge, which walks the
  /// per-shard heads to find the global top of the schedule.
  const OrderSet& order() const { return order_; }

  /// Current wire entry for `id` (bytes, queue; `on` as the shard-local
  /// gate sees it), nullopt when the coflow is not scheduled. Used by the
  /// cross-shard merge to materialize ON/OFF toggles for coflows whose
  /// own shard had nothing new to announce.
  std::optional<net::ScheduleEntry> entryFor(const coflow::CoflowId& id) const;

  using TombstoneFilter = std::function<bool(const coflow::CoflowId&)>;
  /// Reference oracle: rebuilds the schedule from scratch out of the
  /// stored per-daemon reports + registrations, exactly as the
  /// pre-incremental coordinator did every Δ. Used by full-broadcast
  /// mode and by the equivalence tests.
  void legacySchedule(const TombstoneFilter& tombstoned,
                      std::vector<net::ScheduleEntry>& out) const;

 private:
  struct Entry {
    double bytes = 0;
    int queue = 0;
    bool on = true;
    /// What the delta chain last announced for this coflow; a dirty
    /// coflow whose net (queue, on) is unchanged is dropped from the
    /// delta again.
    bool sent = false;
    int sent_queue = 0;
    bool sent_on = true;
  };

  Entry& ensureEntry(const coflow::CoflowId& id);
  void moveToQueue(const coflow::CoflowId& id, Entry& entry, int queue);
  /// Recomputes the §6.2 ON set (first max_on_ coflows in schedule
  /// order); every toggled coflow joins the dirty set.
  void refreshOnSet();

  std::vector<util::Bytes> thresholds_;
  std::size_t max_on_ = 0;

  /// daemon_id -> coflow -> last reported absolute local bytes.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<coflow::CoflowId, double>>
      reported_;
  std::unordered_set<coflow::CoflowId> registered_;
  std::unordered_map<coflow::CoflowId, Entry> global_;
  /// The schedule itself: (queue, id) kept permanently sorted.
  OrderSet order_;
  /// Coflows whose entry changed since the last buildDelta().
  std::unordered_set<coflow::CoflowId> dirty_;
  /// Announced coflows unregistered since the last buildDelta().
  std::vector<coflow::CoflowId> removed_;
  /// Currently-ON coflows (maintained only when max_on_ > 0).
  std::unordered_set<coflow::CoflowId> on_ids_;
};

}  // namespace aalo::runtime
