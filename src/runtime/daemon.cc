#include "runtime/daemon.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <system_error>

#include "util/log.h"

namespace aalo::runtime {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() { stop(); }

bool Daemon::tryConnect() {
  net::Fd fd;
  try {
    fd = net::connectTcp(config_.coordinator_port);
  } catch (const std::system_error&) {
    return false;  // Coordinator not (yet) back; retry later.
  }
  connection_ = std::make_unique<net::Connection>(
      loop_, std::move(fd), [this](net::Buffer& payload) { onMessage(payload); },
      [this] {
        connected_.store(false, std::memory_order_relaxed);
        AALO_LOG_WARN << "daemon " << config_.daemon_id
                      << ": lost coordinator; data path falls back to fair sharing";
        scheduleReconnect();
      });
  connected_.store(true, std::memory_order_relaxed);
  sendHello();
  return true;
}

void Daemon::scheduleReconnect() {
  if (config_.reconnect_interval <= 0 ||
      !running_.load(std::memory_order_relaxed)) {
    return;
  }
  loop_.callAfter(toNanos(config_.reconnect_interval), [this] {
    if (!running_.load(std::memory_order_relaxed)) return;
    if (connected_.load(std::memory_order_relaxed)) return;
    // Drop the dead connection on the loop thread, then retry. Local
    // sizes are intentionally kept: the coordinator re-learns everything
    // from the next size report (§3.2).
    connection_.reset();
    if (!tryConnect()) scheduleReconnect();
  });
}

void Daemon::start() {
  if (running_.exchange(true)) return;
  if (!tryConnect()) {
    throw std::system_error(ECONNREFUSED, std::generic_category(),
                            "Daemon: cannot reach coordinator");
  }
  scheduleTick();
  thread_ = std::thread([this] { loop_.run(); });
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  connection_.reset();
  connected_.store(false, std::memory_order_relaxed);
}

void Daemon::sendHello() {
  net::Message hello;
  hello.type = net::MessageType::kHello;
  hello.daemon_id = config_.daemon_id;
  net::Buffer out;
  net::encodeMessage(hello, out);
  connection_->sendFrame(out);
}

void Daemon::scheduleTick() {
  loop_.callAfter(toNanos(config_.sync_interval), [this] {
    sendSizeReport();
    if (running_.load(std::memory_order_relaxed)) scheduleTick();
  });
}

void Daemon::sendSizeReport() {
  if (!connection_ || connection_->closed()) return;
  net::Message report;
  report.type = net::MessageType::kSizeReport;
  report.daemon_id = config_.daemon_id;
  {
    std::lock_guard lock(mutex_);
    report.sizes.reserve(local_sent_.size());
    for (const auto& [id, bytes] : local_sent_) {
      report.sizes.push_back(net::CoflowSize{id, bytes});
    }
  }
  net::Buffer out;
  net::encodeMessage(report, out);
  connection_->sendFrame(out);
}

void Daemon::onMessage(net::Buffer& payload) {
  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    AALO_LOG_WARN << "daemon " << config_.daemon_id << ": bad frame: " << e.what();
    return;
  }
  if (message.type != net::MessageType::kScheduleUpdate) return;
  {
    std::lock_guard lock(mutex_);
    schedule_ = message.schedule;
    queue_of_.clear();
    on_.clear();
    for (const auto& e : schedule_) {
      queue_of_[e.id] = e.queue;
      on_[e.id] = e.on;
    }
  }
  last_epoch_.store(message.epoch, std::memory_order_relaxed);
}

void Daemon::reportBytes(coflow::CoflowId id, util::Bytes delta) {
  std::lock_guard lock(mutex_);
  local_sent_[id] += delta;
}

void Daemon::writerActive(coflow::CoflowId id, bool active) {
  std::lock_guard lock(mutex_);
  int& count = active_writers_[id];
  count += active ? 1 : -1;
  if (count <= 0) active_writers_.erase(id);
}

int Daemon::queueOf(coflow::CoflowId id) const {
  std::lock_guard lock(mutex_);
  const auto it = queue_of_.find(id);
  return it == queue_of_.end() ? 0 : static_cast<int>(it->second);
}

bool Daemon::isOn(coflow::CoflowId id) const {
  std::lock_guard lock(mutex_);
  const auto it = on_.find(id);
  return it == on_.end() ? true : it->second;
}

util::Rate Daemon::rateFor(coflow::CoflowId id) const {
  // Fault tolerance (§3.2): without a coordinator the client library
  // falls back to plain TCP sharing — no throttling.
  if (!connected_.load(std::memory_order_relaxed)) {
    return std::numeric_limits<util::Rate>::infinity();
  }

  std::lock_guard lock(mutex_);
  if (!active_writers_.contains(id)) return 0;
  // §6.2: coflows the coordinator switched OFF must not send at all, and
  // must not absorb any queue share either.
  {
    const auto it = on_.find(id);
    if (it != on_.end() && !it->second) return 0;
  }

  // Collect this machine's active (and ON) coflows per queue.
  const int k = std::max(config_.num_queues, 1);
  std::vector<std::vector<coflow::CoflowId>> queues(static_cast<std::size_t>(k));
  for (const auto& [coflow_id, writers] : active_writers_) {
    const auto on_it = on_.find(coflow_id);
    if (on_it != on_.end() && !on_it->second) continue;
    const auto it = queue_of_.find(coflow_id);
    const int q = std::clamp(
        it == queue_of_.end() ? 0 : static_cast<int>(it->second), 0, k - 1);
    queues[static_cast<std::size_t>(q)].push_back(coflow_id);
  }

  double total_weight = 0;
  for (int q = 0; q < k; ++q) {
    if (!queues[static_cast<std::size_t>(q)].empty()) total_weight += k - q;
  }
  if (total_weight <= 0) return 0;

  // Within each queue, the FIFO head takes (nearly) the queue's whole
  // share. Unlike the simulator, the runtime cannot instantly re-assign
  // rates when the head stalls, so non-head coflows keep a 10 % trickle —
  // a local starvation-freedom guarantee on top of the queue weights.
  const coflow::CoflowIdFifoLess fifo_less;
  for (int q = 0; q < k; ++q) {
    auto& members = queues[static_cast<std::size_t>(q)];
    const auto member = std::find(members.begin(), members.end(), id);
    if (member == members.end()) continue;
    const util::Rate queue_share =
        config_.uplink_capacity * static_cast<double>(k - q) / total_weight;
    if (members.size() == 1) return queue_share;
    const auto head = *std::min_element(members.begin(), members.end(), fifo_less);
    if (head == id) return queue_share * 0.9;
    return queue_share * 0.1 / static_cast<double>(members.size() - 1);
  }
  return 0;
}

}  // namespace aalo::runtime
