#include "runtime/daemon.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <limits>
#include <system_error>

#include "runtime/metrics.h"
#include "util/log.h"

namespace aalo::runtime {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

std::uint64_t backoffSeed(const DaemonConfig& config) {
  if (config.reconnect_seed != 0) return config.reconnect_seed;
  // Distinct daemons must not retry in lockstep after a shared outage.
  return config.daemon_id * 0x9E3779B97F4A7C15ull + 1;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      thresholds_(config_.dclas.thresholds()),
      backoff_rng_(backoffSeed(config_)) {
  next_backoff_.store(config_.reconnect_interval, std::memory_order_relaxed);
  endpoints_ = config_.coordinator_ports;
  if (endpoints_.empty()) endpoints_.push_back(config_.coordinator_port);
  registerMetrics();
}

void Daemon::registerMetrics() {
  registerRobustnessStats(metrics_, stats_, "aalo_daemon");
  net::registerConnMetrics(metrics_, conn_metrics_, "aalo_daemon");
  scratch_reuse_ = &metrics_.counter("aalo_daemon_encode_scratch_reuse_total",
                                     "Outgoing frames encoded into the reused buffer");
  metrics_.attachGauge("aalo_daemon_epoch", "Last schedule epoch applied",
                       [this] { return static_cast<double>(lastEpoch()); });
  metrics_.attachGauge("aalo_daemon_connected",
                       "1 when the socket is up and the schedule fresh",
                       [this] { return connected() ? 1.0 : 0.0; });
  metrics_.attachGauge("aalo_daemon_local_coflows",
                       "Coflows with locally accounted bytes", [this] {
                         std::lock_guard lock(mutex_);
                         return static_cast<double>(local_sent_.size());
                       });
}

Daemon::~Daemon() { stop(); }

void Daemon::growBackoff() {
  // Decorrelated jitter: independent of other daemons' retry phases and
  // spreads exponentially up to the cap.
  const util::Seconds base = config_.reconnect_interval;
  const util::Seconds cap = std::max(base, config_.reconnect_max_backoff);
  next_backoff_.store(
      std::min(cap, backoff_rng_.uniform(
                        base, next_backoff_.load(std::memory_order_relaxed) * 3)),
      std::memory_order_relaxed);
}

void Daemon::rotateEndpoint() {
  if (endpoints_.size() < 2) return;
  endpoint_index_.fetch_add(1, std::memory_order_relaxed);
  stats_.endpoint_failovers.fetch_add(1, std::memory_order_relaxed);
}

bool Daemon::tryConnect() {
  stats_.reconnect_attempts.fetch_add(1, std::memory_order_relaxed);
  const std::uint16_t port =
      endpoints_[endpoint_index_.load(std::memory_order_relaxed) %
                 endpoints_.size()];
  net::Fd fd;
  try {
    fd = net::connectTcp(port);
  } catch (const std::system_error&) {
    rotateEndpoint();  // Try the next coordinator on the next attempt.
    return false;      // Coordinator not (yet) back; retry later.
  }
  connection_ = std::make_unique<net::Connection>(
      loop_, std::move(fd), [this](net::Buffer& payload) { onMessage(payload); },
      [this] {
        socket_connected_.store(false, std::memory_order_relaxed);
        if (!synced_since_connect_) {
          // The dial "succeeded" but the connection died before a single
          // schedule applied — a crash-looping (accept-then-close) or dead
          // coordinator. Keep backing off (the backoff only resets after a
          // successful resync) and try the next endpoint.
          growBackoff();
          rotateEndpoint();
        }
        AALO_LOG_WARN << "daemon " << config_.daemon_id
                      << ": lost coordinator; data path falls back to fair sharing";
        scheduleReconnect();
      },
      &conn_metrics_);
  if (config_.send_queue_max > 0) {
    connection_->setSendQueueLimit(4 * config_.send_queue_max);
  }
  // Fresh connection: expect epochs from scratch (the coordinator may have
  // restarted and reset its round counter) and give the schedule a full
  // staleness budget before degrading.
  conn_epoch_ = 0;
  seen_in_schedule_.clear();
  missed_schedules_.clear();
  // The coordinator may be a restarted instance that knows nothing: the
  // first report must re-teach it every absolute size (§3.2).
  force_full_report_ = true;
  reports_since_resync_ = 0;
  synced_since_connect_ = false;
  last_broadcast_ = net::EventLoop::Clock::now();
  socket_connected_.store(true, std::memory_order_relaxed);
  schedule_fresh_.store(true, std::memory_order_relaxed);
  stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  sendHello();
  return true;
}

void Daemon::scheduleReconnect() {
  if (config_.reconnect_interval <= 0 ||
      !running_.load(std::memory_order_relaxed)) {
    return;
  }
  loop_.callAfter(toNanos(next_backoff_.load(std::memory_order_relaxed)), [this] {
    if (!running_.load(std::memory_order_relaxed)) return;
    if (socket_connected_.load(std::memory_order_relaxed)) return;
    // Drop the dead connection on the loop thread, then retry. Local
    // sizes are intentionally kept: the coordinator re-learns everything
    // from the next size report (§3.2).
    connection_.reset();
    if (!tryConnect()) {
      growBackoff();
      scheduleReconnect();
    }
  });
}

void Daemon::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  bool dialed = false;
  for (std::size_t i = 0; i < endpoints_.size() && !dialed; ++i) {
    dialed = tryConnect();  // Failure rotates to the next endpoint.
  }
  if (!dialed) {
    running_.store(false, std::memory_order_relaxed);
    throw std::system_error(ECONNREFUSED, std::generic_category(),
                            "Daemon: cannot reach coordinator");
  }
  scheduleTick();
  thread_ = std::thread([this] { loop_.run(); });
}

void Daemon::stop() {
  // Serialize racing stop() calls (and stop() vs destructor): every caller
  // returns only after the loop thread is joined and the socket is gone.
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  connection_.reset();
  socket_connected_.store(false, std::memory_order_relaxed);
  schedule_fresh_.store(false, std::memory_order_relaxed);
}

void Daemon::sendHello() {
  net::Message hello;
  hello.type = net::MessageType::kHello;
  hello.daemon_id = config_.daemon_id;
  net::Buffer out;
  net::encodeMessage(hello, out);
  connection_->sendFrame(out);
}

void Daemon::scheduleTick() {
  loop_.callAfter(toNanos(config_.sync_interval), [this] {
    sendSizeReport();
    checkScheduleFreshness();
    if (running_.load(std::memory_order_relaxed)) scheduleTick();
  });
}

void Daemon::checkScheduleFreshness() {
  if (config_.stale_after_intervals <= 0) return;
  if (!socket_connected_.load(std::memory_order_relaxed)) return;
  if (!schedule_fresh_.load(std::memory_order_relaxed)) return;
  const auto budget =
      toNanos(config_.sync_interval * config_.stale_after_intervals);
  if (net::EventLoop::Clock::now() - last_broadcast_ > budget) {
    // §3.2: enforcing a dead schedule is worse than none. Degrade to
    // local-only mode (every coflow back to the highest-priority queue,
    // writers unthrottled) until broadcasts resume.
    schedule_fresh_.store(false, std::memory_order_relaxed);
    stats_.stale_transitions.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "daemon " << config_.daemon_id
                  << ": no schedule for " << config_.stale_after_intervals
                  << " intervals; entering local-only mode";
    if (endpoints_.size() > 1 && connection_ && !connection_->closed()) {
      // The socket is up but no (acceptable) broadcast arrives — a hung or
      // deposed coordinator. With standbys configured, abandon it and dial
      // the next endpoint instead of idling in local-only mode. We are in
      // the tick callback, not the connection's own chain, but events for
      // its fd may already be queued in this dispatch batch: defer the
      // destruction exactly like the coordinator's dropPeer does.
      rotateEndpoint();
      auto doomed = std::move(connection_);
      loop_.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
      socket_connected_.store(false, std::memory_order_relaxed);
      scheduleReconnect();
    }
  }
}

void Daemon::sendSizeReport() {
  if (!connection_ || connection_->closed()) return;
  if (config_.send_queue_max > 0 &&
      connection_->pendingBytes() > config_.send_queue_max) {
    // The coordinator is not draining us. Don't pile frames onto the queue:
    // skip this report entirely. report_dirty_ is left intact and sizes
    // are absolute, so the next report that goes out carries everything —
    // shedding coalesces, it never loses.
    stats_.reports_shed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  net::Message report;
  report.type = net::MessageType::kSizeReport;
  report.daemon_id = config_.daemon_id;
  // Echo the last applied epoch so the coordinator can spot a one-way
  // link: our reports arriving while this echo never advances means its
  // broadcasts are not reaching us.
  report.epoch = conn_epoch_;
  bool full = config_.full_reports || force_full_report_;
  if (!full && config_.resync_intervals > 0 &&
      reports_since_resync_ + 1 >= config_.resync_intervals) {
    full = true;
  }
  {
    std::lock_guard lock(mutex_);
    if (full) {
      report.sizes.reserve(local_sent_.size());
      for (const auto& [id, bytes] : local_sent_) {
        report.sizes.push_back(net::CoflowSize{id, bytes});
      }
    } else {
      report.sizes.reserve(report_dirty_.size());
      for (const auto& id : report_dirty_) {
        // A dirty coflow may have been pruned since (completed): its
        // absence from the report is exactly what the coordinator's
        // tombstone expects.
        const auto it = local_sent_.find(id);
        if (it != local_sent_.end()) {
          report.sizes.push_back(net::CoflowSize{id, it->second});
        }
      }
    }
    report_dirty_.clear();
  }
  // Nothing changed locally: suppress the frame entirely and let the
  // keepalive cadence carry liveness + the epoch echo. The cadence must
  // stay well under the coordinator's liveness_timeout_intervals (3 vs
  // 10 by default) so an idle daemon is never mistaken for a dead one.
  if (!full && report.sizes.empty() && config_.report_keepalive_intervals > 0 &&
      ++ticks_since_report_ < config_.report_keepalive_intervals) {
    stats_.reports_suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ticks_since_report_ = 0;
  if (full) {
    force_full_report_ = false;
    reports_since_resync_ = 0;
    stats_.resync_reports.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++reports_since_resync_;
    stats_.delta_reports.fetch_add(1, std::memory_order_relaxed);
  }
  encode_scratch_.clear();
  net::encodeMessage(report, encode_scratch_);
  scratch_reuse_->fetch_add(1);
  connection_->sendFrame(encode_scratch_);
}

void Daemon::sendSnapshotRequest() {
  if (!connection_ || connection_->closed()) return;
  net::Message request;
  request.type = net::MessageType::kSnapshotRequest;
  request.daemon_id = config_.daemon_id;
  request.epoch = conn_epoch_;
  encode_scratch_.clear();
  net::encodeMessage(request, encode_scratch_);
  scratch_reuse_->fetch_add(1);
  connection_->sendFrame(encode_scratch_);
}

void Daemon::onMessage(net::Buffer& payload) {
  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "daemon " << config_.daemon_id << ": bad frame: " << e.what();
    return;
  }
  if (message.type != net::MessageType::kScheduleUpdate &&
      message.type != net::MessageType::kScheduleDelta) {
    return;
  }
  // Fencing: every broadcast carries its coordinator incarnation's fence.
  // One below the high-water mark is from a deposed primary — ignore it
  // outright, *without* refreshing last_broadcast_, so a daemon stuck on a
  // stale primary still goes stale and rotates to the promoted standby.
  const std::uint64_t fence_seen = max_fence_.load(std::memory_order_relaxed);
  if (message.fence < fence_seen) {
    stats_.stale_fence_ignored.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (message.fence > fence_seen) {
    // A new coordinator incarnation (promoted standby or fenced restart):
    // its epochs number an independent broadcast stream, and it may not
    // have heard our absolute sizes yet — re-teach it (§3.2).
    max_fence_.store(message.fence, std::memory_order_relaxed);
    conn_epoch_ = 0;
    force_full_report_ = true;
  }
  if (message.type == net::MessageType::kScheduleUpdate) {
    applyScheduleUpdate(message);
  } else {
    applyScheduleDelta(message);
  }
}

void Daemon::applyScheduleUpdate(const net::Message& message) {
  // Any broadcast — even a stale one — proves the coordinator->daemon
  // path is alive.
  last_broadcast_ = net::EventLoop::Clock::now();
  if (message.epoch <= conn_epoch_) {
    // Duplicated or reordered broadcast: an old epoch must never
    // overwrite newer state.
    stats_.old_epoch_ignored.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_of_.clear();
    on_.clear();
    for (const auto& e : message.schedule) {
      queue_of_[e.id] = e.queue;
      on_[e.id] = e.on;
    }
  }
  finishApply(message.epoch);
}

void Daemon::applyScheduleDelta(const net::Message& message) {
  if (message.epoch <= conn_epoch_) {
    // Duplicated or reordered delta: old epochs never overwrite newer
    // state — but the frame still proves the receive path is alive.
    last_broadcast_ = net::EventLoop::Clock::now();
    stats_.old_epoch_ignored.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (message.base_epoch != conn_epoch_) {
    // Epoch gap: a broadcast between base_epoch and our applied state was
    // lost, so this delta does not compose with what we have. Ask for a
    // snapshot and force a full report (the coordinator may have
    // restarted). last_broadcast_ is deliberately NOT advanced: a daemon
    // fed only un-appliable deltas must still degrade to local-only mode.
    stats_.schedule_gaps.fetch_add(1, std::memory_order_relaxed);
    force_full_report_ = true;
    sendSnapshotRequest();
    return;
  }
  last_broadcast_ = net::EventLoop::Clock::now();
  {
    std::lock_guard lock(mutex_);
    for (const auto& e : message.schedule) {
      queue_of_[e.id] = e.queue;
      on_[e.id] = e.on;
    }
    for (const auto& id : message.removals) {
      queue_of_.erase(id);
      on_.erase(id);
    }
  }
  stats_.schedule_deltas_applied.fetch_add(1, std::memory_order_relaxed);
  finishApply(message.epoch);
}

void Daemon::finishApply(std::uint64_t epoch) {
  conn_epoch_ = epoch;
  if (!synced_since_connect_) {
    // First schedule applied on this connection: the coordinator is
    // genuinely serving us, so the reconnect backoff may reset. Resetting
    // any earlier (e.g. on a successful dial) lets an accept-then-crash
    // coordinator keep every daemon redialing at the base rate forever.
    synced_since_connect_ = true;
    next_backoff_.store(config_.reconnect_interval, std::memory_order_relaxed);
  }
  pruneCompleted();
  {
    std::lock_guard lock(mutex_);
    for (const auto& kv : queue_of_) seen_in_schedule_.insert(kv.first);
  }
  last_epoch_.store(epoch, std::memory_order_relaxed);
  if (!schedule_fresh_.exchange(true, std::memory_order_relaxed)) {
    stats_.stale_recoveries.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_INFO << "daemon " << config_.daemon_id
                  << ": schedule fresh again; leaving local-only mode";
  }
}

void Daemon::pruneCompleted() {
  std::lock_guard lock(mutex_);
  // A coflow this connection has seen scheduled that has now vanished was
  // unregistered at the coordinator: drop its local accounting so reports
  // shrink and the coordinator's tombstone for it can eventually be GC'd.
  // Coflows with a live local writer are kept — they are not done here,
  // and their reports keep the tombstone alive, which is correct.
  for (auto it = seen_in_schedule_.begin(); it != seen_in_schedule_.end();) {
    if (queue_of_.contains(*it)) {
      ++it;
      continue;
    }
    if (active_writers_.contains(*it)) {
      ++it;
      continue;
    }
    local_sent_.erase(*it);
    missed_schedules_.erase(*it);
    stats_.completed_coflows_pruned.fetch_add(1, std::memory_order_relaxed);
    it = seen_in_schedule_.erase(it);
  }
  // A locally accounted coflow we have *never* seen scheduled: a registered
  // coflow appears in every broadcast (at zero global bytes if need be), so
  // one that stays absent for many consecutive applied schedules while we
  // keep reporting it was unregistered before its first schedule reached
  // us. The round budget keeps in-flight first reports — and a freshly
  // restarted coordinator that has not heard our absolute sizes yet — from
  // triggering a premature prune.
  for (auto it = local_sent_.begin(); it != local_sent_.end();) {
    const coflow::CoflowId id = it->first;
    if (queue_of_.contains(id) || seen_in_schedule_.contains(id) ||
        active_writers_.contains(id)) {
      missed_schedules_.erase(id);
      ++it;
      continue;
    }
    if (++missed_schedules_[id] >= kMissedSchedulesBeforePrune) {
      missed_schedules_.erase(id);
      it = local_sent_.erase(it);
      stats_.completed_coflows_pruned.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

void Daemon::reportBytes(coflow::CoflowId id, util::Bytes delta) {
  std::lock_guard lock(mutex_);
  local_sent_[id] += delta;
  report_dirty_.insert(id);
}

void Daemon::writerActive(coflow::CoflowId id, bool active) {
  std::lock_guard lock(mutex_);
  int& count = active_writers_[id];
  count += active ? 1 : -1;
  if (count <= 0) active_writers_.erase(id);
}

int Daemon::localQueueLocked(coflow::CoflowId id) const {
  const auto it = local_sent_.find(id);
  const util::Bytes bytes = it == local_sent_.end() ? 0 : it->second;
  return sched::queueForSize(thresholds_, bytes);
}

int Daemon::queueOf(coflow::CoflowId id) const {
  // Both available signals lower-bound the coflow's true attained service,
  // which only grows: the last schedule entry (global bytes at broadcast
  // time) and local D-CLAS over locally attained bytes (§3.2). Taking the
  // max means a coflow is never promoted above a queue it already left —
  // not by an outage, not by a stale schedule surviving a reconnect, and
  // not by a freshly restarted coordinator that has not heard the absolute
  // sizes yet. A genuinely new coflow has neither signal: queue 0.
  std::lock_guard lock(mutex_);
  const int local = localQueueLocked(id);
  const auto it = queue_of_.find(id);
  if (it == queue_of_.end()) return local;
  return std::max(local, static_cast<int>(it->second));
}

bool Daemon::isOn(coflow::CoflowId id) const {
  // Local-only mode: a dead schedule's OFF signals must not gate anyone.
  if (!connected()) return true;
  std::lock_guard lock(mutex_);
  const auto it = on_.find(id);
  return it == on_.end() ? true : it->second;
}

util::Rate Daemon::rateFor(coflow::CoflowId id) const {
  // Fault tolerance (§3.2): without a live coordinator — socket down *or*
  // schedule stale — the client library falls back to plain TCP sharing.
  if (!connected()) {
    return std::numeric_limits<util::Rate>::infinity();
  }

  std::lock_guard lock(mutex_);
  if (!active_writers_.contains(id)) return 0;
  // §6.2: coflows the coordinator switched OFF must not send at all, and
  // must not absorb any queue share either.
  {
    const auto it = on_.find(id);
    if (it != on_.end() && !it->second) return 0;
  }

  // Collect this machine's active (and ON) coflows per queue.
  const int k = std::max(config_.num_queues, 1);
  std::vector<std::vector<coflow::CoflowId>> queues(static_cast<std::size_t>(k));
  for (const auto& [coflow_id, writers] : active_writers_) {
    const auto on_it = on_.find(coflow_id);
    if (on_it != on_.end() && !on_it->second) continue;
    const auto it = queue_of_.find(coflow_id);
    const int raw = it == queue_of_.end() ? localQueueLocked(coflow_id)
                                          : static_cast<int>(it->second);
    const int q = std::clamp(raw, 0, k - 1);
    queues[static_cast<std::size_t>(q)].push_back(coflow_id);
  }

  double total_weight = 0;
  for (int q = 0; q < k; ++q) {
    if (!queues[static_cast<std::size_t>(q)].empty()) total_weight += k - q;
  }
  if (total_weight <= 0) return 0;

  // Within each queue, the FIFO head takes (nearly) the queue's whole
  // share. Unlike the simulator, the runtime cannot instantly re-assign
  // rates when the head stalls, so non-head coflows keep a 10 % trickle —
  // a local starvation-freedom guarantee on top of the queue weights.
  const coflow::CoflowIdFifoLess fifo_less;
  for (int q = 0; q < k; ++q) {
    auto& members = queues[static_cast<std::size_t>(q)];
    const auto member = std::find(members.begin(), members.end(), id);
    if (member == members.end()) continue;
    const util::Rate queue_share =
        config_.uplink_capacity * static_cast<double>(k - q) / total_weight;
    if (members.size() == 1) return queue_share;
    const auto head = *std::min_element(members.begin(), members.end(), fifo_less);
    if (head == id) return queue_share * 0.9;
    return queue_share * 0.1 / static_cast<double>(members.size() - 1);
  }
  return 0;
}

}  // namespace aalo::runtime
