// Registry bridging for the control-plane stats structs.
//
// registerRobustnessStats attaches every RobustnessStats counter to a
// registry under `<prefix>_<field>_total` (e.g. the coordinator publishes
// `aalo_coordinator_daemons_evicted_total`). The struct stays the single
// source of truth — the registry holds read callbacks, so no counter
// loses coverage and no call site changes.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "runtime/robustness.h"

namespace aalo::runtime {

void registerRobustnessStats(obs::Registry& registry, const RobustnessStats& stats,
                             const std::string& prefix);

}  // namespace aalo::runtime
