// Client library (§6.1): coflow registration RPCs and the throttled
// output stream that applications wrap their sockets with.
//
//   AaloClient client(coordinator_port);
//   auto sid = client.registerCoflow();           // val sId = register()
//   ThrottledWriter out(sock_fd, sid, daemon);    // new AaloOutputStream(..)
//   out.write(buf, n);                            // throttled + accounted
//   client.unregisterCoflow(sid);                 // unregister(sId)
//
// The writer is non-blocking in the coflow sense: there is no barrier —
// senders start sending immediately, Aalo observes sizes as bytes flow
// and throttles when required. If the daemon loses its coordinator, the
// writer degrades to unthrottled TCP (fault tolerance, §3.2).
#pragma once

#include <cstdint>
#include <span>

#include "coflow/ids.h"
#include "net/socket.h"
#include "runtime/daemon.h"

namespace aalo::runtime {

/// Synchronous control-plane client. One TCP connection per client; safe
/// for use from a single thread.
class AaloClient {
 public:
  explicit AaloClient(std::uint16_t coordinator_port);

  /// register(): obtains a fresh CoflowId; with parents, an id ordered
  /// after them inside the same DAG (register({bId})).
  coflow::CoflowId registerCoflow(std::span<const coflow::CoflowId> parents = {});

  /// unregister(sId): the coflow is complete.
  void unregisterCoflow(coflow::CoflowId id);

 private:
  net::Fd fd_;
  std::uint64_t next_request_ = 1;
};

/// AaloOutputStream equivalent: throttles writes on `fd` to the rate the
/// local daemon assigns this coflow and reports every byte it sends.
class ThrottledWriter {
 public:
  ThrottledWriter(int fd, coflow::CoflowId id, Daemon& daemon);
  ~ThrottledWriter();
  ThrottledWriter(const ThrottledWriter&) = delete;
  ThrottledWriter& operator=(const ThrottledWriter&) = delete;

  /// Writes all of `data`, sleeping as needed to honor the daemon's rate.
  /// Throws std::system_error on socket errors.
  void writeAll(std::span<const std::uint8_t> data);
  void writeAll(const void* data, std::size_t len);

  util::Bytes bytesWritten() const { return bytes_written_; }

 private:
  int fd_;
  coflow::CoflowId id_;
  Daemon& daemon_;
  util::Bytes bytes_written_ = 0;
};

}  // namespace aalo::runtime
