// Client library (§6.1): coflow registration RPCs and the throttled
// output stream that applications wrap their sockets with.
//
//   AaloClient client(coordinator_port);
//   auto sid = client.registerCoflow();           // val sId = register()
//   ThrottledWriter out(sock_fd, sid, daemon);    // new AaloOutputStream(..)
//   out.write(buf, n);                            // throttled + accounted
//   client.unregisterCoflow(sid);                 // unregister(sId)
//
// The writer is non-blocking in the coflow sense: there is no barrier —
// senders start sending immediately, Aalo observes sizes as bytes flow
// and throttles when required. If the daemon loses its coordinator (or
// its schedule goes stale), the writer degrades to unthrottled TCP
// (fault tolerance, §3.2).
//
// RPCs are retried with exponential backoff over a re-established
// connection, so a coordinator restart is invisible to applications as
// long as it returns within the retry budget.
#pragma once

#include <cstdint>
#include <span>

#include "coflow/ids.h"
#include "net/socket.h"
#include "runtime/daemon.h"
#include "runtime/robustness.h"

namespace aalo::runtime {

struct ClientConfig {
  std::uint16_t coordinator_port = 0;
  /// Total attempts per RPC (first try + retries). Each failed attempt
  /// tears the connection down and redials before the next one.
  int max_rpc_attempts = 8;
  /// Backoff before retry i is retry_backoff * 2^i, capped below.
  util::Seconds retry_backoff = 0.05;
  util::Seconds retry_max_backoff = 0.5;
  /// Per-attempt reply timeout.
  int rpc_timeout_ms = 5000;
};

/// Synchronous control-plane client. One TCP connection per client; safe
/// for use from a single thread.
class AaloClient {
 public:
  explicit AaloClient(std::uint16_t coordinator_port);
  explicit AaloClient(ClientConfig config);

  /// register(): obtains a fresh CoflowId; with parents, an id ordered
  /// after them inside the same DAG (register({bId})).
  coflow::CoflowId registerCoflow(std::span<const coflow::CoflowId> parents = {});

  /// unregister(sId): the coflow is complete. Idempotent at the
  /// coordinator, so retries after a broken pipe are safe.
  void unregisterCoflow(coflow::CoflowId id);

  const RobustnessStats& stats() const { return stats_; }

 private:
  void ensureConnected();
  /// Runs one RPC with bounded retry; reconnects between attempts.
  net::Message call(const net::Message& request, bool expect_reply);

  ClientConfig config_;
  net::Fd fd_;
  std::uint64_t next_request_ = 1;
  RobustnessStats stats_;
};

/// AaloOutputStream equivalent: throttles writes on `fd` to the rate the
/// local daemon assigns this coflow and reports every byte it sends.
class ThrottledWriter {
 public:
  ThrottledWriter(int fd, coflow::CoflowId id, Daemon& daemon);
  ~ThrottledWriter();
  ThrottledWriter(const ThrottledWriter&) = delete;
  ThrottledWriter& operator=(const ThrottledWriter&) = delete;

  /// Writes all of `data`, sleeping as needed to honor the daemon's rate.
  /// Throws std::system_error on socket errors.
  void writeAll(std::span<const std::uint8_t> data);
  void writeAll(const void* data, std::size_t len);

  util::Bytes bytesWritten() const { return bytes_written_; }

 private:
  int fd_;
  coflow::CoflowId id_;
  Daemon& daemon_;
  util::Bytes bytes_written_ = 0;
};

}  // namespace aalo::runtime
