// Sharded coordination plane (ROADMAP open item 1: 100k-daemon scale).
//
// The single-threaded coordinator tops out where one epoll loop must
// decode every daemon's report, fold it into one ScheduleState, and fan
// the broadcast out over every connection. This module partitions that
// work across N worker threads:
//
//  * Coflows are hash-partitioned by CoflowId into N ScheduleState shards
//    (shardOf). Global sizes, queue assignment, and delta tracking for a
//    coflow live in exactly one shard.
//  * Each worker thread owns one shard plus a subset of the daemon
//    connections on its own net::EventLoop (round-robin at accept).
//    Report decode, tombstone filtering, delta build, and fan-out writes
//    all run shard-parallel with no shared mutable hot state; sizes for
//    coflows owned by another shard are batched and handed over with
//    EventLoop::post (the only cross-thread entry point), preserving
//    per-source FIFO order.
//  * The only cross-shard step is the broadcast tick: a lock-light epoch
//    barrier (std::barrier). Each worker drains its loop up to the tick,
//    builds its shard's sorted sub-delta, and arrives; the completion
//    function — running while every worker is quiescent — k-way merges
//    the per-shard (queue, FIFO-id)-sorted entries into the global wire
//    delta, applies the global §6.2 ON/OFF gate, encodes it once, absorbs
//    the shards' journal batches in shard order, and writes the epoch
//    mark. After release each worker fans the shared encoded buffer out
//    to its own peers zero-copy.
//
// Queue thresholds are applied per shard from *global* coflow sizes (all
// of a coflow's reports land in its owning shard), so the merged schedule
// is bit-identical to the single-threaded coordinator, which remains the
// `--shards 1` oracle. ShardSet holds the state + merge machinery on its
// own so the equivalence fuzz can drive it deterministically without
// threads or sockets.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coflow/id_generator.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/metrics.h"
#include "obs/metrics.h"
#include "runtime/checkpoint.h"
#include "runtime/coordinator.h"
#include "runtime/robustness.h"
#include "runtime/schedule_state.h"

namespace aalo::runtime {

/// Which of `shards` owns `id`. Uses the deterministic CoflowId hash, so
/// the partition is stable across runs, restarts, and processes.
inline std::size_t shardOf(const coflow::CoflowId& id, std::size_t shards) {
  return std::hash<coflow::CoflowId>{}(id) % shards;
}

/// N hash-partitioned ScheduleStates plus the cross-shard merge that
/// reassembles the global wire schedule. Not thread-safe as a whole; the
/// intended discipline is: each worker mutates only its own shard(s)
/// (including buildShardDelta), and mergeDelta()/snapshotEntries() run
/// only while every shard is quiescent (the epoch barrier provides both
/// the mutual exclusion and the memory ordering). Single-threaded callers
/// (equivalence fuzz, checkpoint restore) may use everything directly.
class ShardSet {
 public:
  /// Sub-states are always built with max_on = 0: the §6.2 ON/OFF gate is
  /// a *global* top-k and is applied at merge time from `max_on`.
  ShardSet(std::size_t shards, std::vector<util::Bytes> thresholds,
           std::size_t max_on);

  std::size_t shardCount() const { return shards_.size(); }
  std::size_t shardFor(const coflow::CoflowId& id) const {
    return shardOf(id, shards_.size());
  }
  ScheduleState& shard(std::size_t s) { return shards_[s].state; }
  const ScheduleState& shard(std::size_t s) const { return shards_[s].state; }

  // Routing conveniences for single-threaded callers.
  void registerCoflow(const coflow::CoflowId& id) {
    shard(shardFor(id)).registerCoflow(id);
  }
  void unregisterCoflow(const coflow::CoflowId& id) {
    shard(shardFor(id)).unregisterCoflow(id);
  }
  void applySize(std::uint64_t daemon_id, const coflow::CoflowId& id,
                 double bytes) {
    shard(shardFor(id)).applySize(daemon_id, id, bytes);
  }
  void dropDaemon(std::uint64_t daemon_id) {
    for (auto& s : shards_) s.state.dropDaemon(daemon_id);
  }

  std::size_t registeredCount() const;
  std::size_t scheduledCount() const;
  std::unordered_map<coflow::CoflowId, double> globalSizes() const;

  /// Stage shard `s`'s sorted sub-delta (safe to call concurrently for
  /// distinct `s` — each writes only its own scratch).
  void buildShardDelta(std::size_t s);
  /// K-way merges the staged sub-deltas into the global wire delta and
  /// applies the global ON/OFF gate. Requires all shards quiescent.
  /// Returns false when the merged delta is empty (heartbeat round).
  bool mergeDelta(std::vector<net::ScheduleEntry>& entries,
                  std::vector<coflow::CoflowId>& removals);
  /// Convenience: buildShardDelta on every shard, then mergeDelta.
  bool buildDelta(std::vector<net::ScheduleEntry>& entries,
                  std::vector<coflow::CoflowId>& removals);

  /// Merged full schedule with the positional ON gate — bit-identical to
  /// what a single ScheduleState::snapshotEntries over the same inputs
  /// produces. Requires all shards quiescent.
  void snapshotEntries(std::vector<net::ScheduleEntry>& out) const;

  /// All shard states, for the merged checkpoint snapshot.
  std::vector<const ScheduleState*> states() const;

 private:
  struct PerShard {
    ScheduleState state;
    std::vector<net::ScheduleEntry> delta_entries;
    std::vector<coflow::CoflowId> delta_removals;
    explicit PerShard(ScheduleState s) : state(std::move(s)) {}
  };

  void applyOnGate(std::vector<net::ScheduleEntry>& entries);

  std::size_t max_on_ = 0;
  std::vector<PerShard> shards_;
  /// ON membership the merged delta chain last announced (max_on_ > 0).
  std::unordered_set<coflow::CoflowId> prev_on_;
};

/// Multi-threaded coordinator: CoordinatorConfig::shards worker threads,
/// each owning one ShardSet shard + its connection subset. Public surface
/// mirrors Coordinator; runtime::Coordinator delegates here when
/// config.shards > 1, so callers never name this type directly.
class ShardedCoordinator {
 public:
  explicit ShardedCoordinator(CoordinatorConfig config);
  ~ShardedCoordinator();
  ShardedCoordinator(const ShardedCoordinator&) = delete;
  ShardedCoordinator& operator=(const ShardedCoordinator&) = delete;

  void start();
  void stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  std::uint64_t fence() const { return fence_.load(std::memory_order_relaxed); }
  bool isPrimary() const {
    return !standby_active_.load(std::memory_order_relaxed);
  }
  std::size_t daemonCount() const {
    return daemon_count_.load(std::memory_order_relaxed);
  }
  std::size_t registeredCoflows() const {
    return registered_count_.load(std::memory_order_relaxed);
  }
  std::size_t tombstoneCount() const {
    return tombstone_count_.load(std::memory_order_relaxed);
  }

  const RobustnessStats& stats() const { return stats_; }
  const obs::Registry& metrics() const { return metrics_; }

  std::unordered_map<coflow::CoflowId, double> globalSizes();
  std::vector<net::ScheduleEntry> scheduleSnapshot();

 private:
  using TimePoint = net::EventLoop::Clock::time_point;

  struct Peer {
    std::unique_ptr<net::Connection> connection;
    std::uint64_t daemon_id = 0;
    bool is_daemon = false;
    bool is_follower = false;
    TimePoint last_report{};
    std::uint64_t echoed_epoch = 0;
    TimePoint last_echo_advance{};
    bool needs_snapshot = true;
    int frames_since_snapshot = 0;
  };

  /// One worker: an event loop + thread owning one shard's connections,
  /// tombstones, and journal staging. Worker 0 is the leader: it also
  /// owns the listener, the tick timer, the checkpoint, and (in standby
  /// mode) the upstream mirror.
  struct Worker {
    net::EventLoop loop;
    std::thread thread;
    std::unordered_map<std::uint64_t, Peer> peers;
    std::uint64_t next_peer_key = 1;
    /// Unregister tombstones for coflows this worker's shard owns.
    std::unordered_map<coflow::CoflowId, TimePoint> tombstones;
    /// Journal records staged at apply time, absorbed at the barrier.
    JournalBatch journal;
    /// Per-target batches for routing report sizes to owning shards.
    std::vector<std::vector<net::CoflowSize>> route_scratch;
    net::Message report_journal_scratch;
    std::atomic<std::size_t> daemon_peers{0};
    std::atomic<std::size_t> peer_count{0};
    /// Set by the worker before arriving at the barrier: one of my peers
    /// will want a full snapshot this round, so the completion must
    /// encode one.
    bool wants_snapshot_round = false;
    net::ConnMetrics conn_metrics;
    obs::Counter* reports_applied = nullptr;
  };

  struct BarrierCompletion {
    ShardedCoordinator* self;
    void operator()() noexcept { self->onBarrierComplete(); }
  };

  Worker& leader() { return *workers_[0]; }

  void onAcceptable();
  void adoptConnection(std::size_t shard, net::Fd fd);
  void onMessage(std::size_t shard, std::uint64_t peer_key,
                 net::Buffer& payload);
  void handleSizeReport(std::size_t shard, Peer& peer,
                        const net::Message& message, TimePoint now);
  /// Tombstone-filter + apply + journal-stage `sizes` (all owned by
  /// `shard`) on that shard's own thread.
  void applyRoutedSizes(std::size_t shard, std::uint64_t daemon_id,
                        std::uint64_t epoch,
                        std::vector<net::CoflowSize> sizes);
  void handleRegister(std::size_t shard, Peer& peer,
                      const net::Message& message);
  /// Registers `id` on its owning shard unless a concurrent unregister
  /// already tombstoned it (the register/unregister pair may arrive on
  /// different workers; the tombstone check makes them commute).
  void applyRegister(std::size_t shard, const coflow::CoflowId& id,
                     std::int64_t next_external);
  void applyUnregister(std::size_t shard, const coflow::CoflowId& id,
                       TimePoint now);
  void dropPeer(std::size_t shard, std::uint64_t peer_key);
  /// Removes the daemon's contributions from shard `shard` and stages the
  /// journal record there (each shard journals its own drop so replay
  /// order matches its own apply order).
  void applyDropDaemon(std::size_t shard, std::uint64_t daemon_id);
  void evictStalePeers(std::size_t shard, TimePoint now);
  void collectTombstones(std::size_t shard, TimePoint now);

  void scheduleTick();
  /// Per-worker barrier participation: evict/GC, stage the sub-delta,
  /// arrive, then fan out the merged buffers to this worker's peers.
  void tickTask(std::size_t shard);
  /// Barrier completion: runs while all workers are parked. Merges,
  /// gates, encodes, journals the epoch mark, refreshes gauges.
  void onBarrierComplete();
  void fanOut(std::size_t shard);

  void registerMetrics();
  void scheduleMetricsDump();
  void dumpMetrics();

  void restoreFromCheckpoint();
  void writeCheckpointSnapshot(TimePoint now);

  // --- warm standby (leader-loop-only until promote) ----------------------
  void scheduleFollowerTick();
  void connectUpstream();
  void onUpstreamMessage(net::Buffer& payload);
  void promote();

  CoordinatorConfig config_;
  std::size_t num_shards_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::mutex lifecycle_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_accept_shard_ = 0;

  /// The partitioned schedule state. Worker s touches only shard s
  /// outside the barrier; the barrier completion touches all of it.
  ShardSet state_;

  /// Id minting is the one cross-worker mutation outside the barrier:
  /// register RPCs are rare (once per coflow), so a mutex is fine.
  std::mutex id_mutex_;
  coflow::CoflowIdGenerator id_generator_;

  std::barrier<BarrierCompletion> barrier_;

  // Barrier-completion-only state (quiescence-protected, no locks).
  std::vector<net::ScheduleEntry> entries_scratch_;
  std::vector<coflow::CoflowId> removals_scratch_;
  std::shared_ptr<net::Buffer> delta_scratch_;
  std::shared_ptr<net::Buffer> snapshot_scratch_;
  bool round_has_snapshot_ = false;
  bool round_changed_ = false;
  bool force_checkpoint_snapshot_ = false;
  std::chrono::steady_clock::time_point round_start_{};

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> daemon_count_{0};
  std::atomic<std::size_t> registered_count_{0};
  std::atomic<std::size_t> tombstone_count_{0};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> fence_{1};
  std::atomic<bool> standby_active_{false};
  /// Leader-loop-only: cleared first during stop() so no new barrier
  /// round can start while workers wind down.
  bool ticking_ = false;

  std::unique_ptr<Checkpoint> checkpoint_;
  TimePoint last_checkpoint_{};

  // Warm-standby state (leader-loop-only).
  std::unique_ptr<net::Connection> upstream_;
  std::uint64_t primary_fence_ = 1;
  std::uint64_t follower_epoch_ = 0;
  std::unordered_map<coflow::CoflowId, net::ScheduleEntry> mirror_;
  std::unordered_set<coflow::CoflowId> follower_removed_;
  TimePoint last_primary_contact_{};

  RobustnessStats stats_;
  obs::Registry metrics_;
  obs::LatencyHistogram* round_duration_ = nullptr;
  obs::LatencyHistogram* report_apply_ = nullptr;
  obs::Counter* broadcast_bytes_ = nullptr;
  obs::Counter* scratch_reuse_ = nullptr;
  obs::Counter* scratch_alloc_ = nullptr;
};

}  // namespace aalo::runtime
