#include "runtime/metrics.h"

namespace aalo::runtime {

void registerRobustnessStats(obs::Registry& registry, const RobustnessStats& stats,
                             const std::string& prefix) {
  const auto attach = [&](const char* field, const char* help,
                          const obs::Counter& c) {
    registry.attachCounter(prefix + "_" + field + "_total", help, c);
  };
  // Shared.
  attach("malformed_frames", "Frames that failed to decode", stats.malformed_frames);
  // Coordinator.
  attach("daemons_evicted", "Liveness timeouts", stats.daemons_evicted);
  attach("one_way_evictions", "Dead send-path evictions", stats.one_way_evictions);
  attach("tombstones_collected", "Unregister tombstones GC'd",
         stats.tombstones_collected);
  attach("delta_broadcasts", "Non-empty kScheduleDelta frames sent",
         stats.delta_broadcasts);
  attach("broadcasts_suppressed", "Unchanged schedule heartbeats",
         stats.broadcasts_suppressed);
  attach("snapshot_broadcasts", "Full kScheduleUpdate frames sent",
         stats.snapshot_broadcasts);
  attach("snapshot_requests", "kSnapshotRequest frames honored",
         stats.snapshot_requests);
  attach("failovers", "Standby promotions to primary", stats.failovers);
  attach("follower_frames_applied", "Broadcasts mirrored while standby",
         stats.follower_frames_applied);
  attach("broadcasts_coalesced", "Broadcasts skipped for backlogged peers",
         stats.broadcasts_coalesced);
  attach("checkpoint_snapshots", "Checkpoint snapshot files written",
         stats.checkpoint_snapshots);
  attach("checkpoint_journal_records", "Checkpoint journal records appended",
         stats.checkpoint_journal_records);
  attach("checkpoint_restores", "Successful checkpoint restores",
         stats.checkpoint_restores);
  attach("checkpoint_restore_failures", "Corrupt/rejected checkpoint data",
         stats.checkpoint_restore_failures);
  // Daemon.
  attach("reconnect_attempts", "Dial attempts after a loss",
         stats.reconnect_attempts);
  attach("reconnects", "Successful (re)connections", stats.reconnects);
  attach("stale_transitions", "Entered local-only mode", stats.stale_transitions);
  attach("stale_recoveries", "Left local-only mode", stats.stale_recoveries);
  attach("old_epoch_ignored", "Dup/reordered broadcasts dropped",
         stats.old_epoch_ignored);
  attach("completed_coflows_pruned", "Local sizes GC'd after completion",
         stats.completed_coflows_pruned);
  attach("delta_reports", "Changed-coflows-only size reports", stats.delta_reports);
  attach("reports_suppressed", "Empty reports not sent", stats.reports_suppressed);
  attach("resync_reports", "Full absolute size reports", stats.resync_reports);
  attach("schedule_deltas_applied", "kScheduleDelta frames applied",
         stats.schedule_deltas_applied);
  attach("schedule_gaps", "Delta base_epoch mismatches", stats.schedule_gaps);
  attach("reports_shed", "Reports skipped under send-queue pressure",
         stats.reports_shed);
  attach("stale_fence_ignored", "Broadcasts from a deposed primary ignored",
         stats.stale_fence_ignored);
  attach("endpoint_failovers", "Rotations to the next coordinator endpoint",
         stats.endpoint_failovers);
  // Client.
  attach("rpc_retries", "RPC attempts beyond the first", stats.rpc_retries);
  attach("rpc_reconnects", "Control connections re-established",
         stats.rpc_reconnects);
}

}  // namespace aalo::runtime
