// Aalo coordinator (Figure 2): aggregates locally observed coflow sizes
// from daemons every Δ interval, assigns D-CLAS queues from the global
// sizes, and broadcasts the coordinated schedule to every daemon.
//
// The number of coordination messages is linear in the number of daemons
// and independent of the number of coflows (§3.2): one report in and one
// broadcast out per daemon per round.
//
// Fault tolerance (§3.2 hardening):
//  * Liveness eviction — a daemon whose reports stop for N·Δ is dropped
//    (connection closed, its reported sizes discarded) so a hung machine
//    cannot pin coflows in low-priority queues forever.
//  * One-way-link detection — daemons echo the last schedule epoch they
//    applied in every report; a daemon that keeps reporting but whose echo
//    never advances has a dead receive path and is evicted the same way.
//  * Tombstone GC — explicit unregisters are tombstoned so completed
//    coflows cannot resurface from stale reports; a tombstone is collected
//    once no live daemon has mentioned the coflow for M·Δ.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "coflow/id_generator.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "runtime/robustness.h"
#include "sched/dclas.h"

namespace aalo::runtime {

struct CoordinatorConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  std::uint16_t port = 0;
  /// Coordination interval Δ (the paper suggests O(10) ms).
  util::Seconds sync_interval = 0.010;
  /// Queue structure used to discretize global sizes.
  sched::DClasConfig dclas;
  /// §6.2 ON/OFF signals: at most this many coflows are switched ON per
  /// schedule (in global priority order); the rest are gated to avoid
  /// receiver-side contention. 0 = everything ON.
  std::size_t max_on_coflows = 0;
  /// Evict a daemon whose size reports have stopped for this many sync
  /// intervals (N·Δ). 0 disables liveness eviction.
  int liveness_timeout_intervals = 10;
  /// Evict a daemon whose echoed schedule epoch has not advanced for this
  /// many sync intervals although reports keep arriving (one-way link).
  /// 0 disables the check.
  int one_way_timeout_intervals = 40;
  /// Collect an unregister tombstone after no report has mentioned the
  /// coflow for this many sync intervals. 0 keeps tombstones forever.
  int tombstone_gc_intervals = 50;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds, starts the loop thread, begins Δ ticks.
  void start();
  /// Idempotent and safe under concurrent callers: every caller returns
  /// only after shutdown has completed.
  void stop();

  std::uint16_t port() const { return port_; }
  /// Number of completed coordination rounds (broadcasts).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Daemons currently connected (said Hello).
  std::size_t daemonCount() const {
    return daemon_count_.load(std::memory_order_relaxed);
  }
  /// Coflows currently registered.
  std::size_t registeredCoflows() const {
    return registered_count_.load(std::memory_order_relaxed);
  }
  /// Unregister tombstones currently held (pre-GC).
  std::size_t tombstoneCount() const {
    return tombstone_count_.load(std::memory_order_relaxed);
  }

  const RobustnessStats& stats() const { return stats_; }

 private:
  using TimePoint = net::EventLoop::Clock::time_point;

  struct Peer {
    std::unique_ptr<net::Connection> connection;
    std::uint64_t daemon_id = 0;
    bool is_daemon = false;
    TimePoint last_report{};        ///< Last Hello or size report.
    std::uint64_t echoed_epoch = 0; ///< Highest epoch echoed in a report.
    TimePoint last_echo_advance{};  ///< When echoed_epoch last grew.
  };

  void onAcceptable();
  void onMessage(std::uint64_t peer_key, net::Buffer& payload);
  void dropPeer(std::uint64_t peer_key);
  void evictStalePeers(TimePoint now);
  void collectTombstones(TimePoint now);
  void broadcastSchedule();
  void scheduleTick();

  CoordinatorConfig config_;
  net::EventLoop loop_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::mutex lifecycle_mutex_;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, Peer> peers_;
  std::uint64_t next_peer_key_ = 1;
  std::unordered_map<std::uint64_t,
                     std::unordered_map<coflow::CoflowId, double>>
      reported_sizes_;  // daemon_id -> coflow -> local bytes.
  std::unordered_map<coflow::CoflowId, bool> registered_;
  /// Tombstones for explicit unregisters: daemons keep reporting absolute
  /// local sizes for completed coflows, and those must not resurface in
  /// schedules. Value = when a report last mentioned the coflow; GC'd by
  /// collectTombstones once every live daemon has pruned it.
  std::unordered_map<coflow::CoflowId, TimePoint> unregistered_;
  coflow::CoflowIdGenerator id_generator_;
  std::vector<util::Bytes> thresholds_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> daemon_count_{0};
  std::atomic<std::size_t> registered_count_{0};
  std::atomic<std::size_t> tombstone_count_{0};
  std::atomic<bool> running_{false};
  RobustnessStats stats_;
};

}  // namespace aalo::runtime
