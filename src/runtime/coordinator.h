// Aalo coordinator (Figure 2): aggregates locally observed coflow sizes
// from daemons every Δ interval, assigns D-CLAS queues from the global
// sizes, and broadcasts the coordinated schedule to every daemon.
//
// The number of coordination messages is linear in the number of daemons
// and independent of the number of coflows (§3.2): one report in and one
// broadcast out per daemon per round.
//
// Delta-coded data path (default): size reports are folded into an
// incrementally maintained ScheduleState as they arrive, and each round
// broadcasts only what changed (kScheduleDelta) — an empty heartbeat when
// nothing did — with per-peer full snapshots on connect, on request, and
// every snapshot_every frames. The broadcast payload is encoded once and
// fanned out zero-copy. full_broadcasts restores the rebuild-the-world
// oracle path for A/B comparison.
//
// Fault tolerance (§3.2 hardening):
//  * Liveness eviction — a daemon whose reports stop for N·Δ is dropped
//    (connection closed, its reported sizes discarded) so a hung machine
//    cannot pin coflows in low-priority queues forever.
//  * One-way-link detection — daemons echo the last schedule epoch they
//    applied in every report; a daemon that keeps reporting but whose echo
//    never advances has a dead receive path and is evicted the same way.
//  * Tombstone GC — explicit unregisters are tombstoned so completed
//    coflows cannot resurface from stale reports; a tombstone is collected
//    once no live daemon has mentioned the coflow for M·Δ.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <string>

#include "coflow/id_generator.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/metrics.h"
#include "obs/metrics.h"
#include "runtime/checkpoint.h"
#include "runtime/robustness.h"
#include "runtime/schedule_state.h"
#include "sched/dclas.h"

namespace aalo::runtime {

struct CoordinatorConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  std::uint16_t port = 0;
  /// Coordination interval Δ (the paper suggests O(10) ms).
  util::Seconds sync_interval = 0.010;
  /// Queue structure used to discretize global sizes.
  sched::DClasConfig dclas;
  /// §6.2 ON/OFF signals: at most this many coflows are switched ON per
  /// schedule (in global priority order); the rest are gated to avoid
  /// receiver-side contention. 0 = everything ON.
  std::size_t max_on_coflows = 0;
  /// Evict a daemon whose size reports have stopped for this many sync
  /// intervals (N·Δ). 0 disables liveness eviction.
  int liveness_timeout_intervals = 10;
  /// Evict a daemon whose echoed schedule epoch has not advanced for this
  /// many sync intervals although reports keep arriving (one-way link).
  /// 0 disables the check.
  int one_way_timeout_intervals = 40;
  /// Collect an unregister tombstone after no report has mentioned the
  /// coflow for this many sync intervals. 0 keeps tombstones forever.
  int tombstone_gc_intervals = 50;
  /// Delta mode: re-send a full schedule snapshot to each daemon after
  /// this many consecutive delta/heartbeat frames, bounding how long a
  /// daemon whose state silently diverged (e.g. bit corruption the frame
  /// checks missed) can stay wrong. 0 = snapshots only on demand
  /// (connect / kSnapshotRequest).
  int snapshot_every = 20;
  /// Oracle mode: rebuild and broadcast the full schedule every Δ exactly
  /// as the pre-delta coordinator did. Deltas and suppression are
  /// disabled; kept for A/B benchmarking and the equivalence tests.
  bool full_broadcasts = false;
  /// Observability: when non-empty, the metrics registry is written to
  /// this path (Prometheus text; JSON alongside at `<path>.json`) every
  /// metrics_dump_interval on the loop thread, plus once at stop().
  std::string metrics_dump_path;
  util::Seconds metrics_dump_interval = 1.0;
  /// High availability: when non-zero, start as a warm standby of the
  /// primary coordinator at 127.0.0.1:<standby_of>. The standby subscribes
  /// to the primary's broadcast stream (kFollowerSubscribe) and mirrors it
  /// like a daemon would; it sends no broadcasts of its own until it
  /// promotes. 0 = start as the primary.
  std::uint16_t standby_of = 0;
  /// Standby: promote to primary after this many sync intervals without a
  /// broadcast from the primary. The promoted coordinator broadcasts with
  /// a fencing epoch above everything the primary ever used, so daemons
  /// ignore the deposed primary should it come back.
  int takeover_intervals = 10;
  /// Checkpoint/restore: when non-empty, ScheduleState snapshots + a delta
  /// journal are kept in this directory; a restarted primary resumes from
  /// them (bit-identical schedule, no re-teach round) instead of starting
  /// blind. Empty = disabled.
  std::string checkpoint_dir;
  util::Seconds checkpoint_interval = 1.0;
  /// Overload backpressure: a peer with more than this many unsent bytes
  /// queued is skipped this round (its broadcast is coalesced into a full
  /// snapshot once it drains), so one blackholed daemon cannot stall or
  /// bloat the fan-out. The connection hard-closes at 4x this (see
  /// net::Connection::setSendQueueLimit). 0 = unlimited.
  std::size_t send_queue_max = 4 * 1024 * 1024;
  /// Coordination-plane shards: >1 partitions the schedule state by
  /// CoflowId hash across this many worker threads, each with its own
  /// event loop and connection subset (see runtime/shard.h). 1 keeps the
  /// original single-threaded coordinator — the bit-identical schedule
  /// oracle the sharded path is tested against.
  std::size_t shards = 1;
};

class ShardedCoordinator;

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds, starts the loop thread(s), begins Δ ticks. With
  /// config.shards > 1 every call on this object transparently drives the
  /// multi-threaded ShardedCoordinator instead of the single loop.
  void start();
  /// Idempotent and safe under concurrent callers: every caller returns
  /// only after shutdown has completed.
  void stop();

  std::uint16_t port() const;
  /// Number of completed coordination rounds (broadcasts).
  std::uint64_t epoch() const;
  /// Fencing epoch of this coordinator incarnation (grows on promotion).
  std::uint64_t fence() const;
  /// True when this coordinator broadcasts (primary from the start, or a
  /// standby that has promoted).
  bool isPrimary() const;
  /// Daemons currently connected (said Hello).
  std::size_t daemonCount() const;
  /// Coflows currently registered.
  std::size_t registeredCoflows() const;
  /// Unregister tombstones currently held (pre-GC).
  std::size_t tombstoneCount() const;

  const RobustnessStats& stats() const;

  /// Full observability registry: robustness counters, wire counters,
  /// round-duration / report-apply histograms, lifecycle gauges.
  /// Instruments are registered at construction; rendering is thread-safe.
  const obs::Registry& metrics() const;

  /// Test/diagnostic accessor: the coordinator's current global coflow
  /// sizes. Thread-safe (hops onto the loop thread while running).
  std::unordered_map<coflow::CoflowId, double> globalSizes();

  /// Test/diagnostic accessor: the full current schedule exactly as a
  /// kScheduleUpdate would carry it (sorted, ON gate applied). Thread-safe
  /// (hops onto the loop thread while running). Bit-identical across a
  /// checkpoint restore or an up-to-date standby promotion.
  std::vector<net::ScheduleEntry> scheduleSnapshot();

 private:
  using TimePoint = net::EventLoop::Clock::time_point;

  /// Non-null iff config.shards > 1: the whole public surface delegates.
  std::unique_ptr<ShardedCoordinator> sharded_;

  struct Peer {
    std::unique_ptr<net::Connection> connection;
    std::uint64_t daemon_id = 0;
    bool is_daemon = false;
    /// A subscribed warm standby: receives every broadcast like a daemon
    /// but sends no reports, so it is exempt from liveness eviction.
    bool is_follower = false;
    TimePoint last_report{};        ///< Last Hello or size report.
    std::uint64_t echoed_epoch = 0; ///< Highest epoch echoed in a report.
    TimePoint last_echo_advance{};  ///< When echoed_epoch last grew.
    /// Next broadcast to this peer must be a full snapshot: set at
    /// connect (no base state to delta from) and on kSnapshotRequest.
    bool needs_snapshot = true;
    /// Frames sent since the last snapshot (periodic full refresh).
    int frames_since_snapshot = 0;
  };

  void onAcceptable();
  void onMessage(std::uint64_t peer_key, net::Buffer& payload);
  void dropPeer(std::uint64_t peer_key);
  void evictStalePeers(TimePoint now);
  void collectTombstones(TimePoint now);
  void broadcastSchedule();
  void broadcastFull(std::uint64_t epoch);
  void broadcastDelta(std::uint64_t epoch);
  void scheduleTick();
  void registerMetrics();
  void scheduleMetricsDump();
  void dumpMetrics();
  // --- checkpoint/restore (primary only) ---------------------------------
  void restoreFromCheckpoint();
  void writeCheckpointSnapshot(TimePoint now);
  // --- warm standby ------------------------------------------------------
  void scheduleFollowerTick();
  void connectUpstream();
  void onUpstreamMessage(net::Buffer& payload);
  void promote();

  CoordinatorConfig config_;
  net::EventLoop loop_;
  net::Fd listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::mutex lifecycle_mutex_;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, Peer> peers_;
  std::uint64_t next_peer_key_ = 1;
  /// Incrementally maintained global sizes + queue assignments + sorted
  /// schedule; also stores the raw per-daemon reports (the legacy oracle
  /// rebuilds from those in full_broadcasts mode).
  ScheduleState state_;
  /// Tombstones for explicit unregisters: daemons keep reporting absolute
  /// local sizes for completed coflows, and those must not resurface in
  /// schedules. Value = when a report last mentioned the coflow; GC'd by
  /// collectTombstones once every live daemon has pruned it.
  std::unordered_map<coflow::CoflowId, TimePoint> unregistered_;
  coflow::CoflowIdGenerator id_generator_;
  /// Broadcast scratch: schedule vectors and encode buffers reused across
  /// rounds. The buffers are shared_ptr so N peers write the same bytes
  /// (zero-copy fan-out); a buffer still referenced by a slow peer's send
  /// queue is left alone and a fresh one is allocated (use_count check).
  std::vector<net::ScheduleEntry> entries_scratch_;
  std::vector<coflow::CoflowId> removals_scratch_;
  std::shared_ptr<net::Buffer> delta_scratch_;
  std::shared_ptr<net::Buffer> snapshot_scratch_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> daemon_count_{0};
  std::atomic<std::size_t> registered_count_{0};
  std::atomic<std::size_t> tombstone_count_{0};
  std::atomic<bool> running_{false};
  /// Fencing epoch of this incarnation: 1 for a fresh primary, restored
  /// from the checkpoint, or primary's-highest + 1 after a promotion.
  std::atomic<std::uint64_t> fence_{1};
  /// True from start() until promote() when configured as a standby.
  std::atomic<bool> standby_active_{false};

  // Checkpoint (loop-thread-only after start()).
  std::unique_ptr<Checkpoint> checkpoint_;
  TimePoint last_checkpoint_{};
  /// Scratch for journaling only the tombstone-filtered, actually-applied
  /// slice of each size report.
  net::Message report_journal_scratch_;

  // Warm-standby state (loop-thread-only).
  std::unique_ptr<net::Connection> upstream_;
  std::uint64_t primary_fence_ = 1;   ///< Highest fence seen from upstream.
  std::uint64_t follower_epoch_ = 0;  ///< Last mirrored broadcast epoch.
  /// Live schedule mirrored from the primary's broadcast stream.
  std::unordered_map<coflow::CoflowId, net::ScheduleEntry> mirror_;
  /// Coflows the stream removed (delta removals / snapshot disappearance):
  /// tombstoned at promotion so stale reports cannot resurrect them.
  std::unordered_set<coflow::CoflowId> follower_removed_;
  TimePoint last_primary_contact_{};
  TimePoint standby_started_{};
  RobustnessStats stats_;

  // Observability (registered once in the constructor; histogram/counter
  // pointers stay valid — registry entries never move).
  obs::Registry metrics_;
  net::ConnMetrics conn_metrics_;
  obs::LatencyHistogram* round_duration_ = nullptr;
  obs::LatencyHistogram* report_apply_ = nullptr;
  obs::Counter* broadcast_bytes_ = nullptr;
  obs::Counter* scratch_reuse_ = nullptr;
  obs::Counter* scratch_alloc_ = nullptr;
};

}  // namespace aalo::runtime
