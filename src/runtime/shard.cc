#include "runtime/shard.h"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "net/protocol.h"
#include "runtime/metrics.h"
#include "util/log.h"

namespace aalo::runtime {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

/// Same wire order the single ScheduleState sorts by: (queue, FIFO id).
bool entryLess(const net::ScheduleEntry& a, const net::ScheduleEntry& b) {
  if (a.queue != b.queue) return a.queue < b.queue;
  return coflow::CoflowIdFifoLess{}(a.id, b.id);
}

/// See Coordinator's takeShared: clear the shared encode buffer in place
/// when no slow peer still references last round's bytes.
net::Buffer& takeShared(std::shared_ptr<net::Buffer>& slot, obs::Counter& reuse,
                        obs::Counter& alloc) {
  if (slot && slot.use_count() == 1) {
    slot->clear();
    reuse.fetch_add(1);
  } else {
    slot = std::make_shared<net::Buffer>();
    alloc.fetch_add(1);
  }
  return *slot;
}

util::Seconds elapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// K-way merge of per-shard (queue, FIFO-id)-sorted entry runs into one
/// globally sorted run. Keys never collide across shards (a coflow lives
/// in exactly one), so the merge is a strict interleave. K is small; a
/// linear head scan beats a heap.
void kWayMergeEntries(const std::vector<const std::vector<net::ScheduleEntry>*>&
                          parts,
                      std::vector<net::ScheduleEntry>& out) {
  std::size_t total = 0;
  for (const auto* p : parts) total += p->size();
  out.clear();
  out.reserve(total);
  std::vector<std::size_t> head(parts.size(), 0);
  for (std::size_t taken = 0; taken < total; ++taken) {
    std::size_t best = parts.size();
    for (std::size_t k = 0; k < parts.size(); ++k) {
      if (head[k] >= parts[k]->size()) continue;
      if (best == parts.size() ||
          entryLess((*parts[k])[head[k]], (*parts[best])[head[best]])) {
        best = k;
      }
    }
    out.push_back((*parts[best])[head[best]++]);
  }
}

void kWayMergeRemovals(
    const std::vector<const std::vector<coflow::CoflowId>*>& parts,
    std::vector<coflow::CoflowId>& out) {
  std::size_t total = 0;
  for (const auto* p : parts) total += p->size();
  out.clear();
  out.reserve(total);
  std::vector<std::size_t> head(parts.size(), 0);
  const coflow::CoflowIdFifoLess less{};
  for (std::size_t taken = 0; taken < total; ++taken) {
    std::size_t best = parts.size();
    for (std::size_t k = 0; k < parts.size(); ++k) {
      if (head[k] >= parts[k]->size()) continue;
      if (best == parts.size() ||
          less((*parts[k])[head[k]], (*parts[best])[head[best]])) {
        best = k;
      }
    }
    out.push_back((*parts[best])[head[best]++]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardSet
// ---------------------------------------------------------------------------

ShardSet::ShardSet(std::size_t shards, std::vector<util::Bytes> thresholds,
                   std::size_t max_on)
    : max_on_(max_on) {
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Sub-states never gate: the ON set is a global top-k, applied at
    // merge time so the boundary falls exactly where the single-state
    // oracle puts it.
    shards_.emplace_back(ScheduleState(thresholds, 0));
  }
}

std::size_t ShardSet::registeredCount() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.state.registeredCount();
  return n;
}

std::size_t ShardSet::scheduledCount() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.state.scheduledCount();
  return n;
}

std::unordered_map<coflow::CoflowId, double> ShardSet::globalSizes() const {
  std::unordered_map<coflow::CoflowId, double> out;
  for (const auto& s : shards_) {
    for (const auto& [id, bytes] : s.state.globalSizes()) out.emplace(id, bytes);
  }
  return out;
}

void ShardSet::buildShardDelta(std::size_t s) {
  shards_[s].state.buildDelta(shards_[s].delta_entries,
                              shards_[s].delta_removals);
}

bool ShardSet::mergeDelta(std::vector<net::ScheduleEntry>& entries,
                          std::vector<coflow::CoflowId>& removals) {
  std::vector<const std::vector<net::ScheduleEntry>*> entry_parts;
  std::vector<const std::vector<coflow::CoflowId>*> removal_parts;
  entry_parts.reserve(shards_.size());
  removal_parts.reserve(shards_.size());
  for (const auto& s : shards_) {
    entry_parts.push_back(&s.delta_entries);
    removal_parts.push_back(&s.delta_removals);
  }
  kWayMergeEntries(entry_parts, entries);
  kWayMergeRemovals(removal_parts, removals);
  if (max_on_ > 0) applyOnGate(entries);
  return !entries.empty() || !removals.empty();
}

void ShardSet::applyOnGate(std::vector<net::ScheduleEntry>& entries) {
  // New ON membership: the first max_on_ coflows of the merged global
  // order — a k-way head walk over the shards' permanently sorted sets.
  std::unordered_set<coflow::CoflowId> new_on;
  new_on.reserve(max_on_);
  std::vector<ScheduleState::OrderSet::const_iterator> head;
  std::vector<ScheduleState::OrderSet::const_iterator> end;
  head.reserve(shards_.size());
  end.reserve(shards_.size());
  for (const auto& s : shards_) {
    head.push_back(s.state.order().begin());
    end.push_back(s.state.order().end());
  }
  const ScheduleState::OrderLess less{};
  while (new_on.size() < max_on_) {
    std::size_t best = shards_.size();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (head[k] == end[k]) continue;
      if (best == shards_.size() || less(*head[k], *head[best])) best = k;
    }
    if (best == shards_.size()) break;  // Fewer live coflows than max_on_.
    new_on.insert(head[best]->second);
    ++head[best];
  }

  // Rewrite the ON bit of everything this delta already announces (shard
  // deltas are built gate-blind: their entries all claim ON).
  std::unordered_set<coflow::CoflowId> in_delta;
  in_delta.reserve(entries.size());
  for (auto& e : entries) {
    e.on = new_on.contains(e.id);
    in_delta.insert(e.id);
  }

  // Pure toggles: coflows whose gate membership changed although their
  // own shard had nothing to announce (queue unchanged). Exactly what
  // the single-state refreshOnSet() would have marked dirty.
  bool appended = false;
  for (const auto& id : new_on) {
    if (prev_on_.contains(id) || in_delta.contains(id)) continue;
    auto entry = shards_[shardFor(id)].state.entryFor(id);
    if (!entry) continue;
    entry->on = true;
    entries.push_back(*entry);
    appended = true;
  }
  for (const auto& id : prev_on_) {
    if (new_on.contains(id) || in_delta.contains(id)) continue;
    auto entry = shards_[shardFor(id)].state.entryFor(id);
    if (!entry) continue;  // Unregistered: the removal already says it all.
    entry->on = false;
    entries.push_back(*entry);
    appended = true;
  }
  if (appended) std::sort(entries.begin(), entries.end(), entryLess);
  prev_on_ = std::move(new_on);
}

bool ShardSet::buildDelta(std::vector<net::ScheduleEntry>& entries,
                          std::vector<coflow::CoflowId>& removals) {
  for (std::size_t s = 0; s < shards_.size(); ++s) buildShardDelta(s);
  return mergeDelta(entries, removals);
}

void ShardSet::snapshotEntries(std::vector<net::ScheduleEntry>& out) const {
  std::vector<std::vector<net::ScheduleEntry>> parts(shards_.size());
  std::vector<const std::vector<net::ScheduleEntry>*> part_ptrs;
  part_ptrs.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].state.snapshotEntries(parts[s]);
    part_ptrs.push_back(&parts[s]);
  }
  kWayMergeEntries(part_ptrs, out);
  // Positional gate, exactly as ScheduleState::snapshotEntries applies it.
  if (max_on_ > 0) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i].on = i < max_on_;
  }
}

std::vector<const ScheduleState*> ShardSet::states() const {
  std::vector<const ScheduleState*> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(&s.state);
  return out;
}

// ---------------------------------------------------------------------------
// ShardedCoordinator
// ---------------------------------------------------------------------------

ShardedCoordinator::ShardedCoordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      num_shards_(std::max<std::size_t>(config_.shards, 1)),
      state_(num_shards_, config_.dclas.thresholds(), config_.max_on_coflows),
      barrier_(static_cast<std::ptrdiff_t>(num_shards_),
               BarrierCompletion{this}) {
  workers_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    workers_.push_back(std::make_unique<Worker>());
    workers_[s]->route_scratch.resize(num_shards_);
  }
  registerMetrics();
}

ShardedCoordinator::~ShardedCoordinator() { stop(); }

void ShardedCoordinator::registerMetrics() {
  registerRobustnessStats(metrics_, stats_, "aalo_coordinator");
  round_duration_ = &metrics_.histogram(
      "aalo_coordinator_round_duration_seconds",
      "Coordination tick (barrier + merge + broadcast)",
      {.first_bound = 1e-6, .num_bounds = 24});
  report_apply_ = &metrics_.histogram("aalo_coordinator_report_apply_seconds",
                                      "Size-report fold into ScheduleState",
                                      {.first_bound = 1e-7, .num_bounds = 24});
  broadcast_bytes_ =
      &metrics_.counter("aalo_coordinator_broadcast_bytes_total",
                        "Schedule fan-out wire bytes incl. headers");
  scratch_reuse_ =
      &metrics_.counter("aalo_coordinator_encode_scratch_reuse_total",
                        "Broadcast encode buffers cleared in place");
  scratch_alloc_ =
      &metrics_.counter("aalo_coordinator_encode_scratch_alloc_total",
                        "Broadcast encode buffers reallocated");
  metrics_.attachGauge("aalo_coordinator_daemons", "Daemons currently connected",
                       [this] { return static_cast<double>(daemonCount()); });
  metrics_.attachGauge(
      "aalo_coordinator_registered_coflows", "Coflows currently registered",
      [this] { return static_cast<double>(registeredCoflows()); });
  metrics_.attachGauge("aalo_coordinator_tombstones",
                       "Unregister tombstones held (pre-GC)",
                       [this] { return static_cast<double>(tombstoneCount()); });
  metrics_.attachGauge("aalo_coordinator_epoch", "Completed coordination rounds",
                       [this] { return static_cast<double>(epoch()); });
  metrics_.attachGauge("aalo_coordinator_shards", "Coordination worker shards",
                       [this] { return static_cast<double>(num_shards_); });
  // Merged wire totals across every shard's connection set, same family
  // names the single-threaded coordinator exposes.
  const auto sum = [this](obs::Counter net::ConnMetrics::* field) {
    return [this, field] {
      std::uint64_t total = 0;
      for (const auto& w : workers_) total += (w->conn_metrics.*field).load();
      return total;
    };
  };
  metrics_.attachCounter("aalo_coordinator_net_frames_in_total",
                         "Frames received (all shards)",
                         sum(&net::ConnMetrics::frames_in));
  metrics_.attachCounter("aalo_coordinator_net_frames_out_total",
                         "Frames queued for send (all shards)",
                         sum(&net::ConnMetrics::frames_out));
  metrics_.attachCounter("aalo_coordinator_net_bytes_in_total",
                         "Wire bytes received (all shards)",
                         sum(&net::ConnMetrics::bytes_in));
  metrics_.attachCounter("aalo_coordinator_net_bytes_out_total",
                         "Wire bytes queued (all shards)",
                         sum(&net::ConnMetrics::bytes_out));
  metrics_.attachCounter("aalo_coordinator_net_overflow_closes_total",
                         "Send-queue overflow closes (all shards)",
                         sum(&net::ConnMetrics::overflow_closes));
  // Per-shard families: wire counters, applied report sizes, peer gauges.
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Worker* w = workers_[s].get();
    const std::string prefix = "aalo_coordinator_shard" + std::to_string(s);
    net::registerConnMetrics(metrics_, w->conn_metrics, prefix);
    w->reports_applied =
        &metrics_.counter(prefix + "_reports_applied_total",
                          "Report sizes folded into this shard's state");
    metrics_.attachGauge(prefix + "_peers", "Connections owned by this shard",
                         [w] {
                           return static_cast<double>(
                               w->peer_count.load(std::memory_order_relaxed));
                         });
    metrics_.attachGauge(prefix + "_daemons", "Daemons owned by this shard",
                         [w] {
                           return static_cast<double>(
                               w->daemon_peers.load(std::memory_order_relaxed));
                         });
  }
}

void ShardedCoordinator::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  if (!config_.checkpoint_dir.empty()) {
    checkpoint_ = std::make_unique<Checkpoint>(config_.checkpoint_dir);
  }
  const bool standby = config_.standby_of != 0;
  standby_active_.store(standby, std::memory_order_relaxed);
  if (!standby) restoreFromCheckpoint();
  auto [fd, port] = net::listenTcp(config_.port);
  listener_ = std::move(fd);
  port_ = port;
  leader().loop.add(listener_.get(), EPOLLIN,
                    [this](std::uint32_t) { onAcceptable(); });
  if (standby) {
    last_primary_contact_ = net::EventLoop::Clock::now();
    connectUpstream();
    scheduleFollowerTick();
  } else {
    if (checkpoint_) writeCheckpointSnapshot(net::EventLoop::Clock::now());
    ticking_ = true;
    scheduleTick();
  }
  if (!config_.metrics_dump_path.empty() && config_.metrics_dump_interval > 0) {
    scheduleMetricsDump();
  }
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = std::thread([worker] { worker->loop.run(); });
  }
  AALO_LOG_INFO << "coordinator (" << num_shards_ << " shards"
                << (standby ? ", standby" : "") << ") listening on 127.0.0.1:"
                << port_;
}

void ShardedCoordinator::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  // Stop initiating barrier rounds. Posted to the leader loop so it
  // serializes behind any in-flight tick (whose barrier completes because
  // every worker loop is still running).
  {
    std::promise<void> quiesced;
    leader().loop.post([this, &quiesced] {
      ticking_ = false;
      quiesced.set_value();
    });
    quiesced.get_future().wait();
  }
  // Fence every worker: drains queued tick tasks, routed applies, and the
  // deferred connection destructions, so nothing useful is left behind in
  // a loop's queue when it stops.
  for (auto& w : workers_) {
    std::promise<void> drained;
    w->loop.post([&drained] { drained.set_value(); });
    drained.get_future().wait();
  }
  for (auto& w : workers_) w->loop.stop();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  upstream_.reset();
  for (auto& w : workers_) {
    w->peers.clear();
    w->daemon_peers.store(0, std::memory_order_relaxed);
    w->peer_count.store(0, std::memory_order_relaxed);
  }
  daemon_count_.store(0, std::memory_order_relaxed);
  if (listener_.valid()) leader().loop.remove(listener_.get());
  listener_.reset();
  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    for (auto& w : workers_) {
      stats_.checkpoint_journal_records.fetch_add(w->journal.records(),
                                                  std::memory_order_relaxed);
      checkpoint_->absorb(w->journal);
    }
    checkpoint_->flushJournal();
    writeCheckpointSnapshot(net::EventLoop::Clock::now());
  }
  dumpMetrics();
}

void ShardedCoordinator::restoreFromCheckpoint() {
  if (!checkpoint_ || !checkpoint_->hasData()) return;
  ScheduleState fresh(config_.dclas.thresholds(), config_.max_on_coflows);
  const auto restored = checkpoint_->restore(fresh, config_.dclas.thresholds(),
                                             config_.max_on_coflows);
  if (!restored) {
    stats_.checkpoint_restore_failures.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "coordinator: checkpoint in " << config_.checkpoint_dir
                  << " is unusable; falling back to daemon re-teach";
    return;
  }
  // Redistribute the restored single state across the shards. Placement
  // is the stable CoflowId hash, so a checkpoint written at any shard
  // count restores at any other — including the --shards 1 oracle's.
  for (const auto& id : fresh.registeredIds()) state_.registerCoflow(id);
  for (const auto& [daemon_id, sizes] : fresh.reportedSizes()) {
    for (const auto& [id, bytes] : sizes) state_.applySize(daemon_id, id, bytes);
  }
  epoch_.store(restored->epoch, std::memory_order_relaxed);
  fence_.store(std::max<std::uint64_t>(restored->fence, 1),
               std::memory_order_relaxed);
  id_generator_.advanceTo(restored->next_external);
  const TimePoint now = net::EventLoop::Clock::now();
  for (const auto& id : restored->tombstones) {
    workers_[state_.shardFor(id)]->tombstones[id] = now;
  }
  tombstone_count_.store(restored->tombstones.size(), std::memory_order_relaxed);
  registered_count_.store(state_.registeredCount(), std::memory_order_relaxed);
  stats_.checkpoint_restores.fetch_add(1, std::memory_order_relaxed);
  AALO_LOG_INFO << "coordinator: restored " << state_.scheduledCount()
                << " coflows into " << num_shards_ << " shards at epoch "
                << restored->epoch << " (fence "
                << fence_.load(std::memory_order_relaxed) << ", "
                << restored->journal_records << " journal records) from "
                << config_.checkpoint_dir;
}

void ShardedCoordinator::writeCheckpointSnapshot(TimePoint now) {
  if (!checkpoint_) return;
  std::vector<coflow::CoflowId> tombstones;
  for (const auto& w : workers_) {
    for (const auto& [id, mentioned] : w->tombstones) tombstones.push_back(id);
  }
  std::int64_t next_external = 0;
  {
    std::lock_guard lock(id_mutex_);
    next_external = id_generator_.nextExternal();
  }
  if (checkpoint_->writeSnapshot(state_.states(), tombstones,
                                 fence_.load(std::memory_order_relaxed),
                                 epoch_.load(std::memory_order_relaxed),
                                 next_external, config_.dclas.thresholds(),
                                 config_.max_on_coflows)) {
    stats_.checkpoint_snapshots.fetch_add(1, std::memory_order_relaxed);
  } else {
    AALO_LOG_WARN << "coordinator: failed to write checkpoint snapshot in "
                  << config_.checkpoint_dir;
  }
  last_checkpoint_ = now;
}

void ShardedCoordinator::scheduleMetricsDump() {
  leader().loop.callAfter(toNanos(config_.metrics_dump_interval), [this] {
    dumpMetrics();
    if (running_.load(std::memory_order_relaxed)) scheduleMetricsDump();
  });
}

void ShardedCoordinator::dumpMetrics() {
  if (config_.metrics_dump_path.empty()) return;
  if (!metrics_.dumpFiles(config_.metrics_dump_path)) {
    AALO_LOG_WARN << "coordinator: failed to write metrics dump to "
                  << config_.metrics_dump_path;
  }
}

// --- tick / barrier --------------------------------------------------------

void ShardedCoordinator::scheduleTick() {
  leader().loop.callAfter(toNanos(config_.sync_interval), [this] {
    if (!ticking_) return;
    round_start_ = std::chrono::steady_clock::now();
    // One barrier round: every worker participates exactly once. The
    // leader runs its own share inline (blocking this callback until the
    // round completes), so a round can never be half-started.
    for (std::size_t s = 1; s < num_shards_; ++s) {
      workers_[s]->loop.post([this, s] { tickTask(s); });
    }
    tickTask(0);
    if (ticking_) scheduleTick();
  });
}

void ShardedCoordinator::tickTask(std::size_t shard) {
  Worker& w = *workers_[shard];
  const TimePoint now = net::EventLoop::Clock::now();
  evictStalePeers(shard, now);
  collectTombstones(shard, now);
  // Everything this worker's loop delivered before this task — its own
  // decodes and the routed batches other shards posted — is already in
  // the shard state; stage the sorted sub-delta for the merge.
  state_.buildShardDelta(shard);
  w.wants_snapshot_round = config_.full_broadcasts;
  if (!w.wants_snapshot_round) {
    for (const auto& [key, peer] : w.peers) {
      if (!peer.is_daemon && !peer.is_follower) continue;
      if (peer.needs_snapshot ||
          (config_.snapshot_every > 0 &&
           peer.frames_since_snapshot >= config_.snapshot_every)) {
        w.wants_snapshot_round = true;
        break;
      }
    }
  }
  barrier_.arrive_and_wait();
  fanOut(shard);
}

void ShardedCoordinator::onBarrierComplete() {
  // Runs on the last-arriving worker's thread while every worker is
  // parked at the barrier: all shard state is quiescent, and the barrier
  // provides the acquire/release ordering — no locks on this path.
  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  round_changed_ = state_.mergeDelta(entries_scratch_, removals_scratch_);

  net::Message message;
  message.type = net::MessageType::kScheduleDelta;
  message.epoch = epoch;
  message.base_epoch = epoch - 1;
  message.fence = fence_.load(std::memory_order_relaxed);
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);
  net::Buffer& delta_out =
      takeShared(delta_scratch_, *scratch_reuse_, *scratch_alloc_);
  net::encodeMessage(message, delta_out);
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);

  round_has_snapshot_ = false;
  for (const auto& w : workers_) {
    round_has_snapshot_ = round_has_snapshot_ || w->wants_snapshot_round;
  }
  if (round_has_snapshot_) {
    message.type = net::MessageType::kScheduleUpdate;
    message.base_epoch = 0;
    message.removals.clear();
    message.schedule.swap(entries_scratch_);
    state_.snapshotEntries(message.schedule);
    net::Buffer& snap_out =
        takeShared(snapshot_scratch_, *scratch_reuse_, *scratch_alloc_);
    net::encodeMessage(message, snap_out);
    message.schedule.swap(entries_scratch_);
  }

  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    // Shard-consistent epoch marks: every record that could have
    // influenced this round's broadcast is absorbed (in shard-index
    // order) before the round's epoch record, so restore and standby
    // mirroring replay the same prefix a daemon saw.
    std::size_t absorbed = 0;
    for (const auto& w : workers_) {
      absorbed += w->journal.records();
      checkpoint_->absorb(w->journal);
    }
    checkpoint_->journalEpoch(epoch, fence_.load(std::memory_order_relaxed));
    stats_.checkpoint_journal_records.fetch_add(absorbed + 1,
                                                std::memory_order_relaxed);
    checkpoint_->flushJournal();
    const TimePoint now = net::EventLoop::Clock::now();
    if (force_checkpoint_snapshot_ ||
        (config_.checkpoint_interval > 0 &&
         now - last_checkpoint_ >= toNanos(config_.checkpoint_interval))) {
      force_checkpoint_snapshot_ = false;
      writeCheckpointSnapshot(now);
    }
  }

  // Cross-shard gauges, refreshed once per round under quiescence
  // instead of locking the hot path.
  std::size_t tombstones = 0;
  for (const auto& w : workers_) tombstones += w->tombstones.size();
  tombstone_count_.store(tombstones, std::memory_order_relaxed);
  registered_count_.store(state_.registeredCount(), std::memory_order_relaxed);
  round_duration_->observe(elapsedSeconds(round_start_));
}

void ShardedCoordinator::fanOut(std::size_t shard) {
  Worker& w = *workers_[shard];
  std::vector<std::uint64_t> keys;
  keys.reserve(w.peers.size());
  for (const auto& [key, peer] : w.peers) {
    if (peer.is_daemon || peer.is_follower) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    const auto it = w.peers.find(key);
    if (it == w.peers.end()) continue;
    Peer& peer = it->second;
    if (!peer.connection || peer.connection->closed()) continue;
    if (config_.send_queue_max > 0 &&
        peer.connection->pendingBytes() > config_.send_queue_max) {
      if (!config_.full_broadcasts) peer.needs_snapshot = true;
      stats_.broadcasts_coalesced.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const bool want_snapshot =
        config_.full_broadcasts || peer.needs_snapshot ||
        (config_.snapshot_every > 0 &&
         peer.frames_since_snapshot >= config_.snapshot_every);
    if (want_snapshot && round_has_snapshot_ && snapshot_scratch_) {
      // Peer state updated before the send: a failing send closes the
      // connection inline, whose close handler erases this Peer.
      peer.needs_snapshot = false;
      peer.frames_since_snapshot = 0;
      stats_.snapshot_broadcasts.fetch_add(1, std::memory_order_relaxed);
      peer.connection->sendFrame(snapshot_scratch_);
      broadcast_bytes_->fetch_add(4 + snapshot_scratch_->readableBytes());
    } else {
      ++peer.frames_since_snapshot;
      (round_changed_ ? stats_.delta_broadcasts : stats_.broadcasts_suppressed)
          .fetch_add(1, std::memory_order_relaxed);
      peer.connection->sendFrame(delta_scratch_);
      broadcast_bytes_->fetch_add(4 + delta_scratch_->readableBytes());
    }
  }
}

// --- connection ownership --------------------------------------------------

void ShardedCoordinator::onAcceptable() {
  for (;;) {
    net::Fd fd = net::acceptTcp(listener_.get());
    if (!fd.valid()) break;
    const std::size_t target = next_accept_shard_;
    next_accept_shard_ = (next_accept_shard_ + 1) % num_shards_;
    if (target == 0) {
      adoptConnection(0, std::move(fd));
      continue;
    }
    // EventLoop::add is loop-thread-only, so the connection must be
    // constructed on its owning worker; hand the raw fd over via post
    // (shared_ptr because std::function wants copyable captures).
    auto handoff = std::make_shared<net::Fd>(std::move(fd));
    workers_[target]->loop.post([this, target, handoff] {
      adoptConnection(target, std::move(*handoff));
    });
  }
}

void ShardedCoordinator::adoptConnection(std::size_t shard, net::Fd fd) {
  Worker& w = *workers_[shard];
  const std::uint64_t key = w.next_peer_key++;
  Peer peer;
  peer.connection = std::make_unique<net::Connection>(
      w.loop, std::move(fd),
      [this, shard, key](net::Buffer& payload) {
        onMessage(shard, key, payload);
      },
      [this, shard, key] { dropPeer(shard, key); }, &w.conn_metrics);
  if (config_.send_queue_max > 0) {
    peer.connection->setSendQueueLimit(4 * config_.send_queue_max);
  }
  w.peers.emplace(key, std::move(peer));
  w.peer_count.store(w.peers.size(), std::memory_order_relaxed);
}

void ShardedCoordinator::dropPeer(std::size_t shard, std::uint64_t peer_key) {
  Worker& w = *workers_[shard];
  const auto it = w.peers.find(peer_key);
  if (it == w.peers.end()) return;
  if (it->second.is_daemon) {
    const std::uint64_t daemon_id = it->second.daemon_id;
    daemon_count_.fetch_sub(1, std::memory_order_relaxed);
    w.daemon_peers.fetch_sub(1, std::memory_order_relaxed);
    // The daemon's contributions live on every shard; each applies (and
    // journals) the drop on its own thread, FIFO-ordered behind any of
    // the daemon's still-in-flight routed reports.
    applyDropDaemon(shard, daemon_id);
    for (std::size_t t = 0; t < num_shards_; ++t) {
      if (t == shard) continue;
      workers_[t]->loop.post(
          [this, t, daemon_id] { applyDropDaemon(t, daemon_id); });
    }
  }
  auto doomed = std::move(it->second.connection);
  w.peers.erase(it);
  w.peer_count.store(w.peers.size(), std::memory_order_relaxed);
  w.loop.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
}

void ShardedCoordinator::applyDropDaemon(std::size_t shard,
                                         std::uint64_t daemon_id) {
  ScheduleState& st = state_.shard(shard);
  if (!st.reportedSizes().contains(daemon_id)) return;
  st.dropDaemon(daemon_id);
  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    workers_[shard]->journal.dropDaemon(daemon_id);
  }
}

void ShardedCoordinator::evictStalePeers(std::size_t shard, TimePoint now) {
  if (config_.liveness_timeout_intervals <= 0 &&
      config_.one_way_timeout_intervals <= 0) {
    return;
  }
  Worker& w = *workers_[shard];
  const auto liveness_budget =
      toNanos(config_.sync_interval * config_.liveness_timeout_intervals);
  const auto one_way_budget =
      toNanos(config_.sync_interval * config_.one_way_timeout_intervals);
  std::vector<std::uint64_t> evict;
  for (const auto& [key, peer] : w.peers) {
    if (!peer.is_daemon) continue;
    if (config_.liveness_timeout_intervals > 0 &&
        now - peer.last_report > liveness_budget) {
      stats_.daemons_evicted.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: shard " << shard << " evicting daemon "
                    << peer.daemon_id << " (no report for "
                    << config_.liveness_timeout_intervals << " intervals)";
      evict.push_back(key);
      continue;
    }
    if (config_.one_way_timeout_intervals > 0 &&
        epoch_.load(std::memory_order_relaxed) > peer.echoed_epoch &&
        now - peer.last_echo_advance > one_way_budget) {
      stats_.one_way_evictions.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: shard " << shard << " evicting daemon "
                    << peer.daemon_id << " (epoch echo stuck at "
                    << peer.echoed_epoch << "; one-way link)";
      evict.push_back(key);
    }
  }
  for (const std::uint64_t key : evict) dropPeer(shard, key);
}

void ShardedCoordinator::collectTombstones(std::size_t shard, TimePoint now) {
  Worker& w = *workers_[shard];
  if (config_.tombstone_gc_intervals <= 0 || w.tombstones.empty()) return;
  const auto budget =
      toNanos(config_.sync_interval * config_.tombstone_gc_intervals);
  for (auto it = w.tombstones.begin(); it != w.tombstones.end();) {
    if (now - it->second > budget) {
      stats_.tombstones_collected.fetch_add(1, std::memory_order_relaxed);
      it = w.tombstones.erase(it);
    } else {
      ++it;
    }
  }
}

// --- message handling ------------------------------------------------------

void ShardedCoordinator::onMessage(std::size_t shard, std::uint64_t peer_key,
                                   net::Buffer& payload) {
  Worker& w = *workers_[shard];
  const auto it = w.peers.find(peer_key);
  if (it == w.peers.end()) return;
  Peer& peer = it->second;

  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "coordinator: dropping malformed frame: " << e.what();
    return;
  }

  const TimePoint now = net::EventLoop::Clock::now();
  switch (message.type) {
    case net::MessageType::kHello:
      peer.is_daemon = true;
      peer.daemon_id = message.daemon_id;
      peer.last_report = now;
      peer.last_echo_advance = now;
      w.daemon_peers.fetch_add(1, std::memory_order_relaxed);
      daemon_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case net::MessageType::kSizeReport:
      handleSizeReport(shard, peer, message, now);
      break;
    case net::MessageType::kRegisterCoflow:
      handleRegister(shard, peer, message);
      break;
    case net::MessageType::kUnregisterCoflow: {
      const std::size_t target = state_.shardFor(message.coflow);
      if (target == shard) {
        applyUnregister(target, message.coflow, now);
      } else {
        workers_[target]->loop.post([this, target, id = message.coflow, now] {
          applyUnregister(target, id, now);
        });
      }
      break;
    }
    case net::MessageType::kSnapshotRequest:
      if (peer.is_daemon || peer.is_follower) {
        peer.needs_snapshot = true;
        stats_.snapshot_requests.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case net::MessageType::kFollowerSubscribe:
      peer.is_follower = true;
      peer.needs_snapshot = true;
      break;
    default:
      AALO_LOG_WARN << "coordinator: unexpected message type";
  }
}

void ShardedCoordinator::handleSizeReport(std::size_t shard, Peer& peer,
                                          const net::Message& message,
                                          TimePoint now) {
  if (!peer.is_daemon) return;
  const auto apply_start = std::chrono::steady_clock::now();
  peer.last_report = now;
  if (message.epoch > peer.echoed_epoch) {
    peer.echoed_epoch = message.epoch;
    peer.last_echo_advance = now;
  }
  Worker& w = *workers_[shard];
  if (num_shards_ == 1) {
    applyRoutedSizes(shard, peer.daemon_id, message.epoch, message.sizes);
    report_apply_->observe(elapsedSeconds(apply_start));
    return;
  }
  // Partition the report by owning shard: this worker's slice applies
  // inline, the rest are handed over as per-shard batches (one post per
  // target, not per size).
  auto& routes = w.route_scratch;
  for (const auto& size : message.sizes) {
    routes[state_.shardFor(size.id)].push_back(size);
  }
  for (std::size_t t = 0; t < num_shards_; ++t) {
    if (routes[t].empty()) continue;
    if (t == shard) {
      applyRoutedSizes(shard, peer.daemon_id, message.epoch, routes[t]);
      routes[t].clear();
    } else {
      workers_[t]->loop.post([this, t, daemon_id = peer.daemon_id,
                              epoch = message.epoch,
                              batch = std::make_shared<
                                  std::vector<net::CoflowSize>>(
                                  std::exchange(routes[t], {}))] {
        applyRoutedSizes(t, daemon_id, epoch, *batch);
      });
    }
  }
  report_apply_->observe(elapsedSeconds(apply_start));
}

void ShardedCoordinator::applyRoutedSizes(std::size_t shard,
                                          std::uint64_t daemon_id,
                                          std::uint64_t epoch,
                                          std::vector<net::CoflowSize> sizes) {
  Worker& w = *workers_[shard];
  ScheduleState& st = state_.shard(shard);
  const TimePoint now = net::EventLoop::Clock::now();
  const bool journal = checkpoint_ != nullptr &&
                       !standby_active_.load(std::memory_order_relaxed);
  net::Message& journaled = w.report_journal_scratch;
  if (journal) {
    journaled.type = net::MessageType::kSizeReport;
    journaled.daemon_id = daemon_id;
    journaled.epoch = epoch;
    journaled.sizes.clear();
  }
  std::uint64_t applied = 0;
  for (const auto& size : sizes) {
    const auto tomb = w.tombstones.find(size.id);
    if (tomb != w.tombstones.end()) {
      tomb->second = now;
      continue;
    }
    st.applySize(daemon_id, size.id, size.bytes);
    ++applied;
    if (journal) journaled.sizes.push_back(size);
  }
  if (journal && !journaled.sizes.empty()) w.journal.report(journaled);
  if (applied > 0) w.reports_applied->fetch_add(applied);
}

void ShardedCoordinator::handleRegister(std::size_t shard, Peer& peer,
                                        const net::Message& message) {
  if (standby_active_.load(std::memory_order_relaxed)) {
    AALO_LOG_WARN << "standby: ignoring kRegisterCoflow before promotion";
    return;
  }
  coflow::CoflowId id;
  std::int64_t next_external = 0;
  {
    // Minting is the one cross-worker mutation outside the barrier;
    // registers happen once per coflow, so a mutex is cheap enough.
    std::lock_guard lock(id_mutex_);
    if (message.parents.empty()) {
      id = id_generator_.newRootId();
    } else {
      try {
        id = id_generator_.newChildId(message.parents);
      } catch (const std::invalid_argument&) {
        id = id_generator_.newRootId();  // Malformed parents: fresh DAG.
      }
    }
    next_external = id_generator_.nextExternal();
  }
  const std::size_t target = state_.shardFor(id);
  if (target == shard) {
    applyRegister(target, id, next_external);
  } else {
    workers_[target]->loop.post([this, target, id, next_external] {
      applyRegister(target, id, next_external);
    });
  }
  // Reply immediately: the id is globally unique already, and
  // registerCoflow/applySize commute, so the client may start before the
  // owning shard has folded the registration in.
  net::Message reply;
  reply.type = net::MessageType::kRegisterReply;
  reply.request_id = message.request_id;
  reply.coflow = id;
  net::Buffer out;
  net::encodeMessage(reply, out);
  peer.connection->sendFrame(out);
}

void ShardedCoordinator::applyRegister(std::size_t shard,
                                       const coflow::CoflowId& id,
                                       std::int64_t next_external) {
  Worker& w = *workers_[shard];
  // The register/unregister pair for one coflow may arrive via different
  // workers and race through their posts; the tombstone check makes the
  // two orders converge (registered-then-unregistered == never visible).
  if (w.tombstones.contains(id)) return;
  state_.shard(shard).registerCoflow(id);
  registered_count_.fetch_add(1, std::memory_order_relaxed);
  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    w.journal.registerCoflow(id, next_external);
  }
}

void ShardedCoordinator::applyUnregister(std::size_t shard,
                                         const coflow::CoflowId& id,
                                         TimePoint now) {
  Worker& w = *workers_[shard];
  ScheduleState& st = state_.shard(shard);
  const bool was_registered = st.registeredIds().contains(id);
  st.unregisterCoflow(id);
  if (was_registered) registered_count_.fetch_sub(1, std::memory_order_relaxed);
  w.tombstones[id] = now;
  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    w.journal.unregisterCoflow(id);
  }
}

// --- warm standby ----------------------------------------------------------

void ShardedCoordinator::scheduleFollowerTick() {
  leader().loop.callAfter(toNanos(config_.sync_interval), [this] {
    if (!running_.load(std::memory_order_relaxed)) return;
    if (!standby_active_.load(std::memory_order_relaxed)) return;
    const TimePoint now = net::EventLoop::Clock::now();
    const auto budget = toNanos(config_.sync_interval *
                                std::max(config_.takeover_intervals, 1));
    if (now - last_primary_contact_ > budget) {
      promote();
      return;  // scheduleTick() owns the cadence from here on.
    }
    if (!upstream_ || upstream_->closed()) connectUpstream();
    scheduleFollowerTick();
  });
}

void ShardedCoordinator::connectUpstream() {
  net::Fd fd;
  try {
    fd = net::connectTcp(config_.standby_of);
  } catch (const std::system_error&) {
    return;  // Primary unreachable; the takeover timer keeps running.
  }
  upstream_ = std::make_unique<net::Connection>(
      leader().loop, std::move(fd),
      [this](net::Buffer& payload) { onUpstreamMessage(payload); },
      [this] {
        if (!upstream_) return;
        auto doomed = std::move(upstream_);
        leader().loop.post(
            [conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
      },
      &leader().conn_metrics);
  net::Message subscribe;
  subscribe.type = net::MessageType::kFollowerSubscribe;
  subscribe.epoch = follower_epoch_;
  subscribe.fence = primary_fence_;
  net::Buffer out;
  net::encodeMessage(subscribe, out);
  upstream_->sendFrame(out);
}

void ShardedCoordinator::onUpstreamMessage(net::Buffer& payload) {
  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "standby: dropping malformed frame: " << e.what();
    return;
  }
  if (message.type != net::MessageType::kScheduleUpdate &&
      message.type != net::MessageType::kScheduleDelta) {
    return;
  }
  if (message.fence < primary_fence_) return;  // Deposed incarnation.
  primary_fence_ = message.fence;
  last_primary_contact_ = net::EventLoop::Clock::now();
  if (message.type == net::MessageType::kScheduleUpdate) {
    std::unordered_map<coflow::CoflowId, net::ScheduleEntry> next;
    next.reserve(message.schedule.size());
    for (const auto& entry : message.schedule) {
      next.emplace(entry.id, entry);
      follower_removed_.erase(entry.id);
    }
    for (const auto& [id, entry] : mirror_) {
      if (!next.contains(id)) follower_removed_.insert(id);
    }
    mirror_ = std::move(next);
    follower_epoch_ = message.epoch;
  } else {
    if (message.base_epoch != follower_epoch_) {
      net::Message request;
      request.type = net::MessageType::kSnapshotRequest;
      request.epoch = follower_epoch_;
      net::Buffer out;
      net::encodeMessage(request, out);
      if (upstream_ && !upstream_->closed()) upstream_->sendFrame(out);
      return;
    }
    for (const auto& entry : message.schedule) {
      mirror_[entry.id] = entry;
      follower_removed_.erase(entry.id);
    }
    for (const auto& id : message.removals) {
      mirror_.erase(id);
      follower_removed_.insert(id);
    }
    follower_epoch_ = message.epoch;
  }
  stats_.follower_frames_applied.fetch_add(1, std::memory_order_relaxed);
}

void ShardedCoordinator::promote() {
  const TimePoint now = net::EventLoop::Clock::now();
  if (upstream_) {
    auto doomed = std::move(upstream_);
    leader().loop.post(
        [conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
  }
  fence_.store(primary_fence_ + 1, std::memory_order_relaxed);
  if (follower_epoch_ > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(follower_epoch_, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(id_mutex_);
    std::int64_t next_external = id_generator_.nextExternal();
    for (const auto& [id, entry] : mirror_) {
      next_external = std::max(next_external, id.external + 1);
    }
    for (const auto& id : follower_removed_) {
      next_external = std::max(next_external, id.external + 1);
    }
    id_generator_.advanceTo(next_external);
  }
  // Seed the shards from the mirror. The seeding lambdas are FIFO-queued
  // per worker before the first barrier round (scheduleTick below fires
  // at least Δ later, and the leader posts both), so the first broadcast
  // already carries the mirrored schedule.
  std::size_t seeded = 0;
  for (const auto& [id, entry] : mirror_) {
    const std::size_t t = state_.shardFor(id);
    const auto seed = [this, t, id = id] {
      state_.shard(t).registerCoflow(id);
      registered_count_.fetch_add(1, std::memory_order_relaxed);
    };
    if (t == 0) {
      seed();
    } else {
      workers_[t]->loop.post(seed);
    }
    ++seeded;
  }
  for (const auto& id : follower_removed_) {
    const std::size_t t = state_.shardFor(id);
    const auto seed = [this, t, id, now] {
      state_.shard(t).unregisterCoflow(id);
      workers_[t]->tombstones[id] = now;
    };
    if (t == 0) {
      seed();
    } else {
      workers_[t]->loop.post(seed);
    }
  }
  // Every already-connected peer must see a full snapshot under the new
  // fence before any delta can compose.
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const auto mark = [this, s] {
      for (auto& [key, peer] : workers_[s]->peers) peer.needs_snapshot = true;
    };
    if (s == 0) {
      mark();
    } else {
      workers_[s]->loop.post(mark);
    }
  }
  standby_active_.store(false, std::memory_order_relaxed);
  stats_.failovers.fetch_add(1, std::memory_order_relaxed);
  AALO_LOG_WARN << "standby promoting to primary (" << num_shards_
                << " shards): fence " << fence_.load(std::memory_order_relaxed)
                << ", epoch " << epoch_.load(std::memory_order_relaxed) << ", "
                << seeded << " mirrored coflows, " << follower_removed_.size()
                << " tombstones";
  // The checkpoint snapshot happens at the first barrier completion —
  // after every seed post above has landed — instead of here, where the
  // remote shards are not yet seeded.
  force_checkpoint_snapshot_ = checkpoint_ != nullptr;
  ticking_ = true;
  scheduleTick();
}

// --- diagnostic accessors --------------------------------------------------

std::unordered_map<coflow::CoflowId, double> ShardedCoordinator::globalSizes() {
  if (!running_.load(std::memory_order_relaxed)) return state_.globalSizes();
  // Collected per shard on its own thread; the shards are sampled at
  // (slightly) different instants, which is fine for a diagnostic view —
  // tests read it at quiescence.
  std::vector<std::promise<std::unordered_map<coflow::CoflowId, double>>>
      promises(num_shards_);
  std::vector<std::future<std::unordered_map<coflow::CoflowId, double>>>
      futures;
  futures.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    futures.push_back(promises[s].get_future());
    workers_[s]->loop.post([this, s, &promises] {
      promises[s].set_value(state_.shard(s).globalSizes());
    });
  }
  std::unordered_map<coflow::CoflowId, double> merged;
  for (auto& f : futures) {
    for (const auto& [id, bytes] : f.get()) merged.emplace(id, bytes);
  }
  return merged;
}

std::vector<net::ScheduleEntry> ShardedCoordinator::scheduleSnapshot() {
  if (!running_.load(std::memory_order_relaxed)) {
    std::vector<net::ScheduleEntry> out;
    state_.snapshotEntries(out);
    return out;
  }
  std::vector<std::promise<std::vector<net::ScheduleEntry>>> promises(
      num_shards_);
  std::vector<std::future<std::vector<net::ScheduleEntry>>> futures;
  futures.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    futures.push_back(promises[s].get_future());
    workers_[s]->loop.post([this, s, &promises] {
      std::vector<net::ScheduleEntry> part;
      state_.shard(s).snapshotEntries(part);
      promises[s].set_value(std::move(part));
    });
  }
  std::vector<std::vector<net::ScheduleEntry>> parts;
  parts.reserve(num_shards_);
  for (auto& f : futures) parts.push_back(f.get());
  std::vector<const std::vector<net::ScheduleEntry>*> part_ptrs;
  part_ptrs.reserve(parts.size());
  for (const auto& p : parts) part_ptrs.push_back(&p);
  std::vector<net::ScheduleEntry> out;
  kWayMergeEntries(part_ptrs, out);
  if (config_.max_on_coflows > 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].on = i < config_.max_on_coflows;
    }
  }
  return out;
}

}  // namespace aalo::runtime
