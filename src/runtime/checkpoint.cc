#include "runtime/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <unordered_set>
#include <utility>

namespace aalo::runtime {
namespace {

constexpr char kMagic[8] = {'A', 'A', 'L', 'O', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kVersion = 1;

// Journal record types. 0 binds the journal to its base snapshot; the
// rest mirror the coordinator's state-changing inputs in arrival order.
constexpr std::uint8_t kRecJournalStart = 0;
constexpr std::uint8_t kRecReport = 1;      ///< encoded kSizeReport
constexpr std::uint8_t kRecRegister = 2;    ///< encoded kRegisterReply
constexpr std::uint8_t kRecUnregister = 3;  ///< encoded kUnregisterCoflow
constexpr std::uint8_t kRecDropDaemon = 4;  ///< raw u64 daemon_id
constexpr std::uint8_t kRecEpoch = 5;       ///< raw u64 epoch + u64 fence

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void putId(net::Buffer& out, const coflow::CoflowId& id) {
  out.putI64(id.external);
  out.putU32(static_cast<std::uint32_t>(id.internal));
}

coflow::CoflowId getId(net::Buffer& in) {
  coflow::CoflowId id;
  id.external = in.getI64();
  id.internal = static_cast<std::int32_t>(in.getU32());
  return id;
}

/// Frames one journal record ([u32 len][type+body][u64 checksum]) into
/// `out` — the one encoding shared by Checkpoint::pending_ and the
/// shard-side JournalBatch buffers.
void frameRecord(net::Buffer& out, std::uint8_t type, const net::Buffer& body) {
  net::Buffer payload;
  payload.putU8(type);
  payload.append(body.readable());
  out.putU32(static_cast<std::uint32_t>(payload.readableBytes()));
  out.append(payload.readable());
  out.putU64(fnv1a(payload.readable()));
}

void encodeReportRecord(net::Buffer& body, const net::Message& report) {
  net::encodeMessage(report, body);
}

void encodeRegisterRecord(net::Buffer& body, const coflow::CoflowId& id,
                          std::int64_t next_external) {
  net::Message m;
  m.type = net::MessageType::kRegisterReply;
  m.coflow = id;
  m.request_id = static_cast<std::uint64_t>(next_external);
  net::encodeMessage(m, body);
}

void encodeUnregisterRecord(net::Buffer& body, const coflow::CoflowId& id) {
  net::Message m;
  m.type = net::MessageType::kUnregisterCoflow;
  m.coflow = id;
  net::encodeMessage(m, body);
}

bool readFile(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

}  // namespace

Checkpoint::Checkpoint(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  snapshot_path_ = dir_ + "/schedule.ckpt";
  tmp_path_ = dir_ + "/schedule.ckpt.tmp";
  journal_path_ = dir_ + "/schedule.journal";
}

Checkpoint::~Checkpoint() {
  if (journal_out_.is_open()) flushJournal();
}

bool Checkpoint::hasData() const {
  std::error_code ec;
  return std::filesystem::exists(snapshot_path_, ec) ||
         std::filesystem::exists(journal_path_, ec);
}

bool Checkpoint::writeSnapshot(const ScheduleState& state,
                               const std::vector<coflow::CoflowId>& tombstones,
                               std::uint64_t fence, std::uint64_t epoch,
                               std::int64_t next_external,
                               const std::vector<util::Bytes>& thresholds,
                               std::size_t max_on) {
  return writeSnapshot(std::vector<const ScheduleState*>{&state}, tombstones,
                       fence, epoch, next_external, thresholds, max_on);
}

bool Checkpoint::writeSnapshot(const std::vector<const ScheduleState*>& states,
                               const std::vector<coflow::CoflowId>& tombstones,
                               std::uint64_t fence, std::uint64_t epoch,
                               std::int64_t next_external,
                               const std::vector<util::Bytes>& thresholds,
                               std::size_t max_on) {
  net::Buffer out;
  out.append(kMagic, sizeof(kMagic));
  out.putU32(kVersion);
  out.putU64(fence);
  out.putU64(epoch);
  out.putI64(next_external);
  out.putU32(static_cast<std::uint32_t>(thresholds.size()));
  for (util::Bytes t : thresholds) out.putDouble(t);
  out.putU64(static_cast<std::uint64_t>(max_on));
  std::size_t n_registered = 0;
  for (const ScheduleState* state : states) {
    n_registered += state->registeredIds().size();
  }
  out.putU32(static_cast<std::uint32_t>(n_registered));
  for (const ScheduleState* state : states) {
    for (const auto& id : state->registeredIds()) putId(out, id);
  }
  out.putU32(static_cast<std::uint32_t>(tombstones.size()));
  for (const auto& id : tombstones) putId(out, id);
  // A daemon's reports are spread across shards (its coflows hash
  // anywhere); the format keys by daemon, so merge per daemon. A coflow
  // lives in exactly one shard, so concatenating the per-shard maps of
  // one daemon is a disjoint union.
  std::unordered_map<std::uint64_t,
                     std::vector<const std::unordered_map<coflow::CoflowId,
                                                          double>*>>
      by_daemon;
  for (const ScheduleState* state : states) {
    for (const auto& [daemon_id, sizes] : state->reportedSizes()) {
      if (!sizes.empty()) by_daemon[daemon_id].push_back(&sizes);
    }
  }
  out.putU32(static_cast<std::uint32_t>(by_daemon.size()));
  for (const auto& [daemon_id, maps] : by_daemon) {
    out.putU64(daemon_id);
    std::size_t n_sizes = 0;
    for (const auto* sizes : maps) n_sizes += sizes->size();
    out.putU32(static_cast<std::uint32_t>(n_sizes));
    for (const auto* sizes : maps) {
      for (const auto& [id, bytes] : *sizes) {
        putId(out, id);
        out.putDouble(bytes);
      }
    }
  }
  const std::uint64_t checksum = fnv1a(out.readable());
  out.putU64(checksum);

  {
    std::ofstream f(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    const auto bytes = out.readable();
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path_, snapshot_path_, ec);
  if (ec) return false;

  // The on-disk snapshot is now authoritative; bind a fresh journal to it.
  base_checksum_ = checksum;
  pending_.clear();
  return openJournal(checksum, /*truncate=*/true);
}

void Checkpoint::appendRecord(std::uint8_t type, const net::Buffer& body) {
  frameRecord(pending_, type, body);
  ++records_appended_;
}

void Checkpoint::journalReport(const net::Message& report) {
  net::Buffer body;
  encodeReportRecord(body, report);
  appendRecord(kRecReport, body);
}

void Checkpoint::journalRegister(const coflow::CoflowId& id,
                                 std::int64_t next_external) {
  net::Buffer body;
  encodeRegisterRecord(body, id, next_external);
  appendRecord(kRecRegister, body);
}

void Checkpoint::journalUnregister(const coflow::CoflowId& id) {
  net::Buffer body;
  encodeUnregisterRecord(body, id);
  appendRecord(kRecUnregister, body);
}

void JournalBatch::report(const net::Message& report) {
  net::Buffer body;
  encodeReportRecord(body, report);
  frameRecord(framed_, kRecReport, body);
  ++records_;
}

void JournalBatch::registerCoflow(const coflow::CoflowId& id,
                                  std::int64_t next_external) {
  net::Buffer body;
  encodeRegisterRecord(body, id, next_external);
  frameRecord(framed_, kRecRegister, body);
  ++records_;
}

void JournalBatch::unregisterCoflow(const coflow::CoflowId& id) {
  net::Buffer body;
  encodeUnregisterRecord(body, id);
  frameRecord(framed_, kRecUnregister, body);
  ++records_;
}

void JournalBatch::dropDaemon(std::uint64_t daemon_id) {
  net::Buffer body;
  body.putU64(daemon_id);
  frameRecord(framed_, kRecDropDaemon, body);
  ++records_;
}

void JournalBatch::clear() {
  framed_.clear();
  records_ = 0;
}

void Checkpoint::absorb(JournalBatch& batch) {
  if (batch.records_ == 0) return;
  pending_.append(batch.framed_.readable());
  records_appended_ += batch.records_;
  batch.clear();
}

void Checkpoint::journalDropDaemon(std::uint64_t daemon_id) {
  net::Buffer body;
  body.putU64(daemon_id);
  appendRecord(kRecDropDaemon, body);
}

void Checkpoint::journalEpoch(std::uint64_t epoch, std::uint64_t fence) {
  net::Buffer body;
  body.putU64(epoch);
  body.putU64(fence);
  appendRecord(kRecEpoch, body);
}

bool Checkpoint::openJournal(std::uint64_t base_snapshot_checksum,
                             bool truncate) {
  if (journal_out_.is_open()) journal_out_.close();
  journal_out_.open(journal_path_,
                    std::ios::binary |
                        (truncate ? std::ios::trunc : std::ios::app));
  if (!journal_out_) return false;
  net::Buffer body;
  body.putU64(base_snapshot_checksum);
  // The start record goes straight to disk (not via pending_) so the
  // binding exists even if the process dies before the first flush.
  net::Buffer rec;
  rec.putU8(kRecJournalStart);
  rec.append(body.readable());
  net::Buffer framed;
  framed.putU32(static_cast<std::uint32_t>(rec.readableBytes()));
  framed.append(rec.readable());
  framed.putU64(fnv1a(rec.readable()));
  const auto bytes = framed.readable();
  journal_out_.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
  journal_out_.flush();
  return journal_out_.good();
}

bool Checkpoint::flushJournal() {
  if (pending_.empty()) return true;
  if (!journal_out_.is_open() &&
      !openJournal(base_checksum_, /*truncate=*/true)) {
    return false;
  }
  const auto bytes = pending_.readable();
  journal_out_.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
  journal_out_.flush();
  pending_.clear();
  return journal_out_.good();
}

std::optional<Checkpoint::Restored> Checkpoint::restore(
    ScheduleState& state, const std::vector<util::Bytes>& thresholds,
    std::size_t max_on) {
  std::vector<std::uint8_t> snap_bytes;
  const bool have_snapshot = readFile(snapshot_path_, snap_bytes);
  std::vector<std::uint8_t> journal_bytes;
  const bool have_journal = readFile(journal_path_, journal_bytes);
  if (!have_snapshot && !have_journal) return std::nullopt;

  Restored restored;
  std::uint64_t snapshot_checksum = 0;
  std::unordered_set<coflow::CoflowId> tombstoned;

  if (have_snapshot) {
    if (snap_bytes.size() < sizeof(kMagic) + 4 + 8) return std::nullopt;
    const std::span<const std::uint8_t> content(snap_bytes.data(),
                                                snap_bytes.size() - 8);
    snapshot_checksum = fnv1a(content);
    net::Buffer in;
    in.append(snap_bytes.data(), snap_bytes.size());
    try {
      char magic[sizeof(kMagic)];
      std::memcpy(magic, in.peek(), sizeof(kMagic));
      in.consume(sizeof(kMagic));
      if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
      if (in.getU32() != kVersion) return std::nullopt;
      restored.fence = in.getU64();
      restored.epoch = in.getU64();
      restored.next_external = in.getI64();
      const std::uint32_t n_thresholds = in.getU32();
      if (n_thresholds != thresholds.size()) return std::nullopt;
      for (std::uint32_t i = 0; i < n_thresholds; ++i) {
        if (!util::nearlyEqual(in.getDouble(), thresholds[i])) {
          return std::nullopt;
        }
      }
      if (in.getU64() != static_cast<std::uint64_t>(max_on)) {
        return std::nullopt;
      }
      const std::uint32_t n_registered = in.getU32();
      std::vector<coflow::CoflowId> registered;
      registered.reserve(n_registered);
      for (std::uint32_t i = 0; i < n_registered; ++i) {
        registered.push_back(getId(in));
      }
      const std::uint32_t n_tombstones = in.getU32();
      for (std::uint32_t i = 0; i < n_tombstones; ++i) {
        const coflow::CoflowId id = getId(in);
        if (tombstoned.insert(id).second) restored.tombstones.push_back(id);
      }
      struct DaemonSizes {
        std::uint64_t daemon_id = 0;
        std::vector<std::pair<coflow::CoflowId, double>> sizes;
      };
      std::vector<DaemonSizes> daemons;
      const std::uint32_t n_daemons = in.getU32();
      daemons.reserve(n_daemons);
      for (std::uint32_t i = 0; i < n_daemons; ++i) {
        DaemonSizes d;
        d.daemon_id = in.getU64();
        const std::uint32_t n_sizes = in.getU32();
        d.sizes.reserve(n_sizes);
        for (std::uint32_t j = 0; j < n_sizes; ++j) {
          const coflow::CoflowId id = getId(in);
          d.sizes.emplace_back(id, in.getDouble());
        }
        daemons.push_back(std::move(d));
      }
      if (in.getU64() != snapshot_checksum) return std::nullopt;
      if (!in.empty()) return std::nullopt;  // Trailing garbage.
      // Checksum verified end-to-end: now (and only now) mutate state.
      for (const auto& id : registered) state.registerCoflow(id);
      for (const auto& d : daemons) {
        for (const auto& [id, bytes] : d.sizes) {
          state.applySize(d.daemon_id, id, bytes);
        }
      }
    } catch (const std::exception&) {
      return std::nullopt;  // Truncated snapshot.
    }
  }

  if (have_journal) {
    net::Buffer in;
    in.append(journal_bytes.data(), journal_bytes.size());
    bool first = true;
    bool journal_valid = true;
    while (!in.empty()) {
      net::Buffer payload;
      try {
        const std::uint32_t len = in.getU32();
        if (len == 0 || len > in.readableBytes()) break;  // Torn tail.
        payload.append(in.peek(), len);
        in.consume(len);
        if (in.getU64() != fnv1a(payload.readable())) break;  // Torn tail.
      } catch (const std::exception&) {
        break;  // Torn tail.
      }
      std::uint8_t type = 0;
      try {
        type = payload.getU8();
        if (first) {
          first = false;
          if (type != kRecJournalStart ||
              payload.getU64() != snapshot_checksum) {
            // A journal that does not build on this snapshot is either
            // stale (crash between snapshot rename and journal truncate —
            // the snapshot alone is complete, drop the journal) or
            // orphaned (its base snapshot is gone — unrecoverable).
            journal_valid = false;
          }
          continue;
        }
        if (!journal_valid) break;
        switch (type) {
          case kRecReport: {
            net::Message m = net::decodeMessage(payload);
            if (m.type != net::MessageType::kSizeReport) return std::nullopt;
            for (const auto& size : m.sizes) {
              if (tombstoned.contains(size.id)) continue;
              state.applySize(m.daemon_id, size.id, size.bytes);
            }
            restored.epoch = std::max(restored.epoch, m.epoch);
            break;
          }
          case kRecRegister: {
            net::Message m = net::decodeMessage(payload);
            if (m.type != net::MessageType::kRegisterReply) {
              return std::nullopt;
            }
            state.registerCoflow(m.coflow);
            restored.next_external =
                std::max(restored.next_external,
                         static_cast<std::int64_t>(m.request_id));
            break;
          }
          case kRecUnregister: {
            net::Message m = net::decodeMessage(payload);
            if (m.type != net::MessageType::kUnregisterCoflow) {
              return std::nullopt;
            }
            state.unregisterCoflow(m.coflow);
            if (tombstoned.insert(m.coflow).second) {
              restored.tombstones.push_back(m.coflow);
            }
            break;
          }
          case kRecDropDaemon:
            state.dropDaemon(payload.getU64());
            break;
          case kRecEpoch: {
            restored.epoch = std::max(restored.epoch, payload.getU64());
            restored.fence = std::max(restored.fence, payload.getU64());
            break;
          }
          default:
            return std::nullopt;  // Unknown record in a valid checksum:
                                  // format from the future, refuse.
        }
      } catch (const std::exception&) {
        return std::nullopt;  // Checksummed-but-undecodable record.
      }
      ++restored.journal_records;
    }
    if (!have_snapshot && (first || !journal_valid)) {
      // Journal-only checkpoint with no readable start record, or one
      // whose base snapshot is gone: unrecoverable.
      return std::nullopt;
    }
    // (first && have_snapshot): journal empty/torn before its start
    // record — the snapshot alone is still consistent, proceed.
  } else if (!have_snapshot) {
    return std::nullopt;
  }

  if (restored.fence == 0) restored.fence = 1;
  return restored;
}

}  // namespace aalo::runtime
