// Durable coordinator state: snapshot + delta journal (§3.2 hardening).
//
// A restarted Aalo coordinator classically re-learns everything from the
// daemons' forced full reports ("re-teach"). That works but costs one or
// more sync rounds of blindness and a resync storm. This checkpoint makes
// restart cheap instead: the coordinator periodically writes an
// atomic-rename snapshot of its ScheduleState ground truth (the per-daemon
// absolute size reports + registrations — everything else is derived) and
// appends every state-changing control message between snapshots to a
// checksummed journal. Restore = load snapshot, replay journal prefix;
// because all size reports are *absolute* and the schedule is a sorted
// set, the rebuilt schedule is bit-identical to the pre-crash one and the
// resumed coordinator re-broadcasts it without a single snapshot request.
//
// Journal records embed the regular wire encoding (net::encodeMessage) for
// reports / registrations / unregistrations — one serialization format for
// the wire and the disk, so protocol evolution covers both.
//
// Crash-safety invariants:
//  * Snapshot: written to a temp file, fsync'd semantics via full write +
//    std::rename — readers only ever see the old or the new complete file.
//  * Journal: each record is [u32 len][payload][u64 fnv1a(payload)]; a torn
//    tail (partial final record, bad checksum) ends replay cleanly — the
//    prefix is still a consistent state.
//  * The journal's first record binds it to its base snapshot's checksum;
//    a journal left over from before a snapshot-truncate crash is detected
//    and discarded wholly rather than half-replayed.
//  * Any other inconsistency (bad magic/version/checksum, threshold or
//    max_on config mismatch) rejects the whole checkpoint: the coordinator
//    falls back to the classic re-teach path, never to a guessed state.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "coflow/ids.h"
#include "net/buffer.h"
#include "net/protocol.h"
#include "runtime/schedule_state.h"
#include "util/units.h"

namespace aalo::runtime {

/// Journal records staged outside the Checkpoint's own buffer. Each
/// coordinator shard owns one batch and appends to it from its own worker
/// thread; at the epoch barrier the leader absorbs all batches into the
/// Checkpoint in shard-index order, then writes the epoch mark — so every
/// record that influenced a broadcast round is journaled before that
/// round's epoch record (shard-consistent epoch marks). The encoding is
/// byte-identical to Checkpoint's own journal* methods.
class JournalBatch {
 public:
  void report(const net::Message& report);
  void registerCoflow(const coflow::CoflowId& id, std::int64_t next_external);
  void unregisterCoflow(const coflow::CoflowId& id);
  void dropDaemon(std::uint64_t daemon_id);

  bool empty() const { return records_ == 0; }
  std::size_t records() const { return records_; }
  void clear();

 private:
  friend class Checkpoint;
  net::Buffer framed_;  ///< Fully framed records, ready for the journal.
  std::size_t records_ = 0;
};

class Checkpoint {
 public:
  /// State recovered by restore() that lives outside ScheduleState.
  struct Restored {
    std::uint64_t fence = 1;
    std::uint64_t epoch = 0;
    std::int64_t next_external = 0;
    /// Unregistered coflows still inside their tombstone window at the
    /// time of the last record; the restored coordinator re-arms them.
    std::vector<coflow::CoflowId> tombstones;
    std::size_t journal_records = 0;  ///< Records replayed after the snapshot.
  };

  /// `dir` is created if missing. Files: <dir>/schedule.ckpt (snapshot),
  /// <dir>/schedule.journal (append-only deltas since that snapshot).
  explicit Checkpoint(std::string dir);
  ~Checkpoint();
  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// True when a snapshot or journal exists on disk — i.e. restore() has
  /// something to work with and a nullopt return means *corruption*, not
  /// a fresh start.
  bool hasData() const;

  /// Loads snapshot + journal into `state` (must be freshly constructed
  /// with the same thresholds/max_on, which are validated against the
  /// snapshot). Returns the out-of-band state on success; nullopt when
  /// the data is missing, corrupt, or from an incompatible config.
  std::optional<Restored> restore(ScheduleState& state,
                                  const std::vector<util::Bytes>& thresholds,
                                  std::size_t max_on);

  /// Atomically replaces the snapshot with the current ground truth and
  /// starts a fresh journal bound to it. Returns false on I/O failure
  /// (the previous snapshot, if any, is untouched).
  bool writeSnapshot(const ScheduleState& state,
                     const std::vector<coflow::CoflowId>& tombstones,
                     std::uint64_t fence, std::uint64_t epoch,
                     std::int64_t next_external,
                     const std::vector<util::Bytes>& thresholds,
                     std::size_t max_on);

  /// Sharded-coordinator variant: the ground truth is the union of the
  /// per-shard ScheduleStates (coflows are hash-partitioned, so the
  /// registered sets are disjoint; a daemon's reports may span shards and
  /// are merged per daemon). Same on-disk format — restore() cannot tell
  /// how many shards wrote it.
  bool writeSnapshot(const std::vector<const ScheduleState*>& states,
                     const std::vector<coflow::CoflowId>& tombstones,
                     std::uint64_t fence, std::uint64_t epoch,
                     std::int64_t next_external,
                     const std::vector<util::Bytes>& thresholds,
                     std::size_t max_on);

  // --- journal appends (buffered in memory until flushJournal) -----------
  /// `report` must carry only the tombstone-filtered sizes that were
  /// actually applied to the ScheduleState.
  void journalReport(const net::Message& report);
  void journalRegister(const coflow::CoflowId& id, std::int64_t next_external);
  void journalUnregister(const coflow::CoflowId& id);
  void journalDropDaemon(std::uint64_t daemon_id);
  void journalEpoch(std::uint64_t epoch, std::uint64_t fence);

  /// Moves a shard's staged records into the pending journal buffer (and
  /// clears the batch). Call for every shard in shard-index order, then
  /// journalEpoch() + flushJournal().
  void absorb(JournalBatch& batch);

  /// Appends all buffered records to the journal file. Returns false on
  /// I/O failure. Called once per coordination round, not per record.
  bool flushJournal();

  std::size_t recordsAppended() const { return records_appended_; }

 private:
  void appendRecord(std::uint8_t type, const net::Buffer& body);
  bool openJournal(std::uint64_t base_snapshot_checksum, bool truncate);

  std::string dir_;
  std::string snapshot_path_;
  std::string tmp_path_;
  std::string journal_path_;
  /// Buffered journal bytes awaiting flushJournal().
  net::Buffer pending_;
  /// Checksum of the snapshot the current journal builds on (0 = none).
  std::uint64_t base_checksum_ = 0;
  std::ofstream journal_out_;
  std::size_t records_appended_ = 0;
};

}  // namespace aalo::runtime
