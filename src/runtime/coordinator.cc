#include "runtime/coordinator.h"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <vector>

#include "net/protocol.h"
#include "runtime/metrics.h"
#include "runtime/shard.h"
#include "util/log.h"

namespace aalo::runtime {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

/// Reusable shared encode buffer: cleared in place when no connection's
/// send queue still references last round's bytes, replaced otherwise
/// (the slow peer keeps writing from the old buffer undisturbed).
net::Buffer& takeShared(std::shared_ptr<net::Buffer>& slot, obs::Counter& reuse,
                        obs::Counter& alloc) {
  if (slot && slot.use_count() == 1) {
    slot->clear();
    reuse.fetch_add(1);
  } else {
    slot = std::make_shared<net::Buffer>();
    alloc.fetch_add(1);
  }
  return *slot;
}

util::Seconds elapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      state_(config_.dclas.thresholds(), config_.max_on_coflows) {
  if (config_.shards > 1) {
    // The multi-threaded implementation takes over wholesale; this object
    // becomes a thin facade (its own registry/state stay empty).
    sharded_ = std::make_unique<ShardedCoordinator>(config_);
    return;
  }
  registerMetrics();
}

void Coordinator::registerMetrics() {
  registerRobustnessStats(metrics_, stats_, "aalo_coordinator");
  net::registerConnMetrics(metrics_, conn_metrics_, "aalo_coordinator");
  round_duration_ = &metrics_.histogram("aalo_coordinator_round_duration_seconds",
                                        "Coordination tick (evict + GC + broadcast)",
                                        {.first_bound = 1e-6, .num_bounds = 24});
  report_apply_ = &metrics_.histogram("aalo_coordinator_report_apply_seconds",
                                      "Size-report fold into ScheduleState",
                                      {.first_bound = 1e-7, .num_bounds = 24});
  broadcast_bytes_ = &metrics_.counter("aalo_coordinator_broadcast_bytes_total",
                                       "Schedule fan-out wire bytes incl. headers");
  scratch_reuse_ = &metrics_.counter("aalo_coordinator_encode_scratch_reuse_total",
                                     "Broadcast encode buffers cleared in place");
  scratch_alloc_ = &metrics_.counter("aalo_coordinator_encode_scratch_alloc_total",
                                     "Broadcast encode buffers reallocated");
  metrics_.attachGauge("aalo_coordinator_daemons", "Daemons currently connected",
                       [this] { return static_cast<double>(daemonCount()); });
  metrics_.attachGauge("aalo_coordinator_registered_coflows",
                       "Coflows currently registered",
                       [this] { return static_cast<double>(registeredCoflows()); });
  metrics_.attachGauge("aalo_coordinator_tombstones",
                       "Unregister tombstones held (pre-GC)",
                       [this] { return static_cast<double>(tombstoneCount()); });
  metrics_.attachGauge("aalo_coordinator_epoch", "Completed coordination rounds",
                       [this] { return static_cast<double>(epoch()); });
}

Coordinator::~Coordinator() { stop(); }

std::uint16_t Coordinator::port() const {
  return sharded_ ? sharded_->port() : port_;
}

std::uint64_t Coordinator::epoch() const {
  return sharded_ ? sharded_->epoch()
                  : epoch_.load(std::memory_order_relaxed);
}

std::uint64_t Coordinator::fence() const {
  return sharded_ ? sharded_->fence()
                  : fence_.load(std::memory_order_relaxed);
}

bool Coordinator::isPrimary() const {
  return sharded_ ? sharded_->isPrimary()
                  : !standby_active_.load(std::memory_order_relaxed);
}

std::size_t Coordinator::daemonCount() const {
  return sharded_ ? sharded_->daemonCount()
                  : daemon_count_.load(std::memory_order_relaxed);
}

std::size_t Coordinator::registeredCoflows() const {
  return sharded_ ? sharded_->registeredCoflows()
                  : registered_count_.load(std::memory_order_relaxed);
}

std::size_t Coordinator::tombstoneCount() const {
  return sharded_ ? sharded_->tombstoneCount()
                  : tombstone_count_.load(std::memory_order_relaxed);
}

const RobustnessStats& Coordinator::stats() const {
  return sharded_ ? sharded_->stats() : stats_;
}

const obs::Registry& Coordinator::metrics() const {
  return sharded_ ? sharded_->metrics() : metrics_;
}

void Coordinator::start() {
  if (sharded_) {
    sharded_->start();
    return;
  }
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  if (!config_.checkpoint_dir.empty()) {
    checkpoint_ = std::make_unique<Checkpoint>(config_.checkpoint_dir);
  }
  const bool standby = config_.standby_of != 0;
  standby_active_.store(standby, std::memory_order_relaxed);
  if (!standby) restoreFromCheckpoint();
  auto [fd, port] = net::listenTcp(config_.port);
  listener_ = std::move(fd);
  port_ = port;
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { onAcceptable(); });
  if (standby) {
    standby_started_ = net::EventLoop::Clock::now();
    // Give the primary a full takeover budget from our own start even if
    // it never answers (it may be dead already: cold-start takeover).
    last_primary_contact_ = standby_started_;
    connectUpstream();
    scheduleFollowerTick();
  } else {
    // Rebase the journal on a snapshot of the (restored or fresh) state so
    // restore is always snapshot + suffix, never an unbounded replay.
    if (checkpoint_) writeCheckpointSnapshot(net::EventLoop::Clock::now());
    scheduleTick();
  }
  if (!config_.metrics_dump_path.empty() && config_.metrics_dump_interval > 0) {
    scheduleMetricsDump();
  }
  thread_ = std::thread([this] { loop_.run(); });
  AALO_LOG_INFO << "coordinator " << (standby ? "(standby) " : "")
                << "listening on 127.0.0.1:" << port_;
}

void Coordinator::stop() {
  if (sharded_) {
    sharded_->stop();
    return;
  }
  // The lifecycle mutex makes racing stop() calls (or stop() racing the
  // destructor) serialize; every caller returns only once shutdown is done.
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone: destroy connections inline (their destructors
  // deregister from the now-idle loop).
  upstream_.reset();
  peers_.clear();
  // Connections whose EOF the loop never got to process would otherwise
  // leave a stale daemon count behind after shutdown.
  daemon_count_.store(0, std::memory_order_relaxed);
  if (listener_.valid()) loop_.remove(listener_.get());
  listener_.reset();
  if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
    // Graceful shutdown: one final snapshot, so a successor restores the
    // exact closing state without replaying any journal.
    checkpoint_->flushJournal();
    writeCheckpointSnapshot(net::EventLoop::Clock::now());
  }
  dumpMetrics();  // Final snapshot so short runs still leave evidence.
}

void Coordinator::restoreFromCheckpoint() {
  if (!checkpoint_ || !checkpoint_->hasData()) return;
  ScheduleState fresh(config_.dclas.thresholds(), config_.max_on_coflows);
  const auto restored = checkpoint_->restore(fresh, config_.dclas.thresholds(),
                                             config_.max_on_coflows);
  if (!restored) {
    // Corrupt or config-incompatible checkpoint: never guess. Start blind
    // and let the daemons' forced full reports re-teach us (§3.2).
    stats_.checkpoint_restore_failures.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "coordinator: checkpoint in " << config_.checkpoint_dir
                  << " is unusable; falling back to daemon re-teach";
    return;
  }
  state_ = std::move(fresh);
  epoch_.store(restored->epoch, std::memory_order_relaxed);
  fence_.store(std::max<std::uint64_t>(restored->fence, 1),
               std::memory_order_relaxed);
  id_generator_.advanceTo(restored->next_external);
  const TimePoint now = net::EventLoop::Clock::now();
  for (const auto& id : restored->tombstones) unregistered_[id] = now;
  tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
  registered_count_.store(state_.registeredCount(), std::memory_order_relaxed);
  stats_.checkpoint_restores.fetch_add(1, std::memory_order_relaxed);
  AALO_LOG_INFO << "coordinator: restored " << state_.scheduledCount()
                << " coflows at epoch " << restored->epoch << " (fence "
                << fence_.load(std::memory_order_relaxed) << ", "
                << restored->journal_records << " journal records) from "
                << config_.checkpoint_dir;
}

void Coordinator::writeCheckpointSnapshot(TimePoint now) {
  if (!checkpoint_) return;
  std::vector<coflow::CoflowId> tombstones;
  tombstones.reserve(unregistered_.size());
  for (const auto& [id, mentioned] : unregistered_) tombstones.push_back(id);
  if (checkpoint_->writeSnapshot(state_, tombstones,
                                 fence_.load(std::memory_order_relaxed),
                                 epoch_.load(std::memory_order_relaxed),
                                 id_generator_.nextExternal(),
                                 config_.dclas.thresholds(),
                                 config_.max_on_coflows)) {
    stats_.checkpoint_snapshots.fetch_add(1, std::memory_order_relaxed);
  } else {
    AALO_LOG_WARN << "coordinator: failed to write checkpoint snapshot in "
                  << config_.checkpoint_dir;
  }
  last_checkpoint_ = now;
}

void Coordinator::scheduleMetricsDump() {
  loop_.callAfter(toNanos(config_.metrics_dump_interval), [this] {
    dumpMetrics();
    if (running_.load(std::memory_order_relaxed)) scheduleMetricsDump();
  });
}

void Coordinator::dumpMetrics() {
  if (config_.metrics_dump_path.empty()) return;
  if (!metrics_.dumpFiles(config_.metrics_dump_path)) {
    AALO_LOG_WARN << "coordinator: failed to write metrics dump to "
                  << config_.metrics_dump_path;
  }
}

void Coordinator::scheduleTick() {
  loop_.callAfter(toNanos(config_.sync_interval), [this] {
    const auto start = std::chrono::steady_clock::now();
    const TimePoint now = net::EventLoop::Clock::now();
    evictStalePeers(now);
    collectTombstones(now);
    broadcastSchedule();
    if (checkpoint_) {
      // An epoch mark per round keeps the restored epoch (and with it the
      // fencing story) close to the truth even between snapshots.
      checkpoint_->journalEpoch(epoch_.load(std::memory_order_relaxed),
                                fence_.load(std::memory_order_relaxed));
      stats_.checkpoint_journal_records.fetch_add(1, std::memory_order_relaxed);
      checkpoint_->flushJournal();
      if (config_.checkpoint_interval > 0 &&
          now - last_checkpoint_ >= toNanos(config_.checkpoint_interval)) {
        writeCheckpointSnapshot(now);
      }
    }
    round_duration_->observe(elapsedSeconds(start));
    if (running_.load(std::memory_order_relaxed)) scheduleTick();
  });
}

void Coordinator::scheduleFollowerTick() {
  loop_.callAfter(toNanos(config_.sync_interval), [this] {
    if (!running_.load(std::memory_order_relaxed)) return;
    if (!standby_active_.load(std::memory_order_relaxed)) return;
    const TimePoint now = net::EventLoop::Clock::now();
    const auto budget = toNanos(config_.sync_interval *
                                std::max(config_.takeover_intervals, 1));
    if (now - last_primary_contact_ > budget) {
      promote();
      return;  // scheduleTick() owns the cadence from here on.
    }
    if (!upstream_ || upstream_->closed()) connectUpstream();
    scheduleFollowerTick();
  });
}

void Coordinator::connectUpstream() {
  net::Fd fd;
  try {
    fd = net::connectTcp(config_.standby_of);
  } catch (const std::system_error&) {
    return;  // Primary unreachable; the takeover timer keeps running.
  }
  upstream_ = std::make_unique<net::Connection>(
      loop_, std::move(fd),
      [this](net::Buffer& payload) { onUpstreamMessage(payload); },
      [this] {
        if (!upstream_) return;
        // We are inside the connection's own callback chain: defer its
        // destruction, redial on the next follower tick.
        auto doomed = std::move(upstream_);
        loop_.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
      },
      &conn_metrics_);
  net::Message subscribe;
  subscribe.type = net::MessageType::kFollowerSubscribe;
  subscribe.epoch = follower_epoch_;
  subscribe.fence = primary_fence_;
  net::Buffer out;
  net::encodeMessage(subscribe, out);
  upstream_->sendFrame(out);
}

void Coordinator::onUpstreamMessage(net::Buffer& payload) {
  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "standby: dropping malformed frame: " << e.what();
    return;
  }
  if (message.type != net::MessageType::kScheduleUpdate &&
      message.type != net::MessageType::kScheduleDelta) {
    return;
  }
  if (message.fence < primary_fence_) return;  // Deposed incarnation.
  primary_fence_ = message.fence;
  last_primary_contact_ = net::EventLoop::Clock::now();
  if (message.type == net::MessageType::kScheduleUpdate) {
    // Wholesale replacement: every mirrored coflow the snapshot no longer
    // carries was unregistered (or ON/OFF-pruned by a GC) upstream.
    std::unordered_map<coflow::CoflowId, net::ScheduleEntry> next;
    next.reserve(message.schedule.size());
    for (const auto& entry : message.schedule) {
      next.emplace(entry.id, entry);
      follower_removed_.erase(entry.id);
    }
    for (const auto& [id, entry] : mirror_) {
      if (!next.contains(id)) follower_removed_.insert(id);
    }
    mirror_ = std::move(next);
    follower_epoch_ = message.epoch;
  } else {
    if (message.base_epoch != follower_epoch_) {
      // Epoch gap in the mirrored stream: recover exactly like a daemon.
      net::Message request;
      request.type = net::MessageType::kSnapshotRequest;
      request.epoch = follower_epoch_;
      net::Buffer out;
      net::encodeMessage(request, out);
      if (upstream_ && !upstream_->closed()) upstream_->sendFrame(out);
      return;
    }
    for (const auto& entry : message.schedule) {
      mirror_[entry.id] = entry;
      follower_removed_.erase(entry.id);
    }
    for (const auto& id : message.removals) {
      mirror_.erase(id);
      follower_removed_.insert(id);
    }
    follower_epoch_ = message.epoch;
  }
  stats_.follower_frames_applied.fetch_add(1, std::memory_order_relaxed);
}

void Coordinator::promote() {
  const TimePoint now = net::EventLoop::Clock::now();
  if (upstream_) {
    auto doomed = std::move(upstream_);
    loop_.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
  }
  // Fence above everything the primary ever broadcast: should the deposed
  // primary come back, daemons following the highest fence ignore it.
  fence_.store(primary_fence_ + 1, std::memory_order_relaxed);
  if (follower_epoch_ > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(follower_epoch_, std::memory_order_relaxed);
  }
  // Seed the schedule from the mirror. registerCoflow is try_emplace-like:
  // coflows daemons already re-taught us keep their sizes, the rest enter
  // at queue 0 and are re-learned within a report round — and the daemons'
  // max(local D-CLAS, schedule) rule means the transient zero can never
  // promote a coflow above what its local size justifies.
  std::int64_t next_external = id_generator_.nextExternal();
  for (const auto& [id, entry] : mirror_) {
    state_.registerCoflow(id);
    next_external = std::max(next_external, id.external + 1);
  }
  for (const auto& id : follower_removed_) {
    state_.unregisterCoflow(id);
    unregistered_[id] = now;
    next_external = std::max(next_external, id.external + 1);
  }
  id_generator_.advanceTo(next_external);
  tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
  registered_count_.store(state_.registeredCount(), std::memory_order_relaxed);
  // Every already-connected peer must see a full snapshot under the new
  // fence before any delta can compose.
  for (auto& [key, peer] : peers_) peer.needs_snapshot = true;
  standby_active_.store(false, std::memory_order_relaxed);
  stats_.failovers.fetch_add(1, std::memory_order_relaxed);
  AALO_LOG_WARN << "standby promoting to primary: fence "
                << fence_.load(std::memory_order_relaxed) << ", epoch "
                << epoch_.load(std::memory_order_relaxed) << ", "
                << mirror_.size() << " mirrored coflows, "
                << follower_removed_.size() << " tombstones";
  if (checkpoint_) writeCheckpointSnapshot(now);
  scheduleTick();
}

void Coordinator::onAcceptable() {
  for (;;) {
    net::Fd fd = net::acceptTcp(listener_.get());
    if (!fd.valid()) break;
    const std::uint64_t key = next_peer_key_++;
    Peer peer;
    peer.connection = std::make_unique<net::Connection>(
        loop_, std::move(fd),
        [this, key](net::Buffer& payload) { onMessage(key, payload); },
        [this, key] { dropPeer(key); }, &conn_metrics_);
    if (config_.send_queue_max > 0) {
      // Coalescing (skip broadcasts at send_queue_max) is the soft limit;
      // the connection's hard close at 4x bounds worst-case memory even if
      // a non-broadcast write path misbehaves.
      peer.connection->setSendQueueLimit(4 * config_.send_queue_max);
    }
    peers_.emplace(key, std::move(peer));
  }
}

void Coordinator::dropPeer(std::uint64_t peer_key) {
  const auto it = peers_.find(peer_key);
  if (it == peers_.end()) return;
  if (it->second.is_daemon) {
    state_.dropDaemon(it->second.daemon_id);
    daemon_count_.fetch_sub(1, std::memory_order_relaxed);
    if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
      checkpoint_->journalDropDaemon(it->second.daemon_id);
      stats_.checkpoint_journal_records.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Defer destruction: we may be inside this connection's own callback
  // chain (close handler), or about to destroy it from the eviction pass.
  auto doomed = std::move(it->second.connection);
  peers_.erase(it);
  loop_.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
}

void Coordinator::evictStalePeers(TimePoint now) {
  if (config_.liveness_timeout_intervals <= 0 &&
      config_.one_way_timeout_intervals <= 0) {
    return;
  }
  const auto liveness_budget =
      toNanos(config_.sync_interval * config_.liveness_timeout_intervals);
  const auto one_way_budget =
      toNanos(config_.sync_interval * config_.one_way_timeout_intervals);
  std::vector<std::uint64_t> evict;
  for (const auto& [key, peer] : peers_) {
    if (!peer.is_daemon) continue;
    if (config_.liveness_timeout_intervals > 0 &&
        now - peer.last_report > liveness_budget) {
      stats_.daemons_evicted.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: evicting daemon " << peer.daemon_id
                    << " (no report for " << config_.liveness_timeout_intervals
                    << " intervals)";
      evict.push_back(key);
      continue;
    }
    // One-way failure: its reports arrive (first branch did not trip) but
    // it never acknowledges our broadcasts — the send path is dead. Only
    // meaningful once we have actually broadcast something newer than the
    // daemon's echo.
    if (config_.one_way_timeout_intervals > 0 &&
        epoch_.load(std::memory_order_relaxed) > peer.echoed_epoch &&
        now - peer.last_echo_advance > one_way_budget) {
      stats_.one_way_evictions.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: evicting daemon " << peer.daemon_id
                    << " (epoch echo stuck at " << peer.echoed_epoch
                    << "; one-way link)";
      evict.push_back(key);
    }
  }
  for (const std::uint64_t key : evict) dropPeer(key);
}

void Coordinator::collectTombstones(TimePoint now) {
  if (config_.tombstone_gc_intervals <= 0 || unregistered_.empty()) return;
  const auto budget =
      toNanos(config_.sync_interval * config_.tombstone_gc_intervals);
  for (auto it = unregistered_.begin(); it != unregistered_.end();) {
    if (now - it->second > budget) {
      stats_.tombstones_collected.fetch_add(1, std::memory_order_relaxed);
      it = unregistered_.erase(it);
    } else {
      ++it;
    }
  }
  tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
}

void Coordinator::onMessage(std::uint64_t peer_key, net::Buffer& payload) {
  const auto it = peers_.find(peer_key);
  if (it == peers_.end()) return;
  Peer& peer = *&it->second;

  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "coordinator: dropping malformed frame: " << e.what();
    return;
  }

  const TimePoint now = net::EventLoop::Clock::now();
  switch (message.type) {
    case net::MessageType::kHello:
      peer.is_daemon = true;
      peer.daemon_id = message.daemon_id;
      peer.last_report = now;
      peer.last_echo_advance = now;
      daemon_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case net::MessageType::kSizeReport:
      if (peer.is_daemon) {
        const auto apply_start = std::chrono::steady_clock::now();
        peer.last_report = now;
        if (message.epoch > peer.echoed_epoch) {
          peer.echoed_epoch = message.epoch;
          peer.last_echo_advance = now;
        }
        const bool journal =
            checkpoint_ != nullptr &&
            !standby_active_.load(std::memory_order_relaxed);
        net::Message& journaled = report_journal_scratch_;
        if (journal) {
          journaled.type = net::MessageType::kSizeReport;
          journaled.daemon_id = peer.daemon_id;
          journaled.epoch = message.epoch;
          journaled.sizes.clear();
        }
        for (const auto& s : message.sizes) {
          // Completed coflows must not resurface (tombstone); remember the
          // mention so the tombstone outlives every daemon still reporting.
          const auto tomb = unregistered_.find(s.id);
          if (tomb != unregistered_.end()) {
            tomb->second = now;
            continue;
          }
          state_.applySize(peer.daemon_id, s.id, s.bytes);
          if (journal) journaled.sizes.push_back(s);
        }
        if (journal && !journaled.sizes.empty()) {
          // Only the applied (tombstone-filtered) slice reaches the
          // journal, so replay never resurrects a completed coflow.
          checkpoint_->journalReport(journaled);
          stats_.checkpoint_journal_records.fetch_add(1,
                                                      std::memory_order_relaxed);
        }
        report_apply_->observe(elapsedSeconds(apply_start));
      }
      break;
    case net::MessageType::kRegisterCoflow: {
      if (standby_active_.load(std::memory_order_relaxed)) {
        // A standby must not mint CoflowIds: they would collide with the
        // primary's. The client's RPC retry finds the primary (or waits
        // out our promotion).
        AALO_LOG_WARN << "standby: ignoring kRegisterCoflow before promotion";
        break;
      }
      coflow::CoflowId id;
      if (message.parents.empty()) {
        id = id_generator_.newRootId();
      } else {
        try {
          id = id_generator_.newChildId(message.parents);
        } catch (const std::invalid_argument&) {
          id = id_generator_.newRootId();  // Malformed parents: fresh DAG.
        }
      }
      state_.registerCoflow(id);
      registered_count_.store(state_.registeredCount(),
                              std::memory_order_relaxed);
      if (checkpoint_) {
        checkpoint_->journalRegister(id, id_generator_.nextExternal());
        stats_.checkpoint_journal_records.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
      net::Message reply;
      reply.type = net::MessageType::kRegisterReply;
      reply.request_id = message.request_id;
      reply.coflow = id;
      net::Buffer out;
      net::encodeMessage(reply, out);
      peer.connection->sendFrame(out);
      break;
    }
    case net::MessageType::kUnregisterCoflow:
      state_.unregisterCoflow(message.coflow);
      unregistered_[message.coflow] = now;
      tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
      registered_count_.store(state_.registeredCount(),
                              std::memory_order_relaxed);
      if (checkpoint_ && !standby_active_.load(std::memory_order_relaxed)) {
        checkpoint_->journalUnregister(message.coflow);
        stats_.checkpoint_journal_records.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
      break;
    case net::MessageType::kSnapshotRequest:
      // The daemon (or a subscribed standby) detected an epoch gap or lost
      // its schedule: serve a full snapshot on the next round instead of a
      // delta it cannot apply.
      if (peer.is_daemon || peer.is_follower) {
        peer.needs_snapshot = true;
        stats_.snapshot_requests.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case net::MessageType::kFollowerSubscribe:
      // A warm standby joins the broadcast fan-out as a pseudo-daemon: it
      // gets the same snapshot-then-deltas stream but never reports, so
      // the liveness/one-way watchdogs leave it alone.
      peer.is_follower = true;
      peer.needs_snapshot = true;
      break;
    default:
      AALO_LOG_WARN << "coordinator: unexpected message type";
  }
}

void Coordinator::broadcastSchedule() {
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.full_broadcasts) {
    broadcastFull(epoch);
  } else {
    broadcastDelta(epoch);
  }
}

void Coordinator::broadcastFull(std::uint64_t epoch) {
  // Oracle mode: rebuild the whole schedule from the stored reports every
  // round (global size = sum of local observations; attained service only
  // grows, so last-writer-wins per daemon is exact). The tombstone filter
  // covers sizes stored before an unregister; fresh mentions are filtered
  // on arrival.
  net::Message update;
  update.type = net::MessageType::kScheduleUpdate;
  update.epoch = epoch;
  update.fence = fence_.load(std::memory_order_relaxed);
  update.schedule.swap(entries_scratch_);
  state_.legacySchedule(
      [this](const coflow::CoflowId& id) { return unregistered_.contains(id); },
      update.schedule);

  net::Buffer& out = takeShared(snapshot_scratch_, *scratch_reuse_, *scratch_alloc_);
  net::encodeMessage(update, out);
  update.schedule.swap(entries_scratch_);  // Keep the capacity for reuse.
  // Snapshot the peer keys: a failing send may close a connection, whose
  // close handler erases it from peers_ — mutating the map mid-iteration.
  std::vector<std::uint64_t> keys;
  keys.reserve(peers_.size());
  for (const auto& [key, peer] : peers_) {
    if (peer.is_daemon || peer.is_follower) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    const auto it = peers_.find(key);
    if (it == peers_.end()) continue;
    Peer& peer = it->second;
    if (!peer.connection || peer.connection->closed()) continue;
    if (config_.send_queue_max > 0 &&
        peer.connection->pendingBytes() > config_.send_queue_max) {
      // Backpressure: the peer is not draining. Skip it this round rather
      // than queueing unboundedly or stalling the healthy fan-out.
      stats_.broadcasts_coalesced.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    peer.connection->sendFrame(snapshot_scratch_);
    broadcast_bytes_->fetch_add(4 + snapshot_scratch_->readableBytes());
    stats_.snapshot_broadcasts.fetch_add(1, std::memory_order_relaxed);
  }
}

void Coordinator::broadcastDelta(std::uint64_t epoch) {
  const bool changed = state_.buildDelta(entries_scratch_, removals_scratch_);

  // Encode the delta once (an unchanged schedule encodes as an epoch-only
  // heartbeat); the snapshot is encoded lazily — most rounds no peer
  // needs one.
  net::Message message;
  message.type = net::MessageType::kScheduleDelta;
  message.epoch = epoch;
  message.base_epoch = epoch - 1;
  message.fence = fence_.load(std::memory_order_relaxed);
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);
  net::Buffer& delta_out =
      takeShared(delta_scratch_, *scratch_reuse_, *scratch_alloc_);
  net::encodeMessage(message, delta_out);
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);
  bool snapshot_encoded = false;

  std::vector<std::uint64_t> keys;
  keys.reserve(peers_.size());
  for (const auto& [key, peer] : peers_) {
    if (peer.is_daemon || peer.is_follower) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    const auto it = peers_.find(key);
    if (it == peers_.end()) continue;
    Peer& peer = it->second;
    if (!peer.connection || peer.connection->closed()) continue;
    if (config_.send_queue_max > 0 &&
        peer.connection->pendingBytes() > config_.send_queue_max) {
      // Backpressure: the peer stopped draining (blackholed link, hung
      // process). Skip it — sending more only bloats its queue — and mark
      // it for a full snapshot, which coalesces every skipped round into
      // one frame once it drains (or it trips the liveness watchdog).
      peer.needs_snapshot = true;
      stats_.broadcasts_coalesced.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const bool want_snapshot =
        peer.needs_snapshot ||
        (config_.snapshot_every > 0 &&
         peer.frames_since_snapshot >= config_.snapshot_every);
    if (want_snapshot) {
      if (!snapshot_encoded) {
        message.type = net::MessageType::kScheduleUpdate;
        message.base_epoch = 0;
        message.removals.clear();
        message.schedule.swap(entries_scratch_);
        state_.snapshotEntries(message.schedule);
        net::Buffer& snap_out =
            takeShared(snapshot_scratch_, *scratch_reuse_, *scratch_alloc_);
        net::encodeMessage(message, snap_out);
        message.schedule.swap(entries_scratch_);
        snapshot_encoded = true;
      }
      // Update peer state *before* the send: a failing send closes the
      // connection inline, whose close handler erases this Peer.
      peer.needs_snapshot = false;
      peer.frames_since_snapshot = 0;
      stats_.snapshot_broadcasts.fetch_add(1, std::memory_order_relaxed);
      peer.connection->sendFrame(snapshot_scratch_);
      broadcast_bytes_->fetch_add(4 + snapshot_scratch_->readableBytes());
    } else {
      ++peer.frames_since_snapshot;
      (changed ? stats_.delta_broadcasts : stats_.broadcasts_suppressed)
          .fetch_add(1, std::memory_order_relaxed);
      peer.connection->sendFrame(delta_scratch_);
      broadcast_bytes_->fetch_add(4 + delta_scratch_->readableBytes());
    }
  }
}

std::unordered_map<coflow::CoflowId, double> Coordinator::globalSizes() {
  if (sharded_) return sharded_->globalSizes();
  if (!running_.load(std::memory_order_relaxed)) return state_.globalSizes();
  std::promise<std::unordered_map<coflow::CoflowId, double>> promise;
  auto future = promise.get_future();
  loop_.post([this, &promise] { promise.set_value(state_.globalSizes()); });
  return future.get();
}

std::vector<net::ScheduleEntry> Coordinator::scheduleSnapshot() {
  if (sharded_) return sharded_->scheduleSnapshot();
  const auto compute = [this] {
    std::vector<net::ScheduleEntry> out;
    state_.snapshotEntries(out);
    return out;
  };
  if (!running_.load(std::memory_order_relaxed)) return compute();
  std::promise<std::vector<net::ScheduleEntry>> promise;
  auto future = promise.get_future();
  loop_.post([&compute, &promise] { promise.set_value(compute()); });
  return future.get();
}

}  // namespace aalo::runtime
